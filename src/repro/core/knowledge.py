"""The knowledge database (§IV-B.3), now outcome-fed.

The Application Execution Module "takes a program and checks whether
the program has been recorded in our knowledge database"; on a miss it
triggers smart profiling and stores the result.  Entries are keyed by
(application name, problem size) — the paper shows the same code with
different inputs (CloverLeaf) can need different coordination.

Entries hold the profile plus the derived artifacts (inflection point)
and can be persisted to / restored from JSON, standing in for the
on-disk database of the real helper tools.

Schema v2 turns the store from write-once into a learning substrate:
each entry additionally carries an append-capped history of
:class:`ObservationRecord`\\ s (predicted vs. measured time and power
for every completed job, with the configuration, budget, testbed
fingerprint, and outcome flags), a monotone ``model_version`` bumped on
every refit, and the learned :class:`~repro.core.perfmodel.TimeCalibration`.
Decision quality is a *derived* per-(app, budget-band, testbed) score
— :meth:`KnowledgeEntry.quality` computes it from the capped window,
so it can never drift out of sync with the history it summarizes.
v1 files load transparently (entries migrate to empty histories);
unknown future versions are still rejected.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.core.perfmodel import TimeCalibration
from repro.core.profile import AppProfile, SampleRun
from repro.errors import KnowledgeBaseError, KnowledgeError
from repro.hw.counters import EventCounters
from repro.hw.numa import AffinityKind

__all__ = [
    "KnowledgeEntry",
    "KnowledgeDB",
    "ObservationRecord",
    "DecisionQuality",
    "budget_band",
    "SCHEMA_VERSION",
    "MAX_OBSERVATIONS",
    "BUDGET_BAND_W",
]

#: On-disk schema version written by :meth:`KnowledgeDB.save`.
SCHEMA_VERSION = 2

#: Schema versions :meth:`KnowledgeDB.load` can read (older ones are
#: migrated forward in memory; the next save writes ``SCHEMA_VERSION``).
READABLE_VERSIONS = (1, 2)

#: Per-entry observation-history cap: the learning window is the most
#: recent observations, so a long-running deployment's entries stay
#: bounded and stale evidence ages out.
MAX_OBSERVATIONS = 256

#: Width of the budget bands decision quality is bucketed by.
BUDGET_BAND_W = 250.0


def budget_band(budget_w: float) -> float:
    """The quality-cell band a cluster budget falls into (its floor)."""
    if budget_w <= 0:
        return 0.0
    return float(int(budget_w // BUDGET_BAND_W) * BUDGET_BAND_W)


@dataclass(frozen=True)
class ObservationRecord:
    """One completed job's predicted-vs-measured outcome.

    Times are per cluster iteration (the reciprocal of throughput), so
    predictions and measurements from any consumer — queue drains, the
    segment runtime, the serve daemon — compare on one axis.  ``flags``
    carry outcome annotations ("explored", "concurrency_change",
    "guard", ...) and ``source`` names the reporting choke-point
    caller.
    """

    predicted_time_s: float
    measured_time_s: float
    predicted_power_w: float
    measured_power_w: float
    budget_w: float
    n_nodes: int
    n_threads: int
    testbed: str
    model_version: int = 1
    source: str = "unknown"
    flags: tuple[str, ...] = ()

    @property
    def predicted_perf(self) -> float:
        """Predicted throughput (1 / predicted time)."""
        return 1.0 / self.predicted_time_s if self.predicted_time_s > 0 else 0.0

    @property
    def measured_perf(self) -> float:
        """Measured throughput (1 / measured time)."""
        return 1.0 / self.measured_time_s if self.measured_time_s > 0 else 0.0

    @property
    def rel_time_error(self) -> float:
        """Signed relative misprediction ((measured - predicted) / predicted)."""
        if self.predicted_time_s <= 0:
            return 0.0
        return (self.measured_time_s - self.predicted_time_s) / self.predicted_time_s

    @property
    def band_w(self) -> float:
        """The budget band this observation's quality cell lives in."""
        return budget_band(self.budget_w)

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "predicted_time_s": self.predicted_time_s,
            "measured_time_s": self.measured_time_s,
            "predicted_power_w": self.predicted_power_w,
            "measured_power_w": self.measured_power_w,
            "budget_w": self.budget_w,
            "n_nodes": self.n_nodes,
            "n_threads": self.n_threads,
            "testbed": self.testbed,
            "model_version": self.model_version,
            "source": self.source,
            "flags": list(self.flags),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ObservationRecord":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            predicted_time_s=float(raw["predicted_time_s"]),
            measured_time_s=float(raw["measured_time_s"]),
            predicted_power_w=float(raw["predicted_power_w"]),
            measured_power_w=float(raw["measured_power_w"]),
            budget_w=float(raw["budget_w"]),
            n_nodes=int(raw["n_nodes"]),
            n_threads=int(raw["n_threads"]),
            testbed=str(raw["testbed"]),
            model_version=int(raw.get("model_version", 1)),
            source=str(raw.get("source", "unknown")),
            flags=tuple(str(f) for f in raw.get("flags", ())),
        )


@dataclass(frozen=True)
class DecisionQuality:
    """Decision-quality summary of one (app, budget-band, testbed) cell."""

    app_name: str
    problem_size: str
    band_w: float
    testbed: str
    n: int
    mean_abs_time_error: float
    mean_abs_power_error: float

    @property
    def score(self) -> float:
        """Quality in (0, 1]: 1 when predictions match measurements."""
        return 1.0 / (1.0 + self.mean_abs_time_error)

    def to_dict(self) -> dict:
        """JSON-safe representation (score included for reports)."""
        return {
            "app_name": self.app_name,
            "problem_size": self.problem_size,
            "band_w": self.band_w,
            "testbed": self.testbed,
            "n": self.n,
            "mean_abs_time_error": self.mean_abs_time_error,
            "mean_abs_power_error": self.mean_abs_power_error,
            "score": self.score,
        }


@dataclass(frozen=True)
class KnowledgeEntry:
    """One application's recorded knowledge.

    The fit-once core (profile + inflection point) is unchanged; the
    learning fields default to "never observed", so entries built by
    code that predates the learning layer behave exactly as before.
    ``observed_total`` counts every observation ever recorded (the
    history itself is capped at :data:`MAX_OBSERVATIONS`);
    ``refit_at`` remembers the count at the last refit so a
    :class:`~repro.core.learning.RefitPolicy` can reason about
    staleness.
    """

    profile: AppProfile
    inflection_point: int | None = None
    observations: tuple[ObservationRecord, ...] = ()
    calibration: TimeCalibration | None = None
    model_version: int = 1
    observed_total: int = 0
    refit_at: int = 0

    @property
    def key(self) -> tuple[str, str]:
        """Database key of this entry."""
        return (self.profile.app_name, self.profile.problem_size)

    def same_models(self, other: "KnowledgeEntry") -> bool:
        """Whether fitted models built from *other* would be identical.

        The model inputs are the profile, the inflection point, the
        calibration, and the model version — observation appends leave
        all four untouched, which is what keeps the bundle cache warm
        while outcomes stream in.
        """
        return (
            self.profile == other.profile
            and self.inflection_point == other.inflection_point
            and self.calibration == other.calibration
            and self.model_version == other.model_version
        )

    def with_observation(self, obs: ObservationRecord) -> "KnowledgeEntry":
        """A new entry with *obs* appended (history capped, total bumped)."""
        history = (*self.observations, obs)[-MAX_OBSERVATIONS:]
        return replace(
            self,
            observations=history,
            observed_total=self.observed_total + 1,
        )

    def with_refit(self, calibration: TimeCalibration) -> "KnowledgeEntry":
        """A new entry carrying a refitted calibration (version bumped)."""
        return replace(
            self,
            calibration=calibration,
            model_version=self.model_version + 1,
            refit_at=self.observed_total,
        )

    # -- decision quality ----------------------------------------------

    def cell_observations(
        self, budget_w: float, testbed: str
    ) -> tuple[ObservationRecord, ...]:
        """The history restricted to one (budget-band, testbed) cell."""
        band = budget_band(budget_w)
        return tuple(
            o
            for o in self.observations
            if o.band_w == band and o.testbed == testbed
        )

    def quality(self, budget_w: float, testbed: str) -> DecisionQuality:
        """Decision quality of one (budget-band, testbed) cell."""
        return self._cell_quality(budget_band(budget_w), testbed)

    def quality_cells(self) -> tuple[DecisionQuality, ...]:
        """Every populated quality cell, ordered by (band, testbed)."""
        cells = sorted({(o.band_w, o.testbed) for o in self.observations})
        return tuple(self._cell_quality(band, tb) for band, tb in cells)

    def _cell_quality(self, band_w: float, testbed: str) -> DecisionQuality:
        obs = [
            o
            for o in self.observations
            if o.band_w == band_w and o.testbed == testbed
        ]
        n = len(obs)
        if n:
            time_err = sum(abs(o.rel_time_error) for o in obs) / n
            power_err = sum(
                abs(o.measured_power_w - o.predicted_power_w)
                / o.predicted_power_w
                for o in obs
                if o.predicted_power_w > 0
            ) / n
        else:
            time_err = power_err = 0.0
        return DecisionQuality(
            app_name=self.profile.app_name,
            problem_size=self.profile.problem_size,
            band_w=band_w,
            testbed=testbed,
            n=n,
            mean_abs_time_error=time_err,
            mean_abs_power_error=power_err,
        )


class KnowledgeDB:
    """In-memory knowledge database with JSON persistence.

    The database is shared mutable state — the serve daemon's request
    handlers, the coalescer's decision thread, and periodic
    persistence all touch it concurrently — so every entry-map access
    goes through an internal :class:`threading.RLock`.  Reads on the
    warm path cost one uncontended acquisition; :meth:`save` snapshots
    the entries under the lock and serializes *outside* it, so a save
    can never observe a half-applied :meth:`put` or die with
    "dictionary changed size during iteration".
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: dict[tuple[str, str], KnowledgeEntry] = {}
        self._load_error: KnowledgeBaseError | None = None
        self._migrated_from: int | None = None

    @property
    def load_error(self) -> KnowledgeBaseError | None:
        """Why :meth:`load_or_fresh` fell back to an empty database."""
        return self._load_error

    @property
    def migrated_from(self) -> int | None:
        """Schema version :meth:`load` migrated from (None if current)."""
        return self._migrated_from

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple[str, str]) -> bool:
        with self._lock:
            return key in self._entries

    def has(self, app_name: str, problem_size: str) -> bool:
        """Whether the application+input has been profiled before."""
        with self._lock:
            return (app_name, problem_size) in self._entries

    def put(self, entry: KnowledgeEntry) -> None:
        """Insert or replace an entry."""
        with self._lock:
            self._entries[entry.key] = entry

    def get(self, app_name: str, problem_size: str) -> KnowledgeEntry:
        """Fetch an entry; raises on a miss."""
        try:
            with self._lock:
                return self._entries[(app_name, problem_size)]
        except KeyError:
            raise KnowledgeBaseError(
                f"no knowledge for {app_name!r} / {problem_size!r}"
            ) from None

    def keys(self) -> tuple[tuple[str, str], ...]:
        """All recorded (name, size) keys."""
        with self._lock:
            return tuple(sorted(self._entries))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the database to a JSON file, atomically.

        The payload is written to a temporary file in the target
        directory and moved into place with :func:`os.replace`, so a
        crash mid-save leaves either the old database or the new one —
        never a truncated file.  Safe to call while other threads keep
        profiling: the entry list is snapshotted under the lock and the
        (slow) JSON serialization runs outside it.
        """
        path = Path(path)
        with self._lock:
            entries = list(self._entries.values())
        payload = {
            "version": SCHEMA_VERSION,
            "entries": [_entry_to_dict(e) for e in entries],
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, indent=2)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | Path) -> "KnowledgeDB":
        """Read a database previously written by :meth:`save`.

        Schema-v1 files (the pre-learning format) migrate forward in
        memory: their entries come back with empty observation
        histories and identity models, and the next :meth:`save`
        rewrites the file at the current version.  Unknown (newer)
        versions still raise — a database written by an incompatible
        release must not be half-parsed — as do unreadable or truncated
        files and entries whose fields no longer deserialize, all via a
        clear :class:`~repro.errors.KnowledgeError` carrying the
        offending path.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise KnowledgeError(
                f"cannot load knowledge DB: {exc}", path=str(path)
            ) from exc
        version = payload.get("version") if isinstance(payload, dict) else None
        if version not in READABLE_VERSIONS:
            raise KnowledgeError(
                f"knowledge DB schema version {version!r} is not supported "
                f"(this release reads versions "
                f"{'/'.join(str(v) for v in READABLE_VERSIONS)}); re-profile "
                f"or convert the database",
                path=str(path),
            )
        db = cls()
        if version != SCHEMA_VERSION:
            db._migrated_from = version
        try:
            for raw in payload["entries"]:
                db.put(_entry_from_dict(raw))
        except (KeyError, TypeError, ValueError) as exc:
            raise KnowledgeError(
                f"corrupt knowledge DB entry: {exc!r}", path=str(path)
            ) from exc
        return db

    @classmethod
    def load_or_fresh(cls, path: str | Path) -> "KnowledgeDB":
        """Load a database, degrading to an empty one on corruption.

        The graceful-degradation entry point for long-running drains: a
        missing, truncated, or corrupt database costs re-profiling (the
        scheduler falls back to profiling each application from
        scratch) instead of crashing the queue.  The corrupt file is
        left untouched for post-mortem; the error is recorded on the
        returned database as :attr:`load_error`.
        """
        db: KnowledgeDB
        try:
            db = cls.load(path)
        except KnowledgeError as exc:
            db = cls()
            db._load_error = exc
        return db


def _entry_to_dict(e: KnowledgeEntry) -> dict:
    d = {
        "inflection_point": e.inflection_point,
        "profile": _profile_to_dict(e.profile),
        "observations": [o.to_dict() for o in e.observations],
        "calibration": (
            e.calibration.to_dict() if e.calibration is not None else None
        ),
        "model_version": e.model_version,
        "observed_total": e.observed_total,
        "refit_at": e.refit_at,
    }
    return d


def _entry_from_dict(raw: dict) -> KnowledgeEntry:
    calibration = raw.get("calibration")
    return KnowledgeEntry(
        profile=_profile_from_dict(raw["profile"]),
        inflection_point=raw["inflection_point"],
        observations=tuple(
            ObservationRecord.from_dict(o) for o in raw.get("observations", ())
        ),
        calibration=(
            TimeCalibration.from_dict(calibration)
            if calibration is not None
            else None
        ),
        model_version=int(raw.get("model_version", 1)),
        observed_total=int(raw.get("observed_total", 0)),
        refit_at=int(raw.get("refit_at", 0)),
    )


def _profile_to_dict(profile: AppProfile) -> dict:
    d = asdict(profile)
    for key in ("all_run", "half_run", "confirm_run"):
        run = d[key]
        if run is not None:
            run["affinity"] = run["affinity"].value
    return d


def _run_from_dict(raw: dict | None) -> SampleRun | None:
    if raw is None:
        return None
    raw = dict(raw)
    raw["affinity"] = AffinityKind(raw["affinity"])
    raw["events"] = EventCounters(**raw["events"])
    raw["phase_times"] = tuple(
        (name, t) for name, t in raw.get("phase_times", ())
    )
    return SampleRun(**raw)


def _profile_from_dict(raw: dict) -> AppProfile:
    return AppProfile(
        app_name=raw["app_name"],
        problem_size=raw["problem_size"],
        n_cores=raw["n_cores"],
        peak_node_bandwidth=raw["peak_node_bandwidth"],
        all_run=_run_from_dict(raw["all_run"]),
        half_run=_run_from_dict(raw["half_run"]),
        confirm_run=_run_from_dict(raw["confirm_run"]),
    )
