"""Run records: what one simulated execution produced.

:class:`NodeRunRecord` captures one node's resolved steady state;
:class:`RunResult` aggregates the whole job.  These are the objects
every experiment consumes, so they carry everything the paper reports:
wall time, per-domain power, energy, throttle flags, and the Table-I
hardware events for the profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.counters import EventCounters
from repro.hw.rapl import OperatingPoint

__all__ = ["NodeRunRecord", "RunResult"]


@dataclass(frozen=True)
class NodeRunRecord:
    """One participating node's steady state during the run."""

    node_id: int
    operating_point: OperatingPoint
    t_iter_s: float
    activity: float
    busy_fraction: float
    avg_pkg_w: float
    avg_dram_w: float
    events: EventCounters
    phase_times: tuple[tuple[str, float], ...] = ()
    #: Time-averaged accelerator power (0 on CPU-only nodes).
    avg_gpu_w: float = 0.0
    #: Share of the iteration the device spent busy (0 without offload).
    gpu_busy_fraction: float = 0.0

    @property
    def avg_capped_w(self) -> float:
        """Average RAPL-visible power (PKG + DRAM + GPU where present)."""
        return self.avg_pkg_w + self.avg_dram_w + self.avg_gpu_w


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated job execution."""

    app_name: str
    n_nodes: int
    n_threads_per_node: int
    affinity: str
    iterations: int
    t_step_s: float
    comm_s: float
    total_time_s: float
    energy_j: float
    avg_power_w: float
    peak_power_w: float
    nodes: tuple[NodeRunRecord, ...]

    @property
    def performance(self) -> float:
        """Throughput in iterations per second — the paper's `perf`."""
        return self.iterations / self.total_time_s if self.total_time_s > 0 else 0.0

    @property
    def imbalance(self) -> float:
        """Max-over-mean iteration-time spread across nodes.

        1.0 means perfectly balanced; manufacturing variability under a
        uniform cap pushes this above 1 (§III-B.2).
        """
        times = [n.t_iter_s for n in self.nodes]
        mean = sum(times) / len(times)
        return max(times) / mean if mean > 0 else 1.0

    @property
    def edp(self) -> float:
        """Energy-delay product (J·s), a common efficiency summary."""
        return self.energy_j * self.total_time_s

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.app_name}: {self.n_nodes} nodes x "
            f"{self.n_threads_per_node} threads [{self.affinity}] "
            f"t={self.total_time_s:.2f}s perf={self.performance:.4f} it/s "
            f"avgP={self.avg_power_w:.0f}W peakP={self.peak_power_w:.0f}W"
        )
