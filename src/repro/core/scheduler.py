"""Algorithm 1: the CLIP power-bounded scheduler, end to end.

A thin facade over the shared staged pipeline
(:mod:`repro.core.pipeline`), which composes every piece of the
framework:

1. look the job up in the knowledge database; on a miss, smart-profile
   it (and, for non-linear classes, predict NP and run the
   confirmation sample);
2. fit the performance and power models from the profile and derive
   the acceptable per-node power range (cached per knowledge entry as
   a :class:`~repro.core.pipeline.ModelBundle`);
3. choose the node count and per-node budgets (cluster level,
   variability-coordinated);
4. recommend the per-node configuration — threads, affinity, CPU/DRAM
   caps — for each node's budget.

:meth:`ClipScheduler.schedule` returns the decision;
:meth:`ClipScheduler.schedule_traced` additionally returns the
per-stage :class:`~repro.core.pipeline.DecisionTrace`;
:meth:`ClipScheduler.schedule_many` decides a whole batch of jobs on
the shared caches; :meth:`ClipScheduler.run` executes a decision on
the simulated testbed and returns the
:class:`~repro.sim.trace.RunResult`.
"""

from __future__ import annotations

import numpy as np

from repro.core.coordination import VARIABILITY_THRESHOLD, measure_node_factors
from repro.core.inflection import InflectionPredictor
from repro.core.knowledge import KnowledgeDB, KnowledgeEntry
from repro.core.pipeline import (
    DecisionPipeline,
    DecisionTrace,
    SchedulingDecision,
)
from repro.core.profile import SmartProfiler
from repro.sim.engine import ExecutionEngine
from repro.sim.trace import RunResult
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["SchedulingDecision", "ClipScheduler"]


class ClipScheduler:
    """The cluster-level intelligent power coordination system."""

    def __init__(
        self,
        engine: ExecutionEngine,
        inflection: InflectionPredictor,
        knowledge: KnowledgeDB | None = None,
        profiler: SmartProfiler | None = None,
        calibrate_variability: bool = True,
        variability_threshold: float = VARIABILITY_THRESHOLD,
    ):
        self._engine = engine
        factors = (
            measure_node_factors(engine)
            if calibrate_variability
            else np.ones(engine.cluster.n_nodes)
        )
        self._pipeline = DecisionPipeline(
            engine,
            inflection,
            knowledge=knowledge,
            profiler=profiler,
            node_factors=factors,
            variability_threshold=variability_threshold,
        )

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine decisions are made for."""
        return self._engine

    @property
    def pipeline(self) -> DecisionPipeline:
        """The staged decision pipeline (shared with other consumers)."""
        return self._pipeline

    @property
    def knowledge(self) -> KnowledgeDB:
        """The knowledge database (shared, persistable)."""
        return self._pipeline.knowledge

    @property
    def monitor(self):
        """The shared budget-invariant auditor (the pipeline's ledger)."""
        return self._pipeline.monitor

    @property
    def node_factors(self) -> np.ndarray:
        """Calibrated per-node power-efficiency factors."""
        return self._pipeline.node_factors

    # ------------------------------------------------------------------

    def ensure_knowledge(self, app: WorkloadCharacteristics) -> KnowledgeEntry:
        """Return the app's knowledge entry, profiling on a miss.

        Profiling is the 2-sample smart profile, plus — for non-linear
        classes — the NP prediction and the confirmation sample.
        """
        return self._pipeline.ensure_knowledge(app)

    def schedule(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> SchedulingDecision:
        """Run Algorithm 1 and return the decision (no execution)."""
        return self._pipeline.decide(
            app,
            cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )

    def schedule_traced(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> tuple[SchedulingDecision, DecisionTrace]:
        """Like :meth:`schedule`, plus the per-stage decision trace."""
        return self._pipeline.decide_traced(
            app,
            cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )

    def schedule_many(
        self,
        apps: list[WorkloadCharacteristics],
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> list[SchedulingDecision]:
        """Decide a batch of jobs under one budget on the shared caches."""
        return self._pipeline.decide_many(
            apps,
            cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )

    def run(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        iterations: int | None = None,
        **schedule_kwargs,
    ) -> tuple[SchedulingDecision, RunResult]:
        """Schedule and execute the job on the simulated testbed."""
        decision = self.schedule(app, cluster_budget_w, **schedule_kwargs)
        result = self._engine.run(
            app, decision.to_execution_config(iterations=iterations)
        )
        return decision, result
