"""Tests for the runtime power re-coordination extension (§VII)."""

import pytest

from repro.core.knowledge import KnowledgeDB
from repro.core.runtime import PowerBoundedRuntime
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.workloads.apps import get_app


@pytest.fixture()
def runtime(engine, trained_inflection):
    clip = ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )
    return PowerBoundedRuntime(clip)


class TestLaunch:
    def test_launch_respects_decomposition(self, runtime):
        job = runtime.launch(get_app("bt-mz.C"), 1400.0, n_nodes=4)
        assert job.n_nodes == 4
        assert job.node_ids == (0, 1, 2, 3)
        assert len(job.per_node_caps) == 4
        assert not job.done

    def test_pinned_threads_kept(self, runtime):
        job = runtime.launch(get_app("bt-mz.C"), 1400.0, n_nodes=4, n_threads=20)
        assert job.n_threads == 20

    def test_default_threads_by_class(self, runtime):
        linear = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        assert linear.n_threads == 24
        parabolic = runtime.launch(get_app("sp-mz.C"), 1400.0, n_nodes=4)
        assert parabolic.n_threads < 24

    def test_caps_respect_budget(self, runtime):
        job = runtime.launch(get_app("comd"), 900.0, n_nodes=4)
        total = sum(pkg + dram for pkg, dram in job.per_node_caps)
        assert total <= 900.0 * (1 + 1e-9)

    def test_rejects_bad_node_count(self, runtime):
        with pytest.raises(SchedulingError):
            runtime.launch(get_app("comd"), 1400.0, n_nodes=9)

    def test_infeasible_budget_at_pinned_threads(self, runtime):
        with pytest.raises(InfeasibleBudgetError):
            runtime.launch(get_app("comd"), 200.0, n_nodes=8, n_threads=24)

    def test_concurrency_fallback_when_allowed(self, runtime):
        job = runtime.launch(
            get_app("bt-mz.C"), 640.0, n_nodes=8, n_threads=24,
            allow_concurrency_change=True,
        )
        assert job.n_threads < 24


class TestSegments:
    def test_advance_consumes_iterations(self, runtime):
        app = get_app("comd")
        job = runtime.launch(app, 1400.0, n_nodes=4)
        rec = runtime.advance(job, 30)
        assert rec.iterations == 30
        assert job.remaining_iterations == app.iterations - 30
        assert job.elapsed_s == pytest.approx(rec.time_s)

    def test_last_segment_clipped(self, runtime):
        app = get_app("comd")  # 100 iterations
        job = runtime.launch(app, 1400.0, n_nodes=4)
        runtime.advance(job, 90)
        rec = runtime.advance(job, 90)
        assert rec.iterations == 10
        assert job.done

    def test_advance_after_done_raises(self, runtime):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        runtime.run_to_completion(job)
        with pytest.raises(SchedulingError):
            runtime.advance(job, 1)

    def test_run_to_completion_aggregates(self, runtime):
        app = get_app("comd")
        job = runtime.run_to_completion(
            runtime.launch(app, 1400.0, n_nodes=4), segment_iterations=30
        )
        assert job.done
        assert sum(s.iterations for s in job.segments) == app.iterations
        assert job.mean_performance > 0
        assert job.energy_j > 0


class TestBudgetChanges:
    def test_lower_budget_slows_segments(self, runtime):
        job = runtime.launch(get_app("comd"), 1600.0, n_nodes=8)
        fast = runtime.advance(job, 20)
        runtime.update_budget(job, 900.0)
        slow = runtime.advance(job, 20)
        assert slow.performance < fast.performance
        assert slow.budget_w == 900.0

    def test_raising_budget_restores(self, runtime):
        job = runtime.launch(get_app("comd"), 900.0, n_nodes=8)
        slow = runtime.advance(job, 20)
        runtime.update_budget(job, 1800.0)
        fast = runtime.advance(job, 20)
        assert fast.performance > slow.performance

    def test_budget_drop_below_floor_rejected_when_pinned(self, runtime):
        job = runtime.launch(get_app("comd"), 1600.0, n_nodes=8, n_threads=24)
        with pytest.raises(InfeasibleBudgetError):
            runtime.update_budget(job, 400.0)

    def test_budget_drop_throttles_when_allowed(self, runtime):
        job = runtime.launch(
            get_app("bt-mz.C"), 1600.0, n_nodes=8,
            allow_concurrency_change=True,
        )
        t_before = job.n_threads
        runtime.update_budget(job, 640.0)
        assert job.n_threads <= t_before

    def test_rejects_nonpositive_budget(self, runtime):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        with pytest.raises(SchedulingError):
            runtime.update_budget(job, 0.0)


class TestDegradation:
    def test_recalibration_compensates_degraded_node(
        self, engine, trained_inflection
    ):
        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        runtime = PowerBoundedRuntime(clip)
        app = get_app("comd")

        engine.cluster.degrade_node(2, 1.25)
        # stale factors: uniform caps, degraded node paces the job
        stale_job = runtime.launch(app, 1400.0, n_nodes=4)
        runtime.advance(stale_job, 20)

        runtime.recalibrate()
        fresh_job = runtime.launch(app, 1400.0, n_nodes=4)
        runtime.advance(fresh_job, 20)

        # after recalibration the degraded node receives more power
        caps_total = [p + d for p, d in fresh_job.per_node_caps]
        assert caps_total[2] == max(caps_total)
        assert (
            fresh_job.segments[0].performance
            >= stale_job.segments[0].performance
        )
