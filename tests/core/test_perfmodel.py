"""Tests for the Eq. 1-3 performance predictors."""

import pytest

from repro.core.classify import ScalabilityClass
from repro.core.perfmodel import PerformancePredictor
from repro.errors import ModelNotFittedError, ProfilingError
from repro.units import ghz
from repro.workloads.apps import get_app


@pytest.fixture()
def linear_predictor(profiler):
    profile = profiler.profile(get_app("comd"))
    return PerformancePredictor(profile), profile


@pytest.fixture()
def parabolic_predictor(profiler, trained_inflection):
    app = get_app("sp-mz.C")
    profile = profiler.profile(app)
    np_pred = trained_inflection.predict(profile)
    profile = profiler.confirm(app, profile, np_pred)
    return PerformancePredictor(profile, np_pred), profile


@pytest.fixture()
def log_predictor(profiler, trained_inflection):
    app = get_app("bt-mz.C")
    profile = profiler.profile(app)
    np_pred = trained_inflection.predict(profile)
    profile = profiler.confirm(app, profile, np_pred)
    return PerformancePredictor(profile, np_pred), profile


class TestLinearModel:
    def test_interpolates_samples_exactly(self, linear_predictor):
        pred, profile = linear_predictor
        assert pred.predict_time(12) == pytest.approx(profile.half_run.t_iter_s)
        assert pred.predict_time(24) == pytest.approx(profile.all_run.t_iter_s)

    def test_more_threads_faster(self, linear_predictor):
        pred, _ = linear_predictor
        assert pred.predict_time(24) < pred.predict_time(8)

    def test_frequency_scaling_direction(self, linear_predictor):
        pred, _ = linear_predictor
        fast = pred.predict_time(24, ghz(3.1))
        slow = pred.predict_time(24, ghz(1.2))
        assert fast < slow

    def test_compute_bound_scales_nearly_with_f(self, linear_predictor):
        pred, _ = linear_predictor
        ratio = pred.predict_time(24, ghz(1.15)) / pred.predict_time(24, ghz(2.3))
        # comd is compute-bound: halving frequency nearly doubles time
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_no_inflection_point(self, linear_predictor):
        pred, _ = linear_predictor
        assert pred.inflection_point is None

    def test_candidates_are_all_evens(self, linear_predictor):
        pred, _ = linear_predictor
        assert pred.candidate_concurrencies() == tuple(range(2, 25, 2))

    def test_rejects_out_of_range_threads(self, linear_predictor):
        pred, _ = linear_predictor
        with pytest.raises(ProfilingError):
            pred.predict_time(0)
        with pytest.raises(ProfilingError):
            pred.predict_time(25)

    def test_rejects_bad_frequency(self, linear_predictor):
        pred, _ = linear_predictor
        with pytest.raises(ProfilingError):
            pred.predict_time(12, -1.0)


class TestNonLinearModels:
    def test_needs_confirm_sample(self, profiler):
        profile = profiler.profile(get_app("sp-mz.C"))
        with pytest.raises(ModelNotFittedError):
            PerformancePredictor(profile, inflection_point=14)

    def test_parabolic_candidates_capped_at_np(self, parabolic_predictor):
        pred, _ = parabolic_predictor
        np_ = pred.inflection_point
        cands = pred.candidate_concurrencies()
        assert max(cands) <= np_

    def test_parabolic_segment2_predicts_slowdown(self, parabolic_predictor):
        pred, _ = parabolic_predictor
        np_ = pred.inflection_point
        assert pred.predict_time(24) > pred.predict_time(np_)

    def test_log_roofline_plateau(self, log_predictor):
        pred, profile = log_predictor
        # beyond the knee, no frequency can beat the memory plateau
        plateau = min(
            profile.all_run.t_iter_s, profile.confirm_run.t_iter_s
        )
        t = pred.predict_time(24, ghz(3.1))
        assert t >= plateau * (1 - 1e-9)

    def test_log_low_frequency_hurts_below_knee(self, log_predictor):
        pred, _ = log_predictor
        np_ = pred.inflection_point
        assert pred.predict_time(np_, ghz(1.2)) > pred.predict_time(np_, ghz(2.3))

    def test_perf_is_reciprocal(self, log_predictor):
        pred, _ = log_predictor
        assert pred.predict_perf(12) == pytest.approx(1 / pred.predict_time(12))

    def test_scalability_class_passthrough(
        self, parabolic_predictor, log_predictor, linear_predictor
    ):
        assert parabolic_predictor[0].scalability_class is ScalabilityClass.PARABOLIC
        assert log_predictor[0].scalability_class is ScalabilityClass.LOGARITHMIC
        assert linear_predictor[0].scalability_class is ScalabilityClass.LINEAR

    def test_flat_share_in_unit_interval(self, log_predictor, linear_predictor):
        for pred, _ in (log_predictor, linear_predictor):
            for n in (4, 12, 24):
                assert 0.0 <= pred.flat_share(n) <= 1.0


class TestPredictionAccuracy:
    """The model should track the engine's ground truth reasonably."""

    @pytest.mark.parametrize("name", ["comd", "bt-mz.C", "sp-mz.C", "amg"])
    def test_interior_prediction_error(
        self, engine, profiler, trained_inflection, name
    ):
        from repro.sim.engine import ExecutionConfig

        app = get_app(name)
        profile = profiler.profile(app)
        np_pred = None
        if profile.scalability_class.is_nonlinear:
            np_pred = trained_inflection.predict(profile)
            profile = profiler.confirm(app, profile, np_pred)
        pred = PerformancePredictor(profile, np_pred)
        f_nom = engine.cluster.spec.node.socket.f_nominal
        for n in (8, 16, 20):
            if np_pred is not None and n > np_pred and name == "sp-mz.C":
                continue  # paper disregards the n > NP segment for parabolic
            actual = engine.run(
                app,
                ExecutionConfig(
                    n_nodes=1, n_threads=n, iterations=3,
                    affinity=profile.affinity, frequency_hz=f_nom,
                ),
            ).nodes[0].t_iter_s
            predicted = pred.predict_time(n)
            assert predicted == pytest.approx(actual, rel=0.35), (name, n)
