"""Append-only write-ahead journal for the power-bounded runtime.

A power-bounded runtime that dies loses more than a job: it loses the
record of which caps it promised the facility were in force.  The
journal closes that hole the way databases do — every state transition
of :class:`~repro.core.runtime.PowerBoundedRuntime` (launch,
cap-commit, budget-change, park, recover, completed segment) is
appended as one atomic JSONL record *after* the transition commits, so
:meth:`~repro.core.runtime.PowerBoundedRuntime.restore` can replay the
log into a bit-identical runtime: every ``RunningJob`` field, every
``SegmentRecord``, and every ``BudgetInvariantMonitor`` audit.

Records are one JSON object per line with a monotonically increasing
``seq``.  Each line is flushed on write; a torn final line (the crash
arriving mid-``write``) is tolerated on replay and simply dropped —
redo-log semantics, the transition it described never fully happened
from the journal's point of view.  JSON round-trips Python floats
exactly (``repr`` shortest-round-trip), which is what makes bit-identity
an achievable contract rather than an approximation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import JournalError

__all__ = ["RECORD_KINDS", "RuntimeJournal"]

#: Record kinds a journal may contain, in the vocabulary of the runtime
#: transitions they mirror.
RECORD_KINDS = (
    "launch",
    "cap_commit",
    "budget_change",
    "park",
    "recover",
    "segment",
)


class RuntimeJournal:
    """Append-only JSONL redo log.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on first append, appended
        to if it already exists — restoring a runtime and handing it
        the same journal continues the log where the crash cut it.
    durable:
        When true, ``fsync`` after every record.  The default flushes
        to the OS only: the scripted ``crash`` fault models the
        *process* dying, not the kernel, and per-record fsync costs
        more than the entire warm-path segment it protects.
    """

    def __init__(self, path: str | Path, durable: bool = False):
        self._path = Path(path)
        self._durable = durable
        self._fh = None
        self._seq = 0

    @property
    def path(self) -> Path:
        """Location of the journal file."""
        return self._path

    @property
    def seq(self) -> int:
        """Sequence number of the last appended record."""
        return self._seq

    def _open(self):
        if self._fh is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if self._path.exists():
                # continue an existing log after the last intact record;
                # a torn tail (crash mid-append) is truncated away so
                # the next record starts on a clean line
                records = self.read(self._path)
                for rec in records:
                    self._seq = max(self._seq, int(rec.get("seq", 0)))
                intact = "".join(
                    json.dumps(rec, separators=(",", ":")) + "\n"
                    for rec in records
                )
                raw = self._path.read_text(encoding="utf-8")
                if raw != intact:
                    self._path.write_text(intact, encoding="utf-8")
            self._fh = open(self._path, "a", encoding="utf-8")
        return self._fh

    def append(self, kind: str, payload: dict) -> int:
        """Append one record; returns its sequence number.

        The record is a single ``write`` call terminated by a newline,
        then flushed — the atomicity unit a torn-line-tolerant reader
        needs.
        """
        if kind not in RECORD_KINDS:
            raise JournalError(
                f"unknown journal record kind {kind!r}", path=str(self._path)
            )
        fh = self._open()
        self._seq += 1
        record = {"seq": self._seq, "kind": kind}
        record.update(payload)
        try:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            fh.flush()
            if self._durable:
                os.fsync(fh.fileno())
        except OSError as exc:
            raise JournalError(
                f"journal append failed: {exc}", path=str(self._path)
            ) from exc
        return self._seq

    def close(self) -> None:
        """Close the underlying file (reopened lazily on next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @staticmethod
    def read(path: str | Path) -> list[dict]:
        """Parse a journal file into its intact records, in order.

        A torn *final* line — the signature of a crash mid-append — is
        dropped silently (the transition never committed).  A corrupt
        line anywhere else, an out-of-order ``seq``, or an unknown
        record kind raises :class:`~repro.errors.JournalError`: that is
        not a crash artefact but real corruption.
        """
        p = Path(path)
        try:
            lines = p.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise JournalError(
                f"cannot read journal: {exc}", path=str(p)
            ) from exc
        records: list[dict] = []
        last_seq = 0
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    break  # torn tail: the crash interrupted this append
                raise JournalError(
                    f"corrupt journal record at line {i + 1}: {exc}",
                    path=str(p),
                ) from exc
            if (
                not isinstance(rec, dict)
                or rec.get("kind") not in RECORD_KINDS
                or not isinstance(rec.get("seq"), int)
            ):
                raise JournalError(
                    f"malformed journal record at line {i + 1}", path=str(p)
                )
            if rec["seq"] <= last_seq:
                raise JournalError(
                    f"journal sequence regressed at line {i + 1} "
                    f"({rec['seq']} after {last_seq})",
                    path=str(p),
                )
            last_seq = rec["seq"]
            records.append(rec)
        return records
