"""Unit tests for hardware-event synthesis (Table I)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hw.counters import (
    CACHE_LINE_BYTES,
    EVENT_NAMES,
    EventCounters,
    synthesize_counters,
)


def _counters(**kw):
    defaults = dict(
        instructions=1e11,
        duration_s=2.0,
        n_threads=24,
        frequency_hz=2.3e9,
        dram_bytes=5e10,
        remote_fraction=0.2,
        icache_mpki=1.5,
    )
    defaults.update(kw)
    return synthesize_counters(**defaults)


class TestEventNames:
    def test_table1_has_eight_events(self):
        assert len(EVENT_NAMES) == 8
        assert EVENT_NAMES["event7"].startswith("Performance ratio")


class TestSynthesis:
    def test_traffic_split_sums(self):
        ev = _counters()
        assert ev.event1 + ev.event2 == pytest.approx(5e10)

    def test_reads_exceed_writes(self):
        ev = _counters()
        assert ev.event1 > ev.event2

    def test_miss_counts_match_traffic(self):
        ev = _counters()
        assert ev.event3 + ev.event4 == pytest.approx(5e10 / CACHE_LINE_BYTES)

    def test_remote_fraction_recovered(self):
        ev = _counters(remote_fraction=0.3)
        assert ev.remote_miss_fraction == pytest.approx(0.3)

    def test_active_cycles(self):
        ev = _counters()
        assert ev.event5 == pytest.approx(24 * 2.3e9 * 2.0)

    def test_icache_scaling(self):
        ev = _counters(icache_mpki=2.0)
        assert ev.event0 == pytest.approx(2.0 * 1e11 / 1e3)

    def test_ipc(self):
        ev = _counters()
        assert ev.ipc == pytest.approx(1e11 / (24 * 2.3e9 * 2.0))

    def test_memory_bandwidth(self):
        ev = _counters()
        assert ev.memory_bandwidth == pytest.approx(5e10 / 2.0)

    def test_noise_is_reproducible(self):
        a = _counters(rng=np.random.default_rng(1), noise=0.05)
        b = _counters(rng=np.random.default_rng(1), noise=0.05)
        assert a.event1 == b.event1

    def test_noise_perturbs(self):
        clean = _counters()
        noisy = _counters(rng=np.random.default_rng(2), noise=0.05)
        assert clean.event1 != noisy.event1

    def test_rejects_bad_remote_fraction(self):
        with pytest.raises(ValueError):
            _counters(remote_fraction=1.5)


class TestEventCounters:
    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            EventCounters(
                event0=-1, event1=0, event2=0, event3=0,
                event4=0, event5=1, event6=1,
            )

    def test_rates_order_and_shape(self):
        ev = _counters()
        rates = ev.rates()
        assert rates.shape == (8,)
        assert rates[6] == pytest.approx(ev.event6 / ev.duration_s)
        # event7 passes through unscaled
        assert rates[7] == pytest.approx(ev.event7)

    def test_with_perf_ratio(self):
        ev = _counters()
        ev2 = ev.with_perf_ratio(1.8)
        assert ev2.event7 == pytest.approx(1.8)
        assert ev2.event1 == ev.event1
        assert ev.event7 == 0.0  # original unchanged

    def test_zero_cycles_ipc(self):
        ev = EventCounters(
            event0=0, event1=0, event2=0, event3=0, event4=0,
            event5=0, event6=0,
        )
        assert ev.ipc == 0.0
        assert ev.remote_miss_fraction == 0.0

    @given(
        st.floats(min_value=1e6, max_value=1e12),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_rates_scale_free_in_duration(self, instr, dur):
        # the same workload profiled twice as long yields the same rates
        a = synthesize_counters(
            instructions=instr, duration_s=dur, n_threads=4,
            frequency_hz=2e9, dram_bytes=instr * 0.5,
            remote_fraction=0.1, icache_mpki=1.0,
        )
        b = synthesize_counters(
            instructions=2 * instr, duration_s=2 * dur, n_threads=4,
            frequency_hz=2e9, dram_bytes=2 * instr * 0.5,
            remote_fraction=0.1, icache_mpki=1.0,
        )
        np.testing.assert_allclose(a.rates(), b.rates(), rtol=1e-9)
