"""Thread placement policies.

CLIP's node level "selectively activates the CPU cores" and chooses
"core and memory affinity based on application memory access intensity"
(§I).  The two families it selects between are:

* **compact** — fill one socket before spilling to the next.  Threads
  share caches and the synchronization path stays on-package, but only
  one memory controller serves traffic until the socket overflows.
* **scatter** — balance threads across sockets.  Both controllers are
  engaged (double bandwidth for memory-bound codes) at the price of
  cross-socket traffic on the shared working set.

:class:`Placement` carries the derived facts the performance model
consumes: per-socket thread counts and the remote-access fraction.

Placements are memoized: the engine rebuilds the identical placement
for every candidate configuration and every phase override, and the
result depends only on the topology *shape*, the thread count, the
policy, and the shared fraction.  :class:`Placement` is frozen, so the
cached instances are safe to share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AffinityError
from repro.hw.numa import AffinityKind, NumaTopology

__all__ = [
    "Placement",
    "make_placement",
    "placement_for",
    "placement_cache_info",
    "placement_cache_clear",
]

#: Memoized placements keyed on (topology shape, n_threads, kind,
#: shared_fraction).  Bounded defensively: property tests sweep random
#: shared fractions and would otherwise grow the table without limit.
_PLACEMENT_CACHE: dict[tuple, "Placement"] = {}
_PLACEMENT_CACHE_MAX = 8192
_cache_hits = 0
_cache_misses = 0


def placement_cache_info() -> dict[str, int]:
    """Hit/miss counters and current size of the placement cache."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_PLACEMENT_CACHE),
    }


def placement_cache_clear() -> None:
    """Empty the placement cache and reset its counters."""
    global _cache_hits, _cache_misses
    _PLACEMENT_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0


@dataclass(frozen=True)
class Placement:
    """A concrete thread-to-core assignment on one node."""

    kind: AffinityKind
    cores: tuple[int, ...]
    threads_per_socket: tuple[int, ...]
    remote_fraction: float

    @property
    def n_threads(self) -> int:
        """Number of placed threads."""
        return len(self.cores)

    @property
    def sockets_used(self) -> int:
        """Sockets hosting at least one thread."""
        return sum(1 for c in self.threads_per_socket if c > 0)


def make_placement(
    topo: NumaTopology,
    n_threads: int,
    kind: AffinityKind,
    shared_fraction: float,
) -> Placement:
    """Assign *n_threads* to cores under the given policy.

    ``shared_fraction`` is the workload's shared-working-set share,
    needed to derive the placement's remote-access fraction.
    """
    if not 1 <= n_threads <= topo.n_cores:
        raise AffinityError(
            f"n_threads {n_threads} outside [1, {topo.n_cores}]"
        )
    global _cache_hits, _cache_misses
    key = (
        topo.n_sockets,
        topo.cores_per_socket,
        int(n_threads),
        kind,
        float(shared_fraction),
    )
    cached = _PLACEMENT_CACHE.get(key)
    if cached is not None:
        _cache_hits += 1
        return cached
    _cache_misses += 1
    if kind is AffinityKind.COMPACT:
        cores = tuple(range(n_threads))
    elif kind is AffinityKind.SCATTER:
        # round-robin over sockets: socket of thread t is t % n_sockets
        per_socket_next = [0] * topo.n_sockets
        out: list[int] = []
        for t in range(n_threads):
            s = t % topo.n_sockets
            # if this socket is full, find the next with room
            for probe in range(topo.n_sockets):
                cand = (s + probe) % topo.n_sockets
                if per_socket_next[cand] < topo.cores_per_socket:
                    s = cand
                    break
            out.append(s * topo.cores_per_socket + per_socket_next[s])
            per_socket_next[s] += 1
        cores = tuple(out)
    else:  # pragma: no cover - enum is exhaustive
        raise AffinityError(f"unknown affinity kind {kind!r}")
    tps = topo.threads_per_socket(cores)
    remote = topo.remote_access_fraction(cores, shared_fraction)
    placement = Placement(
        kind=kind,
        cores=cores,
        threads_per_socket=tuple(int(c) for c in tps),
        remote_fraction=remote,
    )
    if len(_PLACEMENT_CACHE) >= _PLACEMENT_CACHE_MAX:
        _PLACEMENT_CACHE.clear()
    _PLACEMENT_CACHE[key] = placement
    return placement


def placement_for(
    topo: NumaTopology,
    n_threads: int,
    shared_fraction: float,
    memory_intensive: bool,
) -> Placement:
    """The affinity rule of thumb CLIP's profiler applies (§IV-B.1).

    Memory-intensive codes scatter (both controllers matter more than
    locality); compute-bound codes pack compactly while they fit on one
    socket, keeping synchronization on-package.
    """
    kind = (
        AffinityKind.SCATTER
        if memory_intensive or n_threads > topo.cores_per_socket
        else AffinityKind.COMPACT
    )
    return make_placement(topo, n_threads, kind, shared_fraction)


def best_placement(
    topo: NumaTopology,
    n_threads: int,
    shared_fraction: float,
    evaluate,
) -> Placement:
    """Pick the placement minimizing ``evaluate(placement)``.

    Used by the oracle baseline; CLIP itself uses the cheap rule in
    :func:`placement_for`.
    """
    candidates = [
        make_placement(topo, n_threads, kind, shared_fraction)
        for kind in AffinityKind
    ]
    scores = [evaluate(p) for p in candidates]
    return candidates[int(np.argmin(scores))]
