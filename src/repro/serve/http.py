"""The asyncio HTTP/1.1 front end of the scheduling service.

A deliberately small, dependency-free server: requests are parsed off
:class:`asyncio.StreamReader` (request line, headers, Content-Length
body), responses are JSON documents, and connections are keep-alive
until the client closes or asks otherwise.  Endpoints:

=========  ===========================  =====================================
method     path                         action
=========  ===========================  =====================================
``GET``    ``/v1/healthz``              liveness probe
``GET``    ``/v1/stats``                service counters snapshot
``POST``   ``/v1/jobs``                 submit a job or a burst of jobs
``GET``    ``/v1/jobs/<id>``            query one job's decision/status
``GET``    ``/v1/budget``               current service budget
``POST``   ``/v1/budget``               update the service budget
``GET``    ``/v1/telemetry/stream``     server-sent-events telemetry feed
=========  ===========================  =====================================

:class:`ServeDaemon` ties the server to a
:class:`~repro.serve.coalescer.BurstCoalescer` and exposes two run
styles: :meth:`ServeDaemon.run` blocks the calling thread (the CLI),
and :meth:`ServeDaemon.start_in_thread` / :meth:`ServeDaemon.shutdown`
host the whole daemon on a background thread with its own event loop
(the load generator, the contract tests, and embedding applications).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time

from repro.errors import AdmissionError, ServeError
from repro.serve.coalescer import BurstCoalescer
from repro.serve.service import DEFAULT_TENANT, SchedulerService

__all__ = ["ServeDaemon"]

_MAX_HEADERS = 100
_MAX_BODY = 16 * 1024 * 1024
#: How long a ``wait=true`` submission may block on its decision.
_DECISION_TIMEOUT_S = 60.0

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """Malformed HTTP or JSON; turned into a 400 response."""


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method, path, query, headers, body):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        """The body parsed as a JSON object."""
        if not self.body:
            raise _BadRequest("empty body (expected JSON)")
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        return payload


def _parse_query(raw: str) -> dict[str, str]:
    out: dict[str, str] = {}
    for part in raw.split("&"):
        if part:
            key, _, value = part.partition("=")
            out[key] = value
    return out


class ServeDaemon:
    """The ``clip-sched serve`` daemon: HTTP front end + coalescer."""

    def __init__(
        self,
        service: SchedulerService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        window_s: float = 0.0,
        max_burst: int = 512,
    ):
        self._service = service
        self._host = host
        self._requested_port = port
        self.port: int | None = None  # bound port, set on start
        self._coalescer = BurstCoalescer(
            service, window_s=window_s, max_burst=max_burst
        )
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stopping = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    @property
    def service(self) -> SchedulerService:
        """The wrapped service (shared scheduler, records, stats)."""
        return self._service

    # -- lifecycle -----------------------------------------------------

    async def _serve(self, ready: threading.Event | None = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._stopping = False
        if threading.current_thread() is threading.main_thread():
            # let `kill -TERM` stop the CLI daemon as gracefully as
            # Ctrl-C does (thread-hosted daemons use shutdown() instead)
            try:
                self._loop.add_signal_handler(
                    signal.SIGTERM, self._stop_event.set
                )
            except (NotImplementedError, RuntimeError):
                pass  # platforms without loop signal handlers
        try:
            self._coalescer.start()
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._requested_port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException as exc:
            self._startup_error = exc
            if ready is not None:
                ready.set()
            raise
        if ready is not None:
            ready.set()
        try:
            await self._stop_event.wait()
        finally:
            self._stopping = True
            self._server.close()
            await self._server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            await self._coalescer.stop()

    def run(self) -> None:
        """Serve on the calling thread until interrupted (the CLI)."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start_in_thread(self, timeout: float = 60.0) -> "ServeDaemon":
        """Start the daemon on a background thread; return once the
        socket is bound (``self.port`` holds the ephemeral port)."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve(ready)),
            name="clip-serve",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise ServeError("daemon did not start in time")
        if self._startup_error is not None:
            raise ServeError(f"daemon failed to start: {self._startup_error}")
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop a thread-hosted daemon and join its thread."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServeError("daemon did not shut down in time")
            self._thread = None

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while not self._stopping:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (
            asyncio.CancelledError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            pass
        except _BadRequest as exc:
            # unparseable framing: answer if the pipe still works, drop
            try:
                await self._respond(writer, 400, {"error": str(exc)}, False)
            except ConnectionError:
                pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError as exc:
            raise _BadRequest(f"bad request line {line!r}") from exc
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError as exc:
                raise _BadRequest("bad Content-Length") from exc
            if n > _MAX_BODY:
                raise _BadRequest("body too large")
            body = await reader.readexactly(n)
        path, _, query = target.partition("?")
        return _Request(
            method.upper(), path, _parse_query(query), headers, body
        )

    async def _respond(
        self, writer, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                "\r\n"
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request: _Request, writer) -> bool:
        keep_alive = (
            request.headers.get("connection", "keep-alive").lower() != "close"
        )
        method, path = request.method, request.path
        try:
            if path == "/v1/healthz":
                if method != "GET":
                    return await self._method_not_allowed(writer, keep_alive)
                await self._respond(writer, 200, {"ok": True}, keep_alive)
            elif path == "/v1/stats":
                if method != "GET":
                    return await self._method_not_allowed(writer, keep_alive)
                await self._respond(
                    writer, 200, self._service.stats(), keep_alive
                )
            elif path == "/v1/budget":
                if method == "GET":
                    await self._respond(
                        writer,
                        200,
                        {"budget_w": self._service.budget_w},
                        keep_alive,
                    )
                elif method == "POST":
                    payload = request.json()
                    if "budget_w" not in payload:
                        raise _BadRequest("missing budget_w")
                    new = self._service.update_budget(payload["budget_w"])
                    await self._respond(
                        writer, 200, {"budget_w": new}, keep_alive
                    )
                else:
                    return await self._method_not_allowed(writer, keep_alive)
            elif path == "/v1/jobs":
                if method != "POST":
                    return await self._method_not_allowed(writer, keep_alive)
                await self._submit(request, writer, keep_alive)
            elif path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/outcome"):
                    if method != "POST":
                        return await self._method_not_allowed(
                            writer, keep_alive
                        )
                    await self._record_outcome(
                        rest[: -len("/outcome")], request, writer, keep_alive
                    )
                else:
                    if method != "GET":
                        return await self._method_not_allowed(
                            writer, keep_alive
                        )
                    await self._query_job(rest, writer, keep_alive)
            elif path == "/v1/telemetry/stream":
                if method != "GET":
                    return await self._method_not_allowed(writer, keep_alive)
                await self._stream_telemetry(request, writer)
                return False  # the stream owns (and ends) the connection
            else:
                await self._respond(
                    writer, 404, {"error": f"no such path {path!r}"}, keep_alive
                )
        except _BadRequest as exc:
            await self._respond(writer, 400, {"error": str(exc)}, keep_alive)
        except AdmissionError as exc:
            payload = {"error": str(exc), "rejected": True}
            if exc.tenant is not None:
                payload["tenant"] = exc.tenant
            await self._respond(writer, 429, payload, keep_alive)
        except ServeError as exc:
            await self._respond(
                writer, exc.status or 400, {"error": str(exc)}, keep_alive
            )
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            await self._respond(
                writer,
                500,
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                False,
            )
            return False
        return keep_alive

    async def _method_not_allowed(self, writer, keep_alive: bool) -> bool:
        await self._respond(
            writer, 405, {"error": "method not allowed"}, keep_alive
        )
        return keep_alive

    # -- endpoints -----------------------------------------------------

    async def _submit(self, request: _Request, writer, keep_alive) -> None:
        payload = request.json()
        if "jobs" in payload:
            jobs = payload["jobs"]
            if not isinstance(jobs, list):
                raise _BadRequest("jobs must be a list")
        elif "app" in payload:
            jobs = [payload]
        else:
            raise _BadRequest('body needs "jobs": [...] or "app": name')
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant:
            raise _BadRequest("tenant must be a non-empty string")
        wait = bool(payload.get("wait", True))
        submissions = self._service.submit(jobs, tenant=tenant)
        for sub in submissions:
            self._coalescer.submit_nowait(sub)
        if wait:
            try:
                await asyncio.wait_for(
                    asyncio.gather(
                        *(
                            asyncio.wrap_future(s.future)
                            for s in submissions
                        ),
                        return_exceptions=True,
                    ),
                    timeout=_DECISION_TIMEOUT_S,
                )
            except asyncio.TimeoutError:
                await self._respond(
                    writer,
                    504,
                    {
                        "error": "decision timed out",
                        "jobs": [s.record.job_id for s in submissions],
                    },
                    keep_alive,
                )
                return
        await self._respond(
            writer,
            200,
            {"jobs": [s.record.to_dict() for s in submissions]},
            keep_alive,
        )

    async def _query_job(self, job_id: str, writer, keep_alive) -> None:
        record = self._service.job(job_id)
        if record is None:
            await self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"}, keep_alive
            )
            return
        await self._respond(writer, 200, record.to_dict(), keep_alive)

    async def _record_outcome(
        self, job_id: str, request: _Request, writer, keep_alive
    ) -> None:
        """POST /v1/jobs/<id>/outcome — feed a measured result back.

        The service validates the payload and the job's state (404 /
        409 surface through the ServeError status), pushes the
        observation through the pipeline choke point, and the updated
        record is echoed back.
        """
        payload = request.json()
        record = self._service.record_outcome(job_id, payload)
        await self._respond(writer, 200, record.to_dict(), keep_alive)

    async def _stream_telemetry(self, request: _Request, writer) -> None:
        """Server-sent events: one stats snapshot per interval.

        ``?interval=SECONDS`` sets the cadence (default 1.0);
        ``?events=N`` ends the stream after N events (0 = until the
        client disconnects or the daemon stops) — tests and scripts use
        it to read a bounded feed.
        """
        try:
            interval = float(request.query.get("interval", "1.0"))
            limit = int(request.query.get("events", "0"))
        except ValueError as exc:
            raise _BadRequest(f"bad telemetry parameter: {exc}") from exc
        interval = max(0.01, interval)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        sent = 0
        last = self._service.stats()
        last_t = time.monotonic()
        while not self._stopping and (limit == 0 or sent < limit):
            await asyncio.sleep(interval)
            stats = self._service.stats()
            now = time.monotonic()
            dt = max(now - last_t, 1e-9)
            event = dict(stats)
            # instantaneous rate over the tick, not the lifetime mean
            event["decisions_per_s"] = (
                (stats["decided"] - last["decided"]) / dt
            )
            event["rejected_per_s"] = (
                (stats["rejected"] - last["rejected"]) / dt
            )
            last, last_t = stats, now
            try:
                writer.write(
                    f"data: {json.dumps(event)}\n\n".encode()
                )
                await writer.drain()
            except ConnectionError:
                break
            sent += 1
