"""Unit and property tests for the RAPL layer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PowerDomainError
from repro.hw.power import PowerModel
from repro.hw.rapl import (
    ENERGY_UNIT_J,
    ENERGY_WRAP,
    MIN_DUTY_CYCLE,
    Domain,
    RaplDomain,
    RaplInterface,
)
from repro.hw.specs import haswell_node
from repro.units import ghz

NODE = haswell_node()


@pytest.fixture()
def rapl():
    return RaplInterface(PowerModel(NODE))


class TestRaplDomain:
    def test_cap_defaults_to_none(self):
        reg = RaplDomain(Domain.PKG, 240.0)
        assert reg.cap_w is None
        assert reg.effective_cap_w == pytest.approx(240.0)

    def test_cap_clipped_to_domain_max(self):
        reg = RaplDomain(Domain.PKG, 240.0)
        reg.set_cap(500.0)
        assert reg.effective_cap_w == pytest.approx(240.0)

    def test_energy_accumulates(self):
        reg = RaplDomain(Domain.PKG, 240.0)
        reg.accumulate(100.0, 2.0)
        assert reg.energy_j == pytest.approx(200.0)

    def test_register_wraps(self):
        reg = RaplDomain(Domain.PKG, 240.0)
        # enough energy to wrap the 32-bit register at least once
        joules = ENERGY_WRAP * ENERGY_UNIT_J * 1.25
        reg.accumulate(joules, 1.0)
        assert reg.read_energy_register() < ENERGY_WRAP
        assert reg.energy_j == pytest.approx(joules)

    def test_register_monotone_between_wraps(self):
        reg = RaplDomain(Domain.DRAM, 56.0)
        prev = reg.read_energy_register()
        for _ in range(5):
            reg.accumulate(20.0, 0.5)
            cur = reg.read_energy_register()
            assert cur > prev
            prev = cur

    def test_clear_cap(self):
        reg = RaplDomain(Domain.PKG, 240.0)
        reg.set_cap(100.0)
        reg.set_cap(None)
        assert reg.cap_w is None


class TestResolve:
    def test_uncapped_runs_fast(self, rapl):
        op = rapl.resolve([12, 12], 0.5, [3e10, 3e10])
        assert op.frequency_hz >= ghz(2.3)
        assert not op.mem_throttled
        assert op.duty_cycle == 1.0

    def test_factory_pl1_limits_allcore_turbo(self, rapl):
        # with full activity, 24 cores cannot all hold max turbo under
        # the default 240 W PL1
        op = rapl.resolve([12, 12], 1.0, [1e10, 1e10])
        assert op.frequency_hz < NODE.socket.f_max
        assert op.pkg_power_w <= 2 * NODE.socket.tdp_w * (1 + 1e-9)

    def test_pkg_cap_reduces_frequency(self, rapl):
        free = rapl.resolve([12, 12], 0.9, [3e10, 3e10])
        rapl.set_cap(Domain.PKG, 120.0)
        capped = rapl.resolve([12, 12], 0.9, [3e10, 3e10])
        assert capped.frequency_hz < free.frequency_hz
        assert capped.cpu_throttled
        assert capped.pkg_power_w <= 120.0 * (1 + 1e-9)

    def test_dram_cap_limits_bandwidth(self, rapl):
        rapl.set_cap(Domain.DRAM, 12.0)
        op = rapl.resolve([12, 12], 0.5, [5e10, 5e10])
        assert op.mem_throttled
        assert op.dram_power_w <= 12.0 * (1 + 1e-9)
        assert all(b < 5e10 for b in op.bandwidth_per_socket)

    def test_dram_cap_not_binding(self, rapl):
        rapl.set_cap(Domain.DRAM, 36.0)
        op = rapl.resolve([12, 12], 0.5, [1e9, 1e9])
        assert not op.mem_throttled

    def test_duty_cycling_below_pstate_floor(self, rapl):
        # cap below what 24 active cores draw at f_min but above static
        rapl.set_cap(Domain.PKG, 70.0)
        op = rapl.resolve([12, 12], 1.0, [1e9, 1e9])
        assert op.frequency_hz == pytest.approx(NODE.socket.f_min)
        assert MIN_DUTY_CYCLE <= op.duty_cycle < 1.0
        assert op.effective_frequency_hz < NODE.socket.f_min
        assert op.pkg_power_w <= 70.0 * (1 + 1e-6)

    def test_cap_below_static_is_violated(self, rapl):
        rapl.set_cap(Domain.PKG, 30.0)
        op = rapl.resolve([12, 12], 1.0, [1e9, 1e9])
        assert op.cpu_cap_violated
        assert op.cap_violated
        assert op.duty_cycle == pytest.approx(MIN_DUTY_CYCLE)
        assert op.pkg_power_w > 30.0

    def test_strict_mode_raises_on_floor(self, rapl):
        rapl.set_cap(Domain.PKG, 30.0)
        with pytest.raises(PowerDomainError):
            rapl.resolve([12, 12], 1.0, [1e9, 1e9], strict=True)

    def test_dram_cap_below_base_clamps(self, rapl):
        rapl.set_cap(Domain.DRAM, 2.0)
        op = rapl.resolve([12, 12], 0.5, [5e10, 5e10])
        assert op.mem_cap_violated
        assert op.dram_power_w > 2.0

    def test_strict_dram_floor_raises(self, rapl):
        rapl.set_cap(Domain.DRAM, 2.0)
        with pytest.raises(PowerDomainError):
            rapl.resolve([12, 12], 0.5, [5e10, 5e10], strict=True)

    def test_frequency_pin_respected(self, rapl):
        op = rapl.resolve([12, 12], 0.3, [1e10, 1e10], demanded_frequency_hz=ghz(1.5))
        assert op.frequency_hz == pytest.approx(ghz(1.5))

    def test_throttle_events_counted(self, rapl):
        rapl.set_cap(Domain.PKG, 100.0)
        before = rapl.domain(Domain.PKG).throttle_events
        rapl.resolve([12, 12], 1.0, [1e9, 1e9])
        assert rapl.domain(Domain.PKG).throttle_events == before + 1

    def test_rejects_wrong_socket_count(self, rapl):
        with pytest.raises(PowerDomainError):
            rapl.resolve([12], 0.5, [1e10, 1e10])
        with pytest.raises(PowerDomainError):
            rapl.resolve([12, 12], 0.5, [1e10])

    def test_clear_caps(self, rapl):
        rapl.set_cap(Domain.PKG, 100.0)
        rapl.set_cap(Domain.DRAM, 20.0)
        rapl.clear_caps()
        assert all(v is None for v in rapl.caps().values())

    @settings(max_examples=60)
    @given(
        cap=st.floats(min_value=40.0, max_value=260.0),
        act=st.floats(min_value=0.05, max_value=1.0),
        n1=st.integers(min_value=1, max_value=12),
        n2=st.integers(min_value=0, max_value=12),
    )
    def test_cap_respected_unless_flagged(self, cap, act, n1, n2):
        rapl = RaplInterface(PowerModel(NODE))
        rapl.set_cap(Domain.PKG, cap)
        op = rapl.resolve([n1, n2], act, [1e10, 1e10])
        if not op.cpu_cap_violated:
            assert op.pkg_power_w <= cap * (1 + 1e-6)

    @settings(max_examples=40)
    @given(
        cap=st.floats(min_value=9.0, max_value=40.0),
        bw=st.floats(min_value=0.0, max_value=6e10),
    )
    def test_dram_cap_respected_unless_flagged(self, cap, bw):
        rapl = RaplInterface(PowerModel(NODE))
        rapl.set_cap(Domain.DRAM, cap)
        op = rapl.resolve([12, 12], 0.5, [bw, bw])
        if not op.mem_cap_violated:
            assert op.dram_power_w <= cap * (1 + 1e-6)


class TestEnergyAccounting:
    def test_accumulate_integrates_operating_point(self, rapl):
        op = rapl.resolve([12, 12], 0.8, [3e10, 3e10])
        rapl.accumulate(op, 10.0)
        assert rapl.energy_j(Domain.PKG) == pytest.approx(op.pkg_power_w * 10.0)
        assert rapl.energy_j(Domain.DRAM) == pytest.approx(op.dram_power_w * 10.0)
