"""Perf guard for the staged decision pipeline's warm path.

Runs the cold-vs-warm scheduling benchmark, records the measurements
to ``BENCH_pipeline.json`` at the repository root (alongside
``BENCH_batch.json``), and enforces the refactor's acceptance bar:
a warm-cache ``schedule()`` must be measurably faster than a cold one.
"""

from bench_pipeline import run_pipeline_bench

#: Acceptance floor: a warm decision (knowledge hit + cached bundle)
#: skips profiling and model fitting entirely, so it must be clearly
#: cheaper than a cold one (~3x measured; floor kept loose for CI).
MIN_WARM_SPEEDUP = 1.5


def test_pipeline_warm_speedup(report):
    payload = run_pipeline_bench()
    cold = payload["cold"]
    warm = payload["warm"]

    lines = [
        "Staged pipeline — cold vs warm schedule() "
        f"({len(payload['apps'])} apps, {len(payload['budgets_w'])} budgets)",
        f"  cold : {cold['per_decision_s'] * 1e3:8.2f} ms/decision "
        f"({cold['decisions']} decisions)",
        f"  warm : {warm['per_decision_s'] * 1e3:8.2f} ms/decision "
        f"({warm['decisions']} decisions, "
        f"{payload['warm_speedup']:.1f}x)",
        f"  batch: {payload['schedule_many']['per_job_s'] * 1e3:8.2f} ms/job "
        f"({payload['schedule_many']['jobs']} jobs via schedule_many)",
        f"  bundles fitted: {payload['bundle_cache']['misses']} "
        f"(hits {payload['bundle_cache']['hits']})",
    ]
    report("perf_pipeline", "\n".join(lines))

    # Correctness first: the warm/batch paths must emit the same plans.
    assert payload["decisions_identical"]
    # Warm decisions fit nothing new: one bundle per distinct app.
    assert payload["bundle_cache"]["misses"] == len(payload["apps"])
    assert payload["warm_speedup"] >= MIN_WARM_SPEEDUP, payload
