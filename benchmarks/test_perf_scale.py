"""Perf guard for fleet-scale coordination.

Runs the scaling benchmark (8 → 1024 nodes), records the curve to
``BENCH_scale.json`` at the repository root, and enforces the
fleet-scale acceptance bar: per-node decision cost at 1024 nodes stays
within 3x the 8-node per-node cost, and every audited cap set at every
scale honors the budget contract.
"""

from bench_scale import run_scale_bench

#: Acceptance ceiling: per-node decision cost at the largest fleet
#: relative to the smallest.  Near-flat means well under this bound;
#: 3x leaves room for CI machine noise without hiding an O(N) blowup
#: (a flat-cluster scan would regress by ~128x).
MAX_PER_NODE_RATIO = 3.0


def test_scale_per_node_cost(report):
    payload = run_scale_bench()
    scales = payload["scales"]

    lines = [
        "Fleet scaling — warm schedule() and runtime re-coordination",
        "  nodes  racks  decision(ms)  per-node(us)  recoord(ms)",
    ]
    for s in scales:
        lines.append(
            f"  {s['n_nodes']:5d}  {s['racks']:5d}  "
            f"{s['warm_per_decision_s'] * 1e3:11.2f}  "
            f"{s['per_node_decision_s'] * 1e6:11.2f}  "
            f"{s['per_recoordination_s'] * 1e3:10.2f}"
        )
    lines.append(
        f"  per-node ratio {scales[-1]['n_nodes']} vs {scales[0]['n_nodes']} "
        f"nodes: {payload['per_node_ratio_largest_vs_smallest']:.2f}x "
        f"(bound {MAX_PER_NODE_RATIO}x)"
    )
    lines.append(f"  violations across all scales: {payload['total_violations']}")
    report("perf_scale", "\n".join(lines))

    # Correctness first: the hierarchy never hands out phantom watts.
    assert payload["total_violations"] == 0
    for s in scales:
        assert s["audits"]["n_violations"] == 0, s
    # The scaling claim: near-flat per-node decision cost.
    assert payload["per_node_ratio_largest_vs_smallest"] <= MAX_PER_NODE_RATIO, (
        payload
    )
