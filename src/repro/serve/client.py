"""Blocking stdlib client for the ``clip-sched serve`` daemon.

A thin convenience over :mod:`http.client` with a persistent
keep-alive connection — the shape the load generator wants (one
connection per worker thread, many submissions each).  High-level
methods raise :class:`~repro.errors.ServeError` (carrying the HTTP
status) on error responses; :meth:`ServeClient.request` returns the
raw ``(status, payload)`` pair for callers probing rejection paths.
"""

from __future__ import annotations

import http.client
import json

from repro.errors import ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """One persistent connection to a running daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        """Drop the connection (reopened lazily on the next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """One round trip; returns ``(status, parsed JSON body)``.

        Retries exactly once on a dead keep-alive connection (the
        server may have closed an idle one between requests).
        """
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"non-JSON response from daemon: {raw[:200]!r}"
            ) from exc
        return response.status, data

    def _checked(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        status, data = self.request(method, path, payload)
        if status >= 400:
            raise ServeError(
                data.get("error", f"HTTP {status} on {path}"), status=status
            )
        return data

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        """``GET /v1/healthz``."""
        return self._checked("GET", "/v1/healthz")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self._checked("GET", "/v1/stats")

    def budget(self) -> float:
        """``GET /v1/budget``."""
        return float(self._checked("GET", "/v1/budget")["budget_w"])

    def update_budget(self, budget_w: float) -> float:
        """``POST /v1/budget``."""
        data = self._checked("POST", "/v1/budget", {"budget_w": budget_w})
        return float(data["budget_w"])

    def submit(
        self,
        jobs: list[dict | str] | str,
        tenant: str | None = None,
        wait: bool = True,
    ) -> list[dict]:
        """``POST /v1/jobs``; returns the job records.

        *jobs* is an app name, or a list of names /
        ``{"app": ..., "budget_w": ...}`` specs (one burst).
        """
        payload: dict = {
            "jobs": [jobs] if isinstance(jobs, str) else list(jobs),
            "wait": wait,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        return self._checked("POST", "/v1/jobs", payload)["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``."""
        return self._checked("GET", f"/v1/jobs/{job_id}")

    def record_outcome(
        self,
        job_id: str,
        *,
        performance: float | None = None,
        measured_time_s: float | None = None,
        measured_power_w: float | None = None,
        flags: tuple[str, ...] = (),
    ) -> dict:
        """``POST /v1/jobs/<id>/outcome`` — report a measured result.

        Give either cluster *performance* (iterations/s) or
        *measured_time_s* (seconds per iteration); the daemon feeds
        the observation back to the scheduler's learning layer.
        """
        payload: dict = {}
        if performance is not None:
            payload["performance"] = performance
        if measured_time_s is not None:
            payload["measured_time_s"] = measured_time_s
        if measured_power_w is not None:
            payload["measured_power_w"] = measured_power_w
        if flags:
            payload["flags"] = list(flags)
        return self._checked("POST", f"/v1/jobs/{job_id}/outcome", payload)

    def telemetry(self, events: int, interval: float = 0.1) -> list[dict]:
        """Read *events* snapshots from ``/v1/telemetry/stream``.

        Uses its own short-lived connection: the stream ends with
        ``Connection: close``, which would poison the keep-alive one.
        """
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            conn.request(
                "GET",
                f"/v1/telemetry/stream?events={events}&interval={interval}",
            )
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(
                    f"telemetry stream refused: HTTP {response.status}",
                    status=response.status,
                )
            out = []
            for raw in response:
                line = raw.decode().strip()
                if line.startswith("data: "):
                    out.append(json.loads(line[len("data: "):]))
                    if len(out) >= events:
                        break
            return out
        finally:
            conn.close()
