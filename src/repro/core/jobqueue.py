"""A power-bounded job queue on top of CLIP.

The paper's framework sits behind a job scheduler (§IV-B: the helper
tools automate data collection "for jobs managed by the smart profiling
module and application execution module") but evaluates one job at a
time.  This module supplies the missing queueing layer with two
policies:

* ``sequential`` — the paper's operating mode: jobs run one at a time,
  each getting the whole cluster budget, scheduled by Algorithm 1.
* ``coscheduled`` — an extension: the head of the queue is packed into
  a co-scheduled batch via :class:`MultiJobCoordinator` whenever the
  jobs' combined power floors fit the budget, trading per-job speed for
  queue throughput (the POW-shed motivation).

Both policies reuse the shared knowledge database, so repeated
submissions of a known application skip profiling — the workflow the
knowledge DB exists for.

Both policies also accept a :class:`~repro.sim.faults.FaultInjector`:
the drain loop polls it between jobs (sequential) or batches
(coscheduled), so node failures, recoveries, degradations, and budget
swings that fire mid-drain reshape every *subsequent* placement — jobs
land only on surviving nodes, under the budget in force at their start
time.  Every decision is audited on the scheduler's shared
:class:`~repro.core.monitor.BudgetInvariantMonitor`.

When enforcement itself is suspect — drifting firmware, dropped cap
writes — pass an :class:`~repro.core.watchdog.EnforcementGuard`: each
job (or batch) is then *planned* at the guard's derated budget, and its
measured draw is reported back afterwards, so persistent overdraw
tightens subsequent decisions and healed enforcement relaxes them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.multijob import MultiJobCoordinator
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["CompletedJob", "QueueReport", "PowerBoundedJobQueue"]


@dataclass(frozen=True)
class CompletedJob:
    """Accounting record for one drained job."""

    app_name: str
    submitted_at_s: float
    started_at_s: float
    finished_at_s: float
    performance: float
    energy_j: float
    n_nodes: int
    n_threads: int
    batch: int

    @property
    def turnaround_s(self) -> float:
        """Submission-to-completion latency."""
        return self.finished_at_s - self.submitted_at_s

    @property
    def wait_s(self) -> float:
        """Time spent queued before execution started."""
        return self.started_at_s - self.submitted_at_s


@dataclass(frozen=True)
class QueueReport:
    """Aggregate outcome of draining a queue."""

    policy: str
    jobs: tuple[CompletedJob, ...]
    makespan_s: float
    total_energy_j: float

    @property
    def mean_turnaround_s(self) -> float:
        """Average submission-to-completion latency."""
        return sum(j.turnaround_s for j in self.jobs) / len(self.jobs)

    @property
    def throughput_jobs_per_hour(self) -> float:
        """Drained jobs per hour of simulated time."""
        return len(self.jobs) / self.makespan_s * 3600.0 if self.makespan_s else 0.0


class PowerBoundedJobQueue:
    """Drains a list of jobs under one cluster power budget."""

    def __init__(self, scheduler: ClipScheduler):
        self._scheduler = scheduler
        self._coordinator = MultiJobCoordinator(scheduler)

    def drain(
        self,
        apps: list[WorkloadCharacteristics],
        cluster_budget_w: float,
        policy: str = "sequential",
        iterations: int | None = None,
        faults=None,
        guard=None,
    ) -> QueueReport:
        """Execute every job and return the accounting report.

        All jobs are treated as submitted at t=0 (a burst arrival); the
        per-job records still separate wait from run time so policies
        can be compared on turnaround.  ``faults`` optionally supplies
        a :class:`~repro.sim.faults.FaultInjector` whose due events are
        applied at every job/batch boundary; ``guard`` optionally
        supplies an :class:`~repro.core.watchdog.EnforcementGuard` that
        derates planning budgets while measured draw breaches the bound.
        """
        if not apps:
            raise SchedulingError("queue is empty")
        if policy == "sequential":
            jobs = self._drain_sequential(
                apps, cluster_budget_w, iterations, faults, guard
            )
        elif policy == "coscheduled":
            jobs = self._drain_coscheduled(
                apps, cluster_budget_w, iterations, faults, guard
            )
        else:
            raise SchedulingError(f"unknown queue policy {policy!r}")
        return QueueReport(
            policy=policy,
            jobs=tuple(jobs),
            makespan_s=max(j.finished_at_s for j in jobs),
            total_energy_j=sum(j.energy_j for j in jobs),
        )

    # ------------------------------------------------------------------

    def _poll_faults(self, faults, now, budget):
        """Apply due fault events; return (current budget, node pool)."""
        cluster = self._scheduler.engine.cluster
        if faults is None:
            return budget, tuple(range(cluster.n_nodes))
        faults.advance_to(now)
        current = faults.budget_w if faults.budget_w is not None else budget
        return current, cluster.available_node_ids

    @staticmethod
    def _measured_w(result) -> float:
        """RAPL-visible draw of one run: the enforcement ground truth."""
        return sum(rec.avg_capped_w for rec in result.nodes)

    def _drain_sequential(self, apps, budget, iterations, faults=None, guard=None):
        now = 0.0
        out = []
        engine = self._scheduler.engine
        if faults is None and guard is None:
            # one batched pipeline pass: duplicate submissions of a
            # known application share a single decision (and bundle)
            decisions = self._scheduler.schedule_many(apps, budget)
        for i, app in enumerate(apps):
            if faults is None and guard is None:
                decision = decisions[i]
                config = decision.to_execution_config(iterations=iterations)
            else:
                # decide just-in-time: the budget and the set of live
                # nodes are whatever the fault script left in force,
                # further derated while the guard distrusts enforcement
                budget_now, pool = self._poll_faults(faults, now, budget)
                plan_w = (
                    guard.scheduling_budget(budget_now) if guard else budget_now
                )
                decision = self._scheduler.schedule(
                    app,
                    plan_w,
                    predefined_node_counts=tuple(range(1, len(pool) + 1)),
                )
                config = replace(
                    decision.to_execution_config(iterations=iterations),
                    node_ids=pool[: decision.n_nodes],
                )
                self._scheduler.pipeline.monitor.audit(
                    "jobqueue.sequential",
                    app.name,
                    plan_w,
                    tuple(
                        (c.pkg_cap_w, c.dram_cap_w)
                        for c in decision.node_configs
                    ),
                )
            result = engine.run(app, config)
            flags = []
            if faults is not None:
                flags.append("faults")
            if guard is not None:
                flags.append("guard")
            self._scheduler.pipeline.record_outcome(
                app,
                decision=decision,
                result=result,
                source="jobqueue.sequential",
                flags=tuple(flags),
            )
            if guard is not None:
                budget_now, _ = self._poll_faults(faults, now, budget)
                guard.observe(self._measured_w(result), budget_now)
            out.append(
                CompletedJob(
                    app_name=app.name,
                    submitted_at_s=0.0,
                    started_at_s=now,
                    finished_at_s=now + result.total_time_s,
                    performance=result.performance,
                    energy_j=result.energy_j,
                    n_nodes=decision.n_nodes,
                    n_threads=decision.n_threads,
                    batch=i,
                )
            )
            now += result.total_time_s
        return out

    def _drain_coscheduled(self, apps, budget, iterations, faults=None, guard=None):
        now = 0.0
        out = []
        pending = list(apps)
        batch_id = 0
        while pending:
            budget_now, pool = self._poll_faults(faults, now, budget)
            plan_w = guard.scheduling_budget(budget_now) if guard else budget_now
            batch = self._take_batch(pending, plan_w, pool)
            results = self._coordinator.run(
                batch, plan_w, iterations=iterations, node_ids=pool
            )
            if guard is not None:
                guard.observe(
                    sum(self._measured_w(r) for _, r in results), budget_now
                )
            batch_time = max(r.total_time_s for _, r in results)
            by_name = {a.name: a for a in batch}
            for placement, result in results:
                app = by_name.get(placement.app_name)
                if app is not None:
                    # co-scheduled shares get their own observations:
                    # predicted perf scales the per-node config across
                    # the placement's node share
                    self._scheduler.pipeline.record_outcome(
                        app,
                        predicted_perf=(
                            placement.config.predicted_perf
                            * placement.n_nodes
                        ),
                        measured_perf=result.performance,
                        measured_power_w=(
                            result.energy_j / result.total_time_s
                            if result.total_time_s > 0
                            else None
                        ),
                        budget_w=placement.budget_w,
                        n_nodes=placement.n_nodes,
                        n_threads=placement.config.n_threads,
                        source="jobqueue.coscheduled",
                        flags=("coscheduled",),
                    )
                out.append(
                    CompletedJob(
                        app_name=placement.app_name,
                        submitted_at_s=0.0,
                        started_at_s=now,
                        finished_at_s=now + result.total_time_s,
                        performance=result.performance,
                        energy_j=result.energy_j,
                        n_nodes=placement.n_nodes,
                        n_threads=placement.config.n_threads,
                        batch=batch_id,
                    )
                )
            now += batch_time
            batch_id += 1
        return out

    def _take_batch(self, pending, budget, pool):
        """Pop the largest feasible head-of-queue batch (FIFO order)."""
        batch = [pending.pop(0)]
        while pending:
            candidate = batch + [pending[0]]
            if len(candidate) > len(pool):
                break
            try:
                self._coordinator.partition(candidate, budget, node_ids=pool)
            except (InfeasibleBudgetError, SchedulingError):
                break
            batch.append(pending.pop(0))
        return batch
