"""Closed-loop learning campaign vs. the exhaustive-search oracle.

Drives the full outcome-fed learning loop (ISSUE 10) through a
simulated scheduling campaign and writes ``BENCH_learning.json`` at
the repository root:

1. **oracle floor** — the exhaustive-search optimum for every
   (app, budget) combo, the denominator of the gap metric;
2. **campaign** — a learning-on scheduler decides and executes
   ``ROUNDS`` passes over the combo grid (decision → execution →
   ``record_outcome`` → refit policy → epsilon-greedy bandit); the
   per-decision oracle gap is recorded in submission order, so the
   first/final-third comparison measures whether feeding outcomes
   back actually closes the gap;
3. **golden identity** — a learning-OFF scheduler replays the same
   combos *with outcomes recorded* and its decisions are compared
   byte-for-byte against ``tests/data/golden_decisions_testbeds.json``:
   observation history alone must never move a decision;
4. **warm overhead** — per-decision cost of a converged learning-on
   scheduler vs. a warm learning-off one on the same mix.

Run standalone with ``python benchmarks/bench_learning.py`` or through
``benchmarks/test_perf_learning.py``, which gates the shrinking gap,
the bit identity, the audit ledger, and the warm overhead.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.baselines import OracleScheduler
from repro.core.learning import LearningConfig
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.batch import RunCache
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_learning.json"
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden_decisions_testbeds.json"

#: The golden capture grid (tests/data/capture_golden_testbeds.py).
APPS = ("comd", "sp-mz.C", "stream", "bt-mz.C", "tealeaf")
BUDGETS_W = (1000.0, 1400.0, 1800.0)
#: Campaign length: ROUNDS passes over the 15-combo grid (>= 60
#: decisions, the acceptance floor).
ROUNDS = 6
ITERATIONS = 3
#: Warm-path timing: passes over the grid per measured side.
TIMING_PASSES = 20


def _fresh_engine(cache: bool = False) -> ExecutionEngine:
    return ExecutionEngine(
        SimulatedCluster.testbed(),
        seed=42,
        cache=RunCache() if cache else None,
    )


def _combos():
    return [(name, budget) for name in APPS for budget in BUDGETS_W]


def _oracle_floor(engine) -> dict[tuple[str, float], float]:
    oracle = OracleScheduler(engine, thread_step=2)
    return {
        (name, budget): oracle.run(
            get_app(name), budget, iterations=ITERATIONS
        ).performance
        for name, budget in _combos()
    }


def _run_campaign(engine, oracle_perf) -> tuple[ClipScheduler, list[dict]]:
    clip = ClipScheduler(
        engine,
        inflection=build_trained_inflection(engine),
        learning=LearningConfig(enabled=True),
    )
    records = []
    for rnd in range(ROUNDS):
        for name, budget in _combos():
            decision, result = clip.run(
                get_app(name), budget, iterations=ITERATIONS
            )
            floor = oracle_perf[(name, budget)]
            records.append(
                {
                    "round": rnd + 1,
                    "app": name,
                    "budget_w": budget,
                    "n_nodes": decision.n_nodes,
                    "n_threads": decision.n_threads,
                    "explored": decision.explored,
                    "model_version": decision.model_version,
                    "performance": result.performance,
                    "oracle_performance": floor,
                    "gap": floor / result.performance,
                }
            )
    return clip, records


def _check_golden_identity() -> dict:
    """Learning-off decisions, with outcomes recorded, match the golden.

    The scheduler is constructed exactly as the capture script builds
    it, every combo is *executed* (so the knowledge entries accumulate
    observation history through the choke point), and then each combo
    is re-decided and compared byte-for-byte against the stored
    haswell capture.
    """
    golden = json.loads(GOLDEN_PATH.read_text())["testbeds"]["haswell"]
    engine = _fresh_engine()
    clip = ClipScheduler(engine, inflection=build_trained_inflection(engine))
    for name, budget in _combos():
        clip.run(get_app(name), budget, iterations=ITERATIONS)
    mismatches = []
    for name, budget in _combos():
        d = clip.schedule(get_app(name), budget)
        if d.to_dict() != golden[f"{name}@{budget:.0f}"]:
            mismatches.append(f"{name}@{budget:.0f}")
    return {
        "checked": len(_combos()),
        "outcomes_recorded": clip.pipeline.learning_stats()["outcomes"],
        "mismatches": mismatches,
        "identical": not mismatches,
    }


def _time_passes(clip: ClipScheduler) -> float:
    """Warm per-decision wall time over TIMING_PASSES grid passes."""
    apps = {name: get_app(name) for name in APPS}
    combos = _combos()
    clip.schedule(apps[combos[0][0]], combos[0][1])  # prime
    start = time.perf_counter()
    for _ in range(TIMING_PASSES):
        for name, budget in combos:
            clip.schedule(apps[name], budget)
    elapsed = time.perf_counter() - start
    return elapsed / (TIMING_PASSES * len(combos))


def _measure_overhead(campaign_clip: ClipScheduler) -> dict:
    """Converged learning-on vs. warm learning-off decision cost."""
    engine = _fresh_engine(cache=True)
    off = ClipScheduler(engine, inflection=build_trained_inflection(engine))
    off_s = _time_passes(off)
    on_s = _time_passes(campaign_clip)
    return {
        "off_per_decision_s": off_s,
        "on_per_decision_s": on_s,
        "ratio": on_s / off_s if off_s > 0 else float("inf"),
        "passes": TIMING_PASSES,
    }


def _thirds(records: list[dict]) -> dict:
    n = len(records)
    cut = n // 3
    chunks = {
        "first": records[:cut],
        "middle": records[cut : n - cut],
        "final": records[n - cut :],
    }
    return {
        label: {
            "decisions": len(chunk),
            "mean_gap": sum(r["gap"] for r in chunk) / len(chunk),
            "explored": sum(1 for r in chunk if r["explored"]),
        }
        for label, chunk in chunks.items()
    }


def run_learning_bench() -> dict:
    engine = _fresh_engine(cache=True)
    print("exhaustive oracle floor...", file=sys.stderr)
    oracle_perf = _oracle_floor(engine)
    print(f"learning-on campaign ({ROUNDS * len(_combos())} decisions)...",
          file=sys.stderr)
    clip, records = _run_campaign(engine, oracle_perf)
    thirds = _thirds(records)
    print("golden identity replay (learning off)...", file=sys.stderr)
    identity = _check_golden_identity()
    print("warm-path overhead...", file=sys.stderr)
    overhead = _measure_overhead(clip)
    monitor = clip.monitor
    payload = {
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "campaign": {
            "apps": list(APPS),
            "budgets_w": list(BUDGETS_W),
            "rounds": ROUNDS,
            "iterations": ITERATIONS,
            "decisions": len(records),
            "records": records,
        },
        "thirds": thirds,
        "learning": clip.pipeline.learning_stats(),
        "golden_identity": identity,
        "audit": {
            "audits": monitor.n_audits,
            "violations": monitor.n_violations,
        },
        "overhead": overhead,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH}", file=sys.stderr)
    return payload


if __name__ == "__main__":
    payload = run_learning_bench()
    t = payload["thirds"]
    print(
        f"gap first third {t['first']['mean_gap']:.4f} -> "
        f"final third {t['final']['mean_gap']:.4f} "
        f"(explored {t['first']['explored']}/{t['final']['explored']}), "
        f"overhead {payload['overhead']['ratio']:.2f}x, "
        f"golden identical: {payload['golden_identity']['identical']}"
    )
