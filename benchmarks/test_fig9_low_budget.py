"""Figure 9 — method comparison under LOW power budgets.

Same methods and normalization as Fig. 8, but with the cluster budget
tight enough that methods must shed nodes, split power carefully, or
pay the clock-modulation cliff.  Paper observations reproduced here:

3. CLIP outperforms All-In / Coordinated / Lower-Limit for most cases,
   especially logarithmic and parabolic applications;
5. CLIP beats Coordinated on logarithmic applications when the power
   budget is low;
*  All-In collapses: splitting a low budget over all nodes starves the
   per-node CPU share below the lowest P-state.
"""

from repro.analysis.experiments import compare_methods
from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import render_table
from repro.workloads.apps import TABLE2_APPS
from conftest import run_once

LOW_BUDGETS_W = (800.0, 1000.0, 1200.0)
METHODS = ("All-In", "Lower-Limit", "Coordinated", "CLIP")
PARABOLIC = ("sp-mz.C", "miniaero", "tealeaf")
LOGARITHMIC = ("bt-mz.C", "lu-mz.C", "cloverleaf.128", "cloverleaf.16")
PANEL_A = tuple(a.name for a in TABLE2_APPS[:5])
PANEL_B = tuple(a.name for a in TABLE2_APPS[5:])


def sweep(engine, schedulers):
    return compare_methods(
        engine, list(TABLE2_APPS), list(LOW_BUDGETS_W), schedulers, iterations=3
    )


def test_fig9_low_budget(benchmark, engine, schedulers, report):
    comp = run_once(benchmark, lambda: sweep(engine, schedulers))

    blocks = []
    for panel, names in (("9a", PANEL_A), ("9b", PANEL_B)):
        rows = []
        for budget in LOW_BUDGETS_W:
            for name in names:
                rows.append(
                    [f"{budget:.0f}W", name]
                    + [comp.cell(m, name, budget).relative for m in METHODS]
                )
        blocks.append(
            render_table(
                ["Budget", "Benchmark"] + list(METHODS),
                rows,
                title=f"Fig. {panel} — relative performance, low power budgets",
            )
        )
    report("fig9", "\n\n".join(blocks))

    # CLIP is the best method overall at every low budget
    for budget in LOW_BUDGETS_W:
        per_method = {
            m: geometric_mean(
                [
                    comp.cell(m, a.name, budget).relative
                    for a in TABLE2_APPS
                    if comp.cell(m, a.name, budget).feasible
                ]
            )
            for m in METHODS
        }
        assert per_method["CLIP"] == max(per_method.values()), (
            budget,
            per_method,
        )

    # parabolic apps: CLIP wins big against Coordinated even here
    for name in PARABOLIC:
        for budget in LOW_BUDGETS_W:
            clip = comp.cell("CLIP", name, budget).relative
            coord = comp.cell("Coordinated", name, budget).relative
            assert clip > coord * 1.05, (name, budget)

    # logarithmic apps at the tightest budget: CLIP >= Coordinated
    # (observation 5)
    for name in LOGARITHMIC:
        clip = comp.cell("CLIP", name, 800.0).relative
        coord = comp.cell("Coordinated", name, 800.0).relative
        assert clip >= coord * 0.9, name

    # the compute-bound apps expose All-In's duty-cycle cliff at 800 W
    for name in ("comd", "minimd"):
        allin = comp.cell("All-In", name, 800.0).relative
        clip = comp.cell("CLIP", name, 800.0).relative
        assert clip > 2.0 * allin, name
