"""Multi-job power and node partitioning.

The paper evaluates one job at a time; its related work (POW-shed,
Ellsworth et al. SC'15 [11]) "shifts power to more power-intensive
applications to improve throughput without exploring concurrency
throttling".  This extension combines both ideas: partition the
cluster's nodes *and* its power budget across several concurrent jobs
using each job's CLIP models (acceptable ranges + predicted
performance), including per-job concurrency throttling.

The partitioner is a marginal-utility greedy: every job starts from the
smallest feasible allocation (one node at its power floor), then node
and power increments are repeatedly granted to the job whose predicted
*relative* throughput (against its unbounded prediction) gains most —
maximizing the geometric-mean progress across jobs, the usual fairness
objective for co-scheduled HPC workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.recommend import NodeConfig, Recommender
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.sim.engine import ExecutionConfig
from repro.sim.trace import RunResult
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["JobPlacement", "MultiJobCoordinator"]

#: Power granted per greedy step (watts).
POWER_STEP_W = 25.0


@dataclass(frozen=True)
class JobPlacement:
    """One job's share of the cluster."""

    app_name: str
    node_ids: tuple[int, ...]
    budget_w: float
    config: NodeConfig

    @property
    def n_nodes(self) -> int:
        """Nodes granted to this job."""
        return len(self.node_ids)

    def to_execution_config(self, iterations: int | None = None) -> ExecutionConfig:
        """Translate the placement into an engine configuration."""
        return ExecutionConfig(
            n_nodes=self.n_nodes,
            n_threads=self.config.n_threads,
            affinity=self.config.affinity,
            pkg_cap_w=self.config.pkg_cap_w,
            dram_cap_w=self.config.dram_cap_w,
            node_ids=self.node_ids,
            iterations=iterations,
        )


class _JobState:
    """Mutable partitioning state for one job."""

    def __init__(self, app: WorkloadCharacteristics, recommender: Recommender):
        self.app = app
        self.rec = recommender
        self.n_nodes = 1
        floor = recommender.min_floor_w()
        self.budget = floor * 1.02  # minimal feasible allocation
        self.floor = floor
        hi_threads = recommender.unbounded_concurrency()
        self.hi_per_node = recommender.power_model.power_range(hi_threads).node_hi_w
        self.unbounded_perf = recommender.recommend(
            self.hi_per_node
        ).predicted_perf

    def predicted_relative(
        self, n_nodes: int | None = None, budget: float | None = None
    ) -> float:
        """Predicted throughput relative to this job's unbounded run."""
        n = n_nodes if n_nodes is not None else self.n_nodes
        b = budget if budget is not None else self.budget
        per_node = min(b / n, self.hi_per_node)
        if per_node < self.floor:
            return 0.0
        try:
            cfg = self.rec.recommend(per_node)
        except InfeasibleBudgetError:
            return 0.0
        return cfg.predicted_perf * n / (self.unbounded_perf * 1.0)


class MultiJobCoordinator:
    """Partition nodes and power across concurrent jobs."""

    def __init__(self, scheduler: ClipScheduler):
        self._scheduler = scheduler
        self._engine = scheduler.engine

    def partition(
        self,
        apps: list[WorkloadCharacteristics],
        total_budget_w: float,
        node_ids: tuple[int, ...] | None = None,
    ) -> list[JobPlacement]:
        """Split nodes and power across *apps*.

        ``node_ids`` restricts the placement to a pool of nodes (e.g.
        the survivors after a failure); it defaults to the whole
        cluster.  Raises :class:`InfeasibleBudgetError` if the budget
        (or node count) cannot give every job its minimal feasible
        allocation.
        """
        if not apps:
            raise SchedulingError("need at least one job")
        cluster = self._engine.cluster
        pool = (
            tuple(node_ids)
            if node_ids is not None
            else tuple(range(cluster.n_nodes))
        )
        if len(apps) > len(pool):
            raise SchedulingError(
                f"{len(apps)} jobs exceed the {len(pool)}-node pool"
            )
        # the shared pipeline caches the fitted model bundle per entry,
        # so repeated partitions of the same jobs fit nothing new
        pipeline = self._scheduler.pipeline
        states = [
            _JobState(app, pipeline.bundle_for(app).recommender) for app in apps
        ]

        spent = sum(s.budget for s in states)
        if spent > total_budget_w:
            raise InfeasibleBudgetError(
                f"budget {total_budget_w:.0f} W below the jobs' combined "
                f"floor {spent:.0f} W"
            )
        free_nodes = len(pool) - len(states)
        free_power = total_budget_w - spent

        # Marginal-utility greedy over (grant node | grant power) moves.
        # Gains are measured in *log* relative throughput, the gradient
        # of the geometric-mean objective: a grant to a starved job
        # (low current relative) outranks the same absolute gain to a
        # nearly-saturated one.
        def log_gain(base: float, new: float) -> float:
            if new <= base:
                return 0.0
            return float(np.log(new / max(base, 1e-6)))

        while True:
            best = None  # (gain, state, kind, amount)
            for s in states:
                base = s.predicted_relative()
                if free_nodes >= 1 and s.budget >= (s.n_nodes + 1) * s.floor:
                    gain = log_gain(
                        base, s.predicted_relative(n_nodes=s.n_nodes + 1)
                    )
                    if best is None or gain > best[0]:
                        best = (gain, s, "node", 1)
                if free_power >= POWER_STEP_W:
                    gain = log_gain(
                        base, s.predicted_relative(budget=s.budget + POWER_STEP_W)
                    )
                    if best is None or gain > best[0]:
                        best = (gain, s, "power", POWER_STEP_W)
            if best is None or best[0] <= 1e-9:
                break
            _, s, kind, amount = best
            if kind == "node":
                s.n_nodes += 1
                free_nodes -= 1
            else:
                s.budget += amount
                free_power -= amount

        # materialize placements on disjoint node ids from the pool
        placements: list[JobPlacement] = []
        next_node = 0
        for s in states:
            per_node = min(s.budget / s.n_nodes, s.hi_per_node)
            cfg = s.rec.recommend(per_node)
            ids = pool[next_node : next_node + s.n_nodes]
            next_node += s.n_nodes
            placements.append(
                JobPlacement(
                    app_name=s.app.name,
                    node_ids=ids,
                    budget_w=per_node * s.n_nodes,
                    config=cfg,
                )
            )
        return placements

    def run(
        self,
        apps: list[WorkloadCharacteristics],
        total_budget_w: float,
        iterations: int | None = None,
        node_ids: tuple[int, ...] | None = None,
    ) -> list[tuple[JobPlacement, RunResult]]:
        """Partition and execute every job on its node set.

        Placements are paired with apps by *index* — partition order
        matches submission order — so two distinct workloads sharing a
        name (the same kernel at different problem sizes) each run
        their own characteristics.  The batch's combined cap set is
        audited against the budget on the shared monitor.
        """
        placements = self.partition(apps, total_budget_w, node_ids=node_ids)
        monitor = self._scheduler.pipeline.monitor
        batch_caps = tuple(
            (p.config.pkg_cap_w, p.config.dram_cap_w)
            for p in placements
            for _ in range(p.n_nodes)
        )
        monitor.audit(
            "multijob.batch",
            "+".join(p.app_name for p in placements),
            total_budget_w,
            batch_caps,
        )
        return [
            (p, self._engine.run(apps[i], p.to_execution_config(iterations)))
            for i, p in enumerate(placements)
        ]
