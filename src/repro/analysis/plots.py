"""ASCII chart rendering.

The paper's figures are bar charts and line plots; the benchmark
harness prints their data as tables, and these helpers additionally
render them as monospace charts so a terminal user can *see* the
shapes (the paper's Fig.-6 color bands, the Fig.-2 curves) without a
plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_bars", "render_grouped_bars", "render_series"]

_BAR = "#"


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    fmt: str = "{:.3f}",
    markers: dict[float, str] | None = None,
) -> str:
    """Horizontal bar chart, one bar per label.

    ``markers`` optionally draws labelled vertical guides at given
    values — e.g. the 0.7 / 1.0 classification thresholds of Fig. 6.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    vmax = max([max(values), 1e-12, *(markers or {})])
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        n = int(round(v / vmax * width))
        bar = _BAR * n
        if markers:
            bar_list = list(bar.ljust(width))
            for mv in markers:
                pos = int(round(mv / vmax * width))
                if 0 <= pos < width:
                    bar_list[pos] = "|"
            bar = "".join(bar_list).rstrip()
        lines.append(f"{str(label).rjust(label_w)} {bar} {fmt.format(v)}")
    if markers:
        legend = ", ".join(
            f"| at {fmt.format(mv)} = {name}" for mv, name in markers.items()
        )
        lines.append(f"{' ' * label_w} ({legend})")
    return "\n".join(lines)


def render_grouped_bars(
    group_labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """Grouped horizontal bars — the Figs. 8-9 layout.

    ``series`` maps a method name to one value per group label.
    """
    for name, vals in series.items():
        if len(vals) != len(group_labels):
            raise ValueError(f"series {name!r} length mismatch")
    if not group_labels:
        return title or ""
    vmax = max((max(v) for v in series.values()), default=1e-12) or 1e-12
    name_w = max(len(n) for n in series)
    lines = [title] if title else []
    for gi, glabel in enumerate(group_labels):
        lines.append(f"{glabel}:")
        for name, vals in series.items():
            n = int(round(vals[gi] / vmax * width))
            lines.append(
                f"  {name.ljust(name_w)} {_BAR * n} {fmt.format(vals[gi])}"
            )
    return "\n".join(lines)


def render_series(
    x: Sequence[float],
    ys: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Scatter-style line chart — the Fig.-2 curve layout.

    Each named series is drawn with its own glyph on a shared grid;
    the y-axis is auto-scaled to the data.
    """
    glyphs = "ox+*#@%&"
    for name, y in ys.items():
        if len(y) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
    if not x or not ys:
        return title or ""
    ymax = max(max(y) for y in ys.values())
    ymin = min(min(y) for y in ys.values())
    yspan = max(ymax - ymin, 1e-12)
    xmax, xmin = max(x), min(x)
    xspan = max(xmax - xmin, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    for (name, y), glyph in zip(ys.items(), glyphs):
        for xi, yi in zip(x, y):
            col = int(round((xi - xmin) / xspan * (width - 1)))
            row = height - 1 - int(round((yi - ymin) / yspan * (height - 1)))
            grid[row][col] = glyph
    lines = [title] if title else []
    lines.append(f"{ymax:10.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{ymin:10.3f} +" + "-" * width)
    lines.append(" " * 12 + f"{xmin:<10.3g}{' ' * (width - 20)}{xmax:>10.3g}")
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(ys.items(), glyphs)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
