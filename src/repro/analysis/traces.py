"""Power-trace export and run audits.

The paper's helper tools automate "the collection and recording of
performance and power data for jobs" (§IV-B.4).  These utilities turn
the simulator's meters and run records into the artifacts an operator
would keep: CSV traces, per-run summaries, and cap-violation audits.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.hw.cluster import SimulatedCluster
from repro.sim.trace import RunResult

__all__ = [
    "samples_to_csv",
    "cluster_trace_csv",
    "CapViolation",
    "audit_cap_violations",
    "summarize_run",
    "ThermalAssessment",
    "assess_thermals",
]


def samples_to_csv(samples) -> str:
    """Render meter samples as CSV (t_s, pkg_w, dram_w, other_w, total_w)."""
    buf = io.StringIO()
    buf.write("t_s,pkg_w,dram_w,other_w,total_w\n")
    for s in samples:
        buf.write(
            f"{s.t_s:.3f},{s.pkg_w:.3f},{s.dram_w:.3f},"
            f"{s.other_w:.3f},{s.total_w:.3f}\n"
        )
    return buf.getvalue()


def cluster_trace_csv(cluster: SimulatedCluster) -> str:
    """One CSV over all nodes' meters (node_id column added)."""
    buf = io.StringIO()
    buf.write("node_id,t_s,pkg_w,dram_w,other_w,total_w\n")
    for node in cluster.nodes:
        for s in node.meter.samples():
            buf.write(
                f"{node.node_id},{s.t_s:.3f},{s.pkg_w:.3f},{s.dram_w:.3f},"
                f"{s.other_w:.3f},{s.total_w:.3f}\n"
            )
    return buf.getvalue()


@dataclass(frozen=True)
class CapViolation:
    """A node whose RAPL cap was below the hardware floor during a run."""

    node_id: int
    domain: str
    steady_power_w: float


def audit_cap_violations(result: RunResult) -> list[CapViolation]:
    """List every domain that ran above its programmed limit.

    Violations happen only when a cap was set below the domain's
    hardware floor (lowest P-state / lowest memory level) — a
    scheduler bug or an infeasible budget the caller should know about.
    """
    out: list[CapViolation] = []
    for rec in result.nodes:
        op = rec.operating_point
        if op.cpu_cap_violated:
            out.append(
                CapViolation(rec.node_id, "pkg", op.pkg_power_w)
            )
        if op.mem_cap_violated:
            out.append(
                CapViolation(rec.node_id, "dram", op.dram_power_w)
            )
    return out


@dataclass(frozen=True)
class ThermalAssessment:
    """Thermal verdict for one node's steady state during a run."""

    node_id: int
    pkg_power_w: float
    steady_state_c: float
    sustainable: bool
    time_to_throttle_s: float | None


def assess_thermals(result: RunResult, spec=None) -> list[ThermalAssessment]:
    """Evaluate each node's steady PKG power against the thermal model.

    A configuration the power caps allow can still be thermally
    unsustainable (hot room, degraded fan — pass a custom
    :class:`~repro.hw.thermal.ThermalSpec`); this audit reports each
    node's equilibrium temperature and, when unsustainable, the time a
    fresh package would take to hit PROCHOT.
    """
    from repro.hw.thermal import ThermalModel, ThermalSpec

    spec = spec or ThermalSpec()
    out: list[ThermalAssessment] = []
    for rec in result.nodes:
        # the thermal spec is per package; split node PKG power evenly
        per_pkg = rec.operating_point.pkg_power_w / 2.0
        steady = spec.steady_state_c(per_pkg)
        sustainable = steady < spec.t_junction_max_c
        eta = None
        if not sustainable:
            eta = ThermalModel(spec).time_to_throttle_s(per_pkg)
        out.append(
            ThermalAssessment(
                node_id=rec.node_id,
                pkg_power_w=rec.operating_point.pkg_power_w,
                steady_state_c=steady,
                sustainable=sustainable,
                time_to_throttle_s=eta,
            )
        )
    return out


def summarize_run(result: RunResult) -> dict:
    """Flat metrics dictionary for logging/regression tracking."""
    ops = [r.operating_point for r in result.nodes]
    return {
        "app": result.app_name,
        "n_nodes": result.n_nodes,
        "n_threads": result.n_threads_per_node,
        "affinity": result.affinity,
        "iterations": result.iterations,
        "total_time_s": result.total_time_s,
        "performance": result.performance,
        "avg_power_w": result.avg_power_w,
        "peak_power_w": result.peak_power_w,
        "energy_j": result.energy_j,
        "edp": result.edp,
        "imbalance": result.imbalance,
        "comm_fraction": result.comm_s / result.t_step_s if result.t_step_s else 0.0,
        "min_frequency_ghz": min(op.frequency_hz for op in ops) / 1e9,
        "max_frequency_ghz": max(op.frequency_hz for op in ops) / 1e9,
        "any_duty_cycling": any(op.duty_cycle < 1.0 for op in ops),
        "cap_violations": len(audit_cap_violations(result)),
    }
