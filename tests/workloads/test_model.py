"""Unit and property tests for the ground-truth performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.hw.specs import haswell_node
from repro.units import ghz
from repro.workloads.characteristics import Phase, WorkloadCharacteristics
from repro.workloads.model import (
    GroundTruthModel,
    scalability_curve,
    true_inflection_point,
    true_scalability_class,
)

NODE = haswell_node()
MODEL = GroundTruthModel(NODE)
FULL_BW = np.full(2, NODE.socket.memory.peak_bandwidth)


def compute_app(**kw):
    defaults = dict(
        name="compute",
        instructions_per_iter=5e10,
        bytes_per_instruction=0.01,
        serial_fraction=0.0,
        sync_cost_s=0.0,
        ipc_fraction=0.5,
    )
    defaults.update(kw)
    return WorkloadCharacteristics(**defaults)


def memory_app(**kw):
    defaults = dict(
        name="memory",
        instructions_per_iter=1e10,
        bytes_per_instruction=6.0,
        serial_fraction=0.0,
        sync_cost_s=0.0,
        ipc_fraction=0.5,
    )
    defaults.update(kw)
    return WorkloadCharacteristics(**defaults)


class TestPhaseTime:
    def test_compute_bound_scales_with_threads(self):
        t12 = MODEL.phase_time(compute_app(), [6, 6], ghz(2.3), FULL_BW)
        t24 = MODEL.phase_time(compute_app(), [12, 12], ghz(2.3), FULL_BW)
        assert t24.t_iter_s == pytest.approx(t12.t_iter_s / 2, rel=1e-6)
        assert t12.bound == "compute"

    def test_compute_bound_scales_with_frequency(self):
        lo = MODEL.phase_time(compute_app(), [12, 12], ghz(1.2), FULL_BW)
        hi = MODEL.phase_time(compute_app(), [12, 12], ghz(2.4), FULL_BW)
        assert lo.t_iter_s == pytest.approx(2 * hi.t_iter_s, rel=1e-6)

    def test_memory_bound_frequency_insensitive_at_high_f(self):
        # above nominal the uncore is at full speed: memory time flat
        lo = MODEL.phase_time(memory_app(), [12, 12], ghz(2.3), FULL_BW)
        hi = MODEL.phase_time(memory_app(), [12, 12], ghz(3.1), FULL_BW)
        assert hi.bound == "memory"
        assert hi.memory_s == pytest.approx(lo.memory_s, rel=1e-9)

    def test_uncore_scaling_degrades_bandwidth_at_low_f(self):
        nom = MODEL.phase_time(memory_app(), [12, 12], ghz(2.3), FULL_BW)
        low = MODEL.phase_time(memory_app(), [12, 12], ghz(1.2), FULL_BW)
        assert low.memory_s > nom.memory_s

    def test_serial_fraction_adds_floor(self):
        app = compute_app(serial_fraction=0.1)
        t = MODEL.phase_time(app, [12, 12], ghz(2.3), FULL_BW)
        assert t.serial_s > 0
        assert t.t_iter_s > t.compute_s

    def test_sync_cost_linear_in_threads(self):
        app = compute_app(sync_cost_s=1e-3)
        t8 = MODEL.phase_time(app, [4, 4], ghz(2.3), FULL_BW)
        t16 = MODEL.phase_time(app, [8, 8], ghz(2.3), FULL_BW)
        assert t8.sync_s == pytest.approx(7e-3)
        assert t16.sync_s == pytest.approx(15e-3)

    def test_odd_thread_penalty(self):
        even = MODEL.phase_time(compute_app(), [4, 4], ghz(2.3), FULL_BW)
        odd = MODEL.phase_time(compute_app(), [4, 3], ghz(2.3), FULL_BW)
        # 7 threads do less work in parallel AND pay the odd penalty
        per_thread_even = even.t_iter_s * 8
        per_thread_odd = odd.t_iter_s * 7 / 1.015
        assert per_thread_odd == pytest.approx(per_thread_even, rel=1e-6)

    def test_remote_fraction_slows_memory(self):
        local = MODEL.phase_time(memory_app(), [6, 6], ghz(2.3), FULL_BW, 0.0)
        remote = MODEL.phase_time(memory_app(), [6, 6], ghz(2.3), FULL_BW, 0.5)
        assert remote.memory_s > local.memory_s

    def test_work_fraction_scales_volume(self):
        full = MODEL.phase_time(compute_app(), [12, 12], ghz(2.3), FULL_BW)
        half = MODEL.phase_time(
            compute_app(), [12, 12], ghz(2.3), FULL_BW, work_fraction=0.5
        )
        assert half.instructions == pytest.approx(full.instructions / 2)
        assert half.t_iter_s == pytest.approx(full.t_iter_s / 2, rel=1e-6)

    def test_bw_limit_throttles_memory(self):
        capped = np.full(2, 1e10)
        t = MODEL.phase_time(memory_app(), [12, 12], ghz(2.3), capped)
        free = MODEL.phase_time(memory_app(), [12, 12], ghz(2.3), FULL_BW)
        assert t.memory_s > free.memory_s

    def test_activity_low_when_memory_bound(self):
        t = MODEL.phase_time(memory_app(), [12, 12], ghz(2.3), FULL_BW)
        assert t.activity < 0.5

    def test_activity_high_when_compute_bound(self):
        t = MODEL.phase_time(compute_app(), [12, 12], ghz(2.3), FULL_BW)
        assert t.activity > 0.9

    def test_rejects_zero_threads(self):
        with pytest.raises(WorkloadError):
            MODEL.phase_time(compute_app(), [0, 0], ghz(2.3), FULL_BW)

    def test_rejects_overfull_socket(self):
        with pytest.raises(WorkloadError):
            MODEL.phase_time(compute_app(), [13, 0], ghz(2.3), FULL_BW)

    def test_rejects_bad_work_fraction(self):
        with pytest.raises(WorkloadError):
            MODEL.phase_time(
                compute_app(), [6, 6], ghz(2.3), FULL_BW, work_fraction=0.0
            )

    @settings(max_examples=50)
    @given(
        n1=st.integers(min_value=0, max_value=12),
        n2=st.integers(min_value=0, max_value=12),
        bpi=st.floats(min_value=0.0, max_value=8.0),
    )
    def test_time_positive_and_consistent(self, n1, n2, bpi):
        if n1 + n2 == 0:
            return
        app = compute_app(bytes_per_instruction=bpi)
        t = MODEL.phase_time(app, [n1, n2], ghz(2.3), FULL_BW)
        assert t.t_iter_s > 0
        assert t.t_iter_s >= max(t.compute_s, t.memory_s)


class TestPhases:
    def test_phase_times_sum(self):
        app = compute_app(
            phases=(Phase("a", 0.5), Phase("b", 0.5)),
        )
        whole = MODEL.iteration_time(app, [12, 12], ghz(2.3), FULL_BW)
        flat = MODEL.iteration_time(
            compute_app(), [12, 12], ghz(2.3), FULL_BW
        )
        assert whole.t_iter_s == pytest.approx(flat.t_iter_s, rel=1e-9)

    def test_max_useful_threads_caps_phase(self):
        app = compute_app(
            phases=(
                Phase("solve", 0.5),
                Phase("exchange", 0.5, max_useful_threads=4),
            ),
        )
        t24 = MODEL.iteration_time(app, [12, 12], ghz(2.3), FULL_BW)
        t4 = MODEL.iteration_time(app, [2, 2], ghz(2.3), FULL_BW)
        # the exchange phase runs no faster with 24 threads than with 4
        assert t24.t_iter_s > t4.t_iter_s / 6

    def test_phase_thread_override(self):
        app = compute_app(phases=(Phase("main", 1.0),))
        base = MODEL.iteration_time(app, [12, 12], ghz(2.3), FULL_BW)
        overridden = MODEL.iteration_time(
            app, [12, 12], ghz(2.3), FULL_BW,
            phase_threads={"main": (2, 2)},
        )
        assert overridden.t_iter_s > base.t_iter_s


class TestCurveAnalysis:
    def test_compute_app_is_linear(self):
        assert true_scalability_class(compute_app(), NODE) == "linear"

    def test_memory_app_is_logarithmic(self):
        assert true_scalability_class(memory_app(), NODE) == "logarithmic"

    def test_contended_app_is_parabolic(self):
        app = memory_app(sync_cost_s=0.02)
        assert true_scalability_class(app, NODE) == "parabolic"

    def test_linear_np_is_full_cores(self):
        assert true_inflection_point(compute_app(), NODE) == NODE.n_cores

    def test_memory_np_interior(self):
        np_ = true_inflection_point(memory_app(), NODE)
        assert 2 <= np_ < NODE.n_cores
        assert np_ % 2 == 0

    def test_parabolic_np_at_peak(self):
        app = memory_app(sync_cost_s=0.02)
        np_ = true_inflection_point(app, NODE)
        ns, perfs = scalability_curve(app, NODE)
        peak_n = int(ns[int(np.argmax(perfs))])
        assert abs(np_ - peak_n) <= 2

    def test_curve_shape(self):
        ns, perfs = scalability_curve(compute_app(), NODE)
        assert len(ns) == NODE.n_cores
        assert perfs[-1] > perfs[0]

    def test_curve_custom_grid(self):
        ns, perfs = scalability_curve(
            compute_app(), NODE, n_threads=np.array([4, 8, 16])
        )
        assert list(ns) == [4, 8, 16]
        assert len(perfs) == 3
