"""Tests for hierarchical cluster → rack → node budget partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import build_trained_inflection
from repro.core.hierarchy import RackBudget, split_cluster_budget
from repro.core.knowledge import KnowledgeDB
from repro.core.pipeline import DecisionPipeline, SchedulingDecision
from repro.errors import SchedulingError
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import haswell_testbed, mixed_testbed
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app


@st.composite
def _fleet_cases(draw):
    """Random feasible (total, factors, lo, hi, rack_of) fleet inputs."""
    n_racks = draw(st.integers(min_value=1, max_value=5))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=6),
            min_size=n_racks,
            max_size=n_racks,
        )
    )
    n = sum(sizes)
    rack_of = tuple(r for r, size in enumerate(sizes) for _ in range(size))
    lo = draw(st.floats(min_value=60.0, max_value=140.0))
    hi = lo + draw(st.floats(min_value=10.0, max_value=180.0))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    factors = rng.uniform(0.8, 1.25, n)
    headroom = draw(st.floats(min_value=0.0, max_value=1.4))
    total = n * lo + headroom * n * (hi - lo)
    return total, factors, lo, hi, rack_of


class TestSplitClusterBudget:
    """Randomized hierarchy invariants."""

    @settings(max_examples=200, deadline=None)
    @given(case=_fleet_cases())
    def test_two_level_invariants(self, case):
        total, factors, lo, hi, rack_of = case
        budgets, racks = split_cluster_budget(total, factors, lo, hi, rack_of)
        tol = 1e-6 * max(total, 1.0)
        # rack budgets sum at most the cluster budget
        assert sum(r.budget_w for r in racks) <= total + tol
        # each rack's node budgets sum at most its rack budget, and
        # the rack share respects the aggregate floor/ceiling
        for r in racks:
            segment = budgets[r.start_slot : r.start_slot + r.n_nodes]
            assert segment.sum() <= r.budget_w + tol
            assert r.allocated_w == pytest.approx(segment.sum())
            assert r.lo_w - tol <= r.budget_w <= r.hi_w + tol
        # every node inside its class range
        assert np.all(budgets >= lo - tol)
        assert np.all(budgets <= hi + tol)
        assert budgets.sum() <= total + tol

    @settings(max_examples=100, deadline=None)
    @given(case=_fleet_cases())
    def test_exact_fill(self, case):
        """The hierarchy keeps the water-fill contract end to end:
        racks absorb min(budget, sum(hi)) between them."""
        total, factors, lo, hi, rack_of = case
        _, racks = split_cluster_budget(total, factors, lo, hi, rack_of)
        expected = min(total, len(factors) * hi)
        assert sum(r.budget_w for r in racks) == pytest.approx(
            expected, abs=1e-6 * max(total, 1.0)
        )

    def test_single_rack_matches_flat_coordination(self):
        from repro.core.coordination import coordinate_power

        factors = np.array([0.9, 1.0, 1.1, 1.2])
        budgets, racks = split_cluster_budget(
            520.0, factors, 100.0, 200.0, (0, 0, 0, 0)
        )
        flat = coordinate_power(
            min(520.0, 800.0), factors, lo_w=100.0, hi_w=200.0
        )
        np.testing.assert_array_equal(budgets, flat)
        assert len(racks) == 1
        assert racks[0].n_nodes == 4

    def test_infeasible_budget_raises(self):
        with pytest.raises(SchedulingError):
            split_cluster_budget(
                150.0, np.ones(2), 100.0, 200.0, (0, 1)
            )

    def test_non_contiguous_rack_slots_rejected(self):
        with pytest.raises(SchedulingError):
            split_cluster_budget(
                600.0, np.ones(3), 100.0, 200.0, (0, 1, 0)
            )

    def test_rack_budget_roundtrip(self):
        _, racks = split_cluster_budget(
            600.0, np.ones(4), 100.0, 200.0, (0, 0, 1, 1), ("a", "b")
        )
        for r in racks:
            assert RackBudget.from_dict(r.to_dict()) == r
        assert racks[0].name == "a"
        assert racks[1].name == "b"


@pytest.fixture(scope="module")
def fleet_pipeline():
    """A 4-rack (32-node) Haswell fleet with a trained pipeline."""
    engine = ExecutionEngine(
        SimulatedCluster(haswell_testbed(racks=4)), seed=42
    )
    return DecisionPipeline(
        engine, build_trained_inflection(engine), knowledge=KnowledgeDB()
    )


class TestHierarchicalDecisions:
    def test_multirack_decision_carries_rack_budgets(self, fleet_pipeline):
        decision = fleet_pipeline.decide(get_app("comd"), 4800.0)
        alloc = decision.allocation
        assert alloc.rack_budgets_w is not None
        assert alloc.n_racks >= 1
        assert sum(alloc.rack_budgets_w) <= 4800.0 * (1 + 1e-9)
        assert alloc.total_allocated_w <= sum(alloc.rack_budgets_w) * (1 + 1e-9)

    def test_both_levels_audited_clean(self, fleet_pipeline):
        fleet_pipeline.monitor.reset()
        fleet_pipeline.decide(get_app("sp-mz.C"), 4800.0)
        sources = {a.source for a in fleet_pipeline.monitor.audits}
        assert "pipeline" in sources
        assert "pipeline.rack" in sources
        assert any(s.startswith("pipeline.rack/") for s in sources)
        fleet_pipeline.monitor.assert_clean()

    def test_decision_roundtrips_rack_budgets(self, fleet_pipeline):
        decision = fleet_pipeline.decide(get_app("comd"), 4800.0)
        rebuilt = SchedulingDecision.from_dict(decision.to_dict())
        assert rebuilt.allocation.rack_budgets_w == (
            decision.allocation.rack_budgets_w
        )

    def test_mixed_fleet_decision_clean(self):
        engine = ExecutionEngine(
            SimulatedCluster(mixed_testbed(racks=2)), seed=42
        )
        pipeline = DecisionPipeline(
            engine, build_trained_inflection(engine), knowledge=KnowledgeDB()
        )
        decision = pipeline.decide(get_app("comd"), 3200.0)
        assert decision.allocation.rack_budgets_w is not None
        pipeline.monitor.assert_clean()


class TestSingleRackEquivalence:
    """racks=1 (and the legacy constructor) take the identical flat path."""

    def test_racks_one_spec_equals_legacy(self):
        assert haswell_testbed(racks=1) == haswell_testbed()
        assert mixed_testbed(racks=1) == mixed_testbed()

    def test_decision_bit_identical_to_flat(self):
        decisions = []
        for spec in (haswell_testbed(), haswell_testbed(racks=1)):
            engine = ExecutionEngine(SimulatedCluster(spec), seed=42)
            pipeline = DecisionPipeline(
                engine, build_trained_inflection(engine), knowledge=KnowledgeDB()
            )
            decisions.append(pipeline.decide(get_app("sp-mz.C"), 1200.0))
        flat, racked = decisions
        assert flat.to_dict() == racked.to_dict()
        assert racked.allocation.rack_budgets_w is None
