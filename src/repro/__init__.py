"""repro — a full reproduction of CLIP (Zou et al., IEEE CLUSTER 2017).

CLIP is a hierarchical, application-aware power coordination framework
for power-bounded clusters: given a cluster-wide power budget it picks
the node count, per-node CPU/DRAM power caps, thread concurrency, and
core affinity from a 2–3-sample application profile.

This package contains both the framework and the testbed it needs:

* :mod:`repro.hw` — a simulated 8-node dual-socket Haswell cluster
  (RAPL domains, DVFS, NUMA, PMU events, manufacturing variability);
* :mod:`repro.workloads` — analytic ground-truth models of the paper's
  Table-II benchmarks plus training corpora and real NumPy kernels;
* :mod:`repro.sim` — the steady-state execution engine;
* :mod:`repro.core` — CLIP itself (profiling, classification, MLR
  inflection prediction, performance/power models, Algorithm 1);
* :mod:`repro.baselines` — All-In, Lower-Limit, Coordinated [15], and
  an exhaustive-search oracle;
* :mod:`repro.analysis` — metrics and the evaluation harness.

Quick start::

    from repro import quickstart_scheduler
    from repro.workloads import get_app

    clip = quickstart_scheduler()
    decision, result = clip.run(get_app("sp-mz.C"), cluster_budget_w=1200.0)
    print(decision.n_nodes, decision.n_threads, result.summary())
"""

from repro.errors import ClipError
from repro.hw import SimulatedCluster, haswell_testbed
from repro.sim import ExecutionConfig, ExecutionEngine, RunResult
from repro.core import (
    AppProfile,
    ClipScheduler,
    InflectionPredictor,
    KnowledgeDB,
    PerformancePredictor,
    ScalabilityClass,
    SchedulingDecision,
    SmartProfiler,
)
from repro.workloads import WorkloadCharacteristics, all_apps, get_app

__version__ = "1.0.0"

__all__ = [
    "ClipError",
    "SimulatedCluster",
    "haswell_testbed",
    "ExecutionConfig",
    "ExecutionEngine",
    "RunResult",
    "AppProfile",
    "ClipScheduler",
    "InflectionPredictor",
    "KnowledgeDB",
    "PerformancePredictor",
    "ScalabilityClass",
    "SchedulingDecision",
    "SmartProfiler",
    "WorkloadCharacteristics",
    "all_apps",
    "get_app",
    "quickstart_scheduler",
    "__version__",
]


def quickstart_scheduler(seed: int = 42) -> ClipScheduler:
    """A ready-to-use CLIP scheduler on the default simulated testbed.

    Builds the 8-node Haswell testbed, trains the MLR inflection
    predictor on the training corpus, and calibrates node variability —
    everything the examples need in one call.
    """
    from repro.analysis.experiments import build_trained_inflection

    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=seed)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))
