#!/usr/bin/env python3
"""Characterize a real NumPy kernel and power-schedule it.

Bridges the two halves of the library: measure an actual kernel running
on *this* machine (STREAM triad, DGEMM, and a Jacobi stencil), convert
the measurement into simulator workload characteristics, then let CLIP
profile, classify, and schedule each kernel on the simulated testbed
under a power budget.

This is the workflow a user would follow to ask "how would my code
behave on a power-bounded cluster?" before touching one.

Run:  python examples/characterize_kernel.py
"""

import numpy as np

from repro import quickstart_scheduler
from repro.analysis.tables import render_table
from repro.workloads.kernels import (
    characteristics_from_measurement,
    dgemm,
    jacobi2d,
    measure_kernel,
    triad,
)


def measure_all():
    n = 2_000_000
    a, b, c = np.zeros(n), np.ones(n), np.ones(n)
    grid = np.random.default_rng(0).random((512, 512))
    m = np.random.default_rng(1).random((256, 256))
    return [
        measure_kernel("triad", triad, a, b, c),
        measure_kernel("dgemm", dgemm, m, m),
        measure_kernel("jacobi2d", jacobi2d, grid, iterations=4),
    ]


def main() -> None:
    print("Measuring kernels on this machine...")
    measurements = measure_all()
    rows = [
        [m.name, m.elapsed_s * 1e3, m.flops / 1e6, m.bytes_moved / 1e6,
         m.arithmetic_intensity]
        for m in measurements
    ]
    print(
        render_table(
            ["kernel", "time (ms)", "MFLOP", "MB moved", "FLOP/byte"],
            rows,
            title="Measured kernels",
        )
    )

    print("\nBuilding testbed + training CLIP...")
    clip = quickstart_scheduler()

    budget_w = 1000.0
    out = []
    for m in measurements:
        chars = characteristics_from_measurement(m, iterations=200)
        decision, result = clip.run(chars, budget_w, iterations=5)
        out.append(
            [
                m.name,
                decision.scalability_class.value,
                decision.n_nodes,
                decision.n_threads,
                f"{decision.node_configs[0].pkg_cap_w:.0f}/"
                f"{decision.node_configs[0].dram_cap_w:.0f}",
                result.performance,
            ]
        )
    print()
    print(
        render_table(
            ["kernel", "class", "nodes", "threads", "PKG/DRAM caps (W)",
             "perf (it/s)"],
            out,
            title=f"CLIP decisions at a {budget_w:.0f} W cluster budget",
        )
    )
    print(
        "\nNote how the bandwidth-bound triad gets a bigger DRAM share "
        "and the compute-bound DGEMM keeps every core busy."
    )


if __name__ == "__main__":
    main()
