"""Concurrency regression suite for the shared decision caches.

The ``clip-sched serve`` daemon makes the shared
:class:`~repro.core.pipeline.ModelBundleCache` and
:class:`~repro.core.knowledge.KnowledgeDB` reachable from multiple
threads at once.  These tests pin the defects that surfaced when the
daemon was stood up — and would fail on the pre-fix code:

* ``decide_many`` memoized duplicate submissions by returning the
  *same* decision object, aliasing its mutable ``phase_threads`` dict
  across jobs;
* ``ModelBundleCache.get_or_build`` raced its check-fit-insert
  sequence (duplicate model fits, corrupted hit/miss counters) and
  ``invalidate`` silently matched nothing for malformed keys;
* ``KnowledgeDB.save`` iterated the live entry dict, dying with
  "dictionary changed size during iteration" under concurrent
  profiling.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.knowledge import KnowledgeDB, KnowledgeEntry
from repro.core.pipeline import ModelBundleCache
from repro.core.scheduler import ClipScheduler
from repro.workloads.apps import get_app

APPS = ("comd", "minimd", "sp-mz.C", "tealeaf")
BUDGETS = (1000.0, 1400.0, 1800.0)


@pytest.fixture()
def warm_clip(engine, trained_inflection):
    """A scheduler with every test app already profiled and fitted."""
    clip = ClipScheduler(engine, inflection=trained_inflection)
    for name in APPS:
        clip.schedule(get_app(name), 1400.0)
    return clip


def _hammer(n_threads: int, fn) -> list:
    """Run *fn(i)* across threads; re-raise the first worker error."""
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return [f.result() for f in [pool.submit(fn, i) for i in range(n_threads)]]


class TestConcurrentScheduling:
    """ThreadPoolExecutor hammering the warm decision path."""

    def test_warm_hammer_exactly_once_fits(self, warm_clip):
        """Concurrent warm schedules fit nothing new and lose no
        counter increments (pre-fix: ``hits += 1`` raced)."""
        cache = warm_clip.pipeline.bundle_cache
        before = cache.stats()
        rounds = 25

        def worker(i):
            out = []
            for r in range(rounds):
                app = get_app(APPS[(i + r) % len(APPS)])
                out.append(warm_clip.schedule(app, BUDGETS[r % len(BUDGETS)]))
            return out

        results = _hammer(8, worker)
        after = cache.stats()
        assert after["misses"] == before["misses"]  # nothing re-fitted
        # one bundle lookup per decision, none lost
        assert after["hits"] - before["hits"] == 8 * rounds
        warm_clip.monitor.assert_clean()
        # every thread got real, in-budget decisions
        for out in results:
            for d in out:
                assert d.total_capped_w <= d.cluster_budget_w + 1e-6

    def test_schedule_many_under_invalidation(self, warm_clip):
        """Bursts keep deciding correctly while entries are re-profiled
        and their bundles invalidated from another thread."""
        kb = warm_clip.knowledge
        cache = warm_clip.pipeline.bundle_cache
        entries = {
            name: kb.get(name, get_app(name).problem_size) for name in APPS
        }
        stop = threading.Event()

        def churner():
            while not stop.is_set():
                for entry in entries.values():
                    # simulate a re-profile: replace the entry with an
                    # equal one and drop its fitted bundles
                    kb.put(KnowledgeEntry(entry.profile, entry.inflection_point))
                    cache.invalidate(entry.key)
                # yield the GIL so the workers make progress (a hot
                # invalidation loop starves them into refitting every
                # decision, which tests patience, not correctness)
                time.sleep(0.001)

        churn = threading.Thread(target=churner)
        churn.start()
        try:
            expected = {
                (name, b): warm_clip.schedule(get_app(name), b)
                for name in APPS
                for b in BUDGETS
            }

            def worker(i):
                jobs = [get_app(APPS[(i + k) % len(APPS)]) for k in range(8)]
                for budget in BUDGETS:
                    for job, decision in zip(
                        jobs, warm_clip.schedule_many(jobs, budget)
                    ):
                        assert decision == expected[(job.name, budget)]

            _hammer(4, worker)
        finally:
            stop.set()
            churn.join()
        warm_clip.monitor.assert_clean()

    def test_interleaved_schedule_and_schedule_many(self, warm_clip):
        """Mixed single and batch entry points from many threads."""

        def worker(i):
            if i % 2:
                jobs = [get_app(APPS[k % len(APPS)]) for k in range(10)]
                return warm_clip.schedule_many(jobs, 1400.0)
            return [
                warm_clip.schedule(get_app(APPS[k % len(APPS)]), 1400.0)
                for k in range(10)
            ]

        results = _hammer(8, worker)
        baseline = [
            warm_clip.schedule(get_app(APPS[k % len(APPS)]), 1400.0)
            for k in range(10)
        ]
        for out in results:
            assert out == baseline
        warm_clip.monitor.assert_clean()


class TestBundleCacheThreadSafety:
    def test_cold_key_fits_exactly_once(self, warm_clip, node_spec):
        """A cold key hit by many simultaneous threads builds one
        bundle (pre-fix: each racer fitted its own)."""
        cache = ModelBundleCache()
        entry = warm_clip.knowledge.get("comd", get_app("comd").problem_size)
        barrier = threading.Barrier(16)

        def worker(_):
            barrier.wait()
            return cache.get_or_build(entry, node_spec)

        bundles = _hammer(16, worker)
        assert cache.misses == 1
        assert cache.hits == 15
        assert all(b is bundles[0] for b in bundles)

    def test_invalidate_accepts_knowledge_key(self, warm_clip, node_spec):
        """``invalidate`` takes the documented (app, size) key — as a
        tuple or any 2-sequence — and rejects anything else instead of
        silently matching nothing."""
        cache = ModelBundleCache()
        entry = warm_clip.knowledge.get("comd", get_app("comd").problem_size)
        key = entry.key
        cache.get_or_build(entry, node_spec)
        assert len(cache) == 1
        cache.invalidate(list(key))  # list form normalizes
        assert len(cache) == 0
        cache.get_or_build(entry, node_spec)
        with pytest.raises(ValueError):
            cache.invalidate(key[:1])
        with pytest.raises(ValueError):
            cache.invalidate(key + (node_spec.name,))
        assert len(cache) == 1  # rejected calls dropped nothing
        cache.invalidate(key)
        assert len(cache) == 0

    def test_counter_integrity_under_contention(self, warm_clip, node_spec):
        """hits/misses stay exact across heavy mixed traffic."""
        cache = ModelBundleCache()
        entries = [
            warm_clip.knowledge.get(name, get_app(name).problem_size)
            for name in APPS
        ]
        per_thread = 200

        def worker(i):
            for k in range(per_thread):
                cache.get_or_build(entries[(i + k) % len(entries)], node_spec)

        _hammer(8, worker)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * per_thread
        assert stats["misses"] == len(entries)
        assert stats["bundles"] == len(entries)


class TestKnowledgeDBThreadSafety:
    def test_save_while_putting(self, warm_clip, tmp_path):
        """``save`` under concurrent ``put`` traffic neither crashes
        nor writes a torn file (pre-fix: dict-changed-size during the
        entry iteration)."""
        src = warm_clip.knowledge.get("comd", get_app("comd").problem_size)
        db = KnowledgeDB()
        db.put(src)
        path = tmp_path / "kb.json"
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            i = 0
            while not stop.is_set():
                # cycle a bounded key space: the point is concurrent
                # mutation during save, not an ever-growing database
                profile = dataclasses.replace(
                    src.profile, problem_size=f"size-{i % 64}"
                )
                db.put(KnowledgeEntry(profile, src.inflection_point))
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(20):
                db.save(path)
                loaded = KnowledgeDB.load(path)
                assert src.key in loaded
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)
        finally:
            stop.set()
            thread.join()
        assert not errors
        assert len(KnowledgeDB.load(path)) >= 1


class TestDecideManyAliasing:
    """The duplicate-submission memoization must not alias decisions."""

    def test_duplicates_get_independent_phase_threads(self, warm_clip):
        app = get_app("comd")
        decisions = warm_clip.schedule_many([app, app, app], 1400.0)
        assert decisions[0] == decisions[1] == decisions[2]
        # distinct objects, distinct dicts
        assert decisions[0] is not decisions[1]
        assert decisions[1] is not decisions[2]
        assert decisions[0].phase_threads is not decisions[1].phase_threads
        # the regression: mutating one queued job's overrides must not
        # leak into its burst-mates
        decisions[0].phase_threads["main"] = 1
        assert "main" not in decisions[1].phase_threads
        assert "main" not in decisions[2].phase_threads
        # and the next burst starts clean
        fresh = warm_clip.schedule_many([app, app], 1400.0)
        assert "main" not in fresh[0].phase_threads
        assert "main" not in fresh[1].phase_threads

    def test_execution_configs_do_not_share_overrides(self, warm_clip):
        app = get_app("comd")
        a, b = warm_clip.schedule_many([app, app], 1400.0)
        cfg_a = a.to_execution_config()
        cfg_a.phase_threads["main"] = 2
        assert "main" not in b.to_execution_config().phase_threads
