"""Extension — energy and energy-delay-product comparison.

The paper optimizes time-to-solution under a power bound; since the
simulator meters every joule, this bench reports the energy side the
paper leaves implicit: CLIP's throttled configurations should not buy
their speed with disproportionate energy — for parabolic apps they are
*both* faster and more frugal (fewer wasted active cores).
"""

from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import render_table
from repro.workloads.apps import get_app
from conftest import run_once

APPS = ("comd", "bt-mz.C", "sp-mz.C", "tealeaf")
BUDGET_W = 1200.0
METHODS = ("All-In", "Coordinated", "CLIP")


def sweep(engine, schedulers):
    rows = []
    for name in APPS:
        app = get_app(name)
        for method in METHODS:
            result = schedulers[method].run(app, BUDGET_W, iterations=3)
            rows.append(
                [
                    name,
                    method,
                    result.performance,
                    result.energy_j / result.iterations,
                    result.edp,
                ]
            )
    return rows


def test_energy_efficiency(benchmark, engine, schedulers, report):
    rows = run_once(benchmark, lambda: sweep(engine, schedulers))

    report(
        "energy_efficiency",
        render_table(
            ["Benchmark", "Method", "it/s", "J per iteration", "EDP (J*s)"],
            rows,
            title=f"Extension — energy at a {BUDGET_W:.0f} W budget",
        ),
    )

    cell = {(r[0], r[1]): r for r in rows}

    # parabolic apps: CLIP is faster AND cheaper per iteration than the
    # all-core methods (idle-beyond-knee cores burn watts for nothing)
    for name in ("sp-mz.C", "tealeaf"):
        clip = cell[(name, "CLIP")]
        for other in ("All-In", "Coordinated"):
            assert clip[2] > cell[(name, other)][2], (name, other)
            assert clip[3] < cell[(name, other)][3] * 1.02, (name, other)

    # EDP: CLIP has the best geomean across the mix
    edp_geo = {
        m: geometric_mean([cell[(n, m)][4] for n in APPS]) for m in METHODS
    }
    assert edp_geo["CLIP"] == min(edp_geo.values()), edp_geo
