"""Manufacturing variability across nodes.

Nominally identical parts differ in leakage and efficiency; under a
uniform power cap that variation becomes a *performance* variation and
inflates synchronization cost (Inadomi et al., SC'15 [20], which the
paper adopts in §III-B.2).  We model it as a per-node multiplicative
efficiency factor applied to PKG and DRAM power: a node with factor
1.05 burns 5 % more power for the same work, so under the same cap it
runs proportionally slower.

Factors are drawn once per cluster from a truncated normal and are
deterministic in the seed, so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpecError
from repro.units import check_non_negative

__all__ = ["VariabilityModel"]


class VariabilityModel:
    """Per-node power-efficiency multipliers for a cluster."""

    #: Truncation width: factors stay within 3 sigma of 1.0.
    TRUNCATION_SIGMAS = 3.0

    def __init__(self, n_nodes: int, sigma: float = 0.03, seed: int = 2017):
        if n_nodes < 1:
            raise SpecError(f"n_nodes must be >= 1, got {n_nodes}")
        check_non_negative(sigma, "sigma")
        if sigma >= 0.5:
            raise SpecError("sigma >= 0.5 would allow non-physical factors")
        self._n_nodes = n_nodes
        self._sigma = sigma
        self._seed = seed
        rng = np.random.default_rng(seed)
        width = self.TRUNCATION_SIGMAS * sigma
        raw = rng.normal(loc=1.0, scale=sigma, size=n_nodes) if sigma > 0 else np.ones(n_nodes)
        self._factors = np.clip(raw, 1.0 - width, 1.0 + width)

    @property
    def n_nodes(self) -> int:
        """Number of nodes the model covers."""
        return self._n_nodes

    @property
    def sigma(self) -> float:
        """Relative standard deviation of the efficiency factors."""
        return self._sigma

    @property
    def seed(self) -> int:
        """Seed the factors were drawn with."""
        return self._seed

    @property
    def factors(self) -> np.ndarray:
        """Efficiency multipliers, one per node (copy)."""
        return self._factors.copy()

    def factor_of(self, node: int) -> float:
        """Efficiency multiplier of one node."""
        if not 0 <= node < self._n_nodes:
            raise SpecError(f"node {node} outside [0, {self._n_nodes})")
        return float(self._factors[node])

    @property
    def spread(self) -> float:
        """Max-to-min factor ratio minus one.

        This is the statistic CLIP compares against its coordination
        threshold (§III-B.2): when the spread is below the threshold
        the testbed is "quite homogeneous" and no inter-node shifting
        is performed.
        """
        return float(self._factors.max() / self._factors.min() - 1.0)

    def slowdown_under_uniform_cap(self) -> np.ndarray:
        """Relative per-node slowdown when all nodes share one cap.

        Under a cap, deliverable frequency scales roughly inversely
        with the efficiency factor (more watts per unit of work means a
        lower sustainable operating point), so the least efficient node
        paces every bulk-synchronous step.
        """
        return self._factors / self._factors.min()
