"""Contract tests for the clip-sched serve daemon."""
