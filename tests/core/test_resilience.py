"""Chaos acceptance sweep: the self-healing enforcement story end to end.

Scripts combining fallible actuation, lying sensors, node churn, and
budget swings drive journaled, watchdog-guarded runtimes on the mixed
CPU testbed and the mixed CPU+GPU fleet.  The acceptance bar:

* every job completes (no scenario wedges the runtime);
* the shared :class:`BudgetInvariantMonitor` ledger stays clean —
  every cap set, including the watchdog's corrective ones, respects
  the budget it was planned against;
* a scripted mid-flight crash restores from the journal bit-identically
  (``RunningJob`` state and monitor records exactly) and resumes the
  *same* fault script to completion;
* a corrupt knowledge database degrades to profile-from-scratch
  instead of crashing the drain.

Shared immutable state is module-cached (hypothesis-style) because
training the inflection predictor dominates the suite's runtime.
"""

import pytest

from repro.core.jobqueue import PowerBoundedJobQueue
from repro.core.knowledge import KnowledgeDB
from repro.core.runtime import PowerBoundedRuntime
from repro.core.scheduler import ClipScheduler
from repro.core.watchdog import EnforcementGuard, PowerEnforcementWatchdog
from repro.errors import KnowledgeError, RuntimeCrashError
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import mixed_gpu_testbed, mixed_testbed
from repro.sim.engine import ExecutionEngine
from repro.sim.faults import FaultEvent, FaultInjector, run_scripted
from repro.workloads.apps import get_app

_STATE: dict = {}


def _inflection():
    if "inflection" not in _STATE:
        from repro.analysis.experiments import build_trained_inflection

        _STATE["inflection"] = build_trained_inflection(
            ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        )
    return _STATE["inflection"]


def scheduler(kind: str) -> ClipScheduler:
    """Module-cached scheduler per testbed kind, reset for reuse."""
    if kind not in _STATE:
        spec = {"mixed": mixed_testbed, "mixed-gpu": mixed_gpu_testbed}[kind]()
        engine = ExecutionEngine(SimulatedCluster(spec), seed=42)
        _STATE[kind] = ClipScheduler(engine, inflection=_inflection())
    clip = _STATE[kind]
    clip.engine.cluster.reset()
    clip.monitor.reset()
    return clip


#: Chaos scripts: actuation faults x sensor faults x churn x budget
#: swings.  Each entry is (name, events) — timings are in simulated
#: seconds of job runtime, early enough to fire on every scenario.
CHAOS_SCRIPTS = (
    (
        "drift+noise",
        [
            FaultEvent(at_s=0.0, action="cap_drift", factor=0.20, seed=21),
            FaultEvent(at_s=0.0, action="sensor_noise", factor=0.03, seed=22),
        ],
    ),
    (
        "drops+stale+swing",
        [
            FaultEvent(at_s=0.0, action="cap_write_fail", factor=0.5, seed=23),
            FaultEvent(at_s=0.3, action="sensor_stale", factor=2, seed=24),
            FaultEvent(at_s=0.6, action="set_budget", budget_w=0.85),
            FaultEvent(at_s=1.2, action="set_budget", budget_w=1.0),
        ],
    ),
    (
        "churn+drift+swing",
        [
            FaultEvent(at_s=0.0, action="cap_drift", factor=0.15, seed=25),
            FaultEvent(at_s=0.3, action="fail_node", node_id=1),
            FaultEvent(at_s=0.6, action="set_budget", budget_w=0.8),
            FaultEvent(at_s=0.9, action="recover_node", node_id=1),
            FaultEvent(at_s=1.2, action="set_budget", budget_w=1.0),
        ],
    ),
)


def _resolve_budgets(events, budget_w):
    """Scale the scripts' fractional ``set_budget`` values to watts."""
    out = []
    for e in events:
        if e.action == "set_budget":
            out.append(
                FaultEvent(
                    at_s=e.at_s, action="set_budget",
                    budget_w=e.budget_w * budget_w,
                )
            )
        else:
            out.append(e)
    return out


def _run_chaos(kind, app_name, budget_w, events, tmp_path, name):
    clip = scheduler(kind)
    journal = tmp_path / f"{name}.journal"
    runtime = PowerBoundedRuntime(clip, journal=journal)
    dog = PowerEnforcementWatchdog(runtime)
    injector = FaultInjector(
        clip.engine.cluster,
        _resolve_budgets(events, budget_w),
        budget_w=budget_w,
    )
    job = runtime.launch(
        get_app(app_name), budget_w, n_nodes=6,
        allow_concurrency_change=True, allow_shrink=True,
    )
    run_scripted(runtime, job, injector, segment_iterations=10)
    assert job.done
    clip.monitor.assert_clean()
    return runtime, dog, job


class TestChaosSweepMixed:
    @pytest.mark.parametrize(
        "name,events", CHAOS_SCRIPTS, ids=[n for n, _ in CHAOS_SCRIPTS]
    )
    def test_mixed_fleet_survives(self, tmp_path, name, events):
        runtime, dog, job = _run_chaos(
            "mixed", "comd", 1050.0, events, tmp_path, name
        )
        rep = dog.report()
        assert rep["observations"] >= len(job.segments)
        # breaches, when provoked, are corrected within a few segments
        if rep["breaches"]:
            assert rep["max_breach_segments"] <= 6

    def test_drift_provokes_correction_on_mixed(self, tmp_path):
        _, dog, _ = _run_chaos(
            "mixed", "comd", 1050.0, CHAOS_SCRIPTS[0][1], tmp_path, "drift"
        )
        rep = dog.report()
        assert rep["breaches"] >= 1
        assert any(
            a in rep["actions"] for a in ("reissue", "recoordinate", "emergency")
        )


class TestChaosSweepMixedGpu:
    @pytest.mark.parametrize(
        "name,events", CHAOS_SCRIPTS, ids=[n for n, _ in CHAOS_SCRIPTS]
    )
    def test_gpu_fleet_survives(self, tmp_path, name, events):
        runtime, dog, job = _run_chaos(
            "mixed-gpu", "lulesh-gpu", 2000.0, events, tmp_path, name
        )
        # the decomposition spans both hardware classes: GPU slots get
        # three-domain cap tuples, CPU slots two-domain ones
        arities = sorted({len(c) for c in job.per_node_caps})
        assert arities == [2, 3]


class TestCrashReplay:
    def test_bit_identical_restore_and_resume(self, tmp_path):
        clip = scheduler("mixed")
        journal = tmp_path / "crash.journal"
        runtime = PowerBoundedRuntime(clip, journal=journal)
        PowerEnforcementWatchdog(runtime)
        injector = FaultInjector(
            clip.engine.cluster,
            [
                FaultEvent(at_s=0.0, action="cap_drift", factor=0.15, seed=31),
                FaultEvent(at_s=0.8, action="set_budget", budget_w=900.0),
                FaultEvent(at_s=1.2, action="crash"),
                FaultEvent(at_s=1.6, action="set_budget", budget_w=1050.0),
            ],
            budget_w=1050.0,
        )
        job = runtime.launch(
            get_app("comd"), 1050.0, n_nodes=6,
            allow_concurrency_change=True,
        )
        with pytest.raises(RuntimeCrashError):
            run_scripted(runtime, job, injector, segment_iterations=10)
        assert not job.done  # the crash interrupted the run
        pre_audits = list(clip.monitor.audits)

        clip.monitor.reset()
        restored = PowerBoundedRuntime.restore(journal, clip)
        dog2 = PowerEnforcementWatchdog(restored)
        assert len(restored.jobs) == 1
        job2 = restored.jobs[0]
        # bit-identity: every RunningJob field (dataclass equality
        # covers app, caps, segments) and every monitor record
        assert job2 == job
        assert list(clip.monitor.audits) == pre_audits

        # the same injector resumes the script past the crash
        run_scripted(restored, job2, injector, segment_iterations=10)
        assert job2.done
        assert job2.budget_w == pytest.approx(1050.0)  # final swing applied
        clip.monitor.assert_clean()
        assert dog2.report()["observations"] > 0

    def test_restore_into_fresh_scheduler(self, tmp_path):
        clip = scheduler("mixed")
        journal = tmp_path / "fresh.journal"
        runtime = PowerBoundedRuntime(clip, journal=journal)
        job = runtime.launch(get_app("comd"), 1050.0, n_nodes=4)
        runtime.advance(job, 10)
        pre_audits = list(clip.monitor.audits)

        spec = mixed_testbed()
        fresh = ClipScheduler(
            ExecutionEngine(SimulatedCluster(spec), seed=42),
            inflection=_inflection(),
        )
        restored = PowerBoundedRuntime.restore(journal, fresh, reattach=False)
        assert restored.jobs[0] == job
        assert list(fresh.monitor.audits) == pre_audits


class TestKnowledgeDegradation:
    def test_corrupt_db_degrades_to_profiling(self, tmp_path):
        path = tmp_path / "knowledge.json"
        path.write_text('{"version": 1, "entries": [{"profile":')  # truncated
        with pytest.raises(KnowledgeError) as err:
            KnowledgeDB.load(path)
        assert err.value.path == str(path)

        db = KnowledgeDB.load_or_fresh(path)
        assert len(db) == 0
        assert db.load_error is not None
        assert db.load_error.path == str(path)

        # the drain completes on the empty database — profiling from
        # scratch instead of crashing mid-queue — and repopulates it
        clip = scheduler("mixed")
        clip_fresh = ClipScheduler(
            clip.engine, inflection=_inflection(), knowledge=db
        )
        queue = PowerBoundedJobQueue(clip_fresh)
        report = queue.drain(
            [get_app("comd"), get_app("stream")], 1200.0, iterations=2,
            guard=EnforcementGuard(),
        )
        assert len(report.jobs) == 2
        assert len(db) >= 1
        clip_fresh.monitor.assert_clean()
