"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables or perturbs one ingredient of CLIP and measures
the consequence on the evaluation sweep, so the contribution of each
design choice is quantified rather than asserted.
"""

import numpy as np
import pytest

from repro.analysis.experiments import ClipSchedulerAdapter, compare_methods
from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import render_table
from repro.core.classify import classify_ratio
from repro.core.knowledge import KnowledgeDB
from repro.core.perfmodel import PerformancePredictor
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import TABLE2_APPS, get_app
from repro.workloads.model import true_scalability_class
from conftest import run_once

APPS = list(TABLE2_APPS)
BUDGETS = [1000.0, 1600.0]


def _clip_geomean(engine, clip, iterations=3):
    """Geomean relative performance of one CLIP variant over the sweep."""
    adapter = ClipSchedulerAdapter(engine, clip)
    comp = compare_methods(
        engine, APPS, BUDGETS, {"CLIP": adapter}, iterations=iterations
    )
    return geometric_mean([c.relative for c in comp.by_method("CLIP")])


def test_ablation_classification_threshold(benchmark, engine, report):
    """Sweep the 0.7 linear/logarithmic threshold (§III-A.1)."""

    def sweep():
        node = engine.cluster.spec.node
        profiler = SmartProfiler(engine)
        profiles = {a.name: profiler.profile(a) for a in APPS}
        truth = {a.name: true_scalability_class(a, node) for a in APPS}
        rows = []
        for thr in (0.5, 0.6, 0.7, 0.8, 0.9):
            correct = sum(
                classify_ratio(
                    p.half_run.perf, p.all_run.perf, linear_threshold=thr
                ).value
                == truth[name]
                for name, p in profiles.items()
            )
            rows.append([thr, correct, len(APPS)])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_threshold",
        render_table(
            ["linear threshold", "correct classes", "of"],
            rows,
            title="Ablation — classification threshold sweep",
        ),
    )
    by_thr = {r[0]: r[1] for r in rows}
    # the paper's 0.7 is (one of) the best settings; extremes lose apps
    assert by_thr[0.7] == max(by_thr.values())
    assert by_thr[0.5] < by_thr[0.7] or by_thr[0.9] < by_thr[0.7]


def test_ablation_piecewise_vs_single_model(benchmark, engine, trained_inflection, report):
    """Eq. 2-3 piecewise vs a single Eq.-1 hyperbola for non-linear apps."""

    def sweep():
        profiler = SmartProfiler(engine)
        f_nom = engine.cluster.spec.node.socket.f_nominal
        rows = []
        for name in ("bt-mz.C", "sp-mz.C", "tealeaf", "cloverleaf.128"):
            app = get_app(name)
            profile = profiler.profile(app)
            np_pred = trained_inflection.predict(profile)
            confirmed = profiler.confirm(app, profile, np_pred)
            piecewise = PerformancePredictor(confirmed, np_pred)
            single = PerformancePredictor(profile, None)
            errs = {"piecewise": [], "single": []}
            for n in (4, 8, 16, 20):
                actual = engine.run(
                    app,
                    ExecutionConfig(
                        n_nodes=1, n_threads=n, iterations=3,
                        affinity=profile.affinity, frequency_hz=f_nom,
                    ),
                ).nodes[0].t_iter_s
                errs["piecewise"].append(
                    abs(piecewise.predict_time(n) - actual) / actual
                )
                errs["single"].append(
                    abs(single.predict_time(n) - actual) / actual
                )
            rows.append(
                [name, float(np.mean(errs["piecewise"])), float(np.mean(errs["single"]))]
            )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_piecewise",
        render_table(
            ["Benchmark", "piecewise mean rel err", "single-model mean rel err"],
            rows,
            title="Ablation — piecewise (Eq. 2-3) vs single hyperbola (Eq. 1)",
        ),
    )
    mean_pw = np.mean([r[1] for r in rows])
    mean_single = np.mean([r[2] for r in rows])
    assert mean_pw <= mean_single * 1.05, (mean_pw, mean_single)
    assert mean_pw < 0.25


def test_ablation_even_concurrency_flooring(benchmark, engine, report):
    """The paper floors NP to even values; measure the odd penalty."""

    def sweep():
        rows = []
        for name in ("sp-mz.C", "bt-mz.C"):
            app = get_app(name)
            for n_even in (12, 14, 16):
                even = engine.run(
                    app, ExecutionConfig(n_nodes=1, n_threads=n_even, iterations=3)
                ).performance
                odd = engine.run(
                    app,
                    ExecutionConfig(n_nodes=1, n_threads=n_even + 1, iterations=3),
                ).performance
                rows.append([name, n_even, even, odd, even / odd])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_even_floor",
        render_table(
            ["Benchmark", "n (even)", "perf(n)", "perf(n+1)", "even/odd"],
            rows,
            title="Ablation — even vs odd concurrency",
        ),
    )
    # odd counts never pay off despite having one more thread
    assert np.mean([r[4] for r in rows]) >= 0.99


def test_ablation_variability_coordination(benchmark, trained_inflection, report):
    """Inter-node power shifting on a high-variability cluster (§III-B.2)."""
    from repro.hw.cluster import SimulatedCluster
    from repro.sim.engine import ExecutionEngine

    def sweep():
        rows = []
        for sigma in (0.0, 0.08):
            engine = ExecutionEngine(
                SimulatedCluster.testbed(variability_sigma=sigma), seed=42
            )
            on = ClipScheduler(
                engine, inflection=trained_inflection, knowledge=KnowledgeDB()
            )
            off = ClipScheduler(
                engine,
                inflection=trained_inflection,
                knowledge=KnowledgeDB(),
                variability_threshold=999.0,  # never engages
            )
            for name in ("comd", "bt-mz.C"):
                app = get_app(name)
                _, r_on = on.run(app, 1200.0, iterations=3)
                _, r_off = off.run(app, 1200.0, iterations=3)
                rows.append(
                    [sigma, name, r_on.performance, r_off.performance,
                     r_on.imbalance, r_off.imbalance]
                )
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_variability",
        render_table(
            ["sigma", "Benchmark", "perf coordinated", "perf uniform",
             "imbalance coord", "imbalance unif"],
            rows,
            title="Ablation — variability-aware power coordination",
        ),
    )
    # on the high-variability cluster, coordination reduces imbalance
    hi = [r for r in rows if r[0] == 0.08]
    assert np.mean([r[4] for r in hi]) <= np.mean([r[5] for r in hi]) + 1e-9
    # and never loses performance on the homogeneous one
    lo = [r for r in rows if r[0] == 0.0]
    for r in lo:
        assert r[2] == pytest.approx(r[3], rel=0.02)


def test_ablation_profiling_budget(benchmark, engine, trained_inflection, report):
    """2-sample vs 3-sample smart profiling vs the no-profiling default."""

    def sweep():
        # 3-sample CLIP (normal), vs forcing linear treatment
        # (2 samples, no NP confirmation) for everything
        full = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        rows = []
        for name in ("sp-mz.C", "tealeaf", "comd"):
            app = get_app(name)
            d_full, r_full = full.run(app, 1200.0, iterations=3)
            n_samples = full.knowledge.get(app.name, app.problem_size).profile.n_samples
            rows.append([name, n_samples, r_full.performance, d_full.n_threads])
        return rows

    rows = run_once(benchmark, sweep)
    report(
        "ablation_profiling",
        render_table(
            ["Benchmark", "profiling samples", "performance", "chosen threads"],
            rows,
            title="Ablation — smart profiling sample counts actually used",
        ),
    )
    by_name = {r[0]: r for r in rows}
    # linear apps need only 2 samples; non-linear need the confirmation
    assert by_name["comd"][1] == 2
    assert by_name["sp-mz.C"][1] == 3
    assert by_name["tealeaf"][1] == 3
