"""Tests for classification and the Smart Profiling Module."""

import pytest
from hypothesis import given, strategies as st

from repro.core.classify import (
    LINEAR_THRESHOLD,
    PARABOLIC_THRESHOLD,
    ScalabilityClass,
    classify_ratio,
)
from repro.core.profile import SmartProfiler
from repro.errors import ProfilingError
from repro.hw.numa import AffinityKind
from repro.workloads.apps import get_app
from repro.workloads.model import true_scalability_class


class TestClassifyRatio:
    def test_linear_below_threshold(self):
        assert classify_ratio(0.5, 1.0) is ScalabilityClass.LINEAR

    def test_logarithmic_band(self):
        assert classify_ratio(0.85, 1.0) is ScalabilityClass.LOGARITHMIC

    def test_parabolic_at_one(self):
        assert classify_ratio(1.0, 1.0) is ScalabilityClass.PARABOLIC

    def test_boundary_exactly_at_07(self):
        assert classify_ratio(0.7, 1.0) is ScalabilityClass.LOGARITHMIC

    def test_custom_thresholds(self):
        assert (
            classify_ratio(0.75, 1.0, linear_threshold=0.8)
            is ScalabilityClass.LINEAR
        )

    def test_rejects_nonpositive_perf(self):
        with pytest.raises(ProfilingError):
            classify_ratio(0.0, 1.0)
        with pytest.raises(ProfilingError):
            classify_ratio(1.0, -1.0)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ProfilingError):
            classify_ratio(0.5, 1.0, linear_threshold=1.2, parabolic_threshold=1.0)

    def test_nonlinearity_flag(self):
        assert not ScalabilityClass.LINEAR.is_nonlinear
        assert ScalabilityClass.LOGARITHMIC.is_nonlinear
        assert ScalabilityClass.PARABOLIC.is_nonlinear

    @given(st.floats(min_value=1e-6, max_value=10.0))
    def test_partition_is_total(self, ratio):
        cls = classify_ratio(ratio, 1.0)
        if ratio < LINEAR_THRESHOLD:
            assert cls is ScalabilityClass.LINEAR
        elif ratio < PARABOLIC_THRESHOLD:
            assert cls is ScalabilityClass.LOGARITHMIC
        else:
            assert cls is ScalabilityClass.PARABOLIC


class TestSmartProfiler:
    def test_profile_has_two_samples(self, engine, profiler):
        profile = profiler.profile(get_app("comd"))
        assert profile.n_samples == 2
        assert profile.all_run.n_threads == 24
        assert profile.half_run.n_threads == 12

    def test_profile_matches_ground_truth_class(self, engine, profiler):
        node = engine.cluster.spec.node
        for name in ("comd", "bt-mz.C", "sp-mz.C", "tealeaf", "minimd"):
            app = get_app(name)
            profile = profiler.profile(app)
            assert (
                profile.scalability_class.value
                == true_scalability_class(app, node)
            ), name

    def test_memory_intensive_detection(self, profiler):
        assert profiler.profile(get_app("stream")).memory_intensive
        assert not profiler.profile(get_app("ep.C")).memory_intensive

    def test_affinity_preference(self, profiler):
        # memory-intensive apps scatter, compute-bound apps pack
        assert profiler.profile(get_app("tealeaf")).affinity is AffinityKind.SCATTER
        assert profiler.profile(get_app("ep.C")).affinity is AffinityKind.COMPACT

    def test_event7_filled_on_both_runs(self, profiler):
        p = profiler.profile(get_app("comd"))
        assert p.all_run.events.event7 > 0
        assert p.all_run.events.event7 == p.half_run.events.event7

    def test_dual_frequency_measurements(self, profiler):
        p = profiler.profile(get_app("comd"))
        assert p.all_run.frequency_lo_hz < p.all_run.frequency_hz
        assert p.all_run.pkg_lo_w < p.all_run.pkg_w

    def test_confirm_adds_third_sample(self, profiler):
        app = get_app("sp-mz.C")
        p = profiler.profile(app)
        p3 = profiler.confirm(app, p, 14)
        assert p3.n_samples == 3
        assert p3.confirm_run.n_threads == 14
        runs = p3.sample_runs()
        assert [r.n_threads for r in runs] == [12, 14, 24]

    def test_confirm_rejects_wrong_app(self, profiler):
        p = profiler.profile(get_app("comd"))
        with pytest.raises(ProfilingError):
            profiler.confirm(get_app("amg"), p, 12)

    def test_confirm_rejects_bad_threads(self, profiler):
        app = get_app("comd")
        p = profiler.profile(app)
        with pytest.raises(ProfilingError):
            profiler.confirm(app, p, 0)

    def test_feature_vector_shape(self, profiler):
        p = profiler.profile(get_app("comd"))
        feats = p.feature_vector()
        assert feats.shape == (12,)

    def test_feature_vector_scale_free(self, profiler):
        # features must not depend on profiling length
        import dataclasses

        app = get_app("comd")
        short = SmartProfiler(profiler._engine, iterations=3).profile(app)
        long = SmartProfiler(profiler._engine, iterations=9).profile(app)
        import numpy as np

        np.testing.assert_allclose(
            short.feature_vector(), long.feature_vector(), rtol=0.05
        )

    def test_ratio_property(self, profiler):
        p = profiler.profile(get_app("comd"))
        assert p.ratio == pytest.approx(p.half_run.perf / p.all_run.perf)

    def test_rejects_zero_iterations(self, engine):
        with pytest.raises(ProfilingError):
            SmartProfiler(engine, iterations=0)
