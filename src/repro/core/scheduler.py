"""Algorithm 1: the CLIP power-bounded scheduler, end to end.

A thin facade over the shared staged pipeline
(:mod:`repro.core.pipeline`), which composes every piece of the
framework:

1. look the job up in the knowledge database; on a miss, smart-profile
   it (and, for non-linear classes, predict NP and run the
   confirmation sample);
2. fit the performance and power models from the profile and derive
   the acceptable per-node power range (cached per knowledge entry as
   a :class:`~repro.core.pipeline.ModelBundle`);
3. choose the node count and per-node budgets (cluster level,
   variability-coordinated);
4. recommend the per-node configuration — threads, affinity, CPU/DRAM
   caps — for each node's budget.

:meth:`ClipScheduler.schedule` returns the decision;
:meth:`ClipScheduler.schedule_traced` additionally returns the
per-stage :class:`~repro.core.pipeline.DecisionTrace`;
:meth:`ClipScheduler.schedule_many` decides a whole batch of jobs on
the shared caches; :meth:`ClipScheduler.run` executes a decision on
the simulated testbed and returns the
:class:`~repro.sim.trace.RunResult`.
"""

from __future__ import annotations

import random
import threading
from dataclasses import replace

import numpy as np

from repro.core.coordination import VARIABILITY_THRESHOLD, measure_node_factors
from repro.core.inflection import InflectionPredictor
from repro.core.knowledge import KnowledgeDB, KnowledgeEntry, budget_band
from repro.core.learning import LearningConfig, empirical_best_nodes
from repro.core.pipeline import (
    DecisionPipeline,
    DecisionTrace,
    SchedulingDecision,
)
from repro.core.profile import SmartProfiler
from repro.errors import SchedulingError
from repro.sim.engine import ExecutionEngine
from repro.sim.trace import RunResult
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["SchedulingDecision", "ClipScheduler"]

#: Node counts considered around the model's pick when exploring.
EXPLORE_WINDOW = 2


class ClipScheduler:
    """The cluster-level intelligent power coordination system."""

    def __init__(
        self,
        engine: ExecutionEngine,
        inflection: InflectionPredictor,
        knowledge: KnowledgeDB | None = None,
        profiler: SmartProfiler | None = None,
        calibrate_variability: bool = True,
        variability_threshold: float = VARIABILITY_THRESHOLD,
        learning: LearningConfig | None = None,
    ):
        self._engine = engine
        factors = (
            measure_node_factors(engine)
            if calibrate_variability
            else np.ones(engine.cluster.n_nodes)
        )
        self._learning = learning if learning is not None else LearningConfig()
        self._pipeline = DecisionPipeline(
            engine,
            inflection,
            knowledge=knowledge,
            profiler=profiler,
            node_factors=factors,
            variability_threshold=variability_threshold,
            learning=self._learning,
        )
        # epsilon-greedy state (touched only when learning is enabled)
        self._rng = random.Random(self._learning.seed)
        self._learn_lock = threading.Lock()
        #: near-tie node counts per (entry key, model version, band)
        self._tie_cache: dict[tuple, tuple[int, ...]] = {}
        #: exploit decisions per (entry key, model version, budget, n)
        self._exploit_cache: dict[tuple, SchedulingDecision] = {}
        #: converged decisions per (key, version, observed_total,
        #: budget) — the warm path once a cell stops exploring; any
        #: new observation changes observed_total and misses the cache
        self._decision_cache: dict[tuple, SchedulingDecision] = {}

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine decisions are made for."""
        return self._engine

    @property
    def pipeline(self) -> DecisionPipeline:
        """The staged decision pipeline (shared with other consumers)."""
        return self._pipeline

    @property
    def knowledge(self) -> KnowledgeDB:
        """The knowledge database (shared, persistable)."""
        return self._pipeline.knowledge

    @property
    def monitor(self):
        """The shared budget-invariant auditor (the pipeline's ledger)."""
        return self._pipeline.monitor

    @property
    def node_factors(self) -> np.ndarray:
        """Calibrated per-node power-efficiency factors."""
        return self._pipeline.node_factors

    @property
    def learning(self) -> LearningConfig:
        """The closed-loop learning configuration (off by default)."""
        return self._learning

    # ------------------------------------------------------------------

    def ensure_knowledge(self, app: WorkloadCharacteristics) -> KnowledgeEntry:
        """Return the app's knowledge entry, profiling on a miss.

        Profiling is the 2-sample smart profile, plus — for non-linear
        classes — the NP prediction and the confirmation sample.
        """
        return self._pipeline.ensure_knowledge(app)

    def schedule(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> SchedulingDecision:
        """Run Algorithm 1 and return the decision (no execution).

        With learning enabled the model's decision may be overridden by
        the epsilon-greedy bandit (see :meth:`_learned_decision`); with
        the default learning-off configuration the pipeline's answer is
        returned untouched — bit-identical to previous releases.
        """
        decision = self._pipeline.decide(
            app,
            cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )
        if (
            self._learning.enabled
            and predefined_node_counts is None
            and allocation_mode == "predictive"
        ):
            decision = self._learned_decision(
                app, cluster_budget_w, allocation_mode, decision
            )
        return decision

    # -- epsilon-greedy exploration ------------------------------------

    def _learned_decision(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        allocation_mode: str,
        decision: SchedulingDecision,
    ) -> SchedulingDecision:
        """Second opinion on the model's pick, from execution history.

        Per (app, budget-band, testbed) cell: while the cell has fewer
        than ``confident_observations`` outcomes, explore — with
        probability epsilon, re-decide at the least-observed *near-tie*
        node count (predicted performance within ``tie_margin`` of the
        model's pick) and mark the decision ``explored``.  Once the
        cell is confident, exploit — if some observed node count
        measurably beats the model's choice by ``exploit_margin``, pin
        it (decisions cached, so the warm path stays cheap).  Every
        path returns a decision that went through the full pipeline,
        so per-node budgets always audit clean.
        """
        kb = self._pipeline.knowledge
        if not kb.has(app.name, app.problem_size):
            return decision
        entry = kb.get(app.name, app.problem_size)
        cfg = self._learning
        memo_key = (
            entry.key,
            entry.model_version,
            entry.observed_total,
            float(cluster_budget_w),
        )
        with self._learn_lock:
            memoized = self._decision_cache.get(memo_key)
        if memoized is not None:
            return replace(
                memoized, phase_threads=dict(memoized.phase_threads)
            )
        cell = entry.cell_observations(
            cluster_budget_w, self._pipeline.testbed
        )
        if len(cell) >= cfg.confident_observations:
            final = self._exploit(
                app, entry, cluster_budget_w, allocation_mode, decision, cell
            )
            # the exploit verdict is a pure function of the history;
            # memoize it so the converged warm path costs one lookup
            with self._learn_lock:
                self._decision_cache[memo_key] = final
            return replace(final, phase_threads=dict(final.phase_threads))
        with self._learn_lock:
            roll = self._rng.random()
        if roll >= cfg.epsilon:
            return decision
        ties = self._near_ties(
            app, entry, cluster_budget_w, allocation_mode, decision
        )
        if not ties:
            return decision
        # visit the least-observed alternative first
        counts = {n: sum(1 for o in cell if o.n_nodes == n) for n in ties}
        least = min(counts.values())
        with self._learn_lock:
            pick = self._rng.choice(
                [n for n in ties if counts[n] == least]
            )
        alt = self._pipeline.decide(
            app,
            cluster_budget_w,
            predefined_node_counts=(pick,),
            allocation_mode=allocation_mode,
        )
        self._pipeline.count_exploration()
        return replace(alt, explored=True)

    def _near_ties(
        self,
        app: WorkloadCharacteristics,
        entry: KnowledgeEntry,
        cluster_budget_w: float,
        allocation_mode: str,
        decision: SchedulingDecision,
    ) -> tuple[int, ...]:
        """Node counts near the model's pick with near-tie predictions."""
        key = (
            entry.key,
            entry.model_version,
            budget_band(cluster_budget_w),
        )
        with self._learn_lock:
            cached = self._tie_cache.get(key)
        if cached is not None:
            return cached
        max_nodes = self._engine.cluster.n_nodes
        floor_perf = decision.predicted_perf * (
            1.0 - self._learning.tie_margin
        )
        ties: list[int] = []
        lo = max(1, decision.n_nodes - EXPLORE_WINDOW)
        hi = min(max_nodes, decision.n_nodes + EXPLORE_WINDOW)
        for n in range(lo, hi + 1):
            if n == decision.n_nodes:
                continue
            try:
                alt = self._pipeline.decide(
                    app,
                    cluster_budget_w,
                    predefined_node_counts=(n,),
                    allocation_mode=allocation_mode,
                )
            except SchedulingError:
                continue
            if alt.predicted_perf >= floor_perf:
                ties.append(n)
        result = tuple(ties)
        with self._learn_lock:
            self._tie_cache[key] = result
        return result

    def _exploit(
        self,
        app: WorkloadCharacteristics,
        entry: KnowledgeEntry,
        cluster_budget_w: float,
        allocation_mode: str,
        decision: SchedulingDecision,
        cell: tuple,
    ) -> SchedulingDecision:
        """Pin the empirically best node count once a cell is confident."""
        cfg = self._learning
        best, groups = empirical_best_nodes(
            cell, cfg.min_config_observations
        )
        if best is None or best == decision.n_nodes:
            return decision
        model_stats = groups.get(decision.n_nodes)
        if (
            model_stats is not None
            and model_stats[0] >= cfg.min_config_observations
            and groups[best][1]
            < model_stats[1] * (1.0 + cfg.exploit_margin)
        ):
            # the challenger's measured edge is within noise — trust
            # the model
            return decision
        key = (
            entry.key,
            entry.model_version,
            float(cluster_budget_w),
            best,
        )
        with self._learn_lock:
            cached = self._exploit_cache.get(key)
        if cached is not None:
            # fresh phase_threads dict per issue, like decide_many
            return replace(
                cached, phase_threads=dict(cached.phase_threads)
            )
        alt = self._pipeline.decide(
            app,
            cluster_budget_w,
            predefined_node_counts=(best,),
            allocation_mode=allocation_mode,
        )
        with self._learn_lock:
            self._exploit_cache[key] = alt
        return alt

    def schedule_traced(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> tuple[SchedulingDecision, DecisionTrace]:
        """Like :meth:`schedule`, plus the per-stage decision trace."""
        return self._pipeline.decide_traced(
            app,
            cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )

    def schedule_many(
        self,
        apps: list[WorkloadCharacteristics],
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> list[SchedulingDecision]:
        """Decide a batch of jobs under one budget on the shared caches."""
        return self._pipeline.decide_many(
            apps,
            cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )

    def run(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        iterations: int | None = None,
        **schedule_kwargs,
    ) -> tuple[SchedulingDecision, RunResult]:
        """Schedule and execute the job on the simulated testbed.

        The measured outcome is reported back through the pipeline's
        :meth:`~repro.core.pipeline.DecisionPipeline.record_outcome`
        choke point, growing the knowledge entry's observation history
        (and, with learning enabled, feeding the refit policy).
        """
        decision = self.schedule(app, cluster_budget_w, **schedule_kwargs)
        result = self._engine.run(
            app, decision.to_execution_config(iterations=iterations)
        )
        self._pipeline.record_outcome(
            app, decision=decision, result=result, source="scheduler.run"
        )
        return decision, result
