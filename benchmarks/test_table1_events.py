"""Table I — the Haswell hardware events used as MLR predictors.

Regenerates the event table and verifies the reproduction actually
exercises each predictor: every event feeds the profile feature vector
consumed by the inflection regression, and the events respond to the
workload property they are meant to capture.
"""

from repro.analysis.tables import render_table
from repro.hw.counters import EVENT_NAMES
from repro.workloads.apps import get_app
from repro.core.profile import SmartProfiler
from conftest import run_once


def collect(engine):
    profiler = SmartProfiler(engine)
    return {
        name: profiler.profile(get_app(name))
        for name in ("ep.C", "stream", "bt-mz.C")
    }


def test_table1_events(benchmark, engine, report):
    profiles = run_once(benchmark, lambda: collect(engine))

    rows = [[key, desc] for key, desc in EVENT_NAMES.items()]
    table = render_table(
        ["Predictor", "Description"],
        rows,
        title="Table I — Haswell hardware events used for prediction",
    )
    report("table1", table)

    ep = profiles["ep.C"].all_run.events
    stream = profiles["stream"].all_run.events
    bt = profiles["bt-mz.C"].all_run.events

    # event0: icache pressure — the multizone solver has the largest
    # front-end footprint
    assert bt.event0 / bt.event6 > ep.event0 / ep.event6

    # event1+2: memory bandwidth separates STREAM from EP by orders of
    # magnitude
    assert stream.memory_bandwidth > 20 * ep.memory_bandwidth

    # event3/4: the scattered memory-bound run shows remote misses
    assert stream.event4 > 0
    assert stream.remote_miss_fraction > 0.01

    # event5/6: IPC is higher for the compute-bound code
    assert ep.ipc > stream.ipc

    # event7: the full/half performance ratio is populated on profiles
    assert profiles["ep.C"].all_run.events.event7 > 1.5  # linear: ~2x
    assert profiles["stream"].all_run.events.event7 < 1.5

    # all eight events enter the MLR feature path
    feats = profiles["bt-mz.C"].feature_vector()
    assert feats.shape == (12,)
