"""Unit tests for the real NumPy micro-kernels."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.kernels import (
    KernelMeasurement,
    characteristics_from_measurement,
    dgemm,
    jacobi2d,
    measure_kernel,
    triad,
)


class TestTriad:
    def test_computes_in_place(self):
        a = np.zeros(100)
        b = np.ones(100)
        c = np.full(100, 2.0)
        triad(a, b, c, scalar=3.0)
        np.testing.assert_allclose(a, 7.0)

    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            triad(np.zeros(3), np.zeros(4), np.zeros(3))


class TestDgemm:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.random((8, 5))
        b = rng.random((5, 7))
        np.testing.assert_allclose(dgemm(a, b), a @ b)

    def test_rejects_nonconformable(self):
        with pytest.raises(WorkloadError):
            dgemm(np.zeros((3, 4)), np.zeros((3, 4)))


class TestJacobi2d:
    def test_preserves_boundary(self):
        grid = np.zeros((8, 8))
        grid[0, :] = 1.0
        out = jacobi2d(grid, iterations=5)
        np.testing.assert_allclose(out[0, :], 1.0)

    def test_smooths_toward_mean(self):
        rng = np.random.default_rng(1)
        grid = rng.random((16, 16))
        out = jacobi2d(grid, iterations=50)
        assert out[1:-1, 1:-1].std() < grid[1:-1, 1:-1].std()

    def test_rejects_small_grid(self):
        with pytest.raises(WorkloadError):
            jacobi2d(np.zeros((2, 2)))

    def test_rejects_zero_iterations(self):
        with pytest.raises(WorkloadError):
            jacobi2d(np.zeros((8, 8)), iterations=0)

    def test_does_not_mutate_input(self):
        grid = np.ones((8, 8))
        grid[4, 4] = 5.0
        snapshot = grid.copy()
        jacobi2d(grid, iterations=3)
        np.testing.assert_array_equal(grid, snapshot)


class TestMeasurement:
    def test_measure_triad(self):
        n = 10_000
        a, b, c = np.zeros(n), np.ones(n), np.ones(n)
        m = measure_kernel("triad", triad, a, b, c)
        assert m.elapsed_s > 0
        assert m.flops == pytest.approx(2 * n)
        assert m.bytes_moved == pytest.approx(3 * n * 8)
        assert m.arithmetic_intensity < 1.0

    def test_measure_dgemm(self):
        a = np.ones((32, 32))
        m = measure_kernel("dgemm", dgemm, a, a)
        assert m.flops == pytest.approx(2 * 32**3)
        assert m.arithmetic_intensity > 1.0

    def test_measure_jacobi(self):
        m = measure_kernel("jacobi", jacobi2d, np.zeros((32, 32)), iterations=2)
        assert m.flops > 0
        assert m.bytes_moved > 0

    def test_rejects_zero_repeats(self):
        with pytest.raises(WorkloadError):
            measure_kernel("x", triad, np.zeros(4), np.zeros(4), np.zeros(4), repeats=0)

    def test_unknown_kernel_time_only(self):
        m = measure_kernel("custom", lambda: None)
        assert m.flops == 0.0


class TestConversion:
    def test_characteristics_from_triad(self):
        m = KernelMeasurement("triad", 0.01, flops=2e6, bytes_moved=2.4e7)
        chars = characteristics_from_measurement(m)
        assert chars.name == "kernel.triad"
        assert chars.is_memory_intensive

    def test_characteristics_from_dgemm_compute_bound(self):
        m = KernelMeasurement("dgemm", 0.01, flops=1e9, bytes_moved=1e7)
        chars = characteristics_from_measurement(m)
        assert not chars.is_memory_intensive

    def test_rejects_unmeasured(self):
        m = KernelMeasurement("x", 0.01, flops=0.0, bytes_moved=0.0)
        with pytest.raises(WorkloadError):
            characteristics_from_measurement(m)


class TestCgSolve:
    def _system(self, n=2000):
        import scipy.sparse as sp

        diag = np.full(n, 4.0)
        off = np.full(n - 1, -1.0)
        A = sp.diags([off, diag, off], [-1, 0, 1], format="csr")
        return A, np.ones(n)

    def test_converges_on_spd_system(self):
        from repro.workloads.kernels import cg_solve

        A, b = self._system()
        x = cg_solve(A, b, iterations=60)
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-8

    def test_rejects_shape_mismatch(self):
        from repro.workloads.kernels import cg_solve

        A, _ = self._system(100)
        with pytest.raises(WorkloadError):
            cg_solve(A, np.ones(50))

    def test_rejects_zero_iterations(self):
        from repro.workloads.kernels import cg_solve

        A, b = self._system(100)
        with pytest.raises(WorkloadError):
            cg_solve(A, b, iterations=0)

    def test_measurement_memory_bound(self):
        from repro.workloads.kernels import cg_solve

        A, b = self._system()
        m = measure_kernel("cg", cg_solve, A, b, iterations=10)
        assert m.flops > 0
        assert m.arithmetic_intensity < 1.0  # sparse matvec: bandwidth-bound


class TestFft2d:
    def test_roundtrip_identity(self):
        from repro.workloads.kernels import fft2d

        grid = np.random.default_rng(0).random((64, 64))
        np.testing.assert_allclose(fft2d(grid), grid, atol=1e-12)

    def test_rejects_1d(self):
        from repro.workloads.kernels import fft2d

        with pytest.raises(WorkloadError):
            fft2d(np.ones(16))

    def test_measurement_moderate_intensity(self):
        from repro.workloads.kernels import fft2d

        m = measure_kernel("fft", fft2d, np.ones((128, 128)))
        assert 0.5 < m.arithmetic_intensity < 20.0
