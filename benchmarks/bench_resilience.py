"""Resilience benchmark: watchdog overhead, correction latency, chaos audit.

Three measurements, written to ``BENCH_resilience.json`` at the
repository root:

* **steady-state overhead** — wall time of a warm no-fault job drained
  segment-by-segment on a bare runtime vs. one carrying the full
  resilience stack (journal + enforcement watchdog); the companion
  gate bounds the relative overhead;
* **breach-to-correction latency** — segments a drifting job spends
  out of band before the watchdog's escalation ladder pulls it back
  (the ``max_breach_segments`` episode statistic);
* **chaos audit** — the acceptance sweep's fault scripts (actuation x
  sensors x churn x budget swings) replayed on the mixed fleet; the
  budget-invariant monitor must stay clean throughout.

Run standalone with ``python benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.core.runtime import PowerBoundedRuntime
from repro.core.scheduler import ClipScheduler
from repro.core.watchdog import PowerEnforcementWatchdog
from repro.hw.actuation import FaultyActuation
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import mixed_testbed
from repro.sim.engine import ExecutionEngine
from repro.sim.faults import FaultEvent, FaultInjector, run_scripted
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_resilience.json"

BUDGET_W = 1200.0
SEGMENT_ITERS = 5
REPEATS = 3

#: The acceptance sweep's chaos scripts (mirrors tests/core/test_resilience).
CHAOS_SCRIPTS = (
    ("drift+noise", [
        FaultEvent(at_s=0.0, action="cap_drift", factor=0.20, seed=21),
        FaultEvent(at_s=0.0, action="sensor_noise", factor=0.03, seed=22),
    ]),
    ("drops+stale+swing", [
        FaultEvent(at_s=0.0, action="cap_write_fail", factor=0.5, seed=23),
        FaultEvent(at_s=0.3, action="sensor_stale", factor=2, seed=24),
        FaultEvent(at_s=0.6, action="set_budget", budget_w=0.85 * 1050.0),
        FaultEvent(at_s=1.2, action="set_budget", budget_w=1050.0),
    ]),
    ("churn+drift+swing", [
        FaultEvent(at_s=0.0, action="cap_drift", factor=0.15, seed=25),
        FaultEvent(at_s=0.3, action="fail_node", node_id=1),
        FaultEvent(at_s=0.6, action="set_budget", budget_w=0.8 * 1050.0),
        FaultEvent(at_s=0.9, action="recover_node", node_id=1),
        FaultEvent(at_s=1.2, action="set_budget", budget_w=1050.0),
    ]),
)


def _drain_segments(runtime, app) -> float:
    """Launch + drain one job in fixed segments; return the wall time."""
    start = time.perf_counter()
    job = runtime.launch(
        app, BUDGET_W, n_nodes=4, allow_concurrency_change=True
    )
    while not job.done:
        runtime.advance(job, SEGMENT_ITERS)
    return time.perf_counter() - start


def measure_overhead(clip) -> dict:
    """Warm-path wall time: bare runtime vs. journal + watchdog."""
    app = get_app("comd")
    # warm every cache (profiles, knowledge, engine) before timing
    clip.engine.cluster.reset()
    clip.monitor.reset()
    _drain_segments(PowerBoundedRuntime(clip), app)

    bare_s, guarded_s = [], []
    with tempfile.TemporaryDirectory() as tmp:
        for rep in range(REPEATS):
            clip.engine.cluster.reset()
            clip.monitor.reset()
            bare_s.append(_drain_segments(PowerBoundedRuntime(clip), app))

            clip.engine.cluster.reset()
            clip.monitor.reset()
            runtime = PowerBoundedRuntime(
                clip, journal=Path(tmp) / f"bench-{rep}.journal"
            )
            PowerEnforcementWatchdog(runtime)
            guarded_s.append(_drain_segments(runtime, app))
    best_bare = min(bare_s)
    best_guarded = min(guarded_s)
    return {
        "bare_s": best_bare,
        "guarded_s": best_guarded,
        "overhead_frac": best_guarded / best_bare - 1.0,
        "repeats": REPEATS,
        "segment_iterations": SEGMENT_ITERS,
    }


def measure_correction_latency(clip) -> dict:
    """Segments from breach to back-in-band under +25% silent drift."""
    clip.engine.cluster.reset()
    clip.monitor.reset()
    runtime = PowerBoundedRuntime(clip)
    dog = PowerEnforcementWatchdog(runtime)
    # 700 W binds comd's caps on the Haswell testbed, so the drift
    # genuinely overdraws and the ladder has work to do
    job = runtime.launch(get_app("comd"), 700.0, n_nodes=4, n_threads=24)
    for node_id in job.node_ids:
        clip.engine.cluster.node(node_id).rapl.actuation = FaultyActuation(
            seed=1, drift_prob=1.0, drift_frac=0.25
        )
    runtime.reissue_caps(job)
    while not job.done:
        runtime.advance(job, SEGMENT_ITERS)
    clip.monitor.assert_clean()
    rep = dog.report()
    return {
        "breaches": rep["breaches"],
        "episodes": rep["episodes"],
        "max_breach_segments": rep["max_breach_segments"],
        "mean_breach_segments": rep["mean_breach_segments"],
        "actions": rep["actions"],
        "n_violations": clip.monitor.n_violations,
    }


def run_chaos_sweep(mixed_clip) -> dict:
    """Replay the acceptance chaos scripts; collect the audit ledger."""
    scenarios = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name, events in CHAOS_SCRIPTS:
            mixed_clip.engine.cluster.reset()
            mixed_clip.monitor.reset()
            runtime = PowerBoundedRuntime(
                mixed_clip, journal=Path(tmp) / f"{name}.journal"
            )
            dog = PowerEnforcementWatchdog(runtime)
            injector = FaultInjector(
                mixed_clip.engine.cluster, events, budget_w=1050.0
            )
            job = runtime.launch(
                get_app("comd"), 1050.0, n_nodes=6,
                allow_concurrency_change=True, allow_shrink=True,
            )
            run_scripted(runtime, job, injector, segment_iterations=10)
            rep = dog.report()
            scenarios[name] = {
                "completed": job.done,
                "events_fired": len(injector.fired),
                "observations": rep["observations"],
                "breaches": rep["breaches"],
                "max_breach_segments": rep["max_breach_segments"],
                "n_audits": mixed_clip.monitor.n_audits,
                "n_violations": mixed_clip.monitor.n_violations,
            }
    return scenarios


def run_resilience_bench() -> dict:
    """All three measurements; writes ``BENCH_resilience.json``."""
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    inflection = build_trained_inflection(engine)
    clip = ClipScheduler(engine, inflection=inflection)
    mixed = ClipScheduler(
        ExecutionEngine(SimulatedCluster(mixed_testbed()), seed=42),
        inflection=inflection,
    )

    overhead = measure_overhead(clip)
    latency = measure_correction_latency(clip)
    chaos = run_chaos_sweep(mixed)
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "budget_w": BUDGET_W,
        "overhead": overhead,
        "correction_latency": latency,
        "chaos": chaos,
        "total_violations": latency["n_violations"]
        + sum(s["n_violations"] for s in chaos.values()),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_resilience_bench()
    print(json.dumps(payload, indent=2))
    return 1 if payload["total_violations"] else 0


if __name__ == "__main__":
    sys.exit(main())
