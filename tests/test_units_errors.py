"""Tests for the unit helpers and exception hierarchy."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import errors, units


class TestConversions:
    def test_ghz(self):
        assert units.ghz(2.3) == pytest.approx(2.3e9)

    def test_mhz(self):
        assert units.mhz(1200) == pytest.approx(1.2e9)

    def test_gbps(self):
        assert units.gbps(59.7) == pytest.approx(5.97e10)

    def test_roundtrips(self):
        assert units.as_ghz(units.ghz(1.8)) == pytest.approx(1.8)
        assert units.as_gbps(units.gbps(68.0)) == pytest.approx(68.0)

    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_ghz_roundtrip_property(self, v):
        assert units.as_ghz(units.ghz(v)) == pytest.approx(v)


class TestValidators:
    def test_watts_accepts_zero(self):
        assert units.watts(0.0) == 0.0

    def test_watts_rejects_negative(self):
        with pytest.raises(ValueError):
            units.watts(-1.0)

    def test_rejects_nan_and_inf(self):
        for bad in (math.nan, math.inf):
            with pytest.raises(ValueError):
                units.check_non_negative(bad, "x")

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            units.check_positive(0.0, "x")

    def test_check_fraction_bounds(self):
        assert units.check_fraction(0.0, "f") == 0.0
        assert units.check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            units.check_fraction(1.0001, "f")

    def test_error_message_carries_name(self):
        with pytest.raises(ValueError, match="bananas"):
            units.check_positive(-1.0, "bananas")

    def test_close(self):
        assert units.close(1.0, 1.0 + 1e-12)
        assert not units.close(1.0, 1.01)


class TestErrorHierarchy:
    def test_all_derive_from_clip_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ClipError), name

    def test_catchable_as_base(self):
        with pytest.raises(errors.ClipError):
            raise errors.InfeasibleBudgetError("no watts")

    def test_distinct_subsystem_errors(self):
        assert not issubclass(errors.SpecError, errors.WorkloadError)
        assert not issubclass(errors.ProfilingError, errors.PowerDomainError)

    def test_library_raises_its_own_types(self):
        from repro.workloads.apps import get_app

        with pytest.raises(errors.WorkloadError):
            get_app("definitely-not-an-app")
