"""Unit helpers and validation utilities.

The library works in SI base units throughout:

* power   — watts (W)
* energy  — joules (J)
* time    — seconds (s)
* frequency — hertz (Hz); convenience constructors accept GHz
* bandwidth — bytes/second; convenience constructors accept GB/s

Keeping everything in floats of SI units (rather than wrapper classes)
follows the HPC guideline of staying NumPy-friendly: arrays of watts can
be manipulated with vectorized arithmetic without boxing.  The helpers
here exist to make call sites self-documenting and to centralize
validation.
"""

from __future__ import annotations

import math

__all__ = [
    "GHZ",
    "MHZ",
    "GB",
    "MB",
    "KB",
    "ghz",
    "mhz",
    "gbps",
    "watts",
    "joules",
    "seconds",
    "as_ghz",
    "as_gbps",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "close",
]

GHZ = 1.0e9
MHZ = 1.0e6
GB = 1.0e9
MB = 1.0e6
KB = 1.0e3


def ghz(value: float) -> float:
    """Convert a frequency in GHz to Hz."""
    return float(value) * GHZ


def mhz(value: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return float(value) * MHZ


def gbps(value: float) -> float:
    """Convert a bandwidth in GB/s to bytes/s."""
    return float(value) * GB


def watts(value: float) -> float:
    """Identity with validation: power must be finite and non-negative."""
    return check_non_negative(float(value), "power")


def joules(value: float) -> float:
    """Identity with validation: energy must be finite and non-negative."""
    return check_non_negative(float(value), "energy")


def seconds(value: float) -> float:
    """Identity with validation: durations must be finite and non-negative."""
    return check_non_negative(float(value), "time")


def as_ghz(hz: float) -> float:
    """Convert Hz back to GHz for display."""
    return hz / GHZ


def as_gbps(bps: float) -> float:
    """Convert bytes/s back to GB/s for display."""
    return bps / GB


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is finite and strictly positive."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that *value* is finite and >= 0."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def close(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Tolerant float comparison used by invariant checks."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)
