"""API-quality meta tests.

Deliverable-level guarantees about the library surface itself: every
public module, class, and function is documented, exports resolve, and
the package presents a coherent top-level API.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.hw",
    "repro.workloads",
    "repro.sim",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        for info in pkgutil.iter_modules(pkg.__path__):
            if info.name == "__main__":
                continue  # importing it would exec the CLI
            yield importlib.import_module(f"{pkg_name}.{info.name}")


ALL_MODULES = list(iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 20, module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_callables_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if obj.__module__ != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
                if inspect.isclass(obj):
                    for mname, meth in inspect.getmembers(obj):
                        if mname.startswith("_"):
                            continue
                        if isinstance(
                            inspect.getattr_static(obj, mname), property
                        ):
                            target = inspect.getattr_static(obj, mname).fget
                        elif inspect.isfunction(meth):
                            target = meth
                        else:
                            continue
                        if target.__qualname__.split(".")[0] != obj.__name__:
                            continue  # inherited
                        if not (target.__doc__ and target.__doc__.strip()):
                            undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestExports:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_all_entries_resolve(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_top_level_surface(self):
        for name in (
            "ClipScheduler",
            "SimulatedCluster",
            "ExecutionEngine",
            "quickstart_scheduler",
            "ClipError",
            "__version__",
        ):
            assert hasattr(repro, name)

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
