"""Figure 8 — method comparison under HIGH power budgets.

Relative performance (normalized to unbounded All-In, §V-C) of All-In,
Lower-Limit, Coordinated [15], and CLIP across the Table-II benchmarks,
at budgets where every node can stay active.  The paper's observations
to reproduce here:

1. CLIP ~= All-In for most applications when the bound is high;
2. CLIP performs close to optimal at high budgets;
3. CLIP beats Coordinated on parabolic apps (SP-MZ, miniAero, TeaLeaf)
   — up to 60 % — because Coordinated runs past the inflection point.
"""

from repro.analysis.experiments import compare_methods
from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import render_table
from repro.workloads.apps import TABLE2_APPS
from conftest import run_once

HIGH_BUDGETS_W = (1600.0, 2000.0, 2400.0)
METHODS = ("All-In", "Lower-Limit", "Coordinated", "CLIP")
PARABOLIC = ("sp-mz.C", "miniaero", "tealeaf")
LINEAR = ("comd", "amg", "minimd")
#: The paper splits the ten benchmarks over two panels (8a / 8b).
PANEL_A = tuple(a.name for a in TABLE2_APPS[:5])
PANEL_B = tuple(a.name for a in TABLE2_APPS[5:])


def sweep(engine, schedulers):
    return compare_methods(
        engine, list(TABLE2_APPS), list(HIGH_BUDGETS_W), schedulers, iterations=3
    )


def test_fig8_high_budget(benchmark, engine, schedulers, report):
    comp = run_once(benchmark, lambda: sweep(engine, schedulers))

    blocks = []
    for panel, names in (("8a", PANEL_A), ("8b", PANEL_B)):
        rows = []
        for budget in HIGH_BUDGETS_W:
            for name in names:
                rows.append(
                    [f"{budget:.0f}W", name]
                    + [comp.cell(m, name, budget).relative for m in METHODS]
                )
        blocks.append(
            render_table(
                ["Budget", "Benchmark"] + list(METHODS),
                rows,
                title=f"Fig. {panel} — relative performance, high power budgets",
            )
        )
    report("fig8", "\n\n".join(blocks))

    # (1) CLIP ~= All-In for linear applications at high budgets
    for name in LINEAR:
        for budget in HIGH_BUDGETS_W:
            clip = comp.cell("CLIP", name, budget).relative
            allin = comp.cell("All-In", name, budget).relative
            assert clip >= allin * 0.85, (name, budget)

    # (3) CLIP defends Coordinated on every parabolic app, by a large
    # factor on at least one of them
    margins = []
    for name in PARABOLIC:
        for budget in HIGH_BUDGETS_W:
            clip = comp.cell("CLIP", name, budget).relative
            coord = comp.cell("Coordinated", name, budget).relative
            assert clip > coord, (name, budget)
            margins.append(clip / coord)
    assert max(margins) >= 1.4, f"best parabolic margin only {max(margins):.2f}"

    # CLIP is the best (or ties the best) method on geomean
    per_method = {
        m: geometric_mean(
            [c.relative for c in comp.by_method(m)]
        )
        for m in METHODS
    }
    assert per_method["CLIP"] == max(per_method.values())
