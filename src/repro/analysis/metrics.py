"""Evaluation metrics.

The paper reports *relative performance*: each method's throughput
normalized "based on the All-In method without a power bound"
(§V-C).  These helpers compute that and the aggregate improvement
statistics behind the headline claims (">20 % on average", "up to 60 %
for parabolic applications").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClipError

__all__ = ["relative_performance", "improvement_over", "geometric_mean"]


def relative_performance(perf: float, reference_perf: float) -> float:
    """Throughput normalized to the unbounded All-In reference."""
    if reference_perf <= 0:
        raise ClipError("reference performance must be > 0")
    return perf / reference_perf


def improvement_over(perf: float, baseline_perf: float) -> float:
    """Fractional improvement of *perf* over *baseline_perf*.

    0.2 means 20 % faster; negative means slower.
    """
    if baseline_perf <= 0:
        raise ClipError("baseline performance must be > 0")
    return perf / baseline_perf - 1.0


def geometric_mean(values) -> float:
    """Geometric mean, the right average for performance ratios."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ClipError("geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ClipError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
