"""Runtime power re-coordination — the paper's stated future work.

Section VII: "One limitation of this work is that CLIP doesn't directly
support jobs launched with predefined node and core counts.  We plan to
develop a runtime system to address this issue."  This module is that
runtime system, built on the same fitted models:

* a job is launched with a *fixed* decomposition (node count, and
  optionally thread count) that the runtime must respect — the common
  case for production MPI jobs whose data decomposition is baked in;
* the runtime executes the job in **segments** and accepts budget
  changes between segments (machine-room events: another job arrived,
  a demand-response window opened);
* on every budget change it re-coordinates: re-splits per-node budgets
  (variability-aware), re-splits CPU/DRAM within nodes, and — only if
  the caller allows it — re-throttles concurrency when the budget drops
  below the acceptable range of the pinned thread count.

Re-coordination is **transactional**: the new thread count and cap set
are computed and validated in full before any job field changes, so a
rejected budget (:class:`~repro.errors.InfeasibleBudgetError`) leaves
the job exactly as it was — caps, budget, and concurrency stay
mutually consistent.

The runtime is also the failure domain for its jobs.  When a node
fails (:meth:`PowerBoundedRuntime.fail_node`), every affected job
either *shrinks* onto its surviving nodes — its fixed budget re-split
over fewer parts, allowed only when the job was launched with
``allow_shrink`` — or is *parked* with a typed reason; parked jobs
reject :meth:`~PowerBoundedRuntime.advance` with
:class:`~repro.errors.NodeFailureError` until
:meth:`~PowerBoundedRuntime.recover_node` brings their nodes back.
Every cap set the runtime commits is audited by the shared
:class:`~repro.core.monitor.BudgetInvariantMonitor`.

The runtime re-coordinates after a node degradation event
(:meth:`SimulatedCluster.degrade_node`) as well, re-measuring node
factors so the weakened part receives compensating power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coordination import coordinate_power, measure_node_factors
from repro.core.monitor import BudgetInvariantMonitor
from repro.core.recommend import Recommender
from repro.core.scheduler import ClipScheduler
from repro.errors import (
    InfeasibleBudgetError,
    NodeFailureError,
    SchedulingError,
)
from repro.sim.engine import ExecutionConfig
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["SegmentRecord", "RunningJob", "PowerBoundedRuntime"]


@dataclass(frozen=True)
class SegmentRecord:
    """One executed segment of a running job."""

    iterations: int
    budget_w: float
    n_threads: int
    time_s: float
    energy_j: float
    performance: float


@dataclass
class RunningJob:
    """A job mid-execution under the runtime's control.

    ``node_ids`` starts as the launch decomposition and only changes if
    a node failure shrinks the job (``allow_shrink``); ``parked`` marks
    a job sidelined by a failure it could not absorb — the runtime
    refuses to advance it until recovery, recording why in
    ``park_reason``.
    """

    app: WorkloadCharacteristics
    n_nodes: int
    n_threads: int
    node_ids: tuple[int, ...]
    budget_w: float
    per_node_caps: tuple[tuple[float, float], ...]
    remaining_iterations: int
    allow_concurrency_change: bool = False
    allow_shrink: bool = False
    parked: bool = False
    park_reason: str | None = None
    segments: list[SegmentRecord] = field(default_factory=list)

    @property
    def done(self) -> bool:
        """Whether every iteration has been executed."""
        return self.remaining_iterations <= 0

    @property
    def elapsed_s(self) -> float:
        """Total simulated time across executed segments."""
        return sum(s.time_s for s in self.segments)

    @property
    def energy_j(self) -> float:
        """Total energy across executed segments."""
        return sum(s.energy_j for s in self.segments)

    @property
    def mean_performance(self) -> float:
        """Iterations per second over everything executed so far."""
        iters = sum(s.iterations for s in self.segments)
        return iters / self.elapsed_s if self.elapsed_s > 0 else 0.0


class PowerBoundedRuntime:
    """Executes jobs in segments and re-coordinates power on the fly."""

    def __init__(self, scheduler: ClipScheduler):
        self._scheduler = scheduler
        self._engine = scheduler.engine
        self._factors = scheduler.node_factors
        self._jobs: list[RunningJob] = []

    @property
    def scheduler(self) -> ClipScheduler:
        """The CLIP scheduler whose models the runtime reuses."""
        return self._scheduler

    @property
    def monitor(self) -> BudgetInvariantMonitor:
        """The shared budget-invariant auditor (the pipeline's ledger)."""
        return self._scheduler.pipeline.monitor

    @property
    def jobs(self) -> tuple[RunningJob, ...]:
        """Every job launched through this runtime, in launch order."""
        return tuple(self._jobs)

    # ------------------------------------------------------------------

    def _models(self, app: WorkloadCharacteristics) -> Recommender:
        """The app's fitted recommendation engine (shared bundle cache)."""
        return self._scheduler.pipeline.bundle_for(app).recommender

    def launch(
        self,
        app: WorkloadCharacteristics,
        budget_w: float,
        n_nodes: int,
        n_threads: int | None = None,
        allow_concurrency_change: bool = False,
        allow_shrink: bool = False,
    ) -> RunningJob:
        """Admit a job with a predefined decomposition.

        ``n_nodes`` is fixed for the job's lifetime (the MPI
        decomposition); ``n_threads`` defaults to the class rule's
        unbounded choice and is only revisited later if
        ``allow_concurrency_change`` is set.  ``allow_shrink`` permits
        the runtime to re-split the job onto surviving nodes after a
        node failure instead of parking it.
        """
        cluster = self._engine.cluster
        if not 1 <= n_nodes <= cluster.n_nodes:
            raise SchedulingError(
                f"n_nodes {n_nodes} outside [1, {cluster.n_nodes}]"
            )
        node_ids = cluster.available_node_ids[:n_nodes]
        if len(node_ids) < n_nodes:
            raise NodeFailureError(
                f"{n_nodes} nodes requested but only "
                f"{cluster.n_available} are in service"
            )
        recommender = self._models(app)
        if n_threads is None:
            n_threads = recommender.unbounded_concurrency()
        job = RunningJob(
            app=app,
            n_nodes=n_nodes,
            n_threads=n_threads,
            node_ids=node_ids,
            budget_w=budget_w,
            per_node_caps=(),
            remaining_iterations=app.iterations,
            allow_concurrency_change=allow_concurrency_change,
            allow_shrink=allow_shrink,
        )
        self._recoordinate(job, recommender)
        self._jobs.append(job)
        return job

    def update_budget(self, job: RunningJob, new_budget_w: float) -> None:
        """React to a cluster budget change between segments.

        Atomic: the new cap set is planned and validated before any job
        field changes, so a raised :class:`InfeasibleBudgetError`
        leaves the job bit-identical to its pre-call state.
        """
        if new_budget_w <= 0:
            raise SchedulingError("budget must be > 0")
        if job.parked:
            raise NodeFailureError(
                f"cannot re-budget a parked job ({job.park_reason})"
            )
        self._recoordinate(job, self._models(job.app), budget_w=new_budget_w)

    def recalibrate(self) -> None:
        """Re-measure node power factors (after degradation events)."""
        self._factors = measure_node_factors(self._engine)
        # note: running jobs pick the new factors up at their next
        # budget update / re-coordination

    # -- transactional re-coordination ----------------------------------

    def _plan(
        self,
        job: RunningJob,
        recommender: Recommender,
        budget_w: float,
        node_ids: tuple[int, ...],
    ) -> tuple[int, tuple[tuple[float, float], ...], object, object]:
        """Compute a full candidate cap set without touching the job.

        Returns ``(n_threads, per_node_caps, lo_w, hi_w)`` or raises
        :class:`InfeasibleBudgetError`; the caller commits atomically.
        On a heterogeneous node set the bounds are per-rank tuples and
        every slot's budget is split by its own class's power model.
        """
        pipeline = self._scheduler.pipeline
        specs = pipeline.node_specs
        id_specs = [specs[i] for i in node_ids]
        if any(s != specs[0] for s in id_specs):
            return self._plan_hetero(
                job, recommender, budget_w, node_ids, id_specs
            )
        power = recommender.power_model
        n_nodes = len(node_ids)
        n_threads = job.n_threads
        rng = power.power_range(n_threads)
        lo, hi = rng.node_lo_w, rng.node_hi_w
        if budget_w < n_nodes * lo:
            if not job.allow_concurrency_change:
                raise InfeasibleBudgetError(
                    f"budget {budget_w:.0f} W below the {n_nodes}-node "
                    f"floor at the pinned concurrency {n_threads}"
                )
            # re-recommend threads for the reduced per-node share
            cfg = recommender.recommend(budget_w / n_nodes)
            n_threads = cfg.n_threads
            rng = power.power_range(n_threads)
            lo, hi = rng.node_lo_w, rng.node_hi_w
        factors = self._factors[list(node_ids)]
        budgets = coordinate_power(
            min(budget_w, n_nodes * hi), factors, lo_w=lo, hi_w=hi
        )
        caps = tuple(
            power.split_node_budget(float(b), n_threads) for b in budgets
        )
        return n_threads, caps, lo, hi

    def _plan_hetero(
        self,
        job: RunningJob,
        recommender: Recommender,
        budget_w: float,
        node_ids: tuple[int, ...],
        id_specs: list,
    ) -> tuple[int, tuple[tuple[float, float], ...], object, object]:
        """The :meth:`_plan` arithmetic over per-slot class models."""
        pipeline = self._scheduler.pipeline
        entry = pipeline.ensure_knowledge(job.app)
        models = [
            pipeline.class_bundle(entry, s).power_model for s in id_specs
        ]
        n_nodes = len(node_ids)
        n_threads = job.n_threads

        def ranges_at(nt: int) -> tuple[np.ndarray, np.ndarray]:
            rngs = [m.power_range(nt) for m in models]
            return (
                np.array([r.node_lo_w for r in rngs]),
                np.array([r.node_hi_w for r in rngs]),
            )

        lo_arr, hi_arr = ranges_at(n_threads)
        if budget_w < lo_arr.sum():
            if not job.allow_concurrency_change:
                raise InfeasibleBudgetError(
                    f"budget {budget_w:.0f} W below the {n_nodes}-node "
                    f"floor at the pinned concurrency {n_threads}"
                )
            cfg = recommender.recommend(budget_w / n_nodes)
            n_threads = cfg.n_threads
            lo_arr, hi_arr = ranges_at(n_threads)
        factors = self._factors[list(node_ids)]
        budgets = coordinate_power(
            min(budget_w, float(hi_arr.sum())),
            factors,
            lo_w=lo_arr,
            hi_w=hi_arr,
        )
        caps = tuple(
            m.split_node_budget(float(b), n_threads)
            for m, b in zip(models, budgets)
        )
        return (
            n_threads,
            caps,
            tuple(float(x) for x in lo_arr),
            tuple(float(x) for x in hi_arr),
        )

    def _recoordinate(
        self,
        job: RunningJob,
        recommender: Recommender,
        budget_w: float | None = None,
        node_ids: tuple[int, ...] | None = None,
    ) -> None:
        """Re-split the job's budget over a decomposition, atomically.

        Plans first (:meth:`_plan` raises with the job untouched), then
        commits budget, decomposition, concurrency, and caps together,
        and audits the committed cap set on the shared monitor.
        """
        budget = job.budget_w if budget_w is None else budget_w
        ids = job.node_ids if node_ids is None else node_ids
        n_threads, caps, lo, hi = self._plan(job, recommender, budget, ids)
        job.budget_w = budget
        job.node_ids = ids
        job.n_nodes = len(ids)
        job.n_threads = n_threads
        job.per_node_caps = caps
        self.monitor.audit(
            "runtime",
            job.app.name,
            budget,
            caps,
            node_lo_w=lo,
            node_hi_w=hi,
        )

    # -- node failure handling ------------------------------------------

    def _park(self, job: RunningJob, reason: str) -> None:
        """Sideline a job the cluster can no longer serve."""
        job.parked = True
        job.park_reason = reason

    def fail_node(self, node_id: int) -> list[RunningJob]:
        """Take a node out of service and re-coordinate its jobs.

        Each affected job shrinks onto its surviving nodes — the fixed
        job budget re-split over fewer parts — when ``allow_shrink``
        was set and the reduced decomposition stays feasible; otherwise
        it is parked with a typed reason.  Returns the affected jobs.
        """
        cluster = self._engine.cluster
        cluster.fail_node(node_id)
        affected = [
            j
            for j in self._jobs
            if not j.done and not j.parked and node_id in j.node_ids
        ]
        for job in affected:
            survivors = tuple(
                i for i in job.node_ids if cluster.is_available(i)
            )
            if not job.allow_shrink or not survivors:
                self._park(
                    job,
                    f"node {node_id} failed and the {job.n_nodes}-node "
                    f"decomposition is pinned",
                )
                continue
            try:
                self._recoordinate(
                    job, self._models(job.app), node_ids=survivors
                )
            except InfeasibleBudgetError as exc:
                self._park(
                    job,
                    f"node {node_id} failed; budget infeasible on the "
                    f"{len(survivors)} survivors ({exc})",
                )
        return affected

    def recover_node(self, node_id: int) -> list[RunningJob]:
        """Return a node to service and un-park jobs it unblocks.

        A parked job resumes only when *all* of its nodes are back in
        service and its budget re-coordinates cleanly; shrunk jobs keep
        their reduced decomposition (the data was already re-split).
        Returns the jobs that resumed.
        """
        cluster = self._engine.cluster
        cluster.recover_node(node_id)
        resumed = []
        for job in self._jobs:
            if job.done or not job.parked:
                continue
            if not all(cluster.is_available(i) for i in job.node_ids):
                continue
            try:
                self._recoordinate(job, self._models(job.app))
            except InfeasibleBudgetError:
                continue  # nodes are back but the budget still falls short
            job.parked = False
            job.park_reason = None
            resumed.append(job)
        return resumed

    # -- segment execution ----------------------------------------------

    def advance(self, job: RunningJob, iterations: int) -> SegmentRecord:
        """Execute up to *iterations* iterations under the current caps."""
        if job.done:
            raise SchedulingError("job already finished")
        if job.parked:
            raise NodeFailureError(f"job is parked: {job.park_reason}")
        if iterations < 1:
            raise SchedulingError("iterations must be >= 1")
        chunk = min(iterations, job.remaining_iterations)
        result = self._engine.run(
            job.app,
            ExecutionConfig(
                n_nodes=job.n_nodes,
                n_threads=job.n_threads,
                per_node_caps=job.per_node_caps,
                node_ids=job.node_ids,
                iterations=chunk,
            ),
        )
        record = SegmentRecord(
            iterations=chunk,
            budget_w=job.budget_w,
            n_threads=job.n_threads,
            time_s=result.total_time_s,
            energy_j=result.energy_j,
            performance=result.performance,
        )
        job.segments.append(record)
        job.remaining_iterations -= chunk
        return record

    def run_to_completion(
        self, job: RunningJob, segment_iterations: int = 50
    ) -> RunningJob:
        """Drain the job in fixed-size segments."""
        while not job.done:
            self.advance(job, segment_iterations)
        return job
