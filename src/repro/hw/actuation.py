"""Fallible power-cap actuation.

Real RAPL writes do not always land: MSR writes get lost under firmware
contention, BMC round-trips time out, and buggy power-management
firmware clamps or mis-scales the programmed limit.  Production
power-bounded runtimes (FastCap-style) therefore *verify* every cap
write by reading the register back and re-issue it when the value did
not stick.

This module models the write path.  Every cap write on a
:class:`~repro.hw.rapl.RaplInterface` is routed through an injectable
:class:`ActuationPolicy` that decides what actually happens to the
register:

``ok``
    The requested cap is programmed and enforced — the default.
``drop``
    The write is silently ignored; the register keeps its old value.
    Detectable by readback, so the verified write path retries it away.
``partial``
    The register lands partway between the old and requested value
    (a firmware clamp).  Also detectable by readback.
``drift``
    The register *reads back* the requested value but the silicon
    enforces a drifted one.  Invisible to readback by construction —
    only measured power can expose it, which is exactly the breach the
    :class:`~repro.core.watchdog.PowerEnforcementWatchdog` exists to
    catch.

Faults are drawn from a seeded RNG so every scripted scenario is
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.units import check_fraction, check_non_negative

__all__ = [
    "ActuationResult",
    "ActuationPolicy",
    "FaultyActuation",
    "PERFECT_ACTUATION",
]


@dataclass(frozen=True)
class ActuationResult:
    """Outcome of one cap write attempt.

    ``kind`` is one of ``ok`` / ``drop`` / ``partial`` / ``drift``;
    ``enforced_w`` is the cap the silicon will actually honour (for a
    ``drop`` it is the previous enforced value).
    """

    kind: str
    enforced_w: float


class ActuationPolicy:
    """Perfect actuation: every write lands exactly as requested.

    Subclasses override :meth:`apply` to inject failures.  Policies are
    deliberately hardware-agnostic — they see the requested and current
    cap in watts plus the domain *name*, nothing else — so one policy
    instance can be shared across all domains of a node.
    """

    def apply(
        self, domain: str, requested_w: float, current_w: float
    ) -> ActuationResult:
        """Decide the fate of a cap write; perfect by default."""
        del domain, current_w
        return ActuationResult("ok", requested_w)

    def reset(self) -> None:
        """Restore pristine behaviour (no-op for the perfect policy)."""


#: Shared default policy: stateless, so one instance serves every node.
PERFECT_ACTUATION = ActuationPolicy()


class FaultyActuation(ActuationPolicy):
    """Seeded fault injection on the cap write path.

    Parameters
    ----------
    seed:
        RNG seed; identical scripts reproduce identical fault trains.
    drop_prob:
        Probability a write is silently ignored.
    partial_prob:
        Probability the register lands halfway to the requested value.
    drift_prob:
        Probability the write "sticks" for readback but is enforced at
        ``requested * (1 + drift_frac)``.
    drift_frac:
        Relative enforcement error of a drifted write.  Positive drift
        (the dangerous direction — the node draws *more* than its cap)
        is what fault scripts inject to exercise the watchdog.

    The attributes are mutable on purpose: a
    :class:`~repro.sim.faults.FaultInjector` installs one policy per
    node and later scripted events tighten or relax individual
    probabilities without disturbing the RNG stream.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_prob: float = 0.0,
        partial_prob: float = 0.0,
        drift_prob: float = 0.0,
        drift_frac: float = 0.0,
    ) -> None:
        check_fraction(drop_prob, "drop_prob")
        check_fraction(partial_prob, "partial_prob")
        check_fraction(drift_prob, "drift_prob")
        check_non_negative(abs(drift_frac), "abs(drift_frac)")
        self.drop_prob = drop_prob
        self.partial_prob = partial_prob
        self.drift_prob = drift_prob
        self.drift_frac = drift_frac
        self._seed = seed
        self._rng = random.Random(seed)

    def apply(
        self, domain: str, requested_w: float, current_w: float
    ) -> ActuationResult:
        """Roll one seeded outcome: drop, partial, drift, or clean write."""
        del domain
        roll = self._rng.random()
        if roll < self.drop_prob:
            return ActuationResult("drop", current_w)
        roll -= self.drop_prob
        if roll < self.partial_prob:
            return ActuationResult(
                "partial", current_w + 0.5 * (requested_w - current_w)
            )
        roll -= self.partial_prob
        if roll < self.drift_prob:
            return ActuationResult(
                "drift", max(0.0, requested_w * (1.0 + self.drift_frac))
            )
        return ActuationResult("ok", requested_w)

    def reset(self) -> None:
        """Clear all fault probabilities and rewind the RNG."""
        self.drop_prob = 0.0
        self.partial_prob = 0.0
        self.drift_prob = 0.0
        self.drift_frac = 0.0
        self._rng = random.Random(self._seed)
