"""Closed-loop learning policies (ROADMAP item 3).

CLIP's models are fitted once from the smart-profiling pass; this
module holds the policy layer that lets them improve from execution
history without touching the fit-once math:

* :func:`fit_calibration` — least-squares per-segment multiplicative
  correction of predicted iteration time from an entry's
  :class:`~repro.core.knowledge.ObservationRecord` history.  The scale
  family contains the identity, so the fitted calibration can never be
  worse than no calibration on the observations it was fitted to (a
  property test pins this).
* :class:`RefitPolicy` — when the observation count, staleness, and
  misprediction error justify refitting an entry's models.
* :class:`LearningConfig` — the master switch plus the epsilon-greedy
  exploration knobs.  **Disabled by default**: a learning-off
  deployment records history but never changes a decision, which the
  golden suites enforce bit-for-bit.
* :func:`empirical_best_nodes` / :func:`empirical_best_concurrency` —
  measured-performance argmax over the configurations a cell has
  actually executed, the exploitation side of the bandit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.knowledge import KnowledgeEntry, ObservationRecord
from repro.core.perfmodel import TimeCalibration

__all__ = [
    "RefitPolicy",
    "LearningConfig",
    "fit_calibration",
    "empirical_best_nodes",
    "empirical_best_concurrency",
]

#: Sanity clamp on learned time scales; the identity sits inside the
#: interval, so clamping preserves the never-worse-than-unit property.
MIN_SCALE = 0.1
MAX_SCALE = 10.0


@dataclass(frozen=True)
class RefitPolicy:
    """When accumulated outcomes justify refitting an entry's models.

    ``min_observations`` — observations recorded *against the current
    model version* before its error estimate is trusted;
    ``refit_interval`` — staleness floor: total observations that must
    accumulate between refits (keeps a noisy cell from thrashing the
    bundle cache); ``error_threshold`` — mean absolute relative
    time-prediction error above which the model is considered wrong
    enough to refit.
    """

    min_observations: int = 4
    refit_interval: int = 4
    error_threshold: float = 0.05

    def should_refit(self, entry: KnowledgeEntry) -> bool:
        """Whether *entry*'s current models have earned a refit."""
        if entry.observed_total - entry.refit_at < self.refit_interval:
            return False
        current = [
            o
            for o in entry.observations
            if o.model_version == entry.model_version
        ]
        if len(current) < self.min_observations:
            return False
        window = current[-self.min_observations :]
        err = sum(abs(o.rel_time_error) for o in window) / len(window)
        return err > self.error_threshold


@dataclass(frozen=True)
class LearningConfig:
    """The learning layer's switchboard (off by default).

    ``epsilon`` — probability of exploring a near-tie alternative while
    a cell's confidence is low; ``tie_margin`` — predicted-performance
    slack defining "near tie"; ``confident_observations`` — cell
    observation count at which exploration stops;
    ``min_config_observations`` — evidence floor per configuration
    before exploitation may prefer it; ``exploit_margin`` — measured
    advantage a challenger needs over the model's choice;  ``seed`` —
    the exploration RNG seed (decisions are reproducible runs of the
    same campaign).
    """

    enabled: bool = False
    epsilon: float = 0.2
    tie_margin: float = 0.1
    confident_observations: int = 4
    min_config_observations: int = 2
    exploit_margin: float = 0.02
    seed: int = 2017
    refit: RefitPolicy = field(default_factory=RefitPolicy)


def fit_calibration(
    observations: Iterable[ObservationRecord],
    inflection_point: int | None,
) -> TimeCalibration:
    """Least-squares per-segment time correction from outcome history.

    For each model segment (thread counts at/below the inflection
    point vs. above it) the scale minimizing
    ``sum((s * predicted - measured)^2)`` is ``s* = Σpm / Σp²``; a
    segment with no evidence keeps the identity.  Because the quadratic
    error is monotone toward ``s*`` from either side and the clamp
    interval contains 1.0, the (clamped) fit never has a larger
    training-set error than the uncalibrated model.
    """
    seg_pred: dict[int, list[float]] = {1: [], 2: []}
    seg_meas: dict[int, list[float]] = {1: [], 2: []}
    n = 0
    for o in observations:
        if o.predicted_time_s <= 0 or o.measured_time_s <= 0:
            continue
        seg = (
            1
            if inflection_point is None or o.n_threads <= inflection_point
            else 2
        )
        seg_pred[seg].append(o.predicted_time_s)
        seg_meas[seg].append(o.measured_time_s)
        n += 1

    def solve(pred: list[float], meas: list[float]) -> float:
        den = sum(p * p for p in pred)
        if den <= 0:
            return 1.0
        s = sum(p * m for p, m in zip(pred, meas)) / den
        return min(max(s, MIN_SCALE), MAX_SCALE)

    return TimeCalibration(
        seg1_scale=solve(seg_pred[1], seg_meas[1]),
        seg2_scale=solve(seg_pred[2], seg_meas[2]),
        n_observations=n,
    )


def _group_stats(
    observations: Iterable[ObservationRecord], attr: str
) -> dict[int, tuple[int, float]]:
    """Per-configuration (count, mean measured perf) grouped by *attr*."""
    sums: dict[int, list[float]] = {}
    for o in observations:
        if o.measured_time_s <= 0:
            continue
        sums.setdefault(getattr(o, attr), []).append(o.measured_perf)
    return {
        k: (len(v), sum(v) / len(v)) for k, v in sums.items()
    }


def empirical_best_nodes(
    observations: Iterable[ObservationRecord], min_samples: int = 2
) -> tuple[int | None, dict[int, tuple[int, float]]]:
    """Measured-performance argmax over observed node counts.

    Returns ``(best_n_nodes, {n_nodes: (count, mean_perf)})``; the best
    is ``None`` until at least one node count has *min_samples*
    observations.
    """
    groups = _group_stats(observations, "n_nodes")
    qualified = {
        k: mean for k, (count, mean) in groups.items() if count >= min_samples
    }
    if not qualified:
        return None, groups
    return max(qualified, key=lambda k: (qualified[k], -k)), groups


def empirical_best_concurrency(
    observations: Iterable[ObservationRecord], min_samples: int = 2
) -> int | None:
    """Measured-performance argmax over observed thread counts.

    Needs at least two qualified thread-count groups — a single group
    carries no comparative evidence about where the knee really is.
    """
    groups = _group_stats(observations, "n_threads")
    qualified = {
        k: mean for k, (count, mean) in groups.items() if count >= min_samples
    }
    if len(qualified) < 2:
        return None
    return max(qualified, key=lambda k: (qualified[k], -k))
