"""Unit tests for the hardware specifications."""

import pytest

from repro.errors import SpecError
from repro.hw.specs import (
    ClusterSpec,
    CoreSpec,
    MemorySpec,
    NodeSpec,
    SocketSpec,
    haswell_node,
    haswell_testbed,
)
from repro.units import ghz


class TestCoreSpec:
    def test_defaults_valid(self):
        core = CoreSpec()
        assert core.ipc_peak == 4.0
        assert core.p_dyn_w > 0

    def test_rejects_nonpositive_ipc(self):
        with pytest.raises(SpecError):
            CoreSpec(ipc_peak=0.0)

    def test_rejects_negative_power(self):
        with pytest.raises(SpecError):
            CoreSpec(p_leak_w=-1.0)

    def test_rejects_implausible_exponent(self):
        with pytest.raises(SpecError):
            CoreSpec(dyn_exponent=5.0)
        with pytest.raises(SpecError):
            CoreSpec(dyn_exponent=0.5)


class TestMemorySpec:
    def test_p_max_is_base_plus_load(self):
        mem = MemorySpec(p_base_w=4.0, p_load_max_w=14.0)
        assert mem.p_max_w == pytest.approx(18.0)

    def test_bandwidth_levels_monotone(self):
        mem = MemorySpec()
        bws = [mem.bandwidth_at_level(i) for i in range(mem.n_power_levels)]
        assert bws == sorted(bws)
        assert bws[-1] == pytest.approx(mem.peak_bandwidth)

    def test_lowest_level_retains_floor(self):
        mem = MemorySpec(n_power_levels=8)
        assert mem.bandwidth_at_level(0) == pytest.approx(mem.peak_bandwidth / 8)

    def test_rejects_bad_level(self):
        mem = MemorySpec()
        with pytest.raises(SpecError):
            mem.bandwidth_at_level(-1)
        with pytest.raises(SpecError):
            mem.bandwidth_at_level(mem.n_power_levels)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SpecError):
            MemorySpec(capacity_bytes=0)


class TestSocketSpec:
    def test_haswell_defaults(self):
        s = SocketSpec()
        assert s.n_cores == 12
        assert s.f_nominal == pytest.approx(ghz(2.3))
        assert s.f_min == pytest.approx(ghz(1.2))
        assert s.f_max == pytest.approx(ghz(3.1))
        assert s.tdp_w == pytest.approx(120.0)

    def test_ladder_spans_range(self):
        s = SocketSpec()
        assert s.freq_ladder[0] == pytest.approx(s.f_min)
        assert s.freq_ladder[-1] == pytest.approx(s.f_max)

    def test_pkg_max_exceeds_tdp_with_turbo(self):
        # all-core turbo is opportunistic: the uncapped ceiling is
        # above TDP, and RAPL's default PL1 clips it
        s = SocketSpec()
        assert s.p_pkg_max_w > s.tdp_w

    def test_pkg_min_active_below_tdp(self):
        s = SocketSpec()
        assert s.p_pkg_min_active_w < s.tdp_w

    def test_rejects_bad_frequency_order(self):
        with pytest.raises(SpecError):
            SocketSpec(f_min=ghz(3.0), f_nominal=ghz(2.3), f_max=ghz(3.1))

    def test_rejects_unsorted_ladder(self):
        with pytest.raises(SpecError):
            SocketSpec(freq_ladder=(ghz(2.3), ghz(1.2), ghz(3.1)))

    def test_rejects_zero_cores(self):
        with pytest.raises(SpecError):
            SocketSpec(n_cores=0)


class TestNodeSpec:
    def test_paper_node_has_24_cores(self):
        node = haswell_node()
        assert node.n_sockets == 2
        assert node.n_cores == 24

    def test_power_ceilings_compose(self):
        node = haswell_node()
        assert node.p_node_max_w == pytest.approx(
            node.p_cpu_max_w + node.p_mem_max_w + node.p_other_w
        )

    def test_aggregate_bandwidth(self):
        node = haswell_node()
        assert node.peak_bandwidth == pytest.approx(
            2 * node.socket.memory.peak_bandwidth
        )

    def test_rejects_zero_sockets(self):
        with pytest.raises(SpecError):
            NodeSpec(n_sockets=0)


class TestClusterSpec:
    def test_paper_testbed_shape(self):
        spec = haswell_testbed()
        assert spec.n_nodes == 8
        assert spec.total_cores == 192

    def test_cluster_peak_power(self):
        spec = haswell_testbed()
        assert spec.p_cluster_max_w == pytest.approx(8 * spec.node.p_node_max_w)

    def test_rejects_excess_variability(self):
        with pytest.raises(SpecError):
            ClusterSpec(variability_sigma=0.6)

    def test_rejects_zero_nodes(self):
        with pytest.raises(SpecError):
            ClusterSpec(n_nodes=0)

    def test_custom_node_count(self):
        spec = haswell_testbed(n_nodes=4)
        assert spec.n_nodes == 4
