"""Runtime power re-coordination — the paper's stated future work.

Section VII: "One limitation of this work is that CLIP doesn't directly
support jobs launched with predefined node and core counts.  We plan to
develop a runtime system to address this issue."  This module is that
runtime system, built on the same fitted models:

* a job is launched with a *fixed* decomposition (node count, and
  optionally thread count) that the runtime must respect — the common
  case for production MPI jobs whose data decomposition is baked in;
* the runtime executes the job in **segments** and accepts budget
  changes between segments (machine-room events: another job arrived,
  a demand-response window opened);
* on every budget change it re-coordinates: re-splits per-node budgets
  (variability-aware), re-splits CPU/DRAM within nodes, and — only if
  the caller allows it — re-throttles concurrency when the budget drops
  below the acceptable range of the pinned thread count.

The runtime also re-coordinates after a node degradation event
(:meth:`SimulatedCluster.degrade_node`), re-measuring node factors so
the weakened part receives compensating power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coordination import coordinate_power, measure_node_factors
from repro.core.recommend import Recommender
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.sim.engine import ExecutionConfig
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["SegmentRecord", "RunningJob", "PowerBoundedRuntime"]


@dataclass(frozen=True)
class SegmentRecord:
    """One executed segment of a running job."""

    iterations: int
    budget_w: float
    n_threads: int
    time_s: float
    energy_j: float
    performance: float


@dataclass
class RunningJob:
    """A job mid-execution under the runtime's control."""

    app: WorkloadCharacteristics
    n_nodes: int
    n_threads: int
    node_ids: tuple[int, ...]
    budget_w: float
    per_node_caps: tuple[tuple[float, float], ...]
    remaining_iterations: int
    allow_concurrency_change: bool = False
    segments: list[SegmentRecord] = field(default_factory=list)

    @property
    def done(self) -> bool:
        """Whether every iteration has been executed."""
        return self.remaining_iterations <= 0

    @property
    def elapsed_s(self) -> float:
        """Total simulated time across executed segments."""
        return sum(s.time_s for s in self.segments)

    @property
    def energy_j(self) -> float:
        """Total energy across executed segments."""
        return sum(s.energy_j for s in self.segments)

    @property
    def mean_performance(self) -> float:
        """Iterations per second over everything executed so far."""
        iters = sum(s.iterations for s in self.segments)
        return iters / self.elapsed_s if self.elapsed_s > 0 else 0.0


class PowerBoundedRuntime:
    """Executes jobs in segments and re-coordinates power on the fly."""

    def __init__(self, scheduler: ClipScheduler):
        self._scheduler = scheduler
        self._engine = scheduler.engine
        self._factors = scheduler.node_factors

    @property
    def scheduler(self) -> ClipScheduler:
        """The CLIP scheduler whose models the runtime reuses."""
        return self._scheduler

    # ------------------------------------------------------------------

    def _models(self, app: WorkloadCharacteristics) -> Recommender:
        """The app's fitted recommendation engine (shared bundle cache)."""
        return self._scheduler.pipeline.bundle_for(app).recommender

    def launch(
        self,
        app: WorkloadCharacteristics,
        budget_w: float,
        n_nodes: int,
        n_threads: int | None = None,
        allow_concurrency_change: bool = False,
    ) -> RunningJob:
        """Admit a job with a predefined decomposition.

        ``n_nodes`` is fixed for the job's lifetime (the MPI
        decomposition); ``n_threads`` defaults to the class rule's
        unbounded choice and is only revisited later if
        ``allow_concurrency_change`` is set.
        """
        if not 1 <= n_nodes <= self._engine.cluster.n_nodes:
            raise SchedulingError(
                f"n_nodes {n_nodes} outside [1, {self._engine.cluster.n_nodes}]"
            )
        recommender = self._models(app)
        if n_threads is None:
            n_threads = recommender.unbounded_concurrency()
        job = RunningJob(
            app=app,
            n_nodes=n_nodes,
            n_threads=n_threads,
            node_ids=tuple(range(n_nodes)),
            budget_w=budget_w,
            per_node_caps=(),
            remaining_iterations=app.iterations,
            allow_concurrency_change=allow_concurrency_change,
        )
        self._recoordinate(job, recommender)
        return job

    def update_budget(self, job: RunningJob, new_budget_w: float) -> None:
        """React to a cluster budget change between segments."""
        if new_budget_w <= 0:
            raise SchedulingError("budget must be > 0")
        job.budget_w = new_budget_w
        self._recoordinate(job, self._models(job.app))

    def recalibrate(self) -> None:
        """Re-measure node power factors (after degradation events)."""
        self._factors = measure_node_factors(self._engine)
        # note: running jobs pick the new factors up at their next
        # budget update / re-coordination

    def _recoordinate(self, job: RunningJob, recommender: Recommender) -> None:
        """Re-split the job's budget over its fixed decomposition."""
        power = recommender.power_model
        rng = power.power_range(job.n_threads)
        lo, hi = rng.node_lo_w, rng.node_hi_w
        if job.budget_w < job.n_nodes * lo:
            if not job.allow_concurrency_change:
                raise InfeasibleBudgetError(
                    f"budget {job.budget_w:.0f} W below the {job.n_nodes}-node "
                    f"floor at the pinned concurrency {job.n_threads}"
                )
            # re-recommend threads for the reduced per-node share
            cfg = recommender.recommend(job.budget_w / job.n_nodes)
            job.n_threads = cfg.n_threads
            rng = power.power_range(job.n_threads)
            lo, hi = rng.node_lo_w, rng.node_hi_w
        factors = self._factors[list(job.node_ids)]
        budgets = coordinate_power(
            min(job.budget_w, job.n_nodes * hi), factors, lo_w=lo, hi_w=hi
        )
        caps = []
        for b in budgets:
            pkg, dram = power.split_node_budget(float(b), job.n_threads)
            caps.append((pkg, dram))
        job.per_node_caps = tuple(caps)

    def advance(self, job: RunningJob, iterations: int) -> SegmentRecord:
        """Execute up to *iterations* iterations under the current caps."""
        if job.done:
            raise SchedulingError("job already finished")
        if iterations < 1:
            raise SchedulingError("iterations must be >= 1")
        chunk = min(iterations, job.remaining_iterations)
        result = self._engine.run(
            job.app,
            ExecutionConfig(
                n_nodes=job.n_nodes,
                n_threads=job.n_threads,
                per_node_caps=job.per_node_caps,
                node_ids=job.node_ids,
                iterations=chunk,
            ),
        )
        record = SegmentRecord(
            iterations=chunk,
            budget_w=job.budget_w,
            n_threads=job.n_threads,
            time_s=result.total_time_s,
            energy_j=result.energy_j,
            performance=result.performance,
        )
        job.segments.append(record)
        job.remaining_iterations -= chunk
        return record

    def run_to_completion(
        self, job: RunningJob, segment_iterations: int = 50
    ) -> RunningJob:
        """Drain the job in fixed-size segments."""
        while not job.done:
            self.advance(job, segment_iterations)
        return job
