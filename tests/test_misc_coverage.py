"""Targeted tests for branches the broader suites leave unexercised."""

import numpy as np
import pytest

from repro.errors import ProfilingError, SchedulingError, WorkloadError
from repro.sim.engine import ExecutionConfig
from repro.sim.mpi import CommModel
from repro.workloads.apps import get_app
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics
from repro.workloads.model import scalability_curve


class TestExecutionConfigEdges:
    def test_node_budget_none_when_partial(self):
        assert ExecutionConfig(n_nodes=1, n_threads=2).node_budget_w is None
        assert (
            ExecutionConfig(n_nodes=1, n_threads=2, pkg_cap_w=100.0).node_budget_w
            is None
        )

    def test_iterations_validation(self):
        with pytest.raises(SchedulingError):
            ExecutionConfig(n_nodes=1, n_threads=2, iterations=0)


class TestRunResultDerived:
    def test_edp_and_zero_time_guards(self, engine):
        r = engine.run(
            get_app("comd"), ExecutionConfig(n_nodes=1, n_threads=12, iterations=2)
        )
        assert r.edp == pytest.approx(r.energy_j * r.total_time_s)
        assert r.performance > 0


class TestScalabilityCurveOptions:
    def test_shared_remote_toggle(self):
        from repro.hw.specs import haswell_node

        app = get_app("stream")
        node = haswell_node()
        _, with_remote = scalability_curve(app, node, shared_remote=True)
        _, without = scalability_curve(app, node, shared_remote=False)
        # ignoring NUMA remote traffic can only look faster
        assert np.all(without >= with_remote * (1 - 1e-12))


class TestCommModelEdges:
    def test_halo_bytes_reference_at_one_node(self):
        from repro.hw.specs import haswell_testbed

        comm = CommModel(haswell_testbed())
        app = get_app("bt-mz.C")
        assert comm.halo_bytes(app, 1) == pytest.approx(app.comm_bytes_per_iter)

    def test_alpha_beta_exposed(self):
        from repro.hw.specs import haswell_testbed

        spec = haswell_testbed()
        comm = CommModel(spec)
        assert comm.alpha_s == pytest.approx(spec.link_latency_s)
        assert comm.beta_s_per_byte == pytest.approx(1.0 / spec.link_bandwidth)


class TestProfilerEdges:
    def test_custom_iteration_budget(self, engine):
        from repro.core.profile import SmartProfiler

        profiler = SmartProfiler(engine, iterations=2)
        assert profiler.iterations == 2
        profile = profiler.profile(get_app("ep.C"))
        assert profile.scalability_class.value == "linear"

    def test_roofline_knee_estimate_compute_bound_clamps(self, profiler):
        profile = profiler.profile(get_app("ep.C"))
        # EP's tiny traffic scales with threads, so the estimated knee
        # sits at/after the full core count — never an interior knee
        assert profile.roofline_knee_estimate() >= profile.n_cores - 2

    def test_roofline_knee_estimate_memory_bound_interior(self, profiler):
        profile = profiler.profile(get_app("stream"))
        assert profile.roofline_knee_estimate() < 2 * profile.n_cores


class TestWorkloadEdges:
    def test_allreduce_apps_pay_log_cost(self, engine):
        amg = get_app("amg")
        assert amg.comm_pattern is CommPattern.ALLREDUCE
        r2 = engine.run(amg, ExecutionConfig(n_nodes=2, n_threads=24, iterations=2))
        r8 = engine.run(amg, ExecutionConfig(n_nodes=8, n_threads=24, iterations=2))
        assert r8.comm_s > r2.comm_s

    def test_characteristics_reject_bad_comm_msgs(self):
        with pytest.raises(WorkloadError):
            WorkloadCharacteristics(
                name="x",
                instructions_per_iter=1e10,
                bytes_per_instruction=0.1,
                comm_msgs_per_iter=-1,
            )


class TestHyperbolaGuard:
    def test_inverted_samples_degrade_to_flat(self):
        from repro.core.perfmodel import _Hyperbola

        # time *increasing* toward fewer threads is non-physical input
        h = _Hyperbola.through(12, 1.0, 18, 0.8)
        assert h.a >= 0
        # time *smaller* at fewer threads: samples straddle a peak
        h_bad = _Hyperbola.through(20, 1.0, 18, 0.8)
        assert h_bad.a == 0.0
        assert h_bad.time(2) == pytest.approx(0.8)

    def test_equal_thread_counts_rejected(self):
        from repro.core.perfmodel import _Hyperbola, _Line

        with pytest.raises(ProfilingError):
            _Hyperbola.through(12, 1.0, 12, 0.8)
        with pytest.raises(ProfilingError):
            _Line.through(12, 1.0, 12, 0.8)


class TestGovernorExports:
    def test_public_surface(self):
        from repro.hw import GovernorSample, RaplGovernor

        assert RaplGovernor is not None
        assert GovernorSample is not None


class TestDegradeNode:
    def test_degrade_validates(self, cluster):
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            cluster.degrade_node(99, 1.1)
        with pytest.raises(SpecError):
            cluster.degrade_node(0, 0.0)

    def test_degrade_compounds(self, cluster):
        before = cluster.node(1).efficiency
        cluster.degrade_node(1, 1.1)
        cluster.degrade_node(1, 1.1)
        assert cluster.node(1).efficiency == pytest.approx(before * 1.21)
