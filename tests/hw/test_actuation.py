"""Tests for fallible actuation and lying telemetry.

Covers the injectable :class:`ActuationPolicy` fault models, the
verified (retry + readback) cap-write path, the snapshot/rollback
machinery the runtime's transactional commits rely on, and the
telemetry corruption the watchdog has to see through.
"""

import pytest

from repro.errors import ActuationError
from repro.hw.actuation import PERFECT_ACTUATION, ActuationResult, FaultyActuation
from repro.hw.meter import PowerMeter, TelemetryFault
from repro.hw.power import PowerBreakdown, PowerModel
from repro.hw.rapl import (
    CAP_TUPLE_DOMAINS,
    MAX_CAP_RETRIES,
    Domain,
    RaplInterface,
)
from repro.hw.specs import haswell_node

NODE = haswell_node()


@pytest.fixture()
def rapl():
    return RaplInterface(PowerModel(NODE))


class TestActuationPolicies:
    def test_perfect_policy_passes_through(self):
        res = PERFECT_ACTUATION.apply("package", 100.0, None)
        assert res == ActuationResult("ok", 100.0)

    def test_drop_keeps_current_value(self):
        pol = FaultyActuation(seed=1, drop_prob=1.0)
        res = pol.apply("package", 100.0, 80.0)
        assert res.kind == "drop"
        assert res.enforced_w == pytest.approx(80.0)

    def test_partial_lands_halfway(self):
        pol = FaultyActuation(seed=1, partial_prob=1.0)
        res = pol.apply("package", 100.0, 80.0)
        assert res.kind == "partial"
        assert res.enforced_w == pytest.approx(90.0)

    def test_drift_scales_the_request(self):
        pol = FaultyActuation(seed=1, drift_prob=1.0, drift_frac=0.25)
        res = pol.apply("package", 100.0, None)
        assert res.kind == "drift"
        assert res.enforced_w == pytest.approx(125.0)

    def test_faults_are_seeded_and_reproducible(self):
        outcomes = []
        for _ in range(2):
            pol = FaultyActuation(seed=7, drop_prob=0.4)
            outcomes.append(
                [pol.apply("package", 100.0, 50.0).kind for _ in range(50)]
            )
        assert outcomes[0] == outcomes[1]
        assert "drop" in outcomes[0] and "ok" in outcomes[0]

    def test_reset_disarms_and_rewinds(self):
        pol = FaultyActuation(seed=7, drop_prob=1.0)
        assert pol.apply("package", 100.0, 50.0).kind == "drop"
        pol.reset()
        assert pol.apply("package", 100.0, 50.0).kind == "ok"


class TestFallibleSetCap:
    def test_dropped_write_reports_failure_and_keeps_old_cap(self, rapl):
        rapl.set_cap(Domain.PKG, 120.0)
        rapl.actuation = FaultyActuation(seed=1, drop_prob=1.0)
        assert rapl.set_cap(Domain.PKG, 90.0) is False
        assert rapl.domain(Domain.PKG).cap_w == pytest.approx(120.0)
        assert rapl.actuation_stats["dropped"] == 1

    def test_drifted_write_lies_on_readback(self, rapl):
        rapl.actuation = FaultyActuation(seed=1, drift_prob=1.0, drift_frac=0.2)
        assert rapl.set_cap(Domain.PKG, 100.0) is True
        reg = rapl.domain(Domain.PKG)
        # the register reads back the requested value...
        assert reg.cap_w == pytest.approx(100.0)
        # ...but the silicon enforces the drifted one
        assert reg.enforced_w == pytest.approx(120.0)
        assert rapl.actuation_stats["drifted"] == 1

    def test_clearing_a_cap_always_succeeds(self, rapl):
        rapl.actuation = FaultyActuation(seed=1, drop_prob=1.0)
        rapl.set_cap(Domain.PKG, 100.0)  # dropped, but cap was None anyway
        assert rapl.set_cap(Domain.PKG, None) is True
        assert rapl.domain(Domain.PKG).cap_w is None


class TestVerifiedWrites:
    def test_retries_through_transient_drops(self, rapl):
        pol = FaultyActuation(seed=3, drop_prob=0.5)
        rapl.actuation = pol
        retries = rapl.set_cap_verified(Domain.PKG, 95.0)
        assert rapl.domain(Domain.PKG).cap_w == pytest.approx(95.0)
        assert retries <= MAX_CAP_RETRIES
        stats = rapl.actuation_stats
        assert stats["verified"] == 1
        assert stats["retries"] == retries
        if retries:
            assert stats["backoff_s"] > 0.0

    def test_wedged_path_raises_typed_error(self, rapl):
        rapl.actuation = FaultyActuation(seed=3, drop_prob=1.0)
        with pytest.raises(ActuationError) as err:
            rapl.set_cap_verified(Domain.PKG, 95.0)
        assert err.value.domain == Domain.PKG.value
        assert err.value.requested_w == pytest.approx(95.0)

    def test_silent_drift_passes_readback(self, rapl):
        # drift is the failure mode verification *cannot* catch: the
        # register lies, so only measured power (the watchdog) sees it
        rapl.actuation = FaultyActuation(seed=3, drift_prob=1.0, drift_frac=0.3)
        retries = rapl.set_cap_verified(Domain.PKG, 100.0)
        assert retries == 0
        assert rapl.domain(Domain.PKG).enforced_w == pytest.approx(130.0)

    def test_write_caps_verified_covers_all_domains(self, rapl):
        rapl.write_caps_verified((100.0, 30.0))
        assert rapl.domain(Domain.PKG).cap_w == pytest.approx(100.0)
        assert rapl.domain(Domain.DRAM).cap_w == pytest.approx(30.0)
        assert CAP_TUPLE_DOMAINS[:2] == (Domain.PKG, Domain.DRAM)


class TestSnapshotRollback:
    def test_snapshot_round_trips_programmed_and_enforced(self, rapl):
        rapl.actuation = FaultyActuation(seed=1, drift_prob=1.0, drift_frac=0.2)
        rapl.set_cap(Domain.PKG, 100.0)
        snap = rapl.snapshot_caps()
        rapl.reset_actuation()
        rapl.set_cap(Domain.PKG, 50.0)
        rapl.restore_caps(snap)
        reg = rapl.domain(Domain.PKG)
        assert reg.cap_w == pytest.approx(100.0)
        assert reg.enforced_w == pytest.approx(120.0)

    def test_force_caps_bypasses_the_fault_policy(self, rapl):
        rapl.actuation = FaultyActuation(seed=1, drop_prob=1.0)
        rapl.force_caps((88.0, 22.0))
        assert rapl.domain(Domain.PKG).cap_w == pytest.approx(88.0)
        assert rapl.domain(Domain.DRAM).cap_w == pytest.approx(22.0)
        assert rapl.actuation_stats["forced"] >= 1


class TestTelemetryFault:
    def test_noise_is_seeded_and_nonnegative(self):
        fault = TelemetryFault(seed=5, noise_frac=0.5)
        a = [fault.corrupt(100.0) for _ in range(20)]
        b_fault = TelemetryFault(seed=5, noise_frac=0.5)
        b = [b_fault.corrupt(100.0) for _ in range(20)]
        assert a == b
        assert all(v >= 0.0 for v in a)
        assert any(v != 100.0 for v in a)

    def test_drop_returns_none(self):
        fault = TelemetryFault(seed=5, drop_prob=1.0)
        assert fault.corrupt(100.0) is None

    def test_stale_freezes_the_first_value(self):
        fault = TelemetryFault(seed=5)
        fault.make_stale(2)
        assert fault.corrupt(100.0) == pytest.approx(100.0)
        assert fault.corrupt(250.0) == pytest.approx(100.0)  # frozen
        assert fault.corrupt(250.0) == pytest.approx(250.0)  # expired

    def test_meter_read_path_is_corrupted_but_trace_is_truthful(self):
        meter = PowerMeter()
        meter.record(PowerBreakdown(pkg_w=80.0, dram_w=20.0, other_w=30.0), 1.0)
        truthful = meter.capped_power_w()
        meter.telemetry = TelemetryFault(seed=5, drop_prob=1.0)
        assert meter.read_capped_power_w() is None
        assert meter.capped_power_w() == pytest.approx(truthful)
