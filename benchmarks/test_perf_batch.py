"""Perf guard for the batched evaluation subsystem.

Times the full oracle grid search on the scalar and batched paths,
records the measurements to ``BENCH_batch.json`` at the repository
root, and enforces the ISSUE's acceptance bar: the batch path must be
at least 5x faster while choosing the identical plan.
"""

from run_bench import run_all

#: Acceptance floor for the oracle-search speedup (scalar / batch).
MIN_ORACLE_SPEEDUP = 5.0


def test_batch_oracle_speedup(report):
    payload = run_all()
    oracle = payload["oracle_search"]
    sweep = payload["figure_sweep"]

    lines = [
        "Batched evaluation — oracle search "
        f"({oracle['app']} @ {oracle['cluster_budget_w']:.0f} W, "
        f"{oracle['search_stats']['evaluated']} candidates)",
        f"  scalar     : {oracle['scalar_s']:.3f} s",
        f"  batch      : {oracle['batch_s']:.3f} s "
        f"({oracle['speedup']:.1f}x)",
        f"  warm cache : {oracle['warm_cache_s']:.3f} s "
        f"({oracle['warm_cache_speedup']:.1f}x)",
        "Figure sweep "
        f"({sweep['n_runs']} runs over {', '.join(sweep['apps'])})",
        f"  scalar     : {sweep['scalar_s']:.3f} s",
        f"  batch      : {sweep['batch_s']:.3f} s "
        f"({sweep['speedup']:.1f}x)",
    ]
    report("perf_batch", "\n".join(lines))

    # Exact equivalence first: a fast wrong answer is not a speedup.
    assert oracle["plans_identical"]
    assert sweep["results_identical"]
    assert oracle["speedup"] >= MIN_ORACLE_SPEEDUP, oracle
    # The warm cache must make a repeated search essentially free.
    assert oracle["warm_cache_s"] < oracle["batch_s"]
