"""Hardware performance-event synthesis (Table I of the paper).

CLIP's inflection-point predictor is a multivariate linear regression
over eight Haswell event *rates* collected during the profiling runs
(§III-A.2, Table I).  On real hardware these come from the PMU; here
the simulated node synthesizes them from the ground-truth workload
characteristics plus measurement noise, preserving the property the
paper relies on: the events are "related to applications' memory access
patterns and are able to identify which concurrency level can cause
performance stagnancy or loss".

The synthesis lives in the hardware layer (it is the PMU), but it is
driven by whatever phase description the execution engine passes in, so
the hw package stays independent of :mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.units import check_non_negative

__all__ = ["EventCounters", "EVENT_NAMES", "synthesize_counters"]

#: Table I — the Haswell hardware events used as MLR predictors.
EVENT_NAMES: dict[str, str] = {
    "event0": "Instruction Cache (ICACHE) Misses",
    "event1": "Memory Access Read Bandwidth",
    "event2": "Memory Access Write Bandwidth",
    "event3": "L3 Cache Miss from Local DRAM",
    "event4": "L3 Cache Miss from Remote DRAM",
    "event5": "Cycles Active",
    "event6": "Instructions Retired",
    "event7": "Performance ratio by full cores and half cores",
}


@dataclass(frozen=True)
class EventCounters:
    """One profiling interval's event totals (and the derived ratio).

    All fields except ``event7`` are raw counts/bytes over the
    interval; rates are obtained with :meth:`rates`.  ``event7`` is
    the full-core/half-core performance ratio the paper appends as a
    predictor — it is filled in by the profiler once both sample runs
    exist and defaults to 0 until then.
    """

    event0: float  # icache misses
    event1: float  # bytes read from DRAM
    event2: float  # bytes written to DRAM
    event3: float  # L3 misses served by local DRAM
    event4: float  # L3 misses served by remote DRAM
    event5: float  # active cycles (summed over cores)
    event6: float  # instructions retired
    event7: float = 0.0  # Perf_all / Perf_half ratio
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        for f in fields(self):
            check_non_negative(getattr(self, f.name), f.name)

    def rates(self) -> np.ndarray:
        """Per-second event rates in Table-I order (event7 passthrough).

        Rates rather than raw counts make the predictors independent of
        how long the profiling interval ran, which is what lets the
        smart profiler use only a few iterations.
        """
        d = max(self.duration_s, 1e-12)
        return np.array(
            [
                self.event0 / d,
                self.event1 / d,
                self.event2 / d,
                self.event3 / d,
                self.event4 / d,
                self.event5 / d,
                self.event6 / d,
                self.event7,
            ]
        )

    def with_perf_ratio(self, ratio: float) -> "EventCounters":
        """Return a copy with ``event7`` filled in."""
        return EventCounters(
            event0=self.event0,
            event1=self.event1,
            event2=self.event2,
            event3=self.event3,
            event4=self.event4,
            event5=self.event5,
            event6=self.event6,
            event7=ratio,
            duration_s=self.duration_s,
        )

    @property
    def ipc(self) -> float:
        """Instructions per active cycle over the interval."""
        return self.event6 / self.event5 if self.event5 > 0 else 0.0

    @property
    def memory_bandwidth(self) -> float:
        """Total DRAM traffic rate in bytes/s."""
        return (self.event1 + self.event2) / max(self.duration_s, 1e-12)

    @property
    def remote_miss_fraction(self) -> float:
        """Share of L3 misses served by remote DRAM."""
        total = self.event3 + self.event4
        return self.event4 / total if total > 0 else 0.0


CACHE_LINE_BYTES = 64.0

#: Read/write split of DRAM traffic assumed by the synthesizer; typical
#: HPC codes read roughly twice what they write.
READ_FRACTION = 0.67


def synthesize_counters(
    *,
    instructions: float,
    duration_s: float,
    n_threads: int,
    frequency_hz: float,
    dram_bytes: float,
    remote_fraction: float,
    icache_mpki: float,
    rng: np.random.Generator | None = None,
    noise: float = 0.01,
) -> EventCounters:
    """Build an :class:`EventCounters` for one execution interval.

    Parameters
    ----------
    instructions:
        Instructions retired during the interval (all threads).
    duration_s:
        Interval wall time.
    n_threads:
        Active threads; active cycles are ``n_threads * f * duration``
        (cores busy-wait or stall rather than sleep during a phase).
    frequency_hz:
        Core clock during the interval.
    dram_bytes:
        Total DRAM traffic (read+write) in bytes.
    remote_fraction:
        Fraction of L3 misses served by the remote socket.
    icache_mpki:
        Instruction-cache misses per kilo-instruction (a front-end
        footprint proxy; large multi-zone solvers score higher).
    rng / noise:
        Optional multiplicative log-normal measurement noise; PMU
        counters on real parts jitter by around a percent.
    """
    check_non_negative(instructions, "instructions")
    check_non_negative(duration_s, "duration_s")
    check_non_negative(dram_bytes, "dram_bytes")
    if not 0.0 <= remote_fraction <= 1.0:
        raise ValueError(f"remote_fraction must lie in [0,1]: {remote_fraction}")

    reads = dram_bytes * READ_FRACTION
    writes = dram_bytes - reads
    misses = dram_bytes / CACHE_LINE_BYTES
    values = np.array(
        [
            icache_mpki * instructions / 1e3,
            reads,
            writes,
            misses * (1.0 - remote_fraction),
            misses * remote_fraction,
            n_threads * frequency_hz * duration_s,
            instructions,
        ]
    )
    if rng is not None and noise > 0:
        values = values * np.exp(rng.normal(0.0, noise, size=values.shape))
    return EventCounters(
        event0=float(values[0]),
        event1=float(values[1]),
        event2=float(values[2]),
        event3=float(values[3]),
        event4=float(values[4]),
        event5=float(values[5]),
        event6=float(values[6]),
        event7=0.0,
        duration_s=duration_s,
    )
