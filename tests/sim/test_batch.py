"""Batched evaluation: exact equivalence with the scalar path + memoization.

The batch evaluator's contract is *bit-exact* agreement with
``ExecutionEngine.run`` — every ``RunResult`` field, including the
synthesized PMU counters, must match the scalar path exactly (the
ISSUE's 1e-9 tolerance is the ceiling; the implementation achieves
equality).  The cache tests pin the memoization semantics: keys cover
the application, the full configuration, the engine seed, and the
current per-node efficiency factors, so fault injection and reseeding
invalidate naturally.
"""

import dataclasses

import pytest

from repro.hw.cluster import SimulatedCluster
from repro.hw.numa import AffinityKind
from repro.sim.batch import BatchEvaluator, RunCache, config_cache_key
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.apps import get_app


def assert_identical(batch, scalar):
    """Field-by-field exact comparison with a readable failure message."""
    assert batch.app_name == scalar.app_name
    assert batch.n_nodes == scalar.n_nodes
    assert len(batch.nodes) == len(scalar.nodes)
    for b, s in zip(batch.nodes, scalar.nodes):
        for field in dataclasses.fields(s):
            bv = getattr(b, field.name)
            sv = getattr(s, field.name)
            assert bv == sv, (
                f"node {s.node_id}: {field.name} differs: {bv!r} != {sv!r}"
            )
    for field in dataclasses.fields(scalar):
        bv = getattr(batch, field.name)
        sv = getattr(scalar, field.name)
        assert bv == sv, f"{field.name} differs: {bv!r} != {sv!r}"


EQUIVALENCE_CASES = [
    # (app, config) — one per distinct code path in the array program.
    ("sp-mz.C", ExecutionConfig(n_nodes=4, n_threads=12, iterations=3)),
    (
        "stream",
        ExecutionConfig(
            n_nodes=2,
            n_threads=24,
            affinity=AffinityKind.SCATTER,
            pkg_cap_w=100.0,
            dram_cap_w=30.0,
            iterations=2,
        ),
    ),
    (
        "ep.C",  # tight PKG cap: duty-cycle fallback path
        ExecutionConfig(
            n_nodes=1, n_threads=24, pkg_cap_w=45.0, iterations=2
        ),
    ),
    (
        "comd",  # tight DRAM cap: bandwidth throttling path
        ExecutionConfig(
            n_nodes=3, n_threads=8, dram_cap_w=22.5, iterations=2
        ),
    ),
    (
        "bt-mz.C",  # multi-phase app with a per-phase thread override
        ExecutionConfig(
            n_nodes=4,
            n_threads=16,
            iterations=2,
            phase_threads={"solve": 8},
        ),
    ),
    (
        "tealeaf",  # pinned frequency + compact packing
        ExecutionConfig(
            n_nodes=2,
            n_threads=6,
            affinity=AffinityKind.COMPACT,
            frequency_hz=1.2e9,
            iterations=2,
        ),
    ),
    (
        "sp-mz.C",  # weak scaling
        ExecutionConfig(
            n_nodes=8, n_threads=12, scaling="weak", iterations=2
        ),
    ),
    (
        "amg",  # heterogeneous per-node caps + explicit node choice
        ExecutionConfig(
            n_nodes=2,
            n_threads=12,
            per_node_caps=((110.0, 32.0), (90.0, 28.0)),
            node_ids=(5, 2),
            iterations=2,
        ),
    ),
    ("ep.C", ExecutionConfig(n_nodes=1, n_threads=1, iterations=2)),
]


class TestExactEquivalence:
    @pytest.mark.parametrize(
        "app_name,config",
        EQUIVALENCE_CASES,
        ids=[f"{a}-{i}" for i, (a, _) in enumerate(EQUIVALENCE_CASES)],
    )
    def test_batch_matches_scalar(self, engine, app_name, config):
        app = get_app(app_name)
        scalar = engine.run(app, config)
        (batch,) = engine.evaluate_many(app, [config])
        assert_identical(batch, scalar)

    def test_full_candidate_set_in_one_call(self, engine):
        """Many heterogeneous configs in one array program all match."""
        app = get_app("sp-mz.C")
        configs = [cfg for _, cfg in EQUIVALENCE_CASES]
        batch = engine.evaluate_many(app, configs)
        for cfg, b in zip(configs, batch):
            assert_identical(b, engine.run(app, cfg))

    def test_evaluate_single(self, engine):
        app = get_app("comd")
        cfg = ExecutionConfig(n_nodes=2, n_threads=8, iterations=2)
        assert_identical(engine.evaluate(app, cfg), engine.run(app, cfg))

    def test_order_independence(self, engine):
        """Results depend only on the config, not its batch position."""
        app = get_app("stream")
        configs = [
            ExecutionConfig(n_nodes=n, n_threads=12, iterations=2)
            for n in (1, 2, 4, 8)
        ]
        forward = engine.evaluate_many(app, configs)
        backward = engine.evaluate_many(app, configs[::-1])
        for f, b in zip(forward, backward[::-1]):
            assert_identical(f, b)

    def test_degraded_cluster_matches(self):
        """Node-variability factors flow through the batch path too."""
        cluster = SimulatedCluster.testbed()
        cluster.degrade_node(3, 1.08)
        engine = ExecutionEngine(cluster, seed=42)
        app = get_app("sp-mz.C")
        cfg = ExecutionConfig(n_nodes=8, n_threads=12, iterations=2)
        assert_identical(engine.evaluate(app, cfg), engine.run(app, cfg))


#: Configs straddling the Haswell/Broadwell boundary of the mixed fleet
#: (slots 0-3 Haswell, 4-7 Broadwell): cross-class spans, class-pure
#: subsets, pinned frequency quantized on two different ladders, and
#: per-node caps clipped against two different domain maxima.
MIXED_CASES = [
    ("sp-mz.C", ExecutionConfig(n_nodes=8, n_threads=12, iterations=2)),
    ("stream", ExecutionConfig(n_nodes=6, n_threads=24, iterations=2)),
    (
        "comd",  # Broadwell-only span
        ExecutionConfig(
            n_nodes=3, n_threads=16, node_ids=(4, 6, 7), iterations=2
        ),
    ),
    (
        "ep.C",  # cross-class span with interleaved slot order
        ExecutionConfig(
            n_nodes=4, n_threads=8, node_ids=(1, 5, 2, 6), iterations=2
        ),
    ),
    (
        "tealeaf",  # pinned frequency hits both DVFS ladders
        ExecutionConfig(
            n_nodes=8, n_threads=6, frequency_hz=1.9e9, iterations=2
        ),
    ),
    (
        "amg",  # per-node caps across the class boundary
        ExecutionConfig(
            n_nodes=4,
            n_threads=12,
            per_node_caps=((110.0, 32.0), (90.0, 28.0), (120.0, 35.0), (95.0, 30.0)),
            node_ids=(2, 3, 4, 5),
            affinity=AffinityKind.SCATTER,
            iterations=2,
        ),
    ),
]


class TestMixedClusterEquivalence:
    """Bit-exact batch/scalar agreement on the heterogeneous fleet."""

    @pytest.fixture()
    def mixed_engine(self):
        return ExecutionEngine(SimulatedCluster.mixed_testbed(), seed=42)

    @pytest.mark.parametrize(
        "app_name,config",
        MIXED_CASES,
        ids=[f"{a}-{i}" for i, (a, _) in enumerate(MIXED_CASES)],
    )
    def test_batch_matches_scalar(self, mixed_engine, app_name, config):
        app = get_app(app_name)
        scalar = mixed_engine.run(app, config)
        (batch,) = mixed_engine.evaluate_many(app, [config])
        assert_identical(batch, scalar)

    def test_full_mixed_candidate_set_in_one_call(self, mixed_engine):
        app = get_app("sp-mz.C")
        configs = [cfg for _, cfg in MIXED_CASES]
        batch = mixed_engine.evaluate_many(app, configs)
        for cfg, b in zip(configs, batch):
            assert_identical(b, mixed_engine.run(app, cfg))

    def test_thread_count_validated_against_smallest_class(self, mixed_engine):
        from repro.errors import SchedulingError

        app = get_app("comd")
        # 40 threads fit the Broadwell slots but not the Haswell ones
        cfg = ExecutionConfig(
            n_nodes=2, n_threads=40, node_ids=(3, 4), iterations=2
        )
        with pytest.raises(SchedulingError, match="24 cores"):
            mixed_engine.evaluate_many(app, [cfg])
        # a Broadwell-only span accepts the same thread count
        wide = ExecutionConfig(
            n_nodes=2, n_threads=40, node_ids=(4, 5), iterations=2
        )
        assert_identical(
            mixed_engine.evaluate_many(app, [wide])[0],
            mixed_engine.run(app, wide),
        )


class TestConfigCacheKey:
    def test_equal_configs_equal_keys(self):
        a = ExecutionConfig(n_nodes=2, n_threads=8, phase_threads={"x": 4})
        b = ExecutionConfig(n_nodes=2, n_threads=8, phase_threads={"x": 4})
        assert config_cache_key(a) == config_cache_key(b)

    def test_distinct_configs_distinct_keys(self):
        base = ExecutionConfig(n_nodes=2, n_threads=8)
        for other in (
            ExecutionConfig(n_nodes=3, n_threads=8),
            ExecutionConfig(n_nodes=2, n_threads=8, pkg_cap_w=90.0),
            ExecutionConfig(n_nodes=2, n_threads=8, scaling="weak"),
            ExecutionConfig(n_nodes=2, n_threads=8, phase_threads={"x": 4}),
        ):
            assert config_cache_key(base) != config_cache_key(other)

    def test_key_is_hashable(self):
        cfg = ExecutionConfig(n_nodes=2, n_threads=8, phase_threads={"x": 4})
        hash(config_cache_key(cfg))


class TestRunCache:
    def test_run_hits_after_miss(self, cluster):
        cache = RunCache()
        engine = ExecutionEngine(cluster, seed=42, cache=cache)
        app = get_app("comd")
        cfg = ExecutionConfig(n_nodes=2, n_threads=8, iterations=2)
        first = engine.run(app, cfg)
        assert (cache.hits, cache.misses) == (0, 1)
        second = engine.run(app, cfg)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second is first  # the memoized object itself

    def test_cached_equals_uncached_across_apps(self, cluster):
        cached_engine = ExecutionEngine(
            SimulatedCluster.testbed(), seed=42, cache=RunCache()
        )
        plain_engine = ExecutionEngine(cluster, seed=42)
        for name in ("sp-mz.C", "stream"):
            app = get_app(name)
            for cfg in (
                ExecutionConfig(n_nodes=2, n_threads=8, iterations=2),
                ExecutionConfig(
                    n_nodes=4, n_threads=12, dram_cap_w=30.0, iterations=2
                ),
            ):
                cached_engine.run(app, cfg)  # prime
                assert_identical(
                    cached_engine.run(app, cfg), plain_engine.run(app, cfg)
                )

    def test_batch_and_scalar_share_entries(self, cluster):
        cache = RunCache()
        engine = ExecutionEngine(cluster, seed=42, cache=cache)
        app = get_app("ep.C")
        cfg = ExecutionConfig(n_nodes=1, n_threads=12, iterations=2)
        scalar = engine.run(app, cfg)
        (batch,) = engine.evaluate_many(app, [cfg])
        assert batch is scalar  # evaluate_many served from run()'s entry
        assert cache.hits == 1

    def test_seed_invalidates(self):
        cache = RunCache()
        app = get_app("comd")
        cfg = ExecutionConfig(n_nodes=2, n_threads=8, iterations=2)
        a = ExecutionEngine(SimulatedCluster.testbed(), seed=42, cache=cache)
        b = ExecutionEngine(SimulatedCluster.testbed(), seed=43, cache=cache)
        a.run(app, cfg)
        b.run(app, cfg)
        assert cache.misses == 2 and cache.hits == 0
        assert len(cache) == 2

    def test_degrade_invalidates(self, cluster):
        cache = RunCache()
        engine = ExecutionEngine(cluster, seed=42, cache=cache)
        app = get_app("comd")
        cfg = ExecutionConfig(n_nodes=2, n_threads=8, iterations=2)
        before = engine.run(app, cfg)
        cluster.degrade_node(0, 1.10)
        after = engine.run(app, cfg)
        assert cache.misses == 2 and cache.hits == 0
        assert after.energy_j != before.energy_j

    def test_stats_and_clear(self, cluster):
        cache = RunCache()
        engine = ExecutionEngine(cluster, seed=42, cache=cache)
        app = get_app("stream")
        cfg = ExecutionConfig(n_nodes=1, n_threads=8, iterations=2)
        engine.run(app, cfg)
        engine.run(app, cfg)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hit_rate"] == 0.0

    def test_bounded_eviction(self, cluster):
        cache = RunCache(max_entries=2)
        engine = ExecutionEngine(cluster, seed=42, cache=cache)
        app = get_app("ep.C")
        for n in (1, 2, 3):
            engine.run(
                app, ExecutionConfig(n_nodes=n, n_threads=4, iterations=2)
            )
        assert len(cache) <= 2  # overflow emptied the table

    def test_no_cache_by_default(self, engine):
        assert engine.cache is None
        evaluator = BatchEvaluator(engine)
        app = get_app("ep.C")
        cfg = ExecutionConfig(n_nodes=1, n_threads=4, iterations=2)
        a = evaluator.run_many(app, [cfg])[0]
        b = evaluator.run_many(app, [cfg])[0]
        assert a is not b  # recomputed, not memoized
        assert_identical(a, b)


#: GPU-fleet configs: uncapped offload, a device throttle, three-entry
#: per-node caps, a host-only app paying idle board power, and a pinned
#: frequency alongside an active device.
GPU_CASES = [
    ("lulesh-gpu", ExecutionConfig(n_nodes=4, n_threads=12, iterations=2)),
    (
        "minife-gpu",  # uniform device throttle (low ladder level)
        ExecutionConfig(n_nodes=2, n_threads=12, gpu_cap_w=60.0, iterations=2),
    ),
    (
        "hpgmg-gpu",  # heterogeneous three-domain caps + node choice
        ExecutionConfig(
            n_nodes=2,
            n_threads=12,
            per_node_caps=((110.0, 32.0, 120.0), (95.0, 28.0, 75.0)),
            node_ids=(5, 2),
            iterations=2,
        ),
    ),
    (
        "comd",  # host-only app on GPU nodes: idle board draw path
        ExecutionConfig(n_nodes=2, n_threads=8, iterations=2),
    ),
    (
        "lulesh-gpu",  # pinned host frequency with an active device
        ExecutionConfig(
            n_nodes=2, n_threads=6, frequency_hz=1.9e9, iterations=2
        ),
    ),
]

#: Mixed CPU+GPU fleet (slots 0-3 GPU, 4-7 CPU-only): cross-class
#: spans and mixed-arity per-node caps in one batch.
MIXED_GPU_CASES = [
    ("lulesh-gpu", ExecutionConfig(n_nodes=8, n_threads=12, iterations=2)),
    (
        "minife-gpu",  # cross-class span, interleaved slot order
        ExecutionConfig(
            n_nodes=4, n_threads=8, node_ids=(1, 5, 2, 6), iterations=2
        ),
    ),
    (
        "stream",  # CPU-only span of the mixed fleet
        ExecutionConfig(
            n_nodes=3, n_threads=16, node_ids=(4, 6, 7), iterations=2
        ),
    ),
    (
        "hpgmg-gpu",  # 3-entry caps on GPU slots, 2-entry on CPU slots
        ExecutionConfig(
            n_nodes=4,
            n_threads=12,
            per_node_caps=(
                (110.0, 32.0, 120.0),
                (95.0, 28.0, 80.0),
                (120.0, 35.0),
                (100.0, 30.0),
            ),
            node_ids=(0, 1, 4, 5),
            iterations=2,
        ),
    ),
]


class TestGpuEquivalence:
    """Bit-exact batch/scalar agreement on accelerator fleets."""

    @pytest.fixture(scope="class")
    def gpu_engine(self):
        from repro.hw.specs import gpu_testbed

        return ExecutionEngine(SimulatedCluster(gpu_testbed()), seed=42)

    @pytest.fixture(scope="class")
    def mixed_gpu_engine(self):
        from repro.hw.specs import mixed_gpu_testbed

        return ExecutionEngine(SimulatedCluster(mixed_gpu_testbed()), seed=42)

    @pytest.mark.parametrize(
        "app_name,config",
        GPU_CASES,
        ids=[f"{a}-{i}" for i, (a, _) in enumerate(GPU_CASES)],
    )
    def test_batch_matches_scalar_on_gpu_fleet(
        self, gpu_engine, app_name, config
    ):
        app = get_app(app_name)
        scalar = gpu_engine.run(app, config)
        (batch,) = gpu_engine.evaluate_many(app, [config])
        assert_identical(batch, scalar)

    @pytest.mark.parametrize(
        "app_name,config",
        MIXED_GPU_CASES,
        ids=[f"{a}-{i}" for i, (a, _) in enumerate(MIXED_GPU_CASES)],
    )
    def test_batch_matches_scalar_on_mixed_gpu_fleet(
        self, mixed_gpu_engine, app_name, config
    ):
        app = get_app(app_name)
        scalar = mixed_gpu_engine.run(app, config)
        (batch,) = mixed_gpu_engine.evaluate_many(app, [config])
        assert_identical(batch, scalar)

    def test_full_gpu_candidate_set_in_one_call(self, gpu_engine):
        app = get_app("lulesh-gpu")
        configs = [cfg for _, cfg in GPU_CASES if cfg.per_node_caps is None]
        batch = gpu_engine.evaluate_many(app, configs)
        for cfg, b in zip(configs, batch):
            assert_identical(b, gpu_engine.run(app, cfg))

    def test_gpu_energy_accounted(self, gpu_engine):
        """Offloaded runs draw measurably more than the idle board."""
        cfg = ExecutionConfig(n_nodes=2, n_threads=12, iterations=2)
        busy = gpu_engine.run(get_app("lulesh-gpu"), cfg)
        idle = gpu_engine.run(get_app("comd"), cfg)
        assert busy.nodes[0].avg_gpu_w > idle.nodes[0].avg_gpu_w
        assert busy.nodes[0].gpu_busy_fraction > 0.3
        assert idle.nodes[0].gpu_busy_fraction == 0.0
