#!/usr/bin/env python3
"""Multi-job power sharing (extension; cf. POW-shed, SC'15 [11]).

Three jobs with very different power personalities — a linear MD code,
a parabolic multizone solver, and a bandwidth-bound kernel — arrive at
a cluster with a single 1800 W budget.  The coordinator partitions both
the nodes and the watts using each job's CLIP models (including per-job
concurrency throttling), then runs all three concurrently and compares
against a naive equal split.

Run:  python examples/multi_job.py
"""

from repro import quickstart_scheduler
from repro.analysis.metrics import geometric_mean
from repro.analysis.plots import render_grouped_bars
from repro.analysis.tables import render_table
from repro.core.multijob import MultiJobCoordinator
from repro.sim.engine import ExecutionConfig
from repro.workloads import get_app

JOBS = ("comd", "sp-mz.C", "stream")
BUDGET_W = 1800.0


def naive_equal_split(engine, apps):
    """Equal nodes, equal power, all cores — the do-nothing policy."""
    per_job_nodes = engine.cluster.n_nodes // len(apps)
    per_job_budget = BUDGET_W / len(apps)
    results = {}
    next_node = 0
    for app in apps:
        share = per_job_budget / per_job_nodes
        result = engine.run(
            app,
            ExecutionConfig(
                n_nodes=per_job_nodes,
                n_threads=engine.cluster.spec.node.n_cores,
                pkg_cap_w=share - 30.0,
                dram_cap_w=30.0,
                node_ids=tuple(range(next_node, next_node + per_job_nodes)),
                iterations=5,
            ),
        )
        next_node += per_job_nodes
        results[app.name] = result
    return results


def main() -> None:
    print("Building testbed + training CLIP...")
    clip = quickstart_scheduler()
    engine = clip._engine
    apps = [get_app(n) for n in JOBS]

    coordinator = MultiJobCoordinator(clip)
    placements = coordinator.run(apps, BUDGET_W, iterations=5)
    naive = naive_equal_split(engine, apps)

    rows = []
    clip_rel, naive_rel = [], []
    for placement, result in placements:
        solo_cfg = placement.to_execution_config(iterations=5)
        rel_clip = result.performance
        rel_naive = naive[placement.app_name].performance
        rows.append(
            [
                placement.app_name,
                f"{placement.n_nodes} nodes",
                placement.config.n_threads,
                f"{placement.budget_w:.0f} W",
                rel_clip,
                rel_naive,
            ]
        )
        clip_rel.append(rel_clip)
        naive_rel.append(rel_naive)

    print()
    print(
        render_table(
            ["Job", "Nodes", "Threads", "Power", "coordinated it/s",
             "equal-split it/s"],
            rows,
            title=f"Three concurrent jobs under one {BUDGET_W:.0f} W budget",
        )
    )
    print()
    print(
        render_grouped_bars(
            [r[0] for r in rows],
            {
                "coordinated": [r[4] / max(r[4], r[5]) for r in rows],
                "equal split": [r[5] / max(r[4], r[5]) for r in rows],
            },
            title="Per-job throughput (normalized to the better policy)",
        )
    )
    gain = geometric_mean(
        [c / n for c, n in zip(clip_rel, naive_rel)]
    )
    print(f"\nGeomean throughput gain of coordination: {gain - 1:+.1%}")


if __name__ == "__main__":
    main()
