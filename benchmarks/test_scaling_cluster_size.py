"""Scaling study — CLIP beyond the paper's 8 nodes.

The paper motivates CLIP with exascale-era budgets; this extension
bench grows the simulated cluster (8 → 64 nodes) and checks that

* the scheduler's decision cost stays interactive (its models are
  closed-form; only the candidate scan grows linearly), and
* decision *quality* holds: CLIP keeps beating All-In by a healthy
  margin at proportionally scaled budgets, and keeps budgets conserved.
"""

import time

from repro.analysis.tables import render_table
from repro.baselines import AllInScheduler
from repro.core.knowledge import KnowledgeDB
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import haswell_testbed
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app
from conftest import run_once

SIZES = (8, 16, 32, 64)
BUDGET_PER_NODE_W = 140.0


def sweep(trained_inflection):
    app = get_app("sp-mz.C")
    rows = []
    for n in SIZES:
        engine = ExecutionEngine(
            SimulatedCluster(haswell_testbed(n_nodes=n)), seed=42
        )
        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        budget = BUDGET_PER_NODE_W * n
        clip.ensure_knowledge(app)  # profile outside the timer
        t0 = time.perf_counter()
        decision = clip.schedule(app, budget)
        decide_s = time.perf_counter() - t0
        result = engine.run(app, decision.to_execution_config(iterations=3))
        allin = AllInScheduler(engine).run(app, budget, iterations=3)
        rows.append(
            [
                n,
                f"{budget:.0f}W",
                decision.n_nodes,
                decision.n_threads,
                decide_s * 1e3,
                result.performance / allin.performance,
            ]
        )
    return rows


def test_scaling_cluster_size(benchmark, trained_inflection, report):
    rows = run_once(benchmark, lambda: sweep(trained_inflection))

    report(
        "scaling_cluster",
        render_table(
            ["nodes", "budget", "CLIP nodes", "threads", "decision (ms)",
             "CLIP / All-In"],
            rows,
            title="Extension — CLIP on growing clusters (sp-mz.C, 140 W/node)",
        ),
    )

    for n, _, used, threads, decide_ms, speedup in rows:
        assert 1 <= used <= n
        assert threads < 24  # parabolic: throttled at every scale
        assert decide_ms < 2000.0
        assert speedup > 1.2  # the CLIP advantage persists at scale

    # decision latency grows at most ~linearly with the cluster size
    assert rows[-1][4] < rows[0][4] * len(SIZES) * 8
