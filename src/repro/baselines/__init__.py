"""Comparison methods from the evaluation (§V-C).

* :class:`AllInScheduler` — every node, every core, 30 W to memory and
  the rest of the node share to the CPU;
* :class:`LowerLimitScheduler` — like All-In, but sheds nodes so no
  node receives less than a fixed 180 W;
* :class:`CoordinatedScheduler` — Ge et al. [15]: an application-aware
  per-node power floor and a model-driven CPU/DRAM split, but always
  at the highest concurrency;
* :class:`OracleScheduler` — exhaustive configuration search on the
  simulator, the "optimal" the paper says CLIP performs close to.

All schedulers share the :class:`PowerBoundedScheduler` interface so
the evaluation harness treats them and CLIP uniformly.
"""

from repro.baselines.base import PowerBoundedScheduler
from repro.baselines.allin import AllInScheduler
from repro.baselines.lowerlimit import LowerLimitScheduler
from repro.baselines.coordinated import CoordinatedScheduler
from repro.baselines.optimal import OracleScheduler

__all__ = [
    "PowerBoundedScheduler",
    "AllInScheduler",
    "LowerLimitScheduler",
    "CoordinatedScheduler",
    "OracleScheduler",
]
