#!/usr/bin/env python3
"""Inverse budget planning — "what power do I need for this deadline?"

The paper answers "given watts, how fast"; this extension answers the
operator's inverse question.  For each application we plan the minimal
cluster budget that meets a throughput target, first from CLIP's
predictions alone, then validated with short probe executions (CLIP's
cluster prediction is deliberately optimistic for sync-heavy codes),
and finally check the planned budget on a full run.

Run:  python examples/budget_planning.py
"""

from repro import quickstart_scheduler
from repro.analysis.tables import render_table
from repro.core.planner import BudgetPlanner
from repro.workloads import get_app

TARGETS = (
    ("comd", 8.0),
    ("bt-mz.C", 2.5),
    ("sp-mz.C", 1.2),
    ("tealeaf", 1.5),
)


def main() -> None:
    print("Building testbed + training CLIP...")
    clip = quickstart_scheduler()
    planner = BudgetPlanner(clip)

    rows = []
    for name, target in TARGETS:
        app = get_app(name)
        optimistic = planner.plan(app, target)
        validated = planner.plan_validated(app, target)
        _, check = clip.run(app, validated.budget_w, iterations=5)
        rows.append(
            [
                name,
                target,
                optimistic.budget_w,
                validated.budget_w,
                check.performance,
                "yes" if check.performance >= target else "NO",
            ]
        )

    print()
    print(
        render_table(
            ["Job", "target it/s", "predicted-only budget (W)",
             "validated budget (W)", "measured it/s", "met?"],
            rows,
            title="Minimal cluster budgets for throughput targets",
        )
    )
    print(
        "\nThe validated plan costs more for sync-heavy codes (sp-mz,"
        " tealeaf): their per-node synchronization does not strong-scale,"
        " which CLIP's optimistic cluster prediction ignores — the probe"
        " loop buys the difference back."
    )
    # the honest refusal: an impossible target
    from repro.errors import InfeasibleBudgetError

    try:
        planner.plan(get_app("tealeaf"), target_perf=1e4)
    except InfeasibleBudgetError as exc:
        print(f"\nImpossible target correctly refused: {exc}")


if __name__ == "__main__":
    main()
