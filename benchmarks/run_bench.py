"""Before/after timings for the batched evaluation subsystem.

Measures the two workloads the batch path was built for and writes the
results to ``BENCH_batch.json`` at the repository root:

* **oracle search** — ``OracleScheduler.plan`` over the full candidate
  grid, scalar (``use_batch=False``) vs batched, plus a warm-cache
  repeat with a shared :class:`RunCache`;
* **figure sweep** — the Fig. 3 concurrency x budget grid (one config
  per ``engine.run`` call before; one ``evaluate_many`` array program
  after).

Run standalone with ``python benchmarks/run_bench.py`` or through
``benchmarks/test_perf_batch.py`` (which also asserts the >= 5x
speedup target and plan equivalence).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.optimal import OracleScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.batch import RunCache
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_batch.json"

ORACLE_APP = "sp-mz.C"
ORACLE_BUDGET_W = 1200.0

FIGURE_APPS = ("ep.C", "stream", "sp.C")
FIGURE_PKG_BUDGETS_W = (70.0, 100.0, 140.0, 180.0, 240.0)
FIGURE_THREADS = (6, 12, 18, 24)
FIGURE_DRAM_W = 30.0


def _fresh_engine(cache: RunCache | None = None) -> ExecutionEngine:
    return ExecutionEngine(SimulatedCluster.testbed(), seed=42, cache=cache)


def bench_oracle_search() -> dict:
    """Time the full oracle grid search on both evaluation paths."""
    app = get_app(ORACLE_APP)

    engine = _fresh_engine()
    scalar = OracleScheduler(engine, use_batch=False)
    t0 = time.perf_counter()
    scalar_plan = scalar.plan(app, ORACLE_BUDGET_W)
    scalar_s = time.perf_counter() - t0

    engine = _fresh_engine()
    batch = OracleScheduler(engine, use_batch=True)
    t0 = time.perf_counter()
    batch_plan = batch.plan(app, ORACLE_BUDGET_W)
    batch_s = time.perf_counter() - t0

    cache = RunCache()
    engine = _fresh_engine(cache=cache)
    cached = OracleScheduler(engine, use_batch=True)
    cached.plan(app, ORACLE_BUDGET_W)  # populate
    t0 = time.perf_counter()
    cached_plan = cached.plan(app, ORACLE_BUDGET_W)
    cached_s = time.perf_counter() - t0

    return {
        "app": ORACLE_APP,
        "cluster_budget_w": ORACLE_BUDGET_W,
        "search_stats": batch.search_stats,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "warm_cache_s": cached_s,
        "speedup": scalar_s / batch_s,
        "warm_cache_speedup": scalar_s / cached_s,
        "cache_stats": cache.stats(),
        "plans_identical": scalar_plan == batch_plan == cached_plan,
        "plan": {
            "n_nodes": batch_plan.n_nodes,
            "n_threads": batch_plan.n_threads,
            "affinity": str(batch_plan.affinity),
            "pkg_cap_w": batch_plan.pkg_cap_w,
            "dram_cap_w": batch_plan.dram_cap_w,
        },
    }


def _figure_configs() -> list[ExecutionConfig]:
    return [
        ExecutionConfig(
            n_nodes=1,
            n_threads=n,
            pkg_cap_w=pkg,
            dram_cap_w=FIGURE_DRAM_W,
            iterations=3,
        )
        for pkg in FIGURE_PKG_BUDGETS_W
        for n in FIGURE_THREADS
    ]


def bench_figure_sweep() -> dict:
    """Time the Fig. 3 grid: scalar run loop vs one batched call."""
    configs = _figure_configs()
    apps = [get_app(name) for name in FIGURE_APPS]

    engine = _fresh_engine()
    t0 = time.perf_counter()
    scalar = [[engine.run(app, cfg) for cfg in configs] for app in apps]
    scalar_s = time.perf_counter() - t0

    engine = _fresh_engine()
    t0 = time.perf_counter()
    batched = [engine.evaluate_many(app, configs) for app in apps]
    batch_s = time.perf_counter() - t0

    identical = all(
        s == b
        for s_row, b_row in zip(scalar, batched)
        for s, b in zip(s_row, b_row)
    )
    return {
        "apps": list(FIGURE_APPS),
        "n_runs": len(configs) * len(apps),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "results_identical": identical,
    }


def run_all() -> dict:
    payload = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "oracle_search": bench_oracle_search(),
        "figure_sweep": bench_figure_sweep(),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_all()
    oracle = payload["oracle_search"]
    sweep = payload["figure_sweep"]
    print(f"wrote {BENCH_PATH}")
    print(
        f"oracle search : {oracle['scalar_s']:.3f}s -> {oracle['batch_s']:.3f}s "
        f"({oracle['speedup']:.1f}x, warm cache {oracle['warm_cache_s']:.3f}s)"
    )
    print(
        f"figure sweep  : {sweep['scalar_s']:.3f}s -> {sweep['batch_s']:.3f}s "
        f"({sweep['speedup']:.1f}x over {sweep['n_runs']} runs)"
    )
    ok = oracle["plans_identical"] and sweep["results_identical"]
    print(f"equivalence   : {'identical' if ok else 'MISMATCH'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
