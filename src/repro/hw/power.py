"""Ground-truth analytic power model.

This module computes the *actual* power the simulated hardware draws.
It realizes the structure of the paper's Eqs. 5–9:

* package power = base + Σ active-core load (Eq. 7), where per-core load
  has a leakage term and a dynamic term super-linear in frequency and
  proportional to the core's activity factor (memory-stalled cores draw
  less dynamic power);
* DRAM power = base + load linear in delivered bandwidth (Eq. 9);
* node power = Σ package + Σ DRAM + other (Eq. 5).

CLIP never reads these equations directly — it observes power through
the RAPL interface and meter, and *fits its own* model from profiles,
preserving the paper's methodology.

Everything here is pure and vectorization-friendly: frequency arguments
may be scalars or NumPy arrays (per the HPC guides, avoid Python-level
loops in hot paths — parameter sweeps evaluate thousands of operating
points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SpecError
from repro.hw.specs import MemorySpec, NodeSpec, SocketSpec
from repro.units import check_fraction, check_non_negative

__all__ = ["PowerModel", "PowerBreakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous node power split by RAPL-visible domain (watts).

    ``gpu_w`` is ``None`` on CPU-only nodes — the domain is *absent*,
    not zero, so consumers can distinguish "no accelerator" from "an
    idle accelerator".  All domain arithmetic (totals, scaling) is
    table-driven over :data:`CAPPED_DOMAIN_FIELDS`: a new domain added
    to the table participates in every aggregate automatically and can
    never be silently dropped from a total.
    """

    pkg_w: float
    dram_w: float
    other_w: float
    gpu_w: float | None = None

    #: Cappable domain fields, in summation order.  ``other_w`` stays
    #: outside: it is real wall power but no RAPL domain controls it.
    CAPPED_DOMAIN_FIELDS = ("pkg_w", "dram_w", "gpu_w")

    def present_domains(self) -> tuple[tuple[str, float], ...]:
        """The cappable domains this node actually has, in table order."""
        return tuple(
            (name, value)
            for name in self.CAPPED_DOMAIN_FIELDS
            if (value := getattr(self, name)) is not None
        )

    @property
    def total_w(self) -> float:
        """Wall power of the node."""
        return self.capped_w + self.other_w

    @property
    def capped_w(self) -> float:
        """Power under cap-domain control (PKG + DRAM [+ GPU])."""
        total = 0.0
        for _, value in self.present_domains():
            total = total + value
        return total

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Apply a node-wide efficiency multiplier (variability).

        Scales every present cappable domain; ``other_w`` (fans, board)
        does not vary with silicon quality.
        """
        scaled = {
            name: value * factor for name, value in self.present_domains()
        }
        return PowerBreakdown(other_w=self.other_w, **scaled)


class PowerModel:
    """Analytic power model for one node specification.

    Parameters
    ----------
    node:
        Static node description supplying all coefficients.
    efficiency:
        Node-wide multiplier on PKG and DRAM power modelling
        manufacturing variability; 1.0 is the nominal part.
    """

    def __init__(self, node: NodeSpec, efficiency: float = 1.0):
        if efficiency <= 0:
            raise SpecError(f"efficiency must be > 0, got {efficiency}")
        self._node = node
        self._efficiency = float(efficiency)

    @property
    def node(self) -> NodeSpec:
        """The node specification this model describes."""
        return self._node

    @property
    def efficiency(self) -> float:
        """Variability multiplier applied to PKG and DRAM power."""
        return self._efficiency

    # ------------------------------------------------------------------
    # forward model: configuration -> watts
    # ------------------------------------------------------------------

    def core_power(self, f, activity=1.0):
        """Power of one active core at frequency *f* (Hz).

        ``activity`` in [0, 1] scales only the dynamic term: a core
        stalled on memory keeps leaking but clocks fewer transitions.
        Accepts scalars or arrays and broadcasts.
        """
        spec = self._node.socket.core
        f = np.asarray(f, dtype=np.float64)
        act = np.asarray(activity, dtype=np.float64)
        if np.any(f < 0):
            raise SpecError("frequency must be >= 0")
        if np.any((act < 0) | (act > 1)):
            raise SpecError("activity must lie in [0, 1]")
        rel = f / self._node.socket.f_nominal
        dyn = spec.p_dyn_w * np.power(rel, spec.dyn_exponent) * act
        out = spec.p_leak_w + dyn
        return float(out) if out.ndim == 0 else out

    def pkg_power(self, n_active: int, f, activity=1.0):
        """Package power (Eq. 7) with *n_active* cores at frequency *f*.

        All active cores are assumed to share one frequency, matching
        how caps are resolved (socket-uniform throttling); per-core
        heterogeneity is available via :meth:`pkg_power_percore`.
        """
        socket = self._node.socket
        if not 0 <= n_active <= socket.n_cores:
            raise SpecError(
                f"n_active {n_active} outside [0, {socket.n_cores}]"
            )
        base = socket.p_base_w
        out = (base + n_active * np.asarray(self.core_power(f, activity))) * self._efficiency
        out = np.asarray(out)
        return float(out) if out.ndim == 0 else out

    def pkg_power_percore(self, freqs: np.ndarray, activities: np.ndarray) -> float:
        """Package power with per-core frequencies and activities.

        Inactive cores are indicated by frequency 0.
        """
        freqs = np.asarray(freqs, dtype=np.float64)
        acts = np.broadcast_to(
            np.asarray(activities, dtype=np.float64), freqs.shape
        )
        active = freqs > 0
        core_w = np.where(active, self.core_power(freqs, acts), 0.0)
        return float(
            (self._node.socket.p_base_w + core_w.sum()) * self._efficiency
        )

    def dram_power(self, bandwidth, memory: MemorySpec | None = None):
        """DRAM power of one socket's memory (Eq. 9) at *bandwidth* B/s."""
        mem = memory or self._node.socket.memory
        bw = np.asarray(bandwidth, dtype=np.float64)
        if np.any(bw < 0):
            raise SpecError("bandwidth must be >= 0")
        util = np.minimum(bw / mem.peak_bandwidth, 1.0)
        out = (mem.p_base_w + mem.p_load_max_w * util) * self._efficiency
        return float(out) if out.ndim == 0 else out

    def node_power(
        self,
        active_per_socket,
        f,
        bandwidth_per_socket,
        activity=1.0,
    ) -> PowerBreakdown:
        """Full node power (Eq. 5) for a symmetric operating point.

        Parameters
        ----------
        active_per_socket:
            Sequence of active-core counts, one per socket.
        f:
            Shared core frequency (Hz).
        bandwidth_per_socket:
            Sequence of delivered DRAM bandwidths (B/s), one per socket.
        activity:
            Core activity factor in [0, 1].
        """
        node = self._node
        if len(active_per_socket) != node.n_sockets:
            raise SpecError("active_per_socket length must equal n_sockets")
        if len(bandwidth_per_socket) != node.n_sockets:
            raise SpecError("bandwidth_per_socket length must equal n_sockets")
        check_fraction(float(np.min(activity)), "activity")
        pkg = sum(
            self.pkg_power(int(n), f, activity) for n in active_per_socket
        )
        dram = sum(self.dram_power(bw) for bw in bandwidth_per_socket)
        return PowerBreakdown(pkg_w=pkg, dram_w=dram, other_w=node.p_other_w)

    def gpu_power(self, clock_hz: float, utilization: float = 1.0) -> float:
        """Aggregate device power at *clock_hz* and busy-fraction *util*.

        Like the core model, utilization scales only the dynamic term —
        an idle board still draws its static power.  Returns 0.0 on
        CPU-only nodes (the domain does not exist).
        """
        gpu = self._node.gpu
        if gpu is None:
            return 0.0
        if clock_hz <= 0:
            raise SpecError("gpu clock must be > 0")
        if not 0.0 <= utilization <= 1.0:
            raise SpecError("gpu utilization must lie in [0, 1]")
        scale = (clock_hz / gpu.clk_nominal_hz) ** gpu.dyn_exponent
        per_board = gpu.p_idle_w + gpu.p_dyn_w * scale * utilization
        return self._node.n_gpus * per_board * self._efficiency

    # ------------------------------------------------------------------
    # inverse model: watts -> operating point, used for cap resolution
    # ------------------------------------------------------------------

    def max_freq_under_pkg_cap(
        self,
        cap_w: float,
        n_active_per_socket,
        activity=1.0,
    ) -> float | None:
        """Highest *continuous* frequency whose total PKG power <= cap.

        The cap covers all sockets jointly (node-level PKG budget); the
        RAPL layer quantizes the result onto the ladder.  Returns
        ``None`` when even ``f_min`` (or pure leakage) exceeds the cap.
        """
        check_non_negative(cap_w, "cap")
        socket = self._node.socket
        n_total = int(sum(n_active_per_socket))
        base = len(list(n_active_per_socket)) * socket.p_base_w
        static = (
            base + n_total * socket.core.p_leak_w
        ) * self._efficiency
        if n_total == 0:
            return socket.f_max if static <= cap_w else None
        act = float(np.mean(activity))
        dyn_budget = cap_w - static
        if dyn_budget < 0:
            return None
        if act <= 0:
            return socket.f_max
        # invert: dyn_budget = eff * n * p_dyn * act * (f/f_nom)^k
        denom = self._efficiency * n_total * socket.core.p_dyn_w * act
        rel = (dyn_budget / denom) ** (1.0 / socket.core.dyn_exponent)
        f = rel * socket.f_nominal
        if f < socket.f_min:
            return None
        return min(f, socket.f_max)

    def max_bandwidth_under_dram_cap(self, cap_w: float) -> float | None:
        """Highest per-socket bandwidth whose DRAM power <= cap.

        *cap_w* is the per-socket DRAM budget.  Returns ``None`` when
        the base power alone exceeds the cap (DRAM cannot be powered
        down while hosting pages).
        """
        check_non_negative(cap_w, "cap")
        mem = self._node.socket.memory
        budget = cap_w / self._efficiency - mem.p_base_w
        if budget < 0:
            return None
        util = min(budget / mem.p_load_max_w, 1.0) if mem.p_load_max_w > 0 else 1.0
        return util * mem.peak_bandwidth
