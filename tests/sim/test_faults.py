"""Tests for node failure state and the scripted fault injector."""

import numpy as np
import pytest

from repro.core.coordination import measure_node_factors
from repro.errors import (
    NodeFailureError,
    RuntimeCrashError,
    SchedulingError,
    SpecError,
)
from repro.hw.rapl import Domain
from repro.sim.engine import ExecutionConfig
from repro.sim.faults import FaultEvent, FaultInjector
from repro.workloads.apps import get_app


class TestClusterFailureState:
    def test_fail_marks_node_unavailable(self, cluster):
        cluster.fail_node(3)
        assert not cluster.is_available(3)
        assert cluster.failed_node_ids == (3,)
        assert cluster.n_available == cluster.n_nodes - 1
        assert 3 not in cluster.available_node_ids

    def test_recover_restores_service(self, cluster):
        old_eff = cluster.node(3).efficiency
        cluster.fail_node(3)
        node = cluster.recover_node(3)
        assert cluster.is_available(3)
        assert cluster.failed_node_ids == ()
        # same silicon returns: the efficiency factor survives the reboot
        assert node.efficiency == pytest.approx(old_eff)

    def test_recover_unfailed_node_rejected(self, cluster):
        with pytest.raises(NodeFailureError):
            cluster.recover_node(0)

    def test_bad_node_ids_rejected(self, cluster):
        with pytest.raises(SpecError):
            cluster.fail_node(99)
        with pytest.raises(SpecError):
            cluster.recover_node(-1)

    def test_engine_rejects_failed_participant(self, engine):
        engine.cluster.fail_node(1)
        with pytest.raises(NodeFailureError):
            engine.run(
                get_app("comd"),
                ExecutionConfig(n_nodes=4, n_threads=8, node_ids=(0, 1, 2, 3)),
            )
        # default node selection (first n) hits the failed node too
        with pytest.raises(NodeFailureError):
            engine.run(get_app("comd"), ExecutionConfig(n_nodes=4, n_threads=8))

    def test_engine_runs_on_survivors(self, engine):
        engine.cluster.fail_node(1)
        result = engine.run(
            get_app("comd"),
            ExecutionConfig(
                n_nodes=3, n_threads=8, node_ids=(0, 2, 3), iterations=2
            ),
        )
        assert result.total_time_s > 0

    def test_calibration_skips_failed_nodes(self, engine):
        engine.cluster.fail_node(2)
        factors = measure_node_factors(engine)
        assert len(factors) == engine.cluster.n_nodes
        assert factors[2] == pytest.approx(1.0)  # neutral placeholder
        assert np.all(np.isfinite(factors))

    def test_calibration_with_everything_failed_rejected(self, engine):
        for i in range(engine.cluster.n_nodes):
            engine.cluster.fail_node(i)
        with pytest.raises(SchedulingError):
            measure_node_factors(engine)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=-1.0, action="fail_node", node_id=0)
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="meteor_strike")
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="fail_node")  # node_id missing
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="degrade_node", node_id=0)
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="set_budget", budget_w=-5.0)

    def test_describe_mentions_the_action(self):
        assert "fails" in FaultEvent(1.0, "fail_node", node_id=2).describe()
        assert "1200" in FaultEvent(1.0, "set_budget", budget_w=1200.0).describe()


class TestFaultInjector:
    def _script(self, cluster):
        return FaultInjector(
            cluster,
            [
                FaultEvent(at_s=5.0, action="set_budget", budget_w=1000.0),
                FaultEvent(at_s=1.0, action="fail_node", node_id=2),
                FaultEvent(at_s=9.0, action="recover_node", node_id=2),
            ],
            budget_w=1600.0,
        )

    def test_events_fire_in_time_order(self, cluster):
        injector = self._script(cluster)
        assert injector.budget_w == 1600.0
        fired = injector.advance_to(0.5)
        assert fired == []  # nothing due yet
        fired = injector.advance_to(6.0)
        assert [e.action for e in fired] == ["fail_node", "set_budget"]
        assert injector.budget_w == 1000.0
        assert not cluster.is_available(2)
        assert not injector.exhausted

    def test_pending_and_exhausted(self, cluster):
        injector = self._script(cluster)
        injector.advance_to(100.0)
        assert injector.exhausted
        assert injector.pending == ()
        assert cluster.is_available(2)  # recovery fired last
        assert [e.at_s for e in injector.fired] == [1.0, 5.0, 9.0]

    def test_fire_next_ignores_timestamps(self, cluster):
        injector = self._script(cluster)
        event = injector.fire_next()
        assert event.action == "fail_node"
        assert not cluster.is_available(2)

    def test_fire_next_on_empty_script_rejected(self, cluster):
        injector = FaultInjector(cluster, [])
        with pytest.raises(SchedulingError):
            injector.fire_next()

    def test_degrade_event_reshapes_node(self, cluster):
        before = cluster.node(1).efficiency
        injector = FaultInjector(
            cluster,
            [FaultEvent(at_s=0.0, action="degrade_node", node_id=1, factor=1.3)],
        )
        injector.advance_to(0.0)
        assert cluster.node(1).efficiency == pytest.approx(before * 1.3)

    def test_same_timestamp_preserves_script_order(self, cluster):
        # regression: two events at the same instant must fire in the
        # order they were written, not in an arbitrary sort order —
        # fail-then-rebudget and rebudget-then-fail are different
        # stories and dataclass comparison on the tiebreak used to
        # blow up (FaultEvent is not orderable)
        injector = FaultInjector(
            cluster,
            [
                FaultEvent(at_s=2.0, action="fail_node", node_id=1),
                FaultEvent(at_s=2.0, action="set_budget", budget_w=900.0),
            ],
            budget_w=1600.0,
        )
        fired = injector.advance_to(2.0)
        assert [e.action for e in fired] == ["fail_node", "set_budget"]

        cluster.recover_node(1)
        reversed_order = FaultInjector(
            cluster,
            [
                FaultEvent(at_s=2.0, action="set_budget", budget_w=900.0),
                FaultEvent(at_s=2.0, action="fail_node", node_id=1),
            ],
            budget_w=1600.0,
        )
        fired = reversed_order.advance_to(2.0)
        assert [e.action for e in fired] == ["set_budget", "fail_node"]


class TestEnforcementFaultEvents:
    def test_new_action_validation(self):
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="cap_write_fail", factor=0.0)
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="cap_write_fail", factor=1.5)
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="cap_drift", factor=0.0)
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="sensor_noise", factor=-0.1)
        with pytest.raises(SchedulingError):
            FaultEvent(at_s=0.0, action="sensor_stale", factor=0.0)

    def test_new_action_describe(self):
        assert "drop" in FaultEvent(
            0.0, "cap_write_fail", factor=0.5
        ).describe()
        assert "drifts" in FaultEvent(0.0, "cap_drift", factor=0.2).describe()
        assert "noise" in FaultEvent(
            0.0, "sensor_noise", node_id=3, factor=0.1
        ).describe()
        assert "crash" in FaultEvent(0.0, "crash").describe()

    def test_cap_write_fail_installs_faulty_actuation(self, cluster):
        injector = FaultInjector(
            cluster,
            [FaultEvent(at_s=0.0, action="cap_write_fail", node_id=2,
                        factor=1.0, seed=9)],
        )
        injector.advance_to(0.0)
        assert cluster.node(2).rapl.set_cap(Domain.PKG, 100.0) is False
        # untargeted nodes keep perfect actuation
        assert cluster.node(0).rapl.set_cap(Domain.PKG, 100.0) is True

    def test_cap_drift_targets_all_nodes_by_default(self, cluster):
        injector = FaultInjector(
            cluster,
            [FaultEvent(at_s=0.0, action="cap_drift", factor=0.25)],
        )
        injector.advance_to(0.0)
        for node_id in range(cluster.n_nodes):
            rapl = cluster.node(node_id).rapl
            rapl.set_cap(Domain.PKG, 100.0)
            assert rapl.domain(Domain.PKG).enforced_w == pytest.approx(125.0)

    def test_sensor_faults_install_telemetry(self, cluster):
        injector = FaultInjector(
            cluster,
            [
                FaultEvent(at_s=0.0, action="sensor_noise", node_id=1,
                           factor=0.1, seed=4),
                FaultEvent(at_s=0.0, action="sensor_stale", node_id=1,
                           factor=2),
            ],
        )
        injector.advance_to(0.0)
        fault = cluster.node(1).meter.telemetry
        assert fault is not None
        assert fault.corrupt(100.0) == pytest.approx(100.0)  # frozen first
        assert cluster.node(0).meter.telemetry is None

    def test_cluster_reset_clears_installed_faults(self, cluster):
        injector = FaultInjector(
            cluster,
            [FaultEvent(at_s=0.0, action="cap_write_fail", factor=1.0)],
        )
        injector.advance_to(0.0)
        cluster.reset()
        assert cluster.node(0).rapl.set_cap(Domain.PKG, 100.0) is True

    def test_crash_records_itself_before_raising(self, cluster):
        injector = FaultInjector(
            cluster,
            [
                FaultEvent(at_s=1.0, action="crash"),
                FaultEvent(at_s=2.0, action="set_budget", budget_w=900.0),
            ],
        )
        with pytest.raises(RuntimeCrashError):
            injector.advance_to(5.0)
        # the crash advanced the cursor past itself: a restored runtime
        # resuming the same script continues with the *next* event
        assert [e.action for e in injector.fired] == ["crash"]
        fired = injector.advance_to(5.0)
        assert [e.action for e in fired] == ["set_budget"]
