"""The closed-loop learning layer (ISSUE 10).

Property suites (hypothesis) for the refit math and the observation
history, the v1 -> v2 schema migration round-trip, the learning-off
bit-identity guarantee, and the misprediction-feedback regression: a
knowledge entry seeded with a uniformly mistimed profile must be
corrected by the calibration refit within a handful of observations.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import build_trained_inflection
from repro.core.knowledge import (
    MAX_OBSERVATIONS,
    SCHEMA_VERSION,
    KnowledgeDB,
    KnowledgeEntry,
    ObservationRecord,
    budget_band,
)
from repro.core.learning import (
    LearningConfig,
    RefitPolicy,
    empirical_best_concurrency,
    empirical_best_nodes,
    fit_calibration,
)
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

DATA_DIR = Path(__file__).parent.parent / "data"

_SHARED: dict = {}


def _shared_entry() -> KnowledgeEntry:
    """One profiled entry, module-cached (hypothesis forbids
    function-scoped fixtures; profiling per example would dominate)."""
    if "entry" not in _SHARED:
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        clip = ClipScheduler(
            engine, inflection=build_trained_inflection(engine)
        )
        _SHARED["entry"] = clip.ensure_knowledge(get_app("comd"))
    return _SHARED["entry"]


def _obs(
    predicted: float,
    measured: float,
    n_threads: int = 8,
    n_nodes: int = 4,
    budget_w: float = 1000.0,
    testbed: str = "8xhaswell",
) -> ObservationRecord:
    return ObservationRecord(
        predicted_time_s=predicted,
        measured_time_s=measured,
        predicted_power_w=900.0,
        measured_power_w=880.0,
        budget_w=budget_w,
        n_nodes=n_nodes,
        n_threads=n_threads,
        testbed=testbed,
    )


# ----------------------------------------------------------------------
# hypothesis properties
# ----------------------------------------------------------------------

time_st = st.floats(
    min_value=1e-3, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestCalibrationProperty:
    @given(
        rows=st.lists(
            st.tuples(time_st, time_st, st.integers(1, 24)),
            min_size=1,
            max_size=40,
        ),
        np_=st.one_of(st.none(), st.integers(2, 16)),
    )
    @settings(max_examples=200, deadline=None)
    def test_refit_never_increases_training_error(self, rows, np_):
        """The fitted scale family contains the identity, so the
        calibrated model's squared error on its own training set can
        never exceed the uncalibrated model's."""
        obs = [_obs(p, m, n_threads=t) for p, m, t in rows]
        cal = fit_calibration(obs, np_)

        def sse(scaled: bool) -> float:
            return sum(
                (
                    (cal.scale_for(o.n_threads, np_) if scaled else 1.0)
                    * o.predicted_time_s
                    - o.measured_time_s
                )
                ** 2
                for o in obs
            )

        base = sse(scaled=False)
        fitted = sse(scaled=True)
        assert fitted <= base * (1 + 1e-12) + 1e-9

    @given(
        rows=st.lists(
            st.tuples(time_st, time_st, st.integers(1, 24)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scales_stay_clamped(self, rows):
        cal = fit_calibration([_obs(p, m, t) for p, m, t in rows], 8)
        assert 0.1 <= cal.seg1_scale <= 10.0
        assert 0.1 <= cal.seg2_scale <= 10.0


class TestObservationHistoryProperty:
    @given(n=st.integers(min_value=1, max_value=MAX_OBSERVATIONS + 60))
    @settings(max_examples=30, deadline=None)
    def test_history_is_capped_and_counts_everything(self, n):
        entry = _shared_entry()
        for i in range(n):
            entry = entry.with_observation(_obs(1.0, 1.0 + i * 1e-3))
        assert len(entry.observations) == min(n, MAX_OBSERVATIONS)
        assert entry.observed_total == n
        # the window keeps the *most recent* observations
        assert entry.observations[-1].measured_time_s == pytest.approx(
            1.0 + (n - 1) * 1e-3
        )

    @given(
        budgets=st.lists(
            st.floats(min_value=1.0, max_value=5000.0), min_size=1, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_quality_cells_partition_the_history(self, budgets):
        entry = _shared_entry()
        for b in budgets:
            entry = entry.with_observation(_obs(1.0, 1.1, budget_w=b))
        cells = entry.quality_cells()
        assert sum(c.n for c in cells) == len(budgets)
        assert {c.band_w for c in cells} == {budget_band(b) for b in budgets}


# ----------------------------------------------------------------------
# empirical argmax helpers
# ----------------------------------------------------------------------

class TestEmpiricalBest:
    def test_best_nodes_needs_min_samples(self):
        obs = [_obs(1.0, 0.5, n_nodes=4), _obs(1.0, 0.9, n_nodes=6)]
        best, groups = empirical_best_nodes(obs, min_samples=2)
        assert best is None
        assert set(groups) == {4, 6}

    def test_best_nodes_prefers_measured_throughput(self):
        obs = [
            _obs(1.0, 0.5, n_nodes=4),
            _obs(1.0, 0.5, n_nodes=4),
            _obs(1.0, 0.9, n_nodes=6),
            _obs(1.0, 0.9, n_nodes=6),
        ]
        best, _ = empirical_best_nodes(obs, min_samples=2)
        assert best == 4  # 2 it/s beats 1.11 it/s

    def test_best_concurrency_needs_two_groups(self):
        obs = [_obs(1.0, 0.5, n_threads=14)] * 4
        assert empirical_best_concurrency(obs, min_samples=2) is None
        obs += [_obs(1.0, 0.8, n_threads=20)] * 2
        assert empirical_best_concurrency(obs, min_samples=2) == 14


# ----------------------------------------------------------------------
# refit policy
# ----------------------------------------------------------------------

class TestRefitPolicy:
    def test_waits_for_staleness_and_evidence(self):
        policy = RefitPolicy(
            min_observations=3, refit_interval=3, error_threshold=0.05
        )
        entry = _shared_entry()
        assert not policy.should_refit(entry)
        for _ in range(2):
            entry = entry.with_observation(_obs(1.0, 2.0))
        assert not policy.should_refit(entry)  # too few
        entry = entry.with_observation(_obs(1.0, 2.0))
        assert policy.should_refit(entry)  # 3 obs, 100% error

    def test_accurate_models_never_refit(self):
        policy = RefitPolicy(
            min_observations=3, refit_interval=3, error_threshold=0.05
        )
        entry = _shared_entry()
        for _ in range(10):
            entry = entry.with_observation(_obs(1.0, 1.01))
        assert not policy.should_refit(entry)

    def test_refit_bumps_version_and_resets_staleness(self):
        entry = _shared_entry()
        for _ in range(4):
            entry = entry.with_observation(_obs(1.0, 2.0))
        refitted = entry.with_refit(
            fit_calibration(entry.observations, entry.inflection_point)
        )
        assert refitted.model_version == entry.model_version + 1
        assert refitted.refit_at == refitted.observed_total
        assert not entry.same_models(refitted)


# ----------------------------------------------------------------------
# schema v1 -> v2 migration
# ----------------------------------------------------------------------

class TestSchemaMigration:
    def test_v1_fixture_round_trips(self, tmp_path):
        db = KnowledgeDB.load(DATA_DIR / "knowledge_v1.json")
        assert db.migrated_from == 1
        assert len(db) == 2
        for key in db.keys():
            entry = db.get(*key)
            # migrated entries carry the "never observed" defaults
            assert entry.observations == ()
            assert entry.calibration is None
            assert entry.model_version == 1
            assert entry.observed_total == 0

        out = tmp_path / "kb.json"
        db.save(out)
        payload = json.loads(out.read_text())
        assert payload["version"] == SCHEMA_VERSION

        back = KnowledgeDB.load(out)
        assert back.migrated_from is None
        assert back.keys() == db.keys()
        for key in db.keys():
            assert back.get(*key) == db.get(*key)

    def test_v2_observations_survive_round_trip(self, tmp_path):
        db = KnowledgeDB()
        entry = _shared_entry().with_observation(
            _obs(1.0, 1.4, budget_w=1400.0)
        )
        entry = entry.with_refit(
            fit_calibration(entry.observations, entry.inflection_point)
        )
        db.put(entry)
        out = tmp_path / "kb.json"
        db.save(out)
        back = KnowledgeDB.load(out).get(*entry.key)
        assert back == entry
        assert back.calibration == entry.calibration
        assert back.observations == entry.observations


# ----------------------------------------------------------------------
# learning off: bit identity
# ----------------------------------------------------------------------

class TestLearningOffIdentity:
    def test_outcome_history_never_moves_a_decision(self):
        """With learning disabled, recorded outcomes are pure
        telemetry: decisions stay byte-identical to the stored golden
        capture even after every combo has executed and reported."""
        golden = json.loads(
            (DATA_DIR / "golden_decisions_testbeds.json").read_text()
        )["testbeds"]["haswell"]
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        clip = ClipScheduler(
            engine, inflection=build_trained_inflection(engine)
        )
        combos = [("comd", 1000.0), ("sp-mz.C", 1400.0), ("tealeaf", 1800.0)]
        for name, budget in combos:
            clip.run(get_app(name), budget, iterations=2)
        assert clip.pipeline.learning_stats()["outcomes"] == len(combos)
        for name, budget in combos:
            d = clip.schedule(get_app(name), budget)
            assert d.to_dict() == golden[f"{name}@{budget:.0f}"], (
                name,
                budget,
            )


# ----------------------------------------------------------------------
# misprediction feedback regression
# ----------------------------------------------------------------------

def _mistimed(entry: KnowledgeEntry, scale: float) -> KnowledgeEntry:
    """Uniformly scale the profile's sample times (class-preserving).

    Every sample's iteration time is multiplied by *scale* (and its
    throughput divided), so the classification ratio and the power
    levels are untouched but every time prediction is off by exactly
    that factor — the shape of a systematically mistimed profile."""

    def stretch(run):
        if run is None:
            return None
        return replace(
            run,
            perf=run.perf / scale,
            t_iter_s=run.t_iter_s * scale,
            t_iter_lo_s=run.t_iter_lo_s * scale,
        )

    profile = replace(
        entry.profile,
        all_run=stretch(entry.profile.all_run),
        half_run=stretch(entry.profile.half_run),
        confirm_run=stretch(entry.profile.confirm_run),
    )
    return replace(entry, profile=profile)


class TestMispredictionFeedback:
    def test_bad_profile_corrected_within_a_handful_of_outcomes(self):
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        inflection = build_trained_inflection(engine)
        seed_clip = ClipScheduler(engine, inflection=inflection)
        good = seed_clip.ensure_knowledge(get_app("comd"))

        kb = KnowledgeDB()
        kb.put(_mistimed(good, 2.0))
        clip = ClipScheduler(
            engine,
            inflection=inflection,
            knowledge=kb,
            learning=LearningConfig(enabled=True),
        )
        app = get_app("comd")

        # first outcome: the model predicts ~2x the measured time
        clip.run(app, 1400.0, iterations=2)
        entry = kb.get(app.name, app.problem_size)
        first = entry.observations[0]
        assert abs(first.rel_time_error) > 0.3, first

        # a handful more outcomes and the refit policy fires: the
        # calibration absorbs the x2 and predictions land on target
        for _ in range(7):
            clip.run(app, 1400.0, iterations=2)
        entry = kb.get(app.name, app.problem_size)
        assert entry.model_version > 1
        assert entry.calibration is not None
        assert not entry.calibration.is_identity
        corrected = [
            o
            for o in entry.observations
            if o.model_version == entry.model_version
        ]
        assert corrected, entry.observations
        last = corrected[-1]
        assert abs(last.rel_time_error) < 0.15, last
        assert abs(last.rel_time_error) < abs(first.rel_time_error)
