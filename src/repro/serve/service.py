"""The scheduling service core (transport-free).

:class:`SchedulerService` owns everything the daemon does that is not
HTTP: resolving submissions into jobs, admission control, per-tenant
budget quotas, the job-record store, and the burst decision path that
feeds coalesced submissions through
:meth:`~repro.core.scheduler.ClipScheduler.schedule_many`.  Keeping it
transport-free means the contract ("what does a submission do") is
testable without sockets, and the HTTP layer stays a thin codec.

Threading contract: :meth:`submit`, :meth:`update_budget`, :meth:`job`
and :meth:`stats` are called from the daemon's event-loop thread (or
tests); :meth:`decide_burst` runs in the coalescer's single decision
thread.  All shared state lives behind one lock; the decision work
itself — the scheduler pipeline — relies on the thread-safe
``KnowledgeDB`` / ``ModelBundleCache`` it already shares with every
other consumer.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

from repro.core.scheduler import ClipScheduler, SchedulingDecision
from repro.errors import AdmissionError, ServeError, WorkloadError
from repro.workloads.apps import get_app
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["TenantQuota", "JobRecord", "Submission", "SchedulerService"]

#: Tenant used when a submission names none.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant service limits.

    ``budget_w`` caps the scheduling budget the tenant's decisions are
    made under (their jobs are planned as if the cluster budget were
    ``min(service budget, quota)``); ``max_pending`` bounds how many of
    the tenant's jobs may be queued at once.  ``None`` means unlimited.
    """

    budget_w: float | None = None
    max_pending: int | None = None

    @classmethod
    def parse(cls, spec: str) -> tuple[str, "TenantQuota"]:
        """Parse a CLI quota spec, ``tenant=WATTS[:MAX_PENDING]``."""
        try:
            tenant, limits = spec.split("=", 1)
            watts, _, pending = limits.partition(":")
            quota = cls(
                budget_w=float(watts) if watts else None,
                max_pending=int(pending) if pending else None,
            )
        except ValueError as exc:
            raise ServeError(
                f"bad quota spec {spec!r} (want tenant=WATTS[:MAX_PENDING])"
            ) from exc
        if not tenant:
            raise ServeError(f"bad quota spec {spec!r}: empty tenant name")
        return tenant, quota


@dataclass
class JobRecord:
    """One submitted job's lifecycle, queryable until evicted."""

    job_id: str
    tenant: str
    app_name: str
    problem_size: str
    budget_w: float
    status: str = "pending"  # pending | done | failed
    submitted_at: float = 0.0
    decided_at: float | None = None
    decision: SchedulingDecision | None = None
    error: str | None = None
    outcome: dict | None = None

    @property
    def latency_s(self) -> float | None:
        """Submit-to-decision wall time (None while pending)."""
        if self.decided_at is None:
            return None
        return self.decided_at - self.submitted_at

    def to_dict(self) -> dict:
        """JSON-safe wire form (the decision via its own codec)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "app": self.app_name,
            "problem_size": self.problem_size,
            "budget_w": self.budget_w,
            "status": self.status,
            "latency_s": self.latency_s,
            "decision": (
                self.decision.to_dict() if self.decision is not None else None
            ),
            "error": self.error,
            "outcome": self.outcome,
        }


def _complete(future: Future, result=None, error: Exception | None = None):
    """Complete a submission future, tolerating an abandoned waiter
    (a timed-out ``wait=true`` request cancels its future; the job
    record still carries the outcome for later queries)."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass


@dataclass
class Submission:
    """A queued job: its record plus the future its decision lands on."""

    record: JobRecord
    app: WorkloadCharacteristics
    future: Future = field(default_factory=Future)


class SchedulerService:
    """Admission, quotas, job records, and the burst decision path."""

    def __init__(
        self,
        scheduler: ClipScheduler,
        budget_w: float,
        *,
        max_pending: int = 4096,
        quotas: dict[str, TenantQuota] | None = None,
        history_limit: int = 200_000,
    ):
        if budget_w <= 0:
            raise ServeError("service budget must be > 0")
        self._clip = scheduler
        self._lock = threading.Lock()
        self._budget_w = float(budget_w)
        self._max_pending = int(max_pending)
        self._quotas = dict(quotas or {})
        self._history_limit = int(history_limit)
        self._jobs: dict[str, JobRecord] = {}
        self._done_order: deque[str] = deque()
        self._ids = itertools.count(1)
        self._pending_total = 0
        self._pending_by_tenant: dict[str, int] = {}
        self._started_at = time.time()
        # counters (under the lock)
        self._submitted = 0
        self._decided = 0
        self._failed = 0
        self._rejected = 0
        self._bursts = 0
        self._burst_jobs = 0
        self._max_burst_seen = 0
        self._outcomes = 0

    # -- configuration -------------------------------------------------

    @property
    def scheduler(self) -> ClipScheduler:
        """The wrapped scheduler (shared pipeline, caches, monitor)."""
        return self._clip

    @property
    def budget_w(self) -> float:
        """The current service-wide cluster budget."""
        with self._lock:
            return self._budget_w

    def update_budget(self, budget_w: float) -> float:
        """Set the budget used for subsequent submissions."""
        budget_w = float(budget_w)
        if budget_w <= 0:
            raise ServeError(f"budget must be > 0, got {budget_w}")
        with self._lock:
            self._budget_w = budget_w
        return budget_w

    def quota(self, tenant: str) -> TenantQuota:
        """The tenant's quota (unlimited when none was configured)."""
        return self._quotas.get(tenant, TenantQuota())

    # -- submission ----------------------------------------------------

    def submit(
        self, jobs: list[dict | str], tenant: str = DEFAULT_TENANT
    ) -> list[Submission]:
        """Admit a batch of jobs and return their queued submissions.

        Each job is a name or a ``{"app": name, "budget_w": ...}``
        mapping (the optional per-job budget is still clamped by the
        tenant quota).  Validation failures raise
        :class:`~repro.errors.ServeError`; admission-control rejections
        raise :class:`~repro.errors.AdmissionError`.  Admission is
        all-or-nothing per call: a rejected batch queues none of its
        jobs.
        """
        if not jobs:
            raise ServeError("empty submission")
        parsed: list[tuple[WorkloadCharacteristics, float | None]] = []
        for raw in jobs:
            if isinstance(raw, str):
                name, requested = raw, None
            elif isinstance(raw, dict):
                name = raw.get("app")
                requested = raw.get("budget_w")
            else:
                raise ServeError(f"bad job spec {raw!r}")
            if not isinstance(name, str):
                raise ServeError(f"job spec {raw!r} names no app")
            if requested is not None:
                requested = float(requested)
                if requested <= 0:
                    raise ServeError(
                        f"job budget must be > 0, got {requested}"
                    )
            try:
                parsed.append((get_app(name), requested))
            except WorkloadError as exc:
                raise ServeError(str(exc)) from exc
        quota = self.quota(tenant)
        now = time.time()
        with self._lock:
            n = len(parsed)
            if self._pending_total + n > self._max_pending:
                self._rejected += n
                raise AdmissionError(
                    f"queue full: {self._pending_total} pending + {n} "
                    f"submitted > max_pending {self._max_pending}"
                )
            tenant_pending = self._pending_by_tenant.get(tenant, 0)
            if (
                quota.max_pending is not None
                and tenant_pending + n > quota.max_pending
            ):
                self._rejected += n
                raise AdmissionError(
                    f"tenant {tenant!r} over quota: {tenant_pending} pending "
                    f"+ {n} submitted > max_pending {quota.max_pending}",
                    tenant=tenant,
                )
            submissions = []
            for app, requested in parsed:
                budget = requested if requested is not None else self._budget_w
                if quota.budget_w is not None:
                    budget = min(budget, quota.budget_w)
                record = JobRecord(
                    job_id=f"j-{next(self._ids):06d}",
                    tenant=tenant,
                    app_name=app.name,
                    problem_size=app.problem_size,
                    budget_w=budget,
                    submitted_at=now,
                )
                self._jobs[record.job_id] = record
                submissions.append(Submission(record=record, app=app))
            self._pending_total += n
            self._pending_by_tenant[tenant] = tenant_pending + n
            self._submitted += n
        return submissions

    # -- the burst decision path ---------------------------------------

    def decide_burst(self, batch: list[Submission]) -> None:
        """Decide one coalesced burst (runs in the decision thread).

        Submissions are grouped by effective budget — ``schedule_many``
        decides each group under one budget on the shared caches — and
        every future is completed exactly once, with its decision or
        with the error that stopped its group.
        """
        with self._lock:
            self._bursts += 1
            self._burst_jobs += len(batch)
            self._max_burst_seen = max(self._max_burst_seen, len(batch))
        groups: dict[float, list[Submission]] = {}
        for sub in batch:
            groups.setdefault(sub.record.budget_w, []).append(sub)
        for budget, subs in groups.items():
            try:
                decisions = self._clip.schedule_many(
                    [s.app for s in subs], budget
                )
            except Exception as exc:  # noqa: BLE001 — futures carry it
                self._finish_failed(subs, exc)
                continue
            now = time.time()
            with self._lock:
                for sub, decision in zip(subs, decisions):
                    rec = sub.record
                    rec.status = "done"
                    rec.decision = decision
                    rec.decided_at = now
                    self._decided += 1
                    self._retire_locked(rec)
            for sub, decision in zip(subs, decisions):
                _complete(sub.future, result=decision)

    def fail_pending(self, batch: list[Submission], reason: str) -> None:
        """Fail queued submissions that will never be decided
        (daemon shutdown with jobs still in the coalescer queue)."""
        self._finish_failed(batch, ServeError(reason))

    def _finish_failed(self, subs: list[Submission], exc: Exception) -> None:
        now = time.time()
        with self._lock:
            for sub in subs:
                rec = sub.record
                rec.status = "failed"
                rec.error = str(exc)
                rec.decided_at = now
                self._failed += 1
                self._retire_locked(rec)
        for sub in subs:
            _complete(sub.future, error=exc)

    def _retire_locked(self, rec: JobRecord) -> None:
        """Move a record out of the pending counts; evict old history."""
        self._pending_total -= 1
        tenant = rec.tenant
        left = self._pending_by_tenant.get(tenant, 1) - 1
        if left:
            self._pending_by_tenant[tenant] = left
        else:
            self._pending_by_tenant.pop(tenant, None)
        self._done_order.append(rec.job_id)
        while len(self._done_order) > self._history_limit:
            self._jobs.pop(self._done_order.popleft(), None)

    # -- closed-loop outcomes ------------------------------------------

    def record_outcome(self, job_id: str, payload: dict) -> JobRecord:
        """Report a daemon-submitted job's measured outcome.

        The payload carries ``performance`` (cluster iterations/s) or
        ``measured_time_s`` (seconds per iteration), plus optional
        ``measured_power_w`` and ``flags``.  The observation flows
        through the pipeline's
        :meth:`~repro.core.pipeline.DecisionPipeline.record_outcome`
        choke point against the decision the daemon issued, and is
        echoed on the job record for later queries.  404 for unknown
        jobs, 409 for undecided jobs or double reports.
        """
        if not isinstance(payload, dict):
            raise ServeError("outcome payload must be an object")
        perf = payload.get("performance")
        time_s = payload.get("measured_time_s")
        if perf is None and time_s is None:
            raise ServeError(
                "outcome needs 'performance' or 'measured_time_s'"
            )
        if perf is None:
            time_s = float(time_s)
            if time_s <= 0:
                raise ServeError("measured_time_s must be > 0")
            perf = 1.0 / time_s
        perf = float(perf)
        if perf <= 0:
            raise ServeError("performance must be > 0")
        power = payload.get("measured_power_w")
        flags = payload.get("flags", ())
        if isinstance(flags, str):
            flags = (flags,)
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None:
                raise ServeError(f"no such job {job_id!r}", status=404)
            if rec.decision is None:
                raise ServeError(
                    f"job {job_id!r} has no decision to report against "
                    f"(status {rec.status!r})",
                    status=409,
                )
            if rec.outcome is not None:
                raise ServeError(
                    f"job {job_id!r} already has a recorded outcome",
                    status=409,
                )
            # claim the slot under the lock so a concurrent duplicate
            # report 409s instead of double-feeding the learner
            rec.outcome = {"performance": perf, "recorded": False}
        obs = self._clip.pipeline.record_outcome(
            get_app(rec.app_name),
            decision=rec.decision,
            measured_perf=perf,
            measured_power_w=float(power) if power is not None else None,
            source="serve",
            flags=tuple(str(f) for f in flags),
        )
        with self._lock:
            rec.outcome = {
                "performance": perf,
                "measured_power_w": (
                    float(power) if power is not None else None
                ),
                "recorded": obs is not None,
            }
            self._outcomes += 1
        return rec

    # -- queries -------------------------------------------------------

    def job(self, job_id: str) -> JobRecord | None:
        """Look a job up by id (None once evicted / never submitted)."""
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> dict:
        """One consistent JSON-safe snapshot of the service state."""
        pipeline = self._clip.pipeline
        monitor = self._clip.monitor
        with self._lock:
            elapsed = time.time() - self._started_at
            decided = self._decided
            return {
                "uptime_s": elapsed,
                "budget_w": self._budget_w,
                "max_pending": self._max_pending,
                "submitted": self._submitted,
                "decided": decided,
                "failed": self._failed,
                "rejected": self._rejected,
                "pending": self._pending_total,
                "pending_by_tenant": dict(self._pending_by_tenant),
                "decisions_per_s": decided / elapsed if elapsed > 0 else 0.0,
                "bursts": self._bursts,
                "mean_burst": (
                    self._burst_jobs / self._bursts if self._bursts else 0.0
                ),
                "max_burst": self._max_burst_seen,
                "quotas": {
                    t: {"budget_w": q.budget_w, "max_pending": q.max_pending}
                    for t, q in sorted(self._quotas.items())
                },
                "bundle_cache": pipeline.bundle_cache.stats(),
                "knowledge_entries": len(pipeline.knowledge),
                "audits": monitor.n_audits,
                "audit_violations": monitor.n_violations,
                "outcomes": self._outcomes,
                "learning": pipeline.learning_stats(),
            }
