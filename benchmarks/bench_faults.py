"""Fault-scenario drain benchmark with budget-invariant accounting.

Drains the demo 6-job queue through the canonical fault scenario (one
node failure, one recovery, two budget swings) under **both** queue
policies, timing each drain and collecting the shared
:class:`~repro.core.monitor.BudgetInvariantMonitor` ledger.  Results
are written to ``BENCH_faults.json`` at the repository root, alongside
the other ``BENCH_*.json`` artifacts; the companion test
(``benchmarks/test_perf_faults.py``) fails the build on any audit
violation.

Run standalone with ``python benchmarks/bench_faults.py``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.cli import FAULT_DEMO_APPS, demo_fault_events
from repro.core.jobqueue import PowerBoundedJobQueue
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.sim.faults import FaultInjector
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_faults.json"

BUDGET_W = 1600.0
ITERATIONS = 3


def _drain_policy(policy: str) -> dict:
    """Clean + faulted drain under one policy; returns the measurements."""
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    clip = ClipScheduler(engine, inflection=build_trained_inflection(engine))
    queue = PowerBoundedJobQueue(clip)
    apps = [get_app(n) for n in FAULT_DEMO_APPS]
    if policy == "coscheduled":
        # co-scheduled batches are atomic (faults apply at batch
        # boundaries), so double the queue to span several batches
        apps = apps * 2

    clean = queue.drain(apps, BUDGET_W, policy=policy, iterations=ITERATIONS)
    events = demo_fault_events(clean.makespan_s, BUDGET_W)
    injector = FaultInjector(engine.cluster, events, budget_w=BUDGET_W)
    clip.monitor.reset()

    start = time.perf_counter()
    report = queue.drain(
        apps, BUDGET_W, policy=policy, iterations=ITERATIONS, faults=injector
    )
    wall_s = time.perf_counter() - start

    return {
        "jobs_drained": len(report.jobs),
        "events_fired": len(injector.fired),
        "clean_makespan_s": clean.makespan_s,
        "faulted_makespan_s": report.makespan_s,
        "drain_wall_s": wall_s,
        "monitor": clip.monitor.report(),
    }


def run_faults_bench() -> dict:
    """Drain the fault scenario under both policies and record audits."""
    policies = {p: _drain_policy(p) for p in ("sequential", "coscheduled")}
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": list(FAULT_DEMO_APPS),
        "budget_w": BUDGET_W,
        "iterations": ITERATIONS,
        "policies": policies,
        "total_audits": sum(
            p["monitor"]["n_audits"] for p in policies.values()
        ),
        "total_violations": sum(
            p["monitor"]["n_violations"] for p in policies.values()
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_faults_bench()
    print(json.dumps(payload, indent=2))
    return 1 if payload["total_violations"] else 0


if __name__ == "__main__":
    sys.exit(main())
