"""Unit and property tests for the DVFS ladder and controller."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecError
from repro.hw.dvfs import DvfsController, FrequencyLadder
from repro.hw.specs import SocketSpec
from repro.units import ghz

LADDER = FrequencyLadder([ghz(f) for f in (1.2, 1.5, 1.8, 2.1, 2.3)])


class TestFrequencyLadder:
    def test_rejects_empty(self):
        with pytest.raises(SpecError):
            FrequencyLadder([])

    def test_rejects_unsorted(self):
        with pytest.raises(SpecError):
            FrequencyLadder([ghz(2.3), ghz(1.2)])

    def test_rejects_duplicates(self):
        with pytest.raises(SpecError):
            FrequencyLadder([ghz(1.2), ghz(1.2)])

    def test_contains_exact(self):
        assert ghz(1.5) in LADDER
        assert ghz(1.6) not in LADDER

    def test_quantize_down(self):
        assert LADDER.quantize_down(ghz(1.7)) == pytest.approx(ghz(1.5))
        assert LADDER.quantize_down(ghz(1.5)) == pytest.approx(ghz(1.5))
        # below the ladder clamps to f_min
        assert LADDER.quantize_down(ghz(0.5)) == pytest.approx(ghz(1.2))

    def test_quantize_up(self):
        assert LADDER.quantize_up(ghz(1.7)) == pytest.approx(ghz(1.8))
        assert LADDER.quantize_up(ghz(9.9)) == pytest.approx(ghz(2.3))

    def test_step_down_saturates(self):
        assert LADDER.step_down(ghz(1.2)) == pytest.approx(ghz(1.2))
        assert LADDER.step_down(ghz(1.8)) == pytest.approx(ghz(1.5))

    def test_step_up_saturates(self):
        assert LADDER.step_up(ghz(2.3)) == pytest.approx(ghz(2.3))
        assert LADDER.step_up(ghz(1.5)) == pytest.approx(ghz(1.8))

    def test_highest_under_monotone_predicate(self):
        # power-fits-under-cap style predicate
        assert LADDER.highest_under(lambda f: f <= ghz(1.9)) == pytest.approx(
            ghz(1.8)
        )

    def test_highest_under_all_fail(self):
        assert LADDER.highest_under(lambda f: False) is None

    @given(st.floats(min_value=1e9, max_value=4e9))
    def test_quantize_down_never_above_input(self, f):
        q = LADDER.quantize_down(f)
        assert q in LADDER.frequencies
        assert q <= max(f, LADDER.f_min) + 1e-6

    @given(st.floats(min_value=1e9, max_value=4e9))
    def test_quantize_roundtrip_idempotent(self, f):
        q = LADDER.quantize_down(f)
        assert LADDER.quantize_down(q) == q

    @given(st.floats(min_value=1e9, max_value=4e9))
    def test_up_at_least_down(self, f):
        assert LADDER.quantize_up(f) >= LADDER.quantize_down(f)


class TestDvfsController:
    def test_starts_at_nominal(self):
        socket = SocketSpec()
        ctrl = DvfsController(socket)
        assert np.all(ctrl.frequencies == socket.f_nominal)

    def test_set_core_quantizes(self):
        ctrl = DvfsController(SocketSpec())
        applied = ctrl.set_core(3, ghz(2.45))
        assert applied == pytest.approx(ghz(2.4))
        assert ctrl.frequency_of(3) == pytest.approx(ghz(2.4))

    def test_set_all(self):
        ctrl = DvfsController(SocketSpec())
        ctrl.set_all(ghz(1.5))
        assert np.all(ctrl.frequencies == ghz(1.5))

    def test_reset(self):
        socket = SocketSpec()
        ctrl = DvfsController(socket)
        ctrl.set_all(ghz(1.2))
        ctrl.reset()
        assert np.all(ctrl.frequencies == socket.f_nominal)

    def test_rejects_bad_core_index(self):
        ctrl = DvfsController(SocketSpec())
        with pytest.raises(SpecError):
            ctrl.set_core(12, ghz(2.0))
        with pytest.raises(SpecError):
            ctrl.frequency_of(-1)

    def test_frequencies_returns_copy(self):
        ctrl = DvfsController(SocketSpec())
        freqs = ctrl.frequencies
        freqs[:] = 0.0
        assert np.all(ctrl.frequencies > 0)
