"""Evaluation tooling: metrics, table rendering, experiment harness."""

from repro.analysis.metrics import (
    geometric_mean,
    improvement_over,
    relative_performance,
)
from repro.analysis.tables import render_table
from repro.analysis.report import REPORT_SECTIONS, assemble_report
from repro.analysis.traces import (
    CapViolation,
    ThermalAssessment,
    assess_thermals,
    audit_cap_violations,
    cluster_trace_csv,
    samples_to_csv,
    summarize_run,
)
from repro.analysis.experiments import (
    ClipSchedulerAdapter,
    ComparisonCell,
    MethodComparison,
    build_trained_inflection,
    compare_methods,
    make_schedulers,
)

__all__ = [
    "geometric_mean",
    "improvement_over",
    "relative_performance",
    "render_table",
    "ClipSchedulerAdapter",
    "ComparisonCell",
    "MethodComparison",
    "build_trained_inflection",
    "compare_methods",
    "make_schedulers",
    "CapViolation",
    "ThermalAssessment",
    "assess_thermals",
    "audit_cap_violations",
    "cluster_trace_csv",
    "samples_to_csv",
    "summarize_run",
    "REPORT_SECTIONS",
    "assemble_report",
]
