"""Exception hierarchy for the CLIP reproduction.

All library-raised errors derive from :class:`ClipError` so callers can
catch a single base class.  Subclasses are grouped by the subsystem that
raises them: hardware model, workload model, simulation engine, and the
CLIP scheduler itself.
"""

from __future__ import annotations

__all__ = [
    "ClipError",
    "SpecError",
    "PowerDomainError",
    "CapViolationError",
    "AffinityError",
    "WorkloadError",
    "ProfilingError",
    "ModelNotFittedError",
    "InfeasibleBudgetError",
    "SchedulingError",
    "NodeFailureError",
    "BudgetInvariantError",
    "KnowledgeBaseError",
    "KnowledgeError",
    "ActuationError",
    "JournalError",
    "RuntimeCrashError",
    "ServeError",
    "AdmissionError",
]


class ClipError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class SpecError(ClipError):
    """A hardware specification is inconsistent (e.g. zero cores per socket)."""


class PowerDomainError(ClipError):
    """A RAPL power domain was misused (unknown domain, negative cap, ...)."""


class CapViolationError(ClipError):
    """An enforced power cap was exceeded beyond tolerance.

    The simulator raises this only when invariants are broken internally;
    well-formed configurations resolve caps by throttling instead.
    """


class AffinityError(ClipError):
    """A thread-to-core mapping is invalid (overcommit, unknown core, ...)."""


class WorkloadError(ClipError):
    """A workload definition is inconsistent (negative intensity, ...)."""


class ProfilingError(ClipError):
    """Smart profiling could not produce a usable profile."""


class ModelNotFittedError(ClipError):
    """A prediction model was queried before :meth:`fit` was called."""


class InfeasibleBudgetError(ClipError):
    """No configuration satisfies the requested power budget.

    Raised when the cluster budget is below the minimum acceptable power
    for even a single node (the paper's lower bound of the acceptable
    power range, :math:`P_{cpu,L2} + P_{mem,L2}`).
    """


class SchedulingError(ClipError):
    """The scheduler reached an internally inconsistent state."""


class NodeFailureError(ClipError):
    """A node failed under a job whose decomposition cannot absorb it.

    Raised when a running job touches a failed node and the runtime may
    not re-split its work (the decomposition is pinned and shrinking was
    not allowed at launch), or when an execution request names a node
    that is currently marked failed.
    """


class BudgetInvariantError(ClipError):
    """An issued cap set violated a cluster power invariant.

    Raised by :class:`~repro.core.monitor.BudgetInvariantMonitor` when a
    caller demands a clean audit trail (``assert_clean``) and at least
    one recorded cap set either summed above its cluster budget or put
    a node outside the application's acceptable power range.
    """


class KnowledgeBaseError(ClipError):
    """The knowledge database rejected an operation (missing entry, ...).

    When raised by the persistence layer for an unreadable, corrupt, or
    schema-incompatible file, ``path`` carries the offending location so
    callers can report (and fall back) without string-parsing the
    message.
    """

    def __init__(self, message: str, path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path


class ActuationError(ClipError):
    """A power-cap write did not take effect on the hardware.

    Raised by :meth:`~repro.hw.rapl.RaplInterface.set_cap_verified` after
    readback verification kept failing through the bounded retry/backoff
    schedule.  ``domain`` names the register, ``requested_w`` the cap
    that would not stick.
    """

    def __init__(
        self,
        message: str,
        domain: "str | None" = None,
        requested_w: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.domain = domain
        self.requested_w = requested_w


class JournalError(ClipError):
    """The runtime write-ahead journal is unusable (bad record, bad path)."""

    def __init__(self, message: str, path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path


class RuntimeCrashError(ClipError):
    """A scripted ``crash`` fault killed the runtime process.

    The simulation analogue of SIGKILL: fault scripts raise it to prove
    that :meth:`~repro.core.runtime.PowerBoundedRuntime.restore` can
    rebuild the exact pre-crash state from the journal alone.
    """


class ServeError(ClipError):
    """The scheduling service rejected a request or call.

    Raised by the ``clip-sched serve`` daemon's service layer for
    malformed submissions and by :class:`~repro.serve.client.ServeClient`
    when the daemon answers with an error status (carried as
    ``status``, ``None`` for client-side failures).
    """

    def __init__(self, message: str, status: "int | None" = None) -> None:
        super().__init__(message)
        self.status = status


class AdmissionError(ServeError):
    """Admission control turned a submission away (HTTP 429).

    ``tenant`` names the quota that was exhausted — ``None`` means the
    service-wide pending bound, not a per-tenant one.
    """

    def __init__(self, message: str, tenant: "str | None" = None) -> None:
        super().__init__(message, status=429)
        self.tenant = tenant


#: Preferred alias for :class:`KnowledgeBaseError` (the persistence layer
#: raises it for unreadable files and schema-version mismatches too).
KnowledgeError = KnowledgeBaseError
