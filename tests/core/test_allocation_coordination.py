"""Tests for cluster-level allocation and variability coordination."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import ClusterAllocator
from repro.core.coordination import (
    VARIABILITY_THRESHOLD,
    coordinate_power,
    measure_node_factors,
    waterfill_surplus,
)
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel
from repro.core.recommend import Recommender
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.workloads.apps import get_app


@pytest.fixture()
def recommender_for(profiler, engine, trained_inflection):
    node = engine.cluster.spec.node

    def build(name):
        app = get_app(name)
        profile = profiler.profile(app)
        np_pred = None
        if profile.scalability_class.is_nonlinear:
            np_pred = trained_inflection.predict(profile)
            profile = profiler.confirm(app, profile, np_pred)
        predictor = PerformancePredictor(profile, np_pred)
        power = ClipPowerModel(profile, node)
        return Recommender(profile, predictor, power)

    return build


class TestCoordinatePower:
    def test_homogeneous_stays_uniform(self):
        budgets = coordinate_power(800.0, np.ones(4), lo_w=100.0, hi_w=300.0)
        np.testing.assert_allclose(budgets, 200.0)

    def test_below_threshold_stays_uniform(self):
        factors = np.array([1.0, 1.02, 0.99, 1.01])
        budgets = coordinate_power(800.0, factors, lo_w=100.0, hi_w=300.0)
        np.testing.assert_allclose(budgets, 200.0)

    def test_inefficient_node_gets_more(self):
        factors = np.array([1.0, 1.2])
        budgets = coordinate_power(400.0, factors, lo_w=100.0, hi_w=300.0)
        assert budgets[1] > budgets[0]
        assert budgets.sum() <= 400.0 * (1 + 1e-9)

    def test_budgets_respect_range(self):
        factors = np.array([0.8, 1.2, 1.0])
        budgets = coordinate_power(450.0, factors, lo_w=120.0, hi_w=200.0)
        assert np.all(budgets >= 120.0 - 1e-9)
        assert np.all(budgets <= 200.0 + 1e-9)

    def test_single_node_gets_clipped_budget(self):
        budgets = coordinate_power(500.0, np.array([1.0]), lo_w=100.0, hi_w=280.0)
        assert budgets[0] == pytest.approx(280.0)

    def test_insufficient_budget_raises(self):
        with pytest.raises(SchedulingError):
            coordinate_power(150.0, np.ones(2), lo_w=100.0, hi_w=300.0)

    def test_bad_range_raises(self):
        with pytest.raises(SchedulingError):
            coordinate_power(400.0, np.ones(2), lo_w=200.0, hi_w=100.0)

    def test_empty_factors_raises(self):
        with pytest.raises(SchedulingError):
            coordinate_power(400.0, np.array([]), lo_w=100.0, hi_w=200.0)

    @settings(max_examples=40)
    @given(
        n=st.integers(min_value=1, max_value=8),
        spread=st.floats(min_value=0.0, max_value=0.15),
        budget_per=st.floats(min_value=130.0, max_value=280.0),
    )
    def test_conservation_property(self, n, spread, budget_per):
        rng = np.random.default_rng(0)
        factors = 1.0 + spread * rng.standard_normal(n) * 0.3
        factors = np.clip(factors, 0.8, 1.2)
        total = budget_per * n
        budgets = coordinate_power(total, factors, lo_w=120.0, hi_w=300.0)
        assert budgets.sum() <= total * (1 + 1e-9)
        assert np.all(budgets >= 120.0 - 1e-9)


@st.composite
def _coordination_cases(draw):
    """Random but feasible (total, factors, lo, hi) coordination inputs."""
    n = draw(st.integers(min_value=1, max_value=8))
    lo = draw(st.floats(min_value=50.0, max_value=150.0))
    hi = lo + draw(st.floats(min_value=10.0, max_value=200.0))
    factors = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.5, max_value=2.0), min_size=n, max_size=n
            )
        )
    )
    headroom = draw(st.floats(min_value=0.0, max_value=1.5))
    total = n * lo + headroom * n * (hi - lo)
    return total, factors, lo, hi


class TestCoordinatePowerProperties:
    """Randomized invariants: budgets sum <= total and sit in [lo, hi]."""

    @settings(max_examples=200, deadline=None)
    @given(case=_coordination_cases())
    def test_never_exceeds_budget_or_range(self, case):
        total, factors, lo, hi = case
        budgets = coordinate_power(total, factors, lo_w=lo, hi_w=hi)
        tol = 1e-6 * max(total, 1.0)
        assert len(budgets) == len(factors)
        assert budgets.sum() <= total + tol
        assert np.all(budgets >= lo - tol)
        assert np.all(budgets <= hi + tol)

    @settings(max_examples=200, deadline=None)
    @given(case=_coordination_cases())
    def test_exact_fill_property(self, case):
        """The water-fill contract: sum(budgets) == min(budget, sum(hi)).

        The old fixed 8-pass redistribution could terminate with
        unallocated surplus when many nodes pinned at ``hi``; the exact
        water-fill pass always hands out everything the ceilings admit.
        """
        total, factors, lo, hi = case
        budgets = coordinate_power(total, factors, lo_w=lo, hi_w=hi)
        n = len(factors)
        expected = min(total, n * hi)
        tol = 1e-6 * max(total, 1.0)
        assert budgets.sum() == pytest.approx(expected, abs=tol)

    def test_waterfill_exact_when_many_pin(self):
        """Heavily skewed weights pin most entries at hi immediately —
        the regime where a fixed-pass loop under-allocates."""
        budgets = np.full(8, 100.0)
        hi = np.array([101.0] * 7 + [500.0])
        weights = np.array([100.0] * 7 + [1e-3])
        out = waterfill_surplus(budgets, 300.0, weights, hi)
        assert out.sum() == pytest.approx(800.0 + 300.0)
        assert np.all(out <= hi + 1e-9)
        np.testing.assert_allclose(out[:7], 101.0)
        assert out[7] == pytest.approx(393.0)

    def test_waterfill_saturates_all_ceilings(self):
        budgets = np.array([100.0, 150.0])
        out = waterfill_surplus(budgets, 1000.0, np.ones(2), 200.0)
        np.testing.assert_allclose(out, 200.0)

    def test_waterfill_zero_surplus_is_identity(self):
        budgets = np.array([110.0, 120.0])
        out = waterfill_surplus(budgets, 0.0, np.ones(2), 200.0)
        np.testing.assert_allclose(out, budgets)

    @settings(max_examples=150, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        surplus=st.floats(min_value=0.0, max_value=2000.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_waterfill_exactness_property(self, n, surplus, seed):
        rng = np.random.default_rng(seed)
        budgets = rng.uniform(50.0, 150.0, n)
        hi = budgets + rng.uniform(0.0, 120.0, n)
        weights = rng.uniform(0.1, 10.0, n)
        out = waterfill_surplus(budgets.copy(), surplus, weights, hi)
        absorbed = min(surplus, float((hi - budgets).sum()))
        tol = 1e-6 * max(surplus, 1.0)
        assert out.sum() == pytest.approx(budgets.sum() + absorbed, abs=tol)
        assert np.all(out >= budgets - 1e-9)
        assert np.all(out <= hi + 1e-9)

    def test_low_clamp_deficit_redistributed(self):
        """Regression: clamping weak nodes up to lo_w must not overspend.

        Proportional shares [52.5, 157.5] clip to [100, 157.5] — a sum
        of 257.5 W against a 210 W budget.  The deficit must come back
        out of the node above the floor.
        """
        budgets = coordinate_power(
            210.0, np.array([0.5, 1.5]), lo_w=100.0, hi_w=200.0
        )
        assert budgets.sum() <= 210.0 + 1e-9
        assert np.all(budgets >= 100.0 - 1e-9)
        np.testing.assert_allclose(budgets, [100.0, 110.0])


class TestMeasureNodeFactors:
    def test_factors_track_ground_truth(self, engine):
        measured = measure_node_factors(engine)
        truth = engine.cluster.variability.factors
        # measured watts/work differences must correlate with the
        # hidden efficiency factors
        corr = np.corrcoef(measured, truth)[0, 1]
        assert corr > 0.95

    def test_mean_normalized(self, engine):
        measured = measure_node_factors(engine)
        assert measured.mean() == pytest.approx(1.0)

    def test_calibration_cached_per_fingerprint(self, engine):
        first = measure_node_factors(engine)
        assert len(engine.calibration_cache) == 1
        second = measure_node_factors(engine)
        np.testing.assert_array_equal(first, second)
        assert len(engine.calibration_cache) == 1  # served from cache
        # the returned array is a copy: mutating it must not poison
        # later calibrations
        second[0] = 99.0
        np.testing.assert_array_equal(measure_node_factors(engine), first)

    def test_fail_and_recover_invalidate_calibration(self, engine):
        healthy = measure_node_factors(engine)
        engine.cluster.fail_node(2)
        failed = measure_node_factors(engine)
        assert failed[2] == pytest.approx(1.0)  # neutral placeholder
        assert len(engine.calibration_cache) == 2
        engine.cluster.recover_node(2)
        recovered = measure_node_factors(engine)
        np.testing.assert_array_equal(recovered, healthy)

    def test_degrade_invalidates_calibration(self, engine):
        before = measure_node_factors(engine)
        engine.cluster.degrade_node(1, 1.5)
        after = measure_node_factors(engine)
        assert after[1] > before[1]
        assert len(engine.calibration_cache) == 2


class TestClusterAllocator:
    def _alloc(self, recommender, n_total=8, factors=None):
        return ClusterAllocator(recommender, n_total, node_factors=factors)

    def test_generous_budget_uses_all_nodes(self, recommender_for):
        alloc = self._alloc(recommender_for("comd")).allocate(2400.0)
        assert alloc.n_nodes == 8

    def test_tight_budget_sheds_nodes(self, recommender_for):
        rec = recommender_for("comd")
        lo, _ = self._alloc(rec).acceptable_range()
        budget = 3.5 * lo
        alloc = self._alloc(rec).allocate(budget)
        assert alloc.n_nodes <= 3

    def test_budget_conserved(self, recommender_for):
        alloc = self._alloc(recommender_for("bt-mz.C")).allocate(1300.0)
        assert alloc.total_allocated_w <= 1300.0 * (1 + 1e-9)

    def test_budgets_within_range(self, recommender_for):
        alloc = self._alloc(recommender_for("bt-mz.C")).allocate(1300.0)
        for b in alloc.node_budgets_w:
            assert alloc.node_lo_w - 1e-9 <= b <= alloc.node_hi_w + 1e-9

    def test_infeasible_budget_raises(self, recommender_for):
        with pytest.raises(InfeasibleBudgetError):
            self._alloc(recommender_for("comd")).allocate(20.0)

    def test_predefined_counts_respected(self, recommender_for):
        alloc = self._alloc(recommender_for("comd")).allocate(
            2400.0, predefined=(1, 2, 4, 8)
        )
        assert alloc.n_nodes in (1, 2, 4, 8)

    def test_predefined_infeasible_raises(self, recommender_for):
        rec = recommender_for("comd")
        lo, _ = self._alloc(rec).acceptable_range()
        with pytest.raises(InfeasibleBudgetError):
            self._alloc(rec).allocate(lo * 1.5, predefined=(4, 8))

    def test_simple_mode_matches_algorithm1(self, recommender_for):
        rec = recommender_for("comd")
        allocator = self._alloc(rec)
        lo, hi = allocator.acceptable_range()
        # Pub > Ntotal * hi -> all nodes
        alloc = allocator.allocate(8 * hi + 100, mode="simple")
        assert alloc.n_nodes == 8
        # otherwise floor(Pub / hi)
        alloc = allocator.allocate(3.4 * hi, mode="simple")
        assert alloc.n_nodes == 3

    def test_unknown_mode_raises(self, recommender_for):
        with pytest.raises(SchedulingError):
            self._alloc(recommender_for("comd")).allocate(1000.0, mode="magic")

    def test_variability_coordination_engages(self, recommender_for):
        factors = np.array([1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.25])
        rec = recommender_for("comd")
        alloc = ClusterAllocator(rec, 8, node_factors=factors).allocate(1400.0)
        budgets = np.array(alloc.node_budgets_w)
        if alloc.n_nodes == 8:
            assert budgets[7] > budgets[0]

    def test_homogeneous_budgets_uniform(self, recommender_for):
        alloc = self._alloc(recommender_for("comd")).allocate(1400.0)
        budgets = np.array(alloc.node_budgets_w)
        assert np.allclose(budgets, budgets[0], rtol=1e-6) or (
            budgets.max() / budgets.min() - 1 <= VARIABILITY_THRESHOLD + 0.2
        )

    def test_more_budget_never_fewer_nodes(self, recommender_for):
        rec = recommender_for("comd")
        allocator = self._alloc(rec)
        counts = [
            allocator.allocate(b).n_nodes for b in (700.0, 1100.0, 1600.0, 2400.0)
        ]
        assert counts == sorted(counts)

    def test_factors_length_validated(self, recommender_for):
        with pytest.raises(SchedulingError):
            ClusterAllocator(recommender_for("comd"), 8, node_factors=np.ones(4))
