"""The simulated cluster: a set of nodes plus interconnect facts.

This is the full stand-in for the paper's 8-node Haswell testbed.  It
owns the :class:`~repro.hw.variability.VariabilityModel`, instantiates
one :class:`~repro.hw.node.SimulatedNode` per slot with its drawn
efficiency factor, and exposes the aggregate power-range facts the
cluster-level allocator needs.
"""

from __future__ import annotations

from repro.errors import NodeFailureError, SpecError
from repro.hw.node import SimulatedNode
from repro.hw.specs import ClusterSpec, haswell_testbed, mixed_testbed
from repro.hw.variability import VariabilityModel

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """A cluster of simulated nodes."""

    def __init__(self, spec: ClusterSpec):
        self._spec = spec
        self._variability = VariabilityModel(
            spec.n_nodes, sigma=spec.variability_sigma, seed=spec.variability_seed
        )
        self._nodes = [
            SimulatedNode(node_spec, node_id=i, efficiency=f)
            for i, (node_spec, f) in enumerate(
                zip(spec.node_specs, self._variability.factors)
            )
        ]
        self._failed: set[int] = set()

    @classmethod
    def testbed(cls, **kwargs) -> "SimulatedCluster":
        """The paper's 8-node dual-socket Haswell testbed (§V-A)."""
        return cls(haswell_testbed(**kwargs))

    @classmethod
    def mixed_testbed(cls, **kwargs) -> "SimulatedCluster":
        """The mixed fleet: 4× Haswell + 4× Broadwell behind one fabric."""
        return cls(mixed_testbed(**kwargs))

    @property
    def spec(self) -> ClusterSpec:
        """Static cluster description."""
        return self._spec

    @property
    def variability(self) -> VariabilityModel:
        """Per-node efficiency factors."""
        return self._variability

    @property
    def nodes(self) -> tuple[SimulatedNode, ...]:
        """All nodes, indexed by node id."""
        return tuple(self._nodes)

    def degrade_node(self, node_id: int, factor: float) -> SimulatedNode:
        """Worsen one node's power efficiency mid-life (fault injection).

        Models field events — thermal-paste degradation, a failing fan
        forcing higher leakage — by replacing the node with one whose
        efficiency multiplier is scaled by *factor* (> 1 means more
        watts for the same work).  Caps, meters, and DVFS state reset
        with the replacement, as they would across the implied
        maintenance reboot.  Returns the new node.
        """
        if not 0 <= node_id < self.n_nodes:
            raise SpecError(f"node id {node_id} outside [0, {self.n_nodes})")
        if factor <= 0:
            raise SpecError(f"degradation factor must be > 0, got {factor}")
        old = self._nodes[node_id]
        # rebuild from the failed node's *own* spec — in a mixed cluster
        # a degraded Broadwell slot must come back as a Broadwell
        replacement = SimulatedNode(
            old.spec, node_id=node_id,
            efficiency=old.efficiency * factor,
        )
        self._nodes[node_id] = replacement
        return replacement

    # -- node failure state (fault injection) ---------------------------

    def fail_node(self, node_id: int) -> SimulatedNode:
        """Mark one node failed (crash, PSU loss, network partition).

        A failed node keeps its slot and identity but may not
        participate in runs until :meth:`recover_node` brings it back.
        Returns the failed node so callers can inspect its last state.
        """
        node = self.node(node_id)
        self._failed.add(node_id)
        return node

    def recover_node(self, node_id: int) -> SimulatedNode:
        """Return a failed node to service after its implied reboot.

        The slot is refilled with a fresh node at the same efficiency
        factor — caps, meters, and DVFS state reset across the reboot,
        exactly as in :meth:`degrade_node`.  Returns the new node.
        """
        if not 0 <= node_id < self.n_nodes:
            raise SpecError(f"node id {node_id} outside [0, {self.n_nodes})")
        if node_id not in self._failed:
            raise NodeFailureError(f"node {node_id} is not failed")
        old = self._nodes[node_id]
        self._nodes[node_id] = SimulatedNode(
            old.spec, node_id=node_id, efficiency=old.efficiency
        )
        self._failed.discard(node_id)
        return self._nodes[node_id]

    def is_available(self, node_id: int) -> bool:
        """Whether the node is in service (exists and is not failed)."""
        return 0 <= node_id < self.n_nodes and node_id not in self._failed

    @property
    def failed_node_ids(self) -> tuple[int, ...]:
        """Ids of the nodes currently marked failed, ascending."""
        return tuple(sorted(self._failed))

    @property
    def available_node_ids(self) -> tuple[int, ...]:
        """Ids of the nodes currently in service, ascending."""
        return tuple(i for i in range(self.n_nodes) if i not in self._failed)

    @property
    def n_available(self) -> int:
        """Number of nodes currently in service."""
        return self.n_nodes - len(self._failed)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return self._spec.n_nodes

    # -- rack structure (fleet-scale specs) -----------------------------

    @property
    def n_racks(self) -> int:
        """Number of racks (1 for a flat single-rack cluster)."""
        return self._spec.n_racks

    @property
    def rack_of_slot(self) -> tuple[int, ...]:
        """Rack index of each node slot."""
        return self._spec.rack_of_slot

    def rack_node_ids(self, rack: int) -> tuple[int, ...]:
        """Node ids housed in one rack."""
        if not 0 <= rack < self.n_racks:
            raise SpecError(f"rack index {rack} outside [0, {self.n_racks})")
        return tuple(
            i for i, r in enumerate(self._spec.rack_of_slot) if r == rack
        )

    def node(self, node_id: int) -> SimulatedNode:
        """Access one node by id."""
        if not 0 <= node_id < self.n_nodes:
            raise SpecError(f"node id {node_id} outside [0, {self.n_nodes})")
        return self._nodes[node_id]

    def reset(self) -> None:
        """Reset every node (caps, meters, DVFS)."""
        for n in self._nodes:
            n.reset()

    # -- aggregate power facts used by cluster-level allocation ---------

    @property
    def p_max_w(self) -> float:
        """Peak cluster power with every node flat out."""
        return self._spec.p_cluster_max_w

    @property
    def p_other_total_w(self) -> float:
        """Total uncapped component power when all nodes are on."""
        if self._spec.is_homogeneous:
            return self.n_nodes * self._spec.node.p_other_w
        return float(sum(s.p_other_w for s in self._spec.node_specs))
