"""Smoke tests for the runnable examples.

Each example's ``main`` must run to completion on the default testbed
and print its headline artifacts.  These tests keep the examples from
rotting as the library evolves (the quickstart in particular is the
first thing a new user runs).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "CLIP decision for sp-mz.C" in out
        assert "mpirun" in out
        assert "improvement over All-In" in out

    def test_power_budget_sweep(self, capsys):
        load_example("power_budget_sweep").main([1200.0])
        out = capsys.readouterr().out
        assert "Relative performance at 1200 W" in out
        assert "CLIP average improvement" in out

    def test_characterize_kernel(self, capsys):
        load_example("characterize_kernel").main()
        out = capsys.readouterr().out
        assert "Measured kernels" in out
        assert "kernel" in out and "triad" in out
        assert "CLIP decisions" in out

    def test_variability_study(self, capsys):
        load_example("variability_study").main()
        out = capsys.readouterr().out
        assert "Variability study" in out
        assert "perf coordinated" in out

    def test_multi_job(self, capsys):
        load_example("multi_job").main()
        out = capsys.readouterr().out
        assert "Three concurrent jobs" in out
        assert "Geomean throughput gain" in out

    def test_runtime_budget_changes(self, capsys):
        load_example("runtime_budget_changes").main()
        out = capsys.readouterr().out
        assert "power emergency" in out
        assert "job finished" in out
        assert "Per-node budgets after recalibration" in out

    def test_ascii_figures(self, capsys):
        load_example("ascii_figures").main()
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 6" in out
        assert "RAPL governor settling" in out
        assert "o=ep.C" in out

    def test_budget_planning(self, capsys):
        load_example("budget_planning").main()
        out = capsys.readouterr().out
        assert "Minimal cluster budgets" in out
        assert "Impossible target correctly refused" in out
        assert "NO" not in out.split("met?")[1].split("\n\n")[0]
