"""Figure 1 — performance impact of resource coordination at 120 W.

The paper's motivating figure: NPB-SP on a single node with a 120 W
capped-power budget, sweeping the CPU/memory power split and the number
of assigned cores.  It "reveals significant performance variations"
— the best coordination beats the worst by up to 75 %.

Regenerated series: performance for every (memory watts, core count)
grid point at a fixed 120 W node budget.
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import get_app
from conftest import run_once

NODE_BUDGET_W = 120.0
MEM_GRID_W = (10.0, 14.0, 18.0, 22.0, 26.0, 30.0)
CORE_GRID = (6, 10, 14, 18, 24)


def sweep(engine):
    app = get_app("sp.C")
    grid = {}
    for mem_w in MEM_GRID_W:
        for cores in CORE_GRID:
            result = engine.run(
                app,
                ExecutionConfig(
                    n_nodes=1,
                    n_threads=cores,
                    pkg_cap_w=NODE_BUDGET_W - mem_w,
                    dram_cap_w=mem_w,
                    iterations=3,
                ),
            )
            grid[(mem_w, cores)] = result.performance
    return grid


def test_fig1_single_node_coordination(benchmark, engine, report):
    grid = run_once(benchmark, lambda: sweep(engine))

    rows = []
    for mem_w in MEM_GRID_W:
        rows.append(
            [f"mem={mem_w:.0f}W cpu={NODE_BUDGET_W - mem_w:.0f}W"]
            + [grid[(mem_w, c)] for c in CORE_GRID]
        )
    report(
        "fig1",
        render_table(
            ["power split"] + [f"{c} cores" for c in CORE_GRID],
            rows,
            title=(
                "Fig. 1 — NPB-SP on one node, 120 W budget: performance "
                "(iterations/s) vs CPU-memory split and core count"
            ),
            float_fmt="{:.4f}",
        ),
    )

    best = max(grid.values())
    worst = min(grid.values())
    # the paper reports up to 75 % improvement from coordination alone
    assert best / worst >= 1.5, f"coordination spread only {best / worst:.2f}x"

    # the best configuration is NOT the naive all-cores point: SP is
    # parabolic, so some reduced concurrency must win
    best_cfg = max(grid, key=grid.get)
    assert best_cfg[1] < 24

    # starving memory must hurt this memory-intensive code at high
    # concurrency
    assert grid[(10.0, 24)] < grid[(26.0, 24)]
