"""Tests for the knowledge DB, Algorithm-1 scheduler, and execution module."""

import numpy as np
import pytest

from repro.core.classify import ScalabilityClass
from repro.core.execution import ApplicationExecutionModule, render_script
from repro.core.knowledge import KnowledgeDB, KnowledgeEntry
from repro.core.scheduler import ClipScheduler
from repro.errors import KnowledgeBaseError, SchedulingError
from repro.workloads.apps import get_app


@pytest.fixture()
def clip(engine, trained_inflection):
    return ClipScheduler(engine, inflection=trained_inflection)


class TestKnowledgeDB:
    def test_roundtrip_persistence(self, tmp_path, profiler):
        db = KnowledgeDB()
        profile = profiler.profile(get_app("comd"))
        db.put(KnowledgeEntry(profile=profile, inflection_point=None))
        path = tmp_path / "kb.json"
        db.save(path)
        loaded = KnowledgeDB.load(path)
        assert len(loaded) == 1
        entry = loaded.get("comd", "-n 240 240 240")
        assert entry.profile.all_run.perf == pytest.approx(profile.all_run.perf)
        assert entry.profile.affinity is profile.affinity
        np.testing.assert_allclose(
            entry.profile.feature_vector(), profile.feature_vector()
        )

    def test_confirm_run_persists(self, tmp_path, profiler, trained_inflection):
        app = get_app("sp-mz.C")
        profile = profiler.profile(app)
        np_pred = trained_inflection.predict(profile)
        profile = profiler.confirm(app, profile, np_pred)
        db = KnowledgeDB()
        db.put(KnowledgeEntry(profile=profile, inflection_point=np_pred))
        path = tmp_path / "kb.json"
        db.save(path)
        entry = KnowledgeDB.load(path).get("sp-mz.C", "C")
        assert entry.inflection_point == np_pred
        assert entry.profile.confirm_run is not None

    def test_miss_raises(self):
        with pytest.raises(KnowledgeBaseError):
            KnowledgeDB().get("nope", "C")

    def test_contains_and_keys(self, profiler):
        db = KnowledgeDB()
        profile = profiler.profile(get_app("comd"))
        db.put(KnowledgeEntry(profile=profile))
        assert db.has("comd", "-n 240 240 240")
        assert ("comd", "-n 240 240 240") in db
        assert db.keys() == (("comd", "-n 240 240 240"),)

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(KnowledgeBaseError):
            KnowledgeDB.load(bad)

    def test_load_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "v2.json"
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(KnowledgeBaseError, match="schema version 99"):
            KnowledgeDB.load(bad)

    def test_load_rejects_non_object_payload(self, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(KnowledgeBaseError, match="schema version"):
            KnowledgeDB.load(bad)

    def test_save_is_atomic_replace(self, tmp_path, profiler):
        """Save replaces the target in one step and leaves no temp files."""
        db = KnowledgeDB()
        db.put(KnowledgeEntry(profile=profiler.profile(get_app("comd"))))
        path = tmp_path / "kb.json"
        path.write_text("PREVIOUS CONTENTS")
        db.save(path)
        assert len(KnowledgeDB.load(path)) == 1
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_failed_save_preserves_old_file(self, tmp_path, profiler, monkeypatch):
        """A crash mid-serialization must not corrupt the existing DB."""
        import json as json_module

        db = KnowledgeDB()
        db.put(KnowledgeEntry(profile=profiler.profile(get_app("comd"))))
        path = tmp_path / "kb.json"
        db.save(path)
        good = path.read_text()

        def boom(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(json_module, "dump", boom)
        with pytest.raises(RuntimeError):
            db.save(path)
        assert path.read_text() == good
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []


class TestClipScheduler:
    def test_decision_fields(self, clip):
        d = clip.schedule(get_app("sp-mz.C"), 1400.0)
        assert d.scalability_class is ScalabilityClass.PARABOLIC
        assert d.inflection_point is not None
        assert 1 <= d.n_nodes <= 8
        assert d.n_threads <= d.inflection_point
        assert d.total_capped_w <= 1400.0 * (1 + 1e-9)
        assert len(d.node_configs) == d.n_nodes

    def test_budget_monotone_nodes(self, clip):
        app = get_app("comd")
        counts = [clip.schedule(app, b).n_nodes for b in (800.0, 1400.0, 2400.0)]
        assert counts == sorted(counts)

    def test_knowledge_reused(self, clip):
        app = get_app("comd")
        clip.schedule(app, 1400.0)
        assert clip.knowledge.has(app.name, app.problem_size)
        before = len(clip.knowledge)
        clip.schedule(app, 900.0)
        assert len(clip.knowledge) == before

    def test_linear_app_skips_confirmation(self, clip):
        app = get_app("minimd")
        entry = clip.ensure_knowledge(app)
        assert entry.inflection_point is None
        assert entry.profile.n_samples == 2

    def test_nonlinear_app_gets_three_samples(self, clip):
        app = get_app("tealeaf")
        entry = clip.ensure_knowledge(app)
        assert entry.inflection_point is not None
        assert entry.profile.n_samples == 3

    def test_rejects_nonpositive_budget(self, clip):
        with pytest.raises(SchedulingError):
            clip.schedule(get_app("comd"), 0.0)

    def test_run_executes_decision(self, clip):
        d, r = clip.run(get_app("sp-mz.C"), 1400.0, iterations=3)
        assert r.n_nodes == d.n_nodes
        assert r.n_threads_per_node == d.n_threads
        assert r.performance > 0

    def test_execution_respects_budget(self, clip):
        _, r = clip.run(get_app("bt-mz.C"), 1200.0, iterations=3)
        drawn = sum(
            n.operating_point.pkg_power_w + n.operating_point.dram_power_w
            for n in r.nodes
        )
        assert drawn <= 1200.0 * (1 + 1e-6)

    def test_node_factors_exposed(self, clip):
        factors = clip.node_factors
        assert factors.shape == (8,)
        assert factors.mean() == pytest.approx(1.0)

    def test_calibration_can_be_disabled(self, engine, trained_inflection):
        clip = ClipScheduler(
            engine, inflection=trained_inflection, calibrate_variability=False
        )
        np.testing.assert_array_equal(clip.node_factors, np.ones(8))

    def test_predefined_node_counts(self, clip):
        d = clip.schedule(
            get_app("comd"), 2400.0, predefined_node_counts=(1, 2, 4, 8)
        )
        assert d.n_nodes in (1, 2, 4, 8)


class TestExecutionModule:
    def test_prepare_renders_script(self, clip):
        module = ApplicationExecutionModule(clip)
        plan = module.prepare(get_app("sp-mz.C"), 1400.0)
        assert "mpirun" in plan.script
        assert "clip-rapl" in plan.script
        assert f"-np {plan.decision.n_nodes}" in plan.script
        assert f"OMP_NUM_THREADS={plan.decision.n_threads}" in plan.script

    def test_execute_runs(self, clip):
        module = ApplicationExecutionModule(clip)
        plan, result = module.execute(get_app("comd"), 1400.0, iterations=2)
        assert result.n_nodes == plan.decision.n_nodes

    def test_script_bind_matches_affinity(self, clip):
        module = ApplicationExecutionModule(clip)
        plan = module.prepare(get_app("tealeaf"), 1400.0)
        cfg = plan.decision.node_configs[0]
        expected = "spread" if cfg.affinity.value == "scatter" else "close"
        assert f"OMP_PROC_BIND={expected}" in plan.script

    def test_script_lists_every_node_cap(self, clip):
        d = clip.schedule(get_app("comd"), 1400.0)
        script = render_script(get_app("comd"), d)
        assert script.count("clip-rapl") == d.n_nodes
