#!/usr/bin/env python3
"""Quickstart — schedule one job under a cluster power budget.

Builds the simulated 8-node Haswell testbed, trains CLIP's inflection
predictor, and asks the scheduler to place NPB SP-MZ under a 1200 W
cluster budget.  Prints the decision (node count, threads, per-node
CPU/DRAM caps), the launch script the real framework would emit, and
the measured outcome of executing that decision.

Run:  python examples/quickstart.py
"""

from repro import quickstart_scheduler
from repro.core.execution import render_script
from repro.workloads import get_app


def main() -> None:
    print("Building testbed + training CLIP (one-time cost)...")
    clip = quickstart_scheduler()

    app = get_app("sp-mz.C")
    budget_w = 1200.0
    decision, result = clip.run(app, budget_w, iterations=10)

    print(f"\n=== CLIP decision for {app.name} under {budget_w:.0f} W ===")
    print(f"scalability class : {decision.scalability_class.value}")
    print(f"inflection point  : {decision.inflection_point}")
    print(f"nodes             : {decision.n_nodes} / 8")
    print(f"threads per node  : {decision.n_threads} / 24")
    print(f"power allocated   : {decision.total_capped_w:.0f} W of {budget_w:.0f} W")
    for i, cfg in enumerate(decision.node_configs):
        print(
            f"  node {i}: PKG {cfg.pkg_cap_w:6.1f} W  DRAM {cfg.dram_cap_w:5.1f} W"
            f"  (predicted {cfg.predicted_frequency_hz / 1e9:.2f} GHz)"
        )

    print("\n=== launch script ===")
    print(render_script(app, decision))

    print("=== measured execution ===")
    print(result.summary())
    print(f"imbalance (max/mean node step time): {result.imbalance:.3f}")

    # contrast with the naive all-nodes/all-cores choice
    from repro.baselines import AllInScheduler

    naive = AllInScheduler(clip._engine).run(app, budget_w, iterations=10)
    gain = result.performance / naive.performance - 1.0
    print(f"\nAll-In under the same budget: {naive.summary()}")
    print(f"CLIP improvement over All-In: {gain:+.1%}")


if __name__ == "__main__":
    main()
