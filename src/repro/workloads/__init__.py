"""Application substrate: workload descriptions and ground truth.

The paper evaluates CLIP on ten hybrid MPI/OpenMP benchmark
configurations (Table II) plus training corpora (NPB, HPCC, STREAM,
PolyBench).  We cannot run those codes on simulated hardware, so each
application is described by a :class:`WorkloadCharacteristics` record —
compute volume, memory intensity, serial fraction, synchronization
cost, NUMA sharing, and communication shape — from which
:mod:`repro.workloads.model` derives ground-truth execution times with
a roofline-style analytic model.  The three scalability classes the
paper observes (linear / logarithmic / parabolic, §II) *emerge* from
those first-principles terms rather than being painted on.

:mod:`repro.workloads.apps` calibrates one record per Table-II row;
:mod:`repro.workloads.generator` draws randomized records for MLR
training; :mod:`repro.workloads.kernels` provides real NumPy
micro-kernels used by the runnable examples.
"""

from repro.workloads.characteristics import (
    CommPattern,
    Phase,
    WorkloadCharacteristics,
)
from repro.workloads.model import (
    GroundTruthModel,
    NodePhaseTiming,
    scalability_curve,
    true_inflection_point,
    true_scalability_class,
)
from repro.workloads.apps import (
    TABLE2_APPS,
    EXTRA_APPS,
    all_apps,
    get_app,
)
from repro.workloads.generator import SyntheticAppGenerator
from repro.workloads.suites import training_corpus

__all__ = [
    "CommPattern",
    "Phase",
    "WorkloadCharacteristics",
    "GroundTruthModel",
    "NodePhaseTiming",
    "scalability_curve",
    "true_inflection_point",
    "true_scalability_class",
    "TABLE2_APPS",
    "EXTRA_APPS",
    "all_apps",
    "get_app",
    "SyntheticAppGenerator",
    "training_corpus",
]
