"""Scripted fault injection for the power-bounded runtime and queue.

Power-bounded systems earn their robustness claims under *churn*: nodes
fail and come back, parts degrade, and the facility budget swings
mid-run.  This module turns the simulator into a testbed for exactly
those claims.  A :class:`FaultInjector` holds a script of timed
:class:`FaultEvent`\\ s — node failure, node recovery, degradation, and
budget changes — and applies every event whose timestamp has passed as
simulated time advances:

* against a :class:`~repro.core.runtime.PowerBoundedRuntime`, failures
  route through :meth:`~repro.core.runtime.PowerBoundedRuntime.fail_node`
  so running jobs shrink or park transactionally
  (:func:`run_scripted` drives one job segment-by-segment under a
  script);
* against a :class:`~repro.core.jobqueue.PowerBoundedJobQueue`, the
  drain loop polls the injector between jobs/batches, scheduling each
  subsequent job on the surviving nodes at the current budget.

Every cap set issued along the way lands on the shared
:class:`~repro.core.monitor.BudgetInvariantMonitor`, which is how a
scenario proves it never exceeded the cluster budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NodeFailureError, SchedulingError
from repro.hw.cluster import SimulatedCluster

__all__ = ["FAULT_ACTIONS", "FaultEvent", "FaultInjector", "run_scripted"]

#: The event kinds a fault script may contain.
FAULT_ACTIONS = ("fail_node", "recover_node", "degrade_node", "set_budget")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault, fired when simulated time reaches ``at_s``."""

    at_s: float
    action: str
    node_id: int | None = None
    factor: float | None = None
    budget_w: float | None = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise SchedulingError(f"event time must be >= 0, got {self.at_s}")
        if self.action not in FAULT_ACTIONS:
            raise SchedulingError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if self.action in ("fail_node", "recover_node", "degrade_node"):
            if self.node_id is None:
                raise SchedulingError(f"{self.action} requires node_id")
        if self.action == "degrade_node" and (
            self.factor is None or self.factor <= 0
        ):
            raise SchedulingError("degrade_node requires factor > 0")
        if self.action == "set_budget" and (
            self.budget_w is None or self.budget_w <= 0
        ):
            raise SchedulingError("set_budget requires budget_w > 0")

    def describe(self) -> str:
        """Human-readable one-liner for logs and demo output."""
        if self.action == "fail_node":
            detail = f"node {self.node_id} fails"
        elif self.action == "recover_node":
            detail = f"node {self.node_id} recovers"
        elif self.action == "degrade_node":
            detail = f"node {self.node_id} degrades x{self.factor:g}"
        else:
            detail = f"budget -> {self.budget_w:.0f} W"
        return f"t={self.at_s:.1f}s: {detail}"


class FaultInjector:
    """Applies a fault script against a cluster as time advances.

    The injector owns the *current* cluster budget (seeded with
    ``budget_w``, changed by ``set_budget`` events) and mutates the
    cluster directly for failure/recovery/degradation — unless a
    runtime is passed to :meth:`advance_to`, in which case node events
    route through the runtime so its jobs shrink or park.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        events: list[FaultEvent] | tuple[FaultEvent, ...],
        budget_w: float | None = None,
    ):
        self._cluster = cluster
        self._events = sorted(events, key=lambda e: e.at_s)
        self._cursor = 0
        self._budget = budget_w
        self.fired: list[FaultEvent] = []

    @property
    def cluster(self) -> SimulatedCluster:
        """The cluster this script mutates."""
        return self._cluster

    @property
    def budget_w(self) -> float | None:
        """The current cluster budget (``None`` until one is known)."""
        return self._budget

    @property
    def pending(self) -> tuple[FaultEvent, ...]:
        """Events not yet fired, in schedule order."""
        return tuple(self._events[self._cursor :])

    @property
    def exhausted(self) -> bool:
        """Whether every scripted event has fired."""
        return self._cursor >= len(self._events)

    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent, runtime) -> None:
        if event.action == "fail_node":
            if runtime is not None:
                runtime.fail_node(event.node_id)
            else:
                self._cluster.fail_node(event.node_id)
        elif event.action == "recover_node":
            if runtime is not None:
                runtime.recover_node(event.node_id)
            else:
                self._cluster.recover_node(event.node_id)
        elif event.action == "degrade_node":
            self._cluster.degrade_node(event.node_id, event.factor)
            if runtime is not None:
                runtime.recalibrate()
        else:  # set_budget
            self._budget = event.budget_w
        self.fired.append(event)

    def advance_to(self, now_s: float, runtime=None) -> list[FaultEvent]:
        """Fire every event scheduled at or before *now_s*.

        Returns the events fired by this call, in order.  Pass the
        :class:`~repro.core.runtime.PowerBoundedRuntime` owning the
        affected jobs so failures shrink/park them transactionally.
        """
        out: list[FaultEvent] = []
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].at_s <= now_s
        ):
            event = self._events[self._cursor]
            self._cursor += 1
            self._apply(event, runtime)
            out.append(event)
        return out

    def fire_next(self, runtime=None) -> FaultEvent:
        """Fire the next pending event regardless of its timestamp.

        Models waiting for the machine room: a parked job makes no
        simulated progress, so the clock only moves because the next
        scripted event (typically the recovery) eventually happens.
        """
        if self.exhausted:
            raise SchedulingError("fault script is exhausted")
        event = self._events[self._cursor]
        self._cursor += 1
        self._apply(event, runtime)
        return event


def run_scripted(
    runtime,
    job,
    injector: FaultInjector,
    segment_iterations: int = 20,
):
    """Drive one runtime job to completion under a fault script.

    Between segments, fires every event due at the job's elapsed
    simulated time; budget events re-coordinate the job, and if a
    failure parks it, the loop fast-forwards the script (the job waits
    in place) until a recovery un-parks it.  Raises
    :class:`~repro.errors.NodeFailureError` if the job is parked and no
    scripted event remains to rescue it.
    """
    while not job.done:
        injector.advance_to(job.elapsed_s, runtime=runtime)
        while job.parked:
            if injector.exhausted:
                raise NodeFailureError(
                    f"job parked with no rescue left in the script: "
                    f"{job.park_reason}"
                )
            injector.fire_next(runtime=runtime)
        if (
            injector.budget_w is not None
            and injector.budget_w != job.budget_w
        ):
            runtime.update_budget(job, injector.budget_w)
        runtime.advance(job, segment_iterations)
    return job
