"""GPU-fleet scheduling throughput and the host↔device shift cost.

Times ``ClipScheduler.schedule`` on the accelerator testbeds: a cold
pass on the homogeneous GPU fleet (profiling plus the offload model
fit, including the device cap-ladder enumeration) against warm
budget-sweep decisions riding the knowledge DB, then a mixed CPU+GPU
sweep whose budget-invariant ledger must stay spotless across all
three power domains.  Results are written to ``BENCH_gpu.json`` at the
repository root, alongside the other ``BENCH_*.json`` reports.

Run standalone with ``python benchmarks/bench_gpu.py`` or through
``benchmarks/test_perf_gpu.py`` (which also asserts the warm path is
measurably faster and the mixed sweep audits clean).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import gpu_testbed, mixed_gpu_testbed
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import GPU_APPS, get_app

BENCH_PATH = REPO_ROOT / "BENCH_gpu.json"

#: Every GPU port plus host-only classes that land on accelerator
#: slots and pay the idle board draw.
APPS = tuple(a.name for a in GPU_APPS) + ("comd", "stream")
BUDGETS_W = (1400.0, 1800.0, 2200.0, 2600.0, 3000.0)
WARM_ROUNDS = 3


def _scheduler(spec) -> ClipScheduler:
    engine = ExecutionEngine(SimulatedCluster(spec), seed=42)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))


def run_gpu_bench() -> dict:
    """Time cold vs warm GPU decisions; audit the mixed sweep."""
    apps = [get_app(name) for name in APPS]

    # --- homogeneous GPU fleet: cold vs warm ------------------------
    clip = _scheduler(gpu_testbed())

    start = time.perf_counter()
    for app in apps:
        clip.schedule(app, 2200.0)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    n_warm = 0
    for _ in range(WARM_ROUNDS):
        for app in apps:
            for budget in BUDGETS_W:
                clip.schedule(app, budget)
                n_warm += 1
    warm_s = time.perf_counter() - start
    clip.monitor.assert_clean()

    # --- mixed CPU+GPU fleet: full sweep, three-domain audits -------
    mixed = _scheduler(mixed_gpu_testbed())
    gpu_names = {a.name for a in GPU_APPS}
    n_offload = 0
    start = time.perf_counter()
    for app in apps:
        for budget in BUDGETS_W:
            d = mixed.schedule(app, budget)
            if app.name in gpu_names:
                n_offload += 1
                assert d.node_configs[0].predicted_gpu_clock_hz > 0
    mixed_s = time.perf_counter() - start
    mixed.monitor.assert_clean()

    cold_per_decision = cold_s / len(apps)
    warm_per_decision = warm_s / n_warm
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": list(APPS),
        "budgets_w": list(BUDGETS_W),
        "cold": {
            "decisions": len(apps),
            "total_s": cold_s,
            "per_decision_s": cold_per_decision,
        },
        "warm": {
            "decisions": n_warm,
            "total_s": warm_s,
            "per_decision_s": warm_per_decision,
        },
        "warm_speedup": cold_per_decision / warm_per_decision,
        "gpu_audits": {
            "n_audits": clip.monitor.n_audits,
            "n_violations": clip.monitor.n_violations,
        },
        "mixed_sweep": {
            "decisions": len(apps) * len(BUDGETS_W),
            "offload_decisions": n_offload,
            "total_s": mixed_s,
            "n_audits": mixed.monitor.n_audits,
            "n_violations": mixed.monitor.n_violations,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_gpu_bench()
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
