"""Real NumPy micro-kernels.

The analytic models drive the experiments, but the runnable examples
also exercise *actual* computation so users can see the library wrap
real work.  Each kernel mirrors one of the archetypes the training
suites contain: STREAM triad (bandwidth-bound), DGEMM (compute-bound),
and a 2-D Jacobi stencil (mixed).  All kernels follow the HPC guides:
vectorized NumPy, in-place updates where possible, no Python-level
inner loops.

:func:`measure_kernel` times a kernel and reports an
instructions/bytes estimate so a kernel can be converted into an
approximate :class:`WorkloadCharacteristics` for the simulator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics

__all__ = [
    "triad",
    "dgemm",
    "cg_solve",
    "fft2d",
    "jacobi2d",
    "KernelMeasurement",
    "measure_kernel",
    "characteristics_from_measurement",
]


def triad(a: np.ndarray, b: np.ndarray, c: np.ndarray, scalar: float = 3.0) -> None:
    """STREAM triad ``a = b + scalar * c`` in place (bandwidth-bound)."""
    if not (a.shape == b.shape == c.shape):
        raise WorkloadError("triad operands must share a shape")
    np.multiply(c, scalar, out=a)
    np.add(a, b, out=a)


def dgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix multiply (compute-bound archetype)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise WorkloadError("dgemm operands must be conformable 2-D arrays")
    return a @ b


def cg_solve(
    a_sparse, b: np.ndarray, iterations: int = 20
) -> np.ndarray:
    """Conjugate-gradient iterations on a sparse SPD system (CG archetype).

    Runs a fixed number of CG steps (no convergence test — the point is
    the memory-access pattern, NPB-CG style: sparse matvec plus dots).
    Returns the iterate.
    """
    if iterations < 1:
        raise WorkloadError("iterations must be >= 1")
    n = b.shape[0]
    if a_sparse.shape != (n, n):
        raise WorkloadError("matrix/vector shapes disagree")
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rs = float(r @ r)
    for _ in range(iterations):
        ap = a_sparse @ p
        denom = float(p @ ap)
        if denom <= 0:
            break
        alpha = rs / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x


def fft2d(grid: np.ndarray) -> np.ndarray:
    """Forward+inverse 2-D FFT round trip (NPB-FT archetype)."""
    if grid.ndim != 2:
        raise WorkloadError("fft2d needs a 2-D array")
    return np.fft.ifft2(np.fft.fft2(grid)).real


def jacobi2d(grid: np.ndarray, iterations: int = 1) -> np.ndarray:
    """5-point Jacobi relaxation sweeps over a 2-D grid (mixed-bound).

    Returns the relaxed grid; boundary values are held fixed.
    """
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise WorkloadError("jacobi2d needs a 2-D grid of at least 3x3")
    if iterations < 1:
        raise WorkloadError("iterations must be >= 1")
    cur = grid.astype(np.float64, copy=True)
    nxt = cur.copy()
    for _ in range(iterations):
        # vectorized 5-point stencil on the interior
        nxt[1:-1, 1:-1] = 0.25 * (
            cur[:-2, 1:-1] + cur[2:, 1:-1] + cur[1:-1, :-2] + cur[1:-1, 2:]
        )
        cur, nxt = nxt, cur
    return cur


@dataclass(frozen=True)
class KernelMeasurement:
    """Wall time plus rough traffic/operation estimates of one kernel run."""

    name: str
    elapsed_s: float
    flops: float
    bytes_moved: float

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of DRAM traffic."""
        return self.flops / self.bytes_moved if self.bytes_moved > 0 else np.inf


def measure_kernel(name: str, fn, *args, repeats: int = 3, **kwargs) -> KernelMeasurement:
    """Time ``fn(*args)`` and estimate its operation/traffic counts.

    Estimates use the standard analytic counts for the three shipped
    kernels and fall back to zero (time-only) for unknown callables.
    """
    if repeats < 1:
        raise WorkloadError("repeats must be >= 1")
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    flops = bytes_moved = 0.0
    if fn is triad:
        n = args[0].size
        flops = 2.0 * n
        bytes_moved = 3.0 * n * args[0].itemsize
    elif fn is dgemm:
        m, k = args[0].shape
        n = args[1].shape[1]
        flops = 2.0 * m * n * k
        bytes_moved = (m * k + k * n + m * n) * args[0].itemsize
    elif fn is jacobi2d:
        iters = kwargs.get("iterations", args[1] if len(args) > 1 else 1)
        cells = (args[0].shape[0] - 2) * (args[0].shape[1] - 2)
        flops = 4.0 * cells * iters
        bytes_moved = 2.0 * cells * 8.0 * iters
    elif fn is cg_solve:
        iters = kwargs.get("iterations", args[2] if len(args) > 2 else 20)
        nnz = args[0].nnz if hasattr(args[0], "nnz") else args[0].size
        n = args[1].shape[0]
        # per step: one matvec (2 flops/nnz) + 2 dots + 3 axpys
        flops = iters * (2.0 * nnz + 10.0 * n)
        bytes_moved = iters * (12.0 * nnz + 6.0 * n * 8.0)
    elif fn is fft2d:
        m, n = args[0].shape
        cells = m * n
        # forward + inverse: 2 * 5 N log2 N
        flops = 10.0 * cells * max(np.log2(cells), 1.0)
        bytes_moved = 4.0 * cells * 16.0  # complex round trip
    return KernelMeasurement(
        name=name, elapsed_s=float(best), flops=flops, bytes_moved=bytes_moved
    )


def characteristics_from_measurement(
    m: KernelMeasurement,
    instructions_per_flop: float = 1.5,
    iterations: int = 100,
    target_instructions: float = 5.0e10,
) -> WorkloadCharacteristics:
    """Convert a kernel measurement into simulator characteristics.

    This is the bridge the quickstart example uses: measure a real
    kernel once, then study its power-bounded behaviour on the
    simulated cluster.

    The measured kernel is treated as the *inner kernel* of a
    production-size iteration: its arithmetic intensity (the scale-free
    signature) is kept, while the per-iteration volume is replicated up
    to ``target_instructions`` so per-iteration fixed costs
    (synchronization, serial setup) carry realistic weight — a raw
    microsecond-scale micro-benchmark would otherwise be dominated by
    them and misclassified.
    """
    if m.flops <= 0:
        raise WorkloadError(
            f"kernel {m.name!r} has no operation estimate; cannot convert"
        )
    instr = m.flops * instructions_per_flop
    scale = max(target_instructions / instr, 1.0)
    return WorkloadCharacteristics(
        name=f"kernel.{m.name}",
        description=f"measured NumPy kernel {m.name} (x{scale:.0f} replication)",
        instructions_per_iter=instr * scale,
        bytes_per_instruction=m.bytes_moved / instr,
        serial_fraction=0.001,
        sync_cost_s=1e-4,
        ipc_fraction=0.6,
        shared_fraction=0.1,
        icache_mpki=0.2,
        comm_pattern=CommPattern.NONE,
        iterations=iterations,
        problem_size="measured",
    )
