"""Unit and property tests for NUMA topology queries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AffinityError, SpecError
from repro.hw.numa import LOCAL_DISTANCE, REMOTE_DISTANCE, NumaTopology
from repro.hw.specs import haswell_node

TOPO = NumaTopology(haswell_node())


class TestTopologyShape:
    def test_dimensions(self):
        assert TOPO.n_sockets == 2
        assert TOPO.cores_per_socket == 12
        assert TOPO.n_cores == 24

    def test_distance_matrix(self):
        d = TOPO.distances
        assert d.shape == (2, 2)
        assert d[0, 0] == LOCAL_DISTANCE
        assert d[0, 1] == REMOTE_DISTANCE
        assert np.all(d == d.T)

    def test_socket_of_boundaries(self):
        assert TOPO.socket_of(0) == 0
        assert TOPO.socket_of(11) == 0
        assert TOPO.socket_of(12) == 1
        assert TOPO.socket_of(23) == 1

    def test_socket_of_rejects_bad_core(self):
        with pytest.raises(AffinityError):
            TOPO.socket_of(24)
        with pytest.raises(AffinityError):
            TOPO.socket_of(-1)

    def test_cores_of(self):
        assert list(TOPO.cores_of(0)) == list(range(12))
        assert list(TOPO.cores_of(1)) == list(range(12, 24))

    def test_cores_of_rejects_bad_socket(self):
        with pytest.raises(AffinityError):
            TOPO.cores_of(2)


class TestPlacementQueries:
    def test_threads_per_socket(self):
        counts = TOPO.threads_per_socket([0, 1, 12, 13, 14])
        assert list(counts) == [2, 3]

    def test_duplicate_core_rejected(self):
        with pytest.raises(AffinityError):
            TOPO.threads_per_socket([0, 0])

    def test_sockets_used(self):
        assert TOPO.sockets_used([0, 1, 2]) == 1
        assert TOPO.sockets_used([0, 12]) == 2

    def test_remote_fraction_single_socket_zero(self):
        assert TOPO.remote_access_fraction(range(12), 0.5) == pytest.approx(0.0)

    def test_remote_fraction_balanced_two_sockets(self):
        # even split: shared access is remote with probability 1/2
        placement = list(range(6)) + list(range(12, 18))
        frac = TOPO.remote_access_fraction(placement, 1.0)
        assert frac == pytest.approx(0.5)

    def test_remote_fraction_scales_with_sharing(self):
        placement = list(range(6)) + list(range(12, 18))
        f1 = TOPO.remote_access_fraction(placement, 1.0)
        f2 = TOPO.remote_access_fraction(placement, 0.4)
        assert f2 == pytest.approx(0.4 * f1)

    def test_remote_fraction_rejects_bad_share(self):
        with pytest.raises(SpecError):
            TOPO.remote_access_fraction([0], 1.5)

    def test_empty_placement(self):
        assert TOPO.remote_access_fraction([], 0.5) == 0.0

    @given(
        n=st.integers(min_value=1, max_value=24),
        shared=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_remote_fraction_bounded(self, n, shared):
        placement = list(range(n))
        frac = TOPO.remote_access_fraction(placement, shared)
        assert 0.0 <= frac <= shared + 1e-12

    @given(st.integers(min_value=0, max_value=23))
    def test_socket_major_numbering(self, core):
        assert TOPO.socket_of(core) == core // 12
