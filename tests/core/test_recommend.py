"""Tests for the Configuration Recommendation Module."""

import pytest

from repro.core.classify import ScalabilityClass
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel
from repro.core.recommend import Recommender
from repro.errors import InfeasibleBudgetError
from repro.workloads.apps import get_app


@pytest.fixture()
def recommender_for(profiler, engine, trained_inflection):
    node = engine.cluster.spec.node

    def build(name):
        app = get_app(name)
        profile = profiler.profile(app)
        np_pred = None
        if profile.scalability_class.is_nonlinear:
            np_pred = trained_inflection.predict(profile)
            profile = profiler.confirm(app, profile, np_pred)
        return Recommender(
            profile,
            PerformancePredictor(profile, np_pred),
            ClipPowerModel(profile, node),
        )

    return build


class TestUnboundedConcurrency:
    def test_linear_uses_all_cores(self, recommender_for):
        assert recommender_for("comd").unbounded_concurrency() == 24

    def test_logarithmic_uses_all_cores(self, recommender_for):
        assert recommender_for("bt-mz.C").unbounded_concurrency() == 24

    def test_parabolic_stops_at_np(self, recommender_for):
        rec = recommender_for("sp-mz.C")
        assert rec.unbounded_concurrency() == rec.predictor.inflection_point


class TestRecommend:
    def test_config_fields_consistent(self, recommender_for):
        cfg = recommender_for("comd").recommend(220.0)
        assert cfg.node_budget_w == pytest.approx(cfg.pkg_cap_w + cfg.dram_cap_w)
        assert cfg.node_budget_w <= 220.0 * (1 + 1e-9)
        assert cfg.predicted_perf > 0
        assert cfg.predicted_frequency_hz > 0

    def test_linear_app_holds_full_concurrency(self, recommender_for):
        # a comfortable budget: linear apps never drop threads
        cfg = recommender_for("comd").recommend(230.0)
        assert cfg.n_threads == 24

    def test_linear_app_reduces_only_when_forced(self, recommender_for):
        rec = recommender_for("comd")
        floor24 = rec.power_model.power_range(24).node_lo_w
        cfg = rec.recommend(floor24 * 0.85)
        assert cfg.n_threads < 24

    def test_parabolic_never_exceeds_np(self, recommender_for):
        rec = recommender_for("sp-mz.C")
        np_ = rec.predictor.inflection_point
        for budget in (130.0, 180.0, 260.0):
            assert rec.recommend(budget).n_threads <= np_

    def test_log_app_prefers_frequency_at_low_budget(self, recommender_for):
        rec = recommender_for("tealeaf")
        lo_cfg = rec.recommend(120.0)
        hi_cfg = rec.recommend(260.0)
        assert lo_cfg.n_threads <= hi_cfg.n_threads

    def test_infeasible_raises(self, recommender_for):
        with pytest.raises(InfeasibleBudgetError):
            recommender_for("comd").recommend(25.0)

    def test_memory_app_gets_dram_share(self, recommender_for):
        cfg = recommender_for("stream").recommend(200.0)
        assert cfg.dram_cap_w > 15.0

    def test_affinity_matches_profile(self, recommender_for):
        rec = recommender_for("tealeaf")
        assert rec.recommend(200.0).affinity is rec.profile.affinity

    def test_min_floor_below_allcore_floor(self, recommender_for):
        rec = recommender_for("bt-mz.C")
        assert rec.min_floor_w() <= rec.power_model.power_range(24).node_lo_w

    def test_more_budget_never_worse_prediction(self, recommender_for):
        rec = recommender_for("bt-mz.C")
        perfs = [rec.recommend(b).predicted_perf for b in (140.0, 180.0, 240.0)]
        assert perfs == sorted(perfs)

    def test_even_concurrency_only(self, recommender_for):
        for name in ("comd", "bt-mz.C", "sp-mz.C"):
            cfg = recommender_for(name).recommend(180.0)
            assert cfg.n_threads % 2 == 0
