"""Execution engine: runs workloads on the simulated testbed.

* :mod:`repro.sim.affinity` — thread placement policies (compact /
  scatter) and their NUMA consequences,
* :mod:`repro.sim.mpi` — the alpha–beta inter-node communication model,
* :mod:`repro.sim.trace` — run records and results,
* :mod:`repro.sim.engine` — the steady-state execution engine that
  resolves RAPL caps against workload demand and produces times,
  powers, energies, and hardware-event counters.
"""

from repro.sim.affinity import Placement, make_placement, placement_for
from repro.sim.mpi import CommModel
from repro.sim.trace import NodeRunRecord, RunResult
from repro.sim.engine import ExecutionConfig, ExecutionEngine

__all__ = [
    "Placement",
    "make_placement",
    "placement_for",
    "CommModel",
    "NodeRunRecord",
    "RunResult",
    "ExecutionConfig",
    "ExecutionEngine",
]
