"""Named training corpora.

The paper trains its MLR inflection-point model on benchmarks "from NAS
Parallel Benchmarks (NPB), HPC Challenge Benchmark (HPCC), UVA STREAM,
PolyBench and others" (§V-B.2).  This module provides a fixed, named
set of workloads mimicking those suites' spread of behaviours, plus a
seeded synthetic tail for volume.  Having named members (rather than
only random draws) keeps Fig.-7-style experiments interpretable.
"""

from __future__ import annotations

from repro.hw.specs import NodeSpec, haswell_node
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics
from repro.workloads.generator import SyntheticAppGenerator

__all__ = ["NAMED_TRAINING_APPS", "training_corpus"]


def _k(name: str, instr: float, bpi: float, **kw) -> WorkloadCharacteristics:
    defaults = dict(
        serial_fraction=0.003,
        sync_cost_s=2e-4,
        ipc_fraction=0.5,
        shared_fraction=0.25,
        icache_mpki=1.0,
        comm_pattern=CommPattern.NONE,
        comm_bytes_per_iter=0.0,
        iterations=100,
        problem_size="train",
    )
    defaults.update(kw)
    return WorkloadCharacteristics(
        name=name, instructions_per_iter=instr, bytes_per_instruction=bpi, **defaults
    )


#: Hand-written members standing in for the public suites.
NAMED_TRAINING_APPS: tuple[WorkloadCharacteristics, ...] = (
    # NPB-like kernels
    _k("npb.ep.train", 4e10, 0.004, ipc_fraction=0.65, sync_cost_s=2e-5),
    _k("npb.cg.train", 5e10, 2.1, ipc_fraction=0.35, shared_fraction=0.45),
    _k("npb.mg.train", 6e10, 1.2, ipc_fraction=0.42),
    _k("npb.ft.train", 7e10, 0.9, ipc_fraction=0.48, icache_mpki=2.0),
    _k("npb.bt.train", 9e10, 1.0, ipc_fraction=0.46, sync_cost_s=4e-4),
    _k("npb.lu.train", 8e10, 1.5, ipc_fraction=0.44, sync_cost_s=6e-4),
    _k("npb.sp.train", 9e10, 1.8, ipc_fraction=0.42, sync_cost_s=2.5e-2),
    # HPCC-like kernels
    _k("hpcc.hpl.train", 1.2e11, 0.05, ipc_fraction=0.7),
    _k("hpcc.dgemm.train", 1.0e11, 0.03, ipc_fraction=0.72),
    _k("hpcc.ptrans.train", 3e10, 3.0, ipc_fraction=0.4),
    _k("hpcc.randomaccess.train", 2e10, 4.5, ipc_fraction=0.2, shared_fraction=0.6),
    # STREAM kernels
    _k("stream.copy.train", 6e9, 8.0, ipc_fraction=0.7, sync_cost_s=1e-4),
    _k("stream.triad.train", 9e9, 7.0, ipc_fraction=0.7, sync_cost_s=1e-4),
    # PolyBench-like kernels
    _k("poly.jacobi2d.train", 4e10, 2.4, ipc_fraction=0.4, sync_cost_s=1.5e-3),
    _k("poly.gemver.train", 3e10, 3.2, ipc_fraction=0.38, sync_cost_s=1.2e-2),
    _k("poly.correlation.train", 5e10, 0.3, ipc_fraction=0.55),
    _k("poly.seidel2d.train", 4e10, 1.6, serial_fraction=0.02, sync_cost_s=1.4e-2),
)


def training_corpus(
    node: NodeSpec | None = None,
    n_synthetic: int = 45,
    seed: int = 7,
) -> list[WorkloadCharacteristics]:
    """Named suite members plus a seeded synthetic tail.

    The synthetic tail is class-balanced (see
    :meth:`SyntheticAppGenerator.corpus`) so the regression sees enough
    non-linear examples.
    """
    node = node or haswell_node()
    gen = SyntheticAppGenerator(node, seed=seed)
    n_lin = n_synthetic // 4
    n_par = (n_synthetic - n_lin) // 2
    n_log = n_synthetic - n_lin - n_par
    corpus = list(NAMED_TRAINING_APPS)
    corpus.extend(gen.corpus(n_lin, n_log, n_par))
    return corpus
