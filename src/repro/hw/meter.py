"""Sampled power measurement.

The paper's helper tools include "a power meter reader" (§IV-B.4) that
records power traces for jobs.  :class:`PowerMeter` plays that role for
the simulated testbed: the execution engine reports each steady-state
interval, and the meter resamples it onto a fixed grid so traces look
like what a physical meter (or RAPL polling loop) produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.power import PowerBreakdown
from repro.units import check_non_negative, check_positive

__all__ = ["PowerSample", "PowerMeter"]


@dataclass(frozen=True)
class PowerSample:
    """One meter reading."""

    t_s: float
    pkg_w: float
    dram_w: float
    other_w: float

    @property
    def total_w(self) -> float:
        """Wall power at the sample instant."""
        return self.pkg_w + self.dram_w + self.other_w


class PowerMeter:
    """Accumulates piecewise-constant power intervals into a trace."""

    def __init__(self, sample_period_s: float = 0.1):
        self._period = check_positive(sample_period_s, "sample_period_s")
        self._t = 0.0
        self._energy_j = 0.0
        self._intervals: list[tuple[float, float, PowerBreakdown]] = []

    @property
    def elapsed_s(self) -> float:
        """Total recorded time."""
        return self._t

    @property
    def energy_j(self) -> float:
        """Exact integrated wall energy over all intervals."""
        return self._energy_j

    def record(self, breakdown: PowerBreakdown, dt_s: float) -> None:
        """Append a steady-state interval of *dt_s* seconds."""
        check_non_negative(dt_s, "dt")
        if dt_s == 0.0:
            return
        self._intervals.append((self._t, self._t + dt_s, breakdown))
        self._t += dt_s
        self._energy_j += breakdown.total_w * dt_s

    def average_power_w(self) -> float:
        """Time-weighted average wall power."""
        return self._energy_j / self._t if self._t > 0 else 0.0

    def peak_power_w(self) -> float:
        """Highest interval wall power."""
        if not self._intervals:
            return 0.0
        return max(b.total_w for _, _, b in self._intervals)

    def samples(self) -> list[PowerSample]:
        """Resample the trace on the meter's fixed period.

        Each sample reports the power of the interval containing the
        sample instant, matching a polling meter's behaviour.
        """
        out: list[PowerSample] = []
        if not self._intervals:
            return out
        times = np.arange(0.0, self._t, self._period)
        starts = np.array([s for s, _, _ in self._intervals])
        idx = np.searchsorted(starts, times, side="right") - 1
        for t, i in zip(times, idx):
            b = self._intervals[int(i)][2]
            out.append(
                PowerSample(
                    t_s=float(t), pkg_w=b.pkg_w, dram_w=b.dram_w, other_w=b.other_w
                )
            )
        return out

    def reset(self) -> None:
        """Clear the trace and counters."""
        self._t = 0.0
        self._energy_j = 0.0
        self._intervals.clear()
