"""Warm- vs cold-path timings for the staged decision pipeline.

Measures ``ClipScheduler.schedule`` on a fresh scheduler (cold: smart
profiling plus model fitting) against repeated decisions for the same
applications (warm: knowledge-DB hit plus a cached
:class:`~repro.core.pipeline.ModelBundle`), plus the
``schedule_many`` batch entry point on a queue-like job mix.  Results
are written to ``BENCH_pipeline.json`` at the repository root,
alongside ``BENCH_batch.json``.

Run standalone with ``python benchmarks/bench_pipeline.py`` or through
``benchmarks/test_perf_pipeline.py`` (which also asserts the warm path
is measurably faster).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_pipeline.json"

APPS = ("comd", "minimd", "sp-mz.C", "bt-mz.C", "tealeaf", "cloverleaf.128")
BUDGETS_W = (900.0, 1200.0, 1500.0, 1800.0, 2100.0, 2400.0)
WARM_ROUNDS = 3


def _fresh_scheduler() -> ClipScheduler:
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    return ClipScheduler(engine, inflection=build_trained_inflection(engine))


def run_pipeline_bench() -> dict:
    """Time cold vs warm decisions and the batch entry point."""
    apps = [get_app(name) for name in APPS]
    clip = _fresh_scheduler()

    # cold: first decision per app — profiling + model fitting
    start = time.perf_counter()
    cold_decisions = [clip.schedule(app, 1400.0) for app in apps]
    cold_s = time.perf_counter() - start

    # warm: same apps across a budget sweep — knowledge hits + cached
    # model bundles; nothing is profiled or re-fitted
    start = time.perf_counter()
    n_warm = 0
    for _ in range(WARM_ROUNDS):
        for app in apps:
            for budget in BUDGETS_W:
                clip.schedule(app, budget)
                n_warm += 1
    warm_s = time.perf_counter() - start

    cold_per_decision = cold_s / len(apps)
    warm_per_decision = warm_s / n_warm

    # batch entry point on a queue-like mix (many arrivals, few apps)
    jobs = [get_app(APPS[i % len(APPS)]) for i in range(60)]
    start = time.perf_counter()
    batch = clip.schedule_many(jobs, 1400.0)
    batch_s = time.perf_counter() - start

    cache = clip.pipeline.bundle_cache
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": list(APPS),
        "budgets_w": list(BUDGETS_W),
        "cold": {
            "decisions": len(apps),
            "total_s": cold_s,
            "per_decision_s": cold_per_decision,
        },
        "warm": {
            "decisions": n_warm,
            "total_s": warm_s,
            "per_decision_s": warm_per_decision,
        },
        "warm_speedup": cold_per_decision / warm_per_decision,
        "schedule_many": {
            "jobs": len(jobs),
            "total_s": batch_s,
            "per_job_s": batch_s / len(jobs),
        },
        "bundle_cache": {
            "bundles": len(cache),
            "hits": cache.hits,
            "misses": cache.misses,
        },
        "decisions_identical": all(
            batch[i] == cold_decisions[i % len(apps)] for i in range(len(jobs))
        ),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_pipeline_bench()
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
