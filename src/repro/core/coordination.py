"""Inter-node power coordination under manufacturing variability.

Section III-B.2 (following Inadomi et al., SC'15): nominally identical
nodes convert watts to frequency differently; under a uniform per-node
budget the least efficient node paces every bulk-synchronous step.
CLIP measures per-node efficiency once per cluster with a calibration
kernel, and — when the spread exceeds a threshold (the paper's testbed
is "quite homogeneous", so coordination only engages beyond it) —
redistributes the job's power proportionally to each node's efficiency
factor so all nodes sustain the same operating point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics

__all__ = [
    "VARIABILITY_THRESHOLD",
    "measure_node_factors",
    "coordinate_power",
]

#: Relative max-to-min power spread below which nodes are treated as
#: homogeneous and budgets stay uniform.
VARIABILITY_THRESHOLD = 0.05

#: Calibration workload: a fixed compute-bound kernel so measured power
#: differences reflect the silicon, not workload placement.
_CALIBRATION_APP = WorkloadCharacteristics(
    name="clip.calibration",
    description="fixed DGEMM-like kernel for variability calibration",
    instructions_per_iter=2.0e10,
    bytes_per_instruction=0.02,
    serial_fraction=0.0,
    sync_cost_s=0.0,
    ipc_fraction=0.65,
    shared_fraction=0.05,
    icache_mpki=0.1,
    comm_pattern=CommPattern.NONE,
    iterations=3,
    problem_size="calibration",
)


def measure_node_factors(engine: ExecutionEngine, n_threads: int | None = None) -> np.ndarray:
    """Measure each node's power-efficiency factor (mean-normalized).

    Runs the calibration kernel on every node at a fixed frequency and
    reads RAPL power; a node drawing more watts for the same work gets
    a factor above 1.  This is a one-time cluster calibration, not a
    per-application cost.

    The default uses half the cores: an all-core compute kernel sits at
    the factory power limit, where inefficient parts silently throttle
    and the power signal collapses to the cap value.

    Nodes currently marked failed are skipped and carry a neutral
    factor of 1.0 (they cannot participate in runs anyway); the
    normalization uses only the measured survivors.

    On a heterogeneous cluster each node is calibrated against its own
    spec (half *its* cores, pinned at *its* nominal frequency) and the
    mean-normalization runs within each hardware class: a Broadwell
    legitimately draws different watts than a Haswell, and only the
    within-class silicon spread is manufacturing variability.
    """
    cluster = engine.cluster
    powers = np.full(cluster.n_nodes, np.nan)
    for i in cluster.available_node_ids:
        node_spec = cluster.node(i).spec
        result = engine.run(
            _CALIBRATION_APP,
            ExecutionConfig(
                n_nodes=1,
                n_threads=n_threads or node_spec.n_cores // 2,
                node_ids=(i,),
                frequency_hz=node_spec.socket.f_nominal,
            ),
        )
        rec = result.nodes[0]
        powers[i] = rec.operating_point.pkg_power_w + rec.operating_point.dram_power_w
    measured = powers[~np.isnan(powers)]
    if measured.size == 0:
        raise SchedulingError("cannot calibrate: every node is failed")
    spec = cluster.spec
    if spec.is_homogeneous:
        factors = powers / measured.mean()
    else:
        factors = np.full(cluster.n_nodes, np.nan)
        for node_spec in dict.fromkeys(spec.node_specs):
            in_class = np.array(
                [s == node_spec for s in spec.node_specs], dtype=bool
            )
            class_measured = powers[in_class & ~np.isnan(powers)]
            if class_measured.size:
                factors[in_class] = powers[in_class] / class_measured.mean()
    factors[np.isnan(factors)] = 1.0
    return factors


def coordinate_power(
    total_budget_w: float,
    factors: np.ndarray,
    lo_w: float | np.ndarray,
    hi_w: float | np.ndarray,
    threshold: float = VARIABILITY_THRESHOLD,
) -> np.ndarray:
    """Split a job budget across nodes, variability-aware.

    Parameters
    ----------
    total_budget_w:
        Power available to the participating nodes together.
    factors:
        Per-node efficiency factors (watts per unit work, normalized);
        only the participating nodes' entries are passed.
    lo_w / hi_w:
        Acceptable per-node power range of the application.  Scalars
        describe a homogeneous cluster; per-node arrays (one entry per
        participating node, in the same order as ``factors``) carry
        each node's own range on a heterogeneous cluster.  Budgets are
        kept inside every node's own range.
    threshold:
        Spread below which the split stays uniform.

    Returns
    -------
    numpy.ndarray
        Per-node budgets summing to at most ``total_budget_w``.

    Raises
    ------
    SchedulingError
        If the budget cannot give every node at least its own floor.
    """
    factors = np.asarray(factors, dtype=np.float64)
    n = len(factors)
    if n < 1:
        raise SchedulingError("need at least one participating node")
    lo_arr = np.asarray(lo_w, dtype=np.float64)
    hi_arr = np.asarray(hi_w, dtype=np.float64)
    if lo_arr.ndim == 0 and hi_arr.ndim == 0:
        lo_s = float(lo_arr)
        hi_s = float(hi_arr)
        if lo_s <= 0 or hi_s < lo_s:
            raise SchedulingError(f"invalid power range [{lo_s}, {hi_s}]")
        if total_budget_w < n * lo_s - 1e-9:
            raise SchedulingError(
                f"budget {total_budget_w:.1f} W cannot give {n} nodes the "
                f"floor of {lo_s:.1f} W each"
            )
        uniform = np.full(n, min(total_budget_w / n, hi_s))
        spread = factors.max() / factors.min() - 1.0
        if n == 1 or spread <= threshold:
            return uniform

        # Proportional split: node i needs factor_i times the watts of
        # the nominal part to sustain the same frequency.  Clamp into
        # the acceptable range and hand clipped surplus back
        # proportionally.
        budgets = np.clip(total_budget_w * factors / factors.sum(), lo_s, hi_s)
        deficit = budgets.sum() - total_budget_w
        if deficit > 1e-9:
            # Clamping weak nodes up to lo_w pushed the sum past the
            # budget; take the overage back from nodes above the floor,
            # proportionally to their headroom.  The feasibility guard
            # above guarantees sum(room) = sum - n*lo >= deficit, so one
            # proportional pass lands exactly on the budget without
            # dropping anyone below lo_w.
            room = budgets - lo_s
            budgets = budgets - deficit * room / room.sum()
            return np.clip(budgets, lo_s, hi_s)
        surplus = -deficit
        for _ in range(8):
            if surplus <= 1e-9:
                break
            room = hi_s - budgets
            open_idx = room > 1e-12
            if not np.any(open_idx):
                break
            add = np.zeros(n)
            add[open_idx] = surplus * factors[open_idx] / factors[open_idx].sum()
            new = np.minimum(budgets + add, hi_s)
            surplus -= float((new - budgets).sum())
            budgets = new
        return budgets

    # -- per-node ranges (heterogeneous clusters) -----------------------
    # Even a below-threshold spread must respect per-node bounds, so
    # the clamp-and-redistribute machinery always runs: start from the
    # target split (uniform or factor-proportional), clip into each
    # node's own range, then move the clipping error back onto nodes
    # with headroom.
    lo = np.array(np.broadcast_to(lo_arr, (n,)), dtype=np.float64)
    hi = np.array(np.broadcast_to(hi_arr, (n,)), dtype=np.float64)
    if np.any(lo <= 0) or np.any(hi < lo):
        raise SchedulingError(
            f"invalid per-node power ranges [{lo.tolist()}, {hi.tolist()}]"
        )
    if total_budget_w < lo.sum() - 1e-9:
        raise SchedulingError(
            f"budget {total_budget_w:.1f} W cannot give {n} nodes their "
            f"floors summing to {lo.sum():.1f} W"
        )
    spread = factors.max() / factors.min() - 1.0
    if n == 1 or spread <= threshold:
        raw = np.full(n, total_budget_w / n)
        weights = np.ones(n)
    else:
        raw = total_budget_w * factors / factors.sum()
        weights = factors
    budgets = np.clip(raw, lo, hi)
    deficit = budgets.sum() - total_budget_w
    if deficit > 1e-9:
        room = budgets - lo
        if room.sum() > 1e-12:
            budgets = budgets - deficit * room / room.sum()
        return np.clip(budgets, lo, hi)
    surplus = -deficit
    for _ in range(8):
        if surplus <= 1e-9:
            break
        room = hi - budgets
        open_idx = room > 1e-12
        if not np.any(open_idx):
            break
        add = np.zeros(n)
        add[open_idx] = surplus * weights[open_idx] / weights[open_idx].sum()
        new = np.minimum(budgets + add, hi)
        surplus -= float((new - budgets).sum())
        budgets = new
    return budgets
