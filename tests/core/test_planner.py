"""Tests for the inverse budget planner."""

import pytest

from repro.core.knowledge import KnowledgeDB
from repro.core.planner import BudgetPlanner
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, SchedulingError
from repro.workloads.apps import get_app


@pytest.fixture()
def planner(engine, trained_inflection):
    clip = ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )
    return BudgetPlanner(clip)


class TestPlan:
    def test_prediction_meets_target(self, planner):
        plan = planner.plan(get_app("comd"), target_perf=8.0)
        assert plan.predicted_perf >= 8.0
        assert plan.headroom >= 0.0
        assert plan.budget_w > 0

    def test_budget_is_minimal_to_tolerance(self, planner, engine):
        app = get_app("comd")
        plan = planner.plan(app, target_perf=8.0)
        smaller = plan.budget_w - 3 * planner._tol
        decision = planner._scheduler.schedule(app, smaller)
        assert decision.predicted_perf < 8.0

    def test_higher_target_costs_more(self, planner):
        app = get_app("comd")
        cheap = planner.plan(app, target_perf=5.0)
        dear = planner.plan(app, target_perf=10.0)
        assert dear.budget_w > cheap.budget_w

    def test_unreachable_target_raises(self, planner):
        with pytest.raises(InfeasibleBudgetError):
            planner.plan(get_app("sp-mz.C"), target_perf=1e6)

    def test_rejects_bad_target(self, planner):
        with pytest.raises(SchedulingError):
            planner.plan(get_app("comd"), target_perf=0.0)

    def test_rejects_bad_tolerance(self, engine, trained_inflection):
        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        with pytest.raises(SchedulingError):
            BudgetPlanner(clip, tolerance_w=0.0)

    def test_max_useful_budget_scales_with_ceiling(self, planner, engine):
        hi = planner.max_useful_budget_w(get_app("comd"))
        assert hi > 1000.0
        assert hi <= engine.cluster.p_max_w * 1.5


class TestPlanValidated:
    @pytest.mark.parametrize(
        "name,target", [("comd", 8.0), ("sp-mz.C", 1.2), ("tealeaf", 1.5)]
    )
    def test_measured_performance_meets_target(self, planner, engine, name, target):
        app = get_app(name)
        plan = planner.plan_validated(app, target)
        result = engine.run(app, plan.decision.to_execution_config(iterations=3))
        assert result.performance >= target

    def test_validated_costs_at_least_predicted(self, planner):
        app = get_app("sp-mz.C")
        optimistic = planner.plan(app, 1.2)
        validated = planner.plan_validated(app, 1.2)
        assert validated.budget_w >= optimistic.budget_w - planner._tol

    def test_validated_unreachable_raises(self, planner):
        with pytest.raises(InfeasibleBudgetError):
            planner.plan_validated(get_app("tealeaf"), target_perf=1e5)
