"""Time-stepped RAPL governor (running-average power limiting).

:meth:`RaplInterface.resolve` jumps straight to the steady state a cap
settles at.  Real RAPL gets there *dynamically*: the hardware enforces
the limit on a **running average** over a configurable time window
(PL1/tau in the MSR), stepping the P-state down while the window
average exceeds the limit and back up when headroom appears.  Transient
excursions above the limit are legal as long as the average complies.

:class:`RaplGovernor` reproduces those dynamics so settling time,
transient overshoot, and cap-tracking under phase changes can be
studied — and so the meter can record realistic saw-tooth traces.  Its
fixed point is, by construction, the steady state ``resolve`` computes;
the equivalence is pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerDomainError
from repro.hw.rapl import Domain, RaplInterface
from repro.units import check_positive

__all__ = ["GovernorSample", "RaplGovernor"]

#: Step the P-state up only when the window average sits below this
#: fraction of the limit (hysteresis against oscillation).
RAISE_HEADROOM = 0.97


@dataclass(frozen=True)
class GovernorSample:
    """One governor interval."""

    t_s: float
    frequency_hz: float
    power_w: float
    window_avg_w: float
    limit_w: float

    @property
    def over_limit(self) -> bool:
        """Whether the instantaneous power exceeded the limit."""
        return self.power_w > self.limit_w * (1 + 1e-9)


class RaplGovernor:
    """Moving-average PKG-limit controller for one node."""

    def __init__(
        self,
        rapl: RaplInterface,
        window_s: float = 1.0,
        interval_s: float = 0.05,
    ):
        check_positive(window_s, "window_s")
        check_positive(interval_s, "interval_s")
        if interval_s > window_s:
            raise PowerDomainError("interval must not exceed the window")
        self._rapl = rapl
        self._ladder = rapl._ladder
        self._window_n = max(int(round(window_s / interval_s)), 1)
        self._interval = interval_s
        self._f = self._ladder.f_max
        self._history: list[float] = []
        self._t = 0.0

    @property
    def frequency_hz(self) -> float:
        """Current P-state."""
        return self._f

    def reset(self, frequency_hz: float | None = None) -> None:
        """Clear history; optionally re-pin the starting P-state."""
        self._history.clear()
        self._t = 0.0
        self._f = (
            self._ladder.quantize_down(frequency_hz)
            if frequency_hz is not None
            else self._ladder.f_max
        )

    def step(
        self,
        active_per_socket,
        activity: float,
        demanded_frequency_hz: float | None = None,
    ) -> GovernorSample:
        """Advance one interval and apply the control law.

        Returns the interval's sample *before* the control action, i.e.
        the power actually drawn during the interval — the quantity the
        window averages.
        """
        model = self._rapl.model
        limit = self._rapl.domain(Domain.PKG).effective_cap_w
        f_demand = (
            self._ladder.quantize_down(demanded_frequency_hz)
            if demanded_frequency_hz is not None
            else self._ladder.f_max
        )
        f = min(self._f, f_demand)
        power = float(
            sum(model.pkg_power(int(n), f, activity) for n in active_per_socket)
        )
        self._history.append(power)
        if len(self._history) > self._window_n:
            self._history.pop(0)
        avg = float(np.mean(self._history))
        sample = GovernorSample(
            t_s=self._t,
            frequency_hz=f,
            power_w=power,
            window_avg_w=avg,
            limit_w=limit,
        )
        self._t += self._interval

        # control law: instantaneous overshoot steps down immediately;
        # the average recovering with headroom steps back up
        if power > limit * (1 + 1e-9):
            self._f = self._ladder.step_down(f)
        elif avg < limit * RAISE_HEADROOM and f < f_demand:
            self._f = self._ladder.step_up(f)
        return sample

    def run(
        self,
        n_steps: int,
        active_per_socket,
        activity: float,
        demanded_frequency_hz: float | None = None,
    ) -> list[GovernorSample]:
        """Advance *n_steps* intervals under a constant load phase."""
        return [
            self.step(active_per_socket, activity, demanded_frequency_hz)
            for _ in range(n_steps)
        ]

    def settled_frequency(
        self,
        active_per_socket,
        activity: float,
        n_steps: int = 200,
    ) -> float:
        """Frequency the control loop settles at for a constant load."""
        samples = self.run(n_steps, active_per_socket, activity)
        tail = samples[-10:]
        return float(np.median([s.frequency_hz for s in tail]))
