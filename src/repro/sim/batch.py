"""Batched candidate evaluation: vectorized engine fast path + run cache.

The exhaustive oracle, the profiler, and every figure benchmark score
hundreds of :class:`~repro.sim.engine.ExecutionConfig` candidates, and
the scalar :meth:`ExecutionEngine.run` pays Python-loop overhead per
node, per phase, per fixed-point round.  This module evaluates *many*
candidates at once as one ``(n_candidates, n_nodes)`` NumPy array
program:

* :class:`RunCache` — memoizes :class:`~repro.sim.trace.RunResult`s on
  ``(app, config, engine seed, cluster spec, node efficiencies)`` with
  hit/miss counters, so repeated candidate evaluations across budgets
  and figures are free;
* :class:`BatchEvaluator` — the vectorized replication of the engine's
  damped fixed-point loop (cap resolution ↔ timing), numerically
  identical to the scalar path: every expression keeps the scalar
  code's evaluation order, per-socket reductions run in socket order,
  and per-element convergence is tracked with a done-mask so each
  (candidate, node) cell freezes at exactly the round the scalar loop
  would have broken.

Heterogeneous clusters are first-class: hardware constants are tabled
per node *class* and gathered per (candidate, rank) cell, frequency
ladders / ``pow`` tables are applied through per-class masks (a scalar
exponent per class keeps the exact scalar ``np.power`` kernel), and
placements are computed once per (class, candidate) pair — so a mixed
Haswell + Broadwell fleet stays bit-exact against the scalar engine.

The batch path is side-effect-free: it does not program RAPL caps,
accumulate energy counters, or touch power meters.  That is what makes
memoization sound — a cache hit answers "what would this run produce?"
without replaying hardware bookkeeping (the scalar path remains the way
to *execute* a job when those side effects matter).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.errors import SchedulingError
from repro.hw.counters import CACHE_LINE_BYTES, READ_FRACTION, EventCounters
from repro.hw.dvfs import FrequencyLadder
from repro.hw.rapl import MIN_DUTY_CYCLE, OperatingPoint
from repro.sim.affinity import make_placement, placement_for
from repro.sim.trace import NodeRunRecord, RunResult
from repro.units import check_non_negative
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.model import (
    ODD_CONCURRENCY_PENALTY,
    PHASE_OVERSUBSCRIPTION_PENALTY,
    REMOTE_EFFICIENCY,
    UNCORE_BW_FLOOR,
    _clip_total_threads,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us lazily)
    from repro.sim.engine import ExecutionConfig, ExecutionEngine

__all__ = ["RunCache", "BatchEvaluator", "config_cache_key"]

#: Fixed-point iteration control — mirrors repro.sim.engine exactly.
_MAX_ROUNDS = 12
_DAMPING = 0.5
_REL_TOL = 1e-6
_IDLE_ACTIVITY = 0.05


def config_cache_key(config: "ExecutionConfig") -> tuple:
    """A hashable identity for an :class:`ExecutionConfig`.

    ``phase_threads`` is a dict (unhashable); it enters the key as a
    sorted item tuple.  All other fields are already hashable.
    """
    return (
        config.n_nodes,
        config.n_threads,
        config.affinity,
        config.pkg_cap_w,
        config.dram_cap_w,
        config.gpu_cap_w,
        config.per_node_caps,
        config.node_ids,
        config.frequency_hz,
        config.iterations,
        tuple(sorted(config.phase_threads.items())),
        config.scaling,
    )


class RunCache:
    """Memoization table for simulated run results.

    Keys must capture everything a run's outcome depends on: the
    workload, the configuration, the engine's noise seed, the cluster
    specification, and the *current* per-node efficiency factors (which
    :meth:`SimulatedCluster.degrade_node` can change mid-life).  The
    engine builds that key via :meth:`ExecutionEngine.cache_key`.

    A cache hit skips the hardware side effects of a run (RAPL energy
    accumulation, meter records, cap programming) — by design: the
    cache answers repeated *evaluation* questions, where only the
    returned :class:`RunResult` matters.
    """

    def __init__(self, max_entries: int = 200_000):
        self._store: dict[Hashable, RunResult] = {}
        self._max_entries = max_entries
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        """Number of lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of lookups that required a simulation."""
        return self._misses

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Hashable) -> RunResult | None:
        """Look up a result, counting the hit or miss."""
        result = self._store.get(key)
        if result is None:
            self._misses += 1
        else:
            self._hits += 1
        return result

    def put(self, key: Hashable, result: RunResult) -> None:
        """Store a result (evicting everything if the table overflows)."""
        if len(self._store) >= self._max_entries:
            self._store.clear()
        self._store[key] = result

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self._hits = 0
        self._misses = 0

    def stats(self) -> dict[str, float]:
        """Counters plus the derived hit rate."""
        total = self._hits + self._misses
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._store),
            "hit_rate": self._hits / total if total else 0.0,
        }


class BatchEvaluator:
    """Scores many execution configurations against one engine at once.

    Results are exactly those :meth:`ExecutionEngine.run` would return
    (the equivalence is pinned by ``tests/sim/test_batch.py``), minus
    the hardware side effects — see the module docstring.
    """

    def __init__(self, engine: "ExecutionEngine"):
        self._engine = engine
        cluster = engine.cluster
        self._cluster = cluster
        specs = cluster.spec.node_specs
        # the distinct hardware classes, in first-slot order; per-slot
        # constants are gathered from these per-class tables at
        # evaluation time, so a mixed cluster runs the same array
        # program with per-cell coefficients
        class_list = list(dict.fromkeys(specs))
        self._class_list = class_list
        self._slot_class = np.array(
            [class_list.index(s) for s in specs], dtype=np.int64
        )
        self._S_max = max(s.n_sockets for s in class_list)
        self._class_S_int = [s.n_sockets for s in class_list]
        self._ladders = [
            FrequencyLadder.from_socket(s.socket) for s in class_list
        ]
        self._freqs_k = [
            np.asarray(lad.frequencies, dtype=np.float64)
            for lad in self._ladders
        ]

        def scalar_pow(f: float, f_nom: float, k: float) -> float:
            # the scalar np.power code path core_power uses on 0-d
            # input (the vectorized SIMD pow can differ from it by 1 ulp)
            return float(np.power(np.asarray(f, dtype=np.float64) / f_nom, k))

        def per_class(fn) -> np.ndarray:
            return np.array([fn(s) for s in class_list], dtype=np.float64)

        self._inv_k_list = [
            1.0 / s.socket.core.dyn_exponent for s in class_list
        ]
        # (f / f_nom) ** k per ladder frequency, per class
        self._pow_ladder_k = [
            np.array(
                [
                    scalar_pow(
                        f, s.socket.f_nominal, s.socket.core.dyn_exponent
                    )
                    for f in lad.frequencies
                ]
            )
            for s, lad in zip(class_list, self._ladders)
        ]
        self._c_relmin = per_class(
            lambda s: scalar_pow(
                s.socket.f_min, s.socket.f_nominal, s.socket.core.dyn_exponent
            )
        )
        self._c_f_min = per_class(lambda s: s.socket.f_min)
        self._c_f_max = per_class(lambda s: s.socket.f_max)
        self._c_f_nom = per_class(lambda s: s.socket.f_nominal)
        self._c_p_base_pkg = per_class(lambda s: s.socket.p_base_w)
        self._c_p_leak = per_class(lambda s: s.socket.core.p_leak_w)
        self._c_p_dyn = per_class(lambda s: s.socket.core.p_dyn_w)
        self._c_pkg_max = per_class(lambda s: s.n_sockets * s.socket.tdp_w)
        self._c_p_base_mem = per_class(lambda s: s.socket.memory.p_base_w)
        self._c_p_load_mem = per_class(lambda s: s.socket.memory.p_load_max_w)
        self._c_peak_bw = per_class(lambda s: s.socket.memory.peak_bandwidth)
        self._c_bw_floor = per_class(
            lambda s: s.socket.memory.bandwidth_at_level(0)
        )
        self._c_ipc = per_class(lambda s: s.socket.core.ipc_peak)
        self._c_dram_max = per_class(lambda s: s.p_mem_max_w)
        self._c_p_other = per_class(lambda s: s.p_other_w)
        self._c_S = per_class(lambda s: s.n_sockets)

        # GPU domain tables: one entry per class, python-float level
        # ladders computed with the exact scalar expressions of
        # GpuSpec.power_at / PowerModel.gpu_power / device_rate so the
        # batch feasibility tests and power sums stay bit-identical.
        self._class_has_gpu = [s.has_gpu for s in class_list]
        self._c_has_gpu = np.array(self._class_has_gpu, dtype=bool)
        self._c_gpu_max = per_class(
            lambda s: s.p_gpu_max_w if s.has_gpu else np.inf
        )
        self._c_gpu_pidle = per_class(lambda s: s.p_gpu_idle_w)
        self._gpu_clk_k: list[np.ndarray] = []
        self._gpu_full_pow_k: list[np.ndarray] = []
        self._gpu_dyn_k: list[np.ndarray] = []
        self._gpu_clk_scale_k: list[np.ndarray] = []
        self._gpu_idle_board_k: list[float] = []
        self._gpu_rate_nom_k: list[float] = []
        self._gpu_n_k: list[int] = []
        for s in class_list:
            if not s.has_gpu:
                self._gpu_clk_k.append(np.empty(0))
                self._gpu_full_pow_k.append(np.empty(0))
                self._gpu_dyn_k.append(np.empty(0))
                self._gpu_clk_scale_k.append(np.empty(0))
                self._gpu_idle_board_k.append(0.0)
                self._gpu_rate_nom_k.append(0.0)
                self._gpu_n_k.append(0)
                continue
            g = s.gpu
            clks = [float(c) for c in g.clock_ladder_hz]
            # p_dyn * (clk/nom)**exp — the scalar scale product
            dyn = [
                g.p_dyn_w * ((c / g.clk_nominal_hz) ** g.dyn_exponent)
                for c in clks
            ]
            # full-utilization board power * board count, the quantity
            # resolve_gpu compares against the cap (before efficiency)
            full = [s.n_gpus * (g.p_idle_w + d) for d in dyn]
            self._gpu_clk_k.append(np.asarray(clks))
            self._gpu_full_pow_k.append(np.asarray(full))
            self._gpu_dyn_k.append(np.asarray(dyn))
            self._gpu_clk_scale_k.append(
                np.asarray([c / g.clk_nominal_hz for c in clks])
            )
            self._gpu_idle_board_k.append(g.p_idle_w)
            self._gpu_rate_nom_k.append(s.n_gpus * g.instr_rate)
            self._gpu_n_k.append(s.n_gpus)

    # ------------------------------------------------------------------

    def run_many(
        self,
        app: WorkloadCharacteristics,
        configs: list["ExecutionConfig"],
    ) -> list[RunResult]:
        """Evaluate *app* under every config, consulting the engine cache.

        Returns one :class:`RunResult` per config, in input order.
        """
        if not configs:
            return []
        cache = self._engine.cache
        out: list[RunResult | None] = [None] * len(configs)
        todo: list[int] = []
        if cache is not None:
            keys = [self._engine.cache_key(app, c) for c in configs]
            for i, key in enumerate(keys):
                hit = cache.get(key)
                if hit is not None:
                    out[i] = hit
                else:
                    todo.append(i)
        else:
            todo = list(range(len(configs)))
        if todo:
            fresh = self._evaluate(app, [configs[i] for i in todo])
            for i, result in zip(todo, fresh):
                out[i] = result
                if cache is not None:
                    cache.put(keys[i], result)
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # the vectorized array program
    # ------------------------------------------------------------------

    def _evaluate(
        self,
        app: WorkloadCharacteristics,
        configs: list["ExecutionConfig"],
    ) -> list[RunResult]:
        cluster = self._cluster
        class_list = self._class_list
        slot_class = self._slot_class
        K = len(class_list)
        S = self._S_max
        C = len(configs)

        # -- validation + per-config derived facts (cheap Python) -------
        participants_ids: list[tuple[int, ...]] = []
        for cfg in configs:
            if cfg.n_nodes > cluster.n_nodes:
                raise SchedulingError(
                    f"{cfg.n_nodes} nodes requested, cluster has {cluster.n_nodes}"
                )
            if cfg.node_ids is not None:
                ids = tuple(cluster.node(i).node_id for i in cfg.node_ids)
            else:
                ids = tuple(range(cfg.n_nodes))
            min_cores = min(cluster.node(i).spec.n_cores for i in ids)
            if cfg.n_threads > min_cores:
                raise SchedulingError(
                    f"{cfg.n_threads} threads requested, node has "
                    f"{min_cores} cores"
                )
            for entry in (
                cfg.per_node_caps
                if cfg.per_node_caps is not None
                else [(cfg.pkg_cap_w, cfg.dram_cap_w, cfg.gpu_cap_w)]
            ):
                for cap in entry:
                    if cap is not None:
                        check_non_negative(cap, "cap")
            participants_ids.append(ids)

        NN = max(len(ids) for ids in participants_ids)
        mask = np.zeros((C, NN), dtype=bool)
        node_index = np.zeros((C, NN), dtype=np.int64)
        for c, ids in enumerate(participants_ids):
            mask[c, : len(ids)] = True
            node_index[c, : len(ids)] = ids
            # pad inactive lanes with the config's own first participant:
            # padded lanes are masked out of every result, but gathering
            # them from a class that has no placement for this config
            # would leave zero threads-per-socket and breed inf/NaN noise
            node_index[c, len(ids):] = ids[0]

        eff_all = np.array([n.efficiency for n in cluster.nodes])
        eff = eff_all[node_index]  # (C, NN)

        # per-cell hardware class + constants gathered from class tables
        cls = slot_class[node_index]  # (C, NN)
        cls_eq = [cls == k for k in range(K)]
        cfg_idx = np.arange(C)[:, None]
        f_min = self._c_f_min[cls]
        f_max = self._c_f_max[cls]
        f_nom = self._c_f_nom[cls]
        p_base_pkg = self._c_p_base_pkg[cls]
        p_leak = self._c_p_leak[cls]
        p_dyn = self._c_p_dyn[cls]
        p_base_mem = self._c_p_base_mem[cls]
        p_load_mem = self._c_p_load_mem[cls]
        peak_bw = self._c_peak_bw[cls]
        bw_floor = self._c_bw_floor[cls]
        relmin_k = self._c_relmin[cls]
        S_cell = self._c_S[cls]
        # socket-existence weights: needed only when classes disagree
        # on socket count (weight 1.0 everywhere otherwise)
        if len(set(self._class_S_int)) == 1:
            sock_w = None
        else:
            sock_w = (
                np.arange(S)[None, None, :] < S_cell[:, :, None]
            ).astype(np.float64)

        # caps -> effective domain limits, like RaplDomain.effective_cap_w
        pkg_cap = self._c_pkg_max[cls].copy()
        dram_cap = self._c_dram_max[cls].copy()
        gpu_cap = self._c_gpu_max[cls].copy()
        for c, cfg in enumerate(configs):
            for rank in range(len(participants_ids[c])):
                p, d = cfg.caps_for(rank)
                if p is not None:
                    pkg_cap[c, rank] = min(p, pkg_cap[c, rank])
                if d is not None:
                    dram_cap[c, rank] = min(d, dram_cap[c, rank])
                g = cfg.gpu_cap_for(rank)
                if g is not None:
                    gpu_cap[c, rank] = min(g, gpu_cap[c, rank])

        # -- GPU clock resolution (once per cell, outside the loop) ------
        # Mirrors RaplInterface.resolve_gpu: the clock is sized against
        # worst-case fully-busy draw, so it depends only on the cap.
        hasgpu = self._c_has_gpu[cls]  # (C, NN)
        offload = hasgpu & (app.gpu_fraction > 0)
        has_offload = bool(offload.any())
        gpu_level = np.zeros((C, NN), dtype=np.int64)
        gpu_clock = np.zeros((C, NN))
        gpu_violated = np.zeros((C, NN), dtype=bool)
        gpu_throt = np.zeros((C, NN), dtype=bool)
        gpu_rate = np.zeros((C, NN))
        if has_offload:
            for k in range(K):
                if not self._class_has_gpu[k] or not (cls_eq[k] & offload).any():
                    continue
                m = cls_eq[k] & offload
                full = self._gpu_full_pow_k[k]  # (L,)
                # feasible <=> full_pow * eff <= cap (the scalar
                # gpu_power(clk, 1.0) <= cap, multiplied out)
                feas = full[None, None, :] * eff[:, :, None] <= gpu_cap[:, :, None]
                cnt = feas.sum(axis=2)
                lvl = np.maximum(cnt - 1, 0)
                viol = cnt == 0
                clks = self._gpu_clk_k[k]
                clk = clks[lvl]
                thr = viol | (clk < clks[-1])
                rate = self._gpu_rate_nom_k[k] * self._gpu_clk_scale_k[k][lvl]
                gpu_level = np.where(m, lvl, gpu_level)
                gpu_clock = np.where(m, clk, gpu_clock)
                gpu_violated = np.where(m, viol, gpu_violated)
                gpu_throt = np.where(m, thr, gpu_throt)
                gpu_rate = np.where(m, rate, gpu_rate)

        # per-(class, config) placements: every node of one hardware
        # class shares a placement; a mixed run places each class on
        # its own NUMA shape
        placements_k: list[dict] = [{} for _ in range(K)]
        topo_k: dict = {}
        primary_k: list[int] = []
        for c, (cfg, ids) in enumerate(zip(configs, participants_ids)):
            primary_k.append(int(slot_class[ids[0]]))
            for i in ids:
                k = int(slot_class[i])
                if c in placements_k[k]:
                    continue
                topo = cluster.node(i).numa
                topo_k[k] = topo
                if cfg.affinity is None:
                    placement = placement_for(
                        topo, cfg.n_threads, app.shared_fraction,
                        app.is_memory_intensive,
                    )
                else:
                    placement = make_placement(
                        topo, cfg.n_threads, cfg.affinity, app.shared_fraction
                    )
                placements_k[k][c] = placement

        tps_full_k = np.zeros((K, C, S), dtype=np.int64)
        remote_k = np.zeros((K, C))
        for k in range(K):
            for c, placement in placements_k[k].items():
                tps = placement.threads_per_socket
                tps_full_k[k, c, : len(tps)] = tps
                remote_k[k, c] = placement.remote_fraction
        tps_full = tps_full_k[cls, cfg_idx]  # (C, NN, S)
        remote = remote_k[cls, cfg_idx]  # (C, NN)

        n_threads = np.array([cfg.n_threads for cfg in configs], dtype=np.int64)
        iterations = np.array(
            [cfg.iterations or app.iterations for cfg in configs], dtype=np.int64
        )
        work_fraction = np.array(
            [
                1.0 / cfg.n_nodes if cfg.scaling == "strong" else 1.0
                for cfg in configs
            ]
        )

        # frequency pins -> quantized demand, like resolve(), against
        # each participating node's own ladder
        f_demand = f_max.copy()
        for c, cfg in enumerate(configs):
            if cfg.frequency_hz is not None:
                for rank, i in enumerate(participants_ids[c]):
                    f_demand[c, rank] = self._ladders[
                        slot_class[i]
                    ].quantize_down(cfg.frequency_hz)

        # -- per-phase structures (phase count P is tiny) ----------------
        phases = app.effective_phases()
        P = len(phases)
        phase_names = [ph.name for ph in phases]
        # per-phase scalar characteristics, exactly as phase_view derives
        base_instr = np.array(
            [app.instructions_per_iter * ph.weight for ph in phases]
        )
        bpi = np.array(
            [
                ph.bytes_per_instruction
                if ph.bytes_per_instruction is not None
                else app.bytes_per_instruction
                for ph in phases
            ]
        )
        sync_cost = np.array(
            [
                (ph.sync_cost_s if ph.sync_cost_s is not None else app.sync_cost_s)
                * ph.weight
                for ph in phases
            ]
        )
        # phase thread histograms after overrides + max_useful clipping.
        # Per-socket shapes are per-class; the *totals* (and with them
        # oversubscription and the odd-count penalty) are class-agnostic
        # because every placement distributes the full thread count, so
        # they are taken from each config's primary (rank-0) class.
        tps_phase_k = np.zeros((K, C, P, S), dtype=np.int64)
        oversub = np.ones((C, P))
        n_phase = np.zeros((C, P), dtype=np.int64)
        for c, cfg in enumerate(configs):
            for k in range(K):
                placement = placements_k[k].get(c)
                if placement is None:
                    continue
                phase_tps = {
                    name: tuple(
                        int(x)
                        for x in make_placement(
                            topo_k[k], n, placement.kind, app.shared_fraction
                        ).threads_per_socket
                    )
                    for name, n in cfg.phase_threads.items()
                }
                primary = k == primary_k[c]
                for j, ph in enumerate(phases):
                    tps = np.asarray(
                        phase_tps.get(ph.name, placement.threads_per_socket),
                        dtype=np.int64,
                    )
                    if ph.max_useful_threads is not None:
                        excess = int(tps.sum()) - ph.max_useful_threads
                        if excess > 0 and primary:
                            oversub[c, j] = 1.0 + PHASE_OVERSUBSCRIPTION_PENALTY * (
                                excess / ph.max_useful_threads
                            )
                        tps = _clip_total_threads(tps, ph.max_useful_threads)
                    tps_phase_k[k, c, j, : len(tps)] = tps
                    if primary:
                        n_phase[c, j] = int(tps.sum())

        tps_phase = tps_phase_k[cls, cfg_idx]  # (C, NN, P, S)
        odd_phase = (n_phase % 2 == 1) & (n_phase > 1)
        extract = tps_phase * app.per_thread_bw_limit  # (C, NN, P, S)
        bw_penalty = 1.0 - remote * (1.0 - REMOTE_EFFICIENCY)  # (C, NN)
        instr_phase = base_instr[None, :] * work_fraction[:, None]  # (C, P)
        serial_instr = instr_phase * app.serial_fraction
        par_instr = instr_phase - serial_instr
        dram_bytes_phase = instr_phase * bpi[None, :]
        rate_coeff = app.ipc_fraction * self._c_ipc[cls]  # (C, NN)
        t_sync_phase = sync_cost[None, :] * np.maximum(n_phase - 1, 0)

        # scalar path accumulates in phase order starting from 0.0;
        # sequential addition keeps the identical FP ordering
        instr_total = np.zeros(C)
        dram_total = np.zeros(C)
        for j in range(P):
            instr_total = instr_total + instr_phase[:, j]
            dram_total = dram_total + dram_bytes_phase[:, j]

        def timing(f_eff: np.ndarray, bw_limit: np.ndarray):
            """Vectorized GroundTruthModel.iteration_time over (C, NN).

            ``f_eff`` is the duty-scaled effective frequency and
            ``bw_limit`` the per-socket RAPL bandwidth ceiling (uniform
            across sockets, as resolve() grants).  Returns the aggregate
            t_iter, activity, per-socket demand, and per-phase times.
            """
            tot_t = np.zeros((C, NN))
            tot_dev = np.zeros((C, NN))
            busy_weighted = np.zeros((C, NN))
            demand_acc = np.zeros((C, NN, S))
            phase_t = np.empty((C, NN, P))
            rate1 = rate_coeff * f_eff  # (C, NN)
            uncore = np.minimum(
                1.0,
                UNCORE_BW_FLOOR + (1.0 - UNCORE_BW_FLOOR) * f_eff / f_nom,
            )
            peak_u = peak_bw * uncore  # (C, NN)
            for j in range(P):
                t_serial = serial_instr[:, j, None] / rate1
                if has_offload:
                    # dev_instr = par_instr * gpu_fraction where the
                    # device runs; (par - 0.0) on host-only cells keeps
                    # their compute time bit-identical
                    dev = np.where(
                        gpu_rate > 0,
                        par_instr[:, j, None] * app.gpu_fraction,
                        0.0,
                    )
                    t_comp = (par_instr[:, j, None] - dev) / (
                        n_phase[:, j, None] * rate1
                    )
                    with np.errstate(divide="ignore", invalid="ignore"):
                        t_dev = np.where(dev > 0, dev / gpu_rate, 0.0)
                else:
                    t_comp = par_instr[:, j, None] / (n_phase[:, j, None] * rate1)
                    t_dev = None
                bw = (
                    np.minimum(
                        np.minimum(bw_limit[:, :, None], extract[:, :, j, :]),
                        peak_u[:, :, None],
                    )
                    * bw_penalty[:, :, None]
                )  # (C, NN, S)
                total_bw = bw.sum(axis=2)
                with np.errstate(divide="ignore", invalid="ignore"):
                    t_mem = np.where(
                        dram_bytes_phase[:, j, None] > 0,
                        dram_bytes_phase[:, j, None] / total_bw,
                        0.0,
                    )
                t_par = np.maximum(t_comp, t_mem)
                if t_dev is not None:
                    t_par = np.maximum(t_par, t_dev)
                t_iter = t_serial + t_par + t_sync_phase[:, j, None]
                t_iter = np.where(
                    odd_phase[:, j, None],
                    t_iter * (1.0 + ODD_CONCURRENCY_PENALTY),
                    t_iter,
                )
                busy = t_serial + t_comp + 0.5 * t_sync_phase[:, j, None]
                with np.errstate(divide="ignore", invalid="ignore"):
                    act = np.clip(
                        np.where(t_iter > 0, busy / t_iter, 1.0), 0.05, 1.0
                    )
                    cond = (
                        (dram_bytes_phase[:, j, None, None] > 0)
                        & (t_iter[:, :, None] > 0)
                        & (total_bw[:, :, None] > 0)
                    )
                    dem = np.where(
                        cond,
                        (bw / total_bw[:, :, None])
                        * dram_bytes_phase[:, j, None, None]
                        / t_iter[:, :, None],
                        0.0,
                    )
                t_scaled = t_iter * oversub[:, j, None]
                phase_t[:, :, j] = t_scaled
                tot_t = tot_t + t_scaled
                if t_dev is not None:
                    # the scalar totals["dev"] accumulates the raw
                    # per-phase device time (no oversubscription scale)
                    tot_dev = tot_dev + t_dev
                busy_weighted = busy_weighted + act * t_scaled
                demand_acc = demand_acc + dem * t_scaled[:, :, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                act_out = np.where(tot_t > 0, busy_weighted / tot_t, 1.0)
                dem_out = np.where(
                    tot_t[:, :, None] > 0,
                    demand_acc / tot_t[:, :, None],
                    demand_acc,
                )
            return tot_t, act_out, dem_out, phase_t, tot_dev

        def resolve(act: np.ndarray, dem: np.ndarray):
            """Vectorized RaplInterface.resolve over (C, NN).

            Mirrors the scalar control flow branch by branch: DRAM cap
            → bandwidth ceiling (with the level-0 floor), PKG cap →
            continuous frequency (with the duty-cycle fallback below
            f_min), ladder quantization, and the per-socket power sums
            in socket order.
            """
            # --- DRAM ---------------------------------------------------
            per_cap = dram_cap / S_cell  # (C, NN)
            budget = per_cap / eff - p_base_mem
            mem_violated = budget < 0
            util = np.minimum(np.maximum(budget, 0.0) / p_load_mem, 1.0)
            limit = np.where(mem_violated, bw_floor, util * peak_bw)
            delivered = np.minimum(dem, limit[:, :, None])
            mem_throttled = mem_violated | (
                dem > (limit * (1 + 1e-9))[:, :, None]
            ).any(axis=2)
            dram_w = np.zeros((C, NN))
            for s in range(S):
                term = (
                    p_base_mem
                    + p_load_mem
                    * np.minimum(delivered[:, :, s] / peak_bw, 1.0)
                ) * eff
                if sock_w is not None:
                    term = term * sock_w[:, :, s]
                dram_w = dram_w + term

            # --- PKG ----------------------------------------------------
            # continuous inversion, as max_freq_under_pkg_cap computes it
            base = S_cell * p_base_pkg
            static = (base + n_threads[:, None] * p_leak) * eff
            dyn_budget = pkg_cap - static
            act_mean = act  # np.mean of a scalar is the scalar
            denom = eff * n_threads[:, None] * p_dyn * act_mean
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.maximum(dyn_budget, 0.0) / denom
                if K == 1:
                    rel = np.power(ratio, self._inv_k_list[0])
                else:
                    # scalar exponent per class keeps the same pow kernel
                    # the scalar path uses (vector exponents can differ
                    # in the last ulp)
                    rel = np.empty((C, NN))
                    for k in range(K):
                        rel = np.where(
                            cls_eq[k],
                            np.power(ratio, self._inv_k_list[k]),
                            rel,
                        )
            f_unc = rel * f_nom
            fallback = (dyn_budget < 0) | (f_unc < f_min)
            f_cont = np.where(fallback, f_min, np.minimum(f_unc, f_max))
            # duty-cycle fallback uses the per-socket static/dynamic sums
            core0 = p_leak  # core_power(f=0): dynamic term vanishes
            core_fmin = p_leak + p_dyn * relmin_k * act_mean
            static_fb = np.zeros((C, NN))
            pkg_fmin = np.zeros((C, NN))
            for s in range(S):
                tps_s = tps_full[:, :, s]
                t_static = (p_base_pkg + tps_s * core0) * eff
                t_fmin = (p_base_pkg + tps_s * core_fmin) * eff
                if sock_w is not None:
                    t_static = t_static * sock_w[:, :, s]
                    t_fmin = t_fmin * sock_w[:, :, s]
                static_fb = static_fb + t_static
                pkg_fmin = pkg_fmin + t_fmin
            dyn_fmin = pkg_fmin - static_fb
            with np.errstate(divide="ignore", invalid="ignore"):
                duty_fb = np.where(
                    dyn_fmin > 0, (pkg_cap - static_fb) / dyn_fmin, 1.0
                )
            duty_fb = np.clip(duty_fb, MIN_DUTY_CYCLE, 1.0)
            duty = np.where(fallback, duty_fb, 1.0)
            cpu_violated = fallback & (
                pkg_cap < static_fb + MIN_DUTY_CYCLE * np.maximum(dyn_fmin, 0.0)
            )
            # quantize_down: largest ladder frequency <= f + 1e-6,
            # against each cell's own class ladder
            if K == 1:
                freqs = self._freqs_k[0]
                idx = np.searchsorted(freqs, f_cont + 1e-6, side="right")
                f_allowed = freqs[np.maximum(idx - 1, 0)]
            else:
                f_allowed = np.empty((C, NN))
                for k in range(K):
                    freqs = self._freqs_k[k]
                    idx = np.searchsorted(freqs, f_cont + 1e-6, side="right")
                    f_allowed = np.where(
                        cls_eq[k], freqs[np.maximum(idx - 1, 0)], f_allowed
                    )
            cpu_throttled = (
                (duty < 1.0) | cpu_violated | (f_allowed < f_demand)
            )
            f = np.minimum(f_demand, f_allowed)
            # f is always a rung of the cell's own ladder: look its
            # (f/f_nom)^k up in the per-class scalar-path table instead
            # of re-running vectorized pow
            if K == 1:
                f_idx = np.searchsorted(self._freqs_k[0], f)
                pow_f = self._pow_ladder_k[0][f_idx]
            else:
                pow_f = np.empty((C, NN))
                for k in range(K):
                    f_idx = np.clip(
                        np.searchsorted(self._freqs_k[k], f),
                        0,
                        len(self._freqs_k[k]) - 1,
                    )
                    pow_f = np.where(
                        cls_eq[k], self._pow_ladder_k[k][f_idx], pow_f
                    )
            core_f = p_leak + p_dyn * pow_f * act_mean
            pkg_w = np.zeros((C, NN))
            for s in range(S):
                tps_s = tps_full[:, :, s]
                pkg0 = (p_base_pkg + tps_s * core0) * eff
                pkgf = (p_base_pkg + tps_s * core_f) * eff
                term = pkg0 + (pkgf - pkg0) * duty
                if sock_w is not None:
                    term = term * sock_w[:, :, s]
                pkg_w = pkg_w + term
            return {
                "f": f,
                "f_eff": f * duty,
                "limit": limit,
                "pkg_w": pkg_w,
                "dram_w": dram_w,
                "duty": duty,
                "cpu_throttled": cpu_throttled,
                "mem_throttled": mem_throttled,
                "cpu_violated": cpu_violated,
                "mem_violated": mem_violated,
            }

        # -- damped fixed point with per-element convergence freezing ----
        state_act = np.full((C, NN), 0.9)
        state_dem = np.where(tps_full > 0, peak_bw[:, :, None], 0.0)
        done = ~mask  # non-participating slots never iterate
        prev_t = np.zeros((C, NN))
        have_prev = False
        fz_t = np.zeros((C, NN))
        fz_act = np.zeros((C, NN))
        fz_dem = np.zeros((C, NN, S))
        fz_phase = np.zeros((C, NN, P))
        fz_dev = np.zeros((C, NN))
        for _ in range(_MAX_ROUNDS):
            op = resolve(state_act, state_dem)
            t_iter, act_t, dem_t, phase_t, dev_t = timing(op["f_eff"], op["limit"])
            upd = ~done
            fz_t = np.where(upd, t_iter, fz_t)
            fz_act = np.where(upd, act_t, fz_act)
            fz_dem = np.where(upd[:, :, None], dem_t, fz_dem)
            fz_phase = np.where(upd[:, :, None], phase_t, fz_phase)
            fz_dev = np.where(upd, dev_t, fz_dev)
            state_act = np.where(
                upd, _DAMPING * state_act + (1 - _DAMPING) * act_t, state_act
            )
            state_dem = np.where(
                upd[:, :, None],
                _DAMPING * state_dem + (1 - _DAMPING) * dem_t,
                state_dem,
            )
            if have_prev:
                done = done | (
                    upd & (np.abs(t_iter - prev_t) <= _REL_TOL * prev_t)
                )
            prev_t = np.where(upd, t_iter, prev_t)
            have_prev = True
            if done.all():
                break

        # final consistency pass with the converged activity/demand
        op = resolve(fz_act, fz_dem)

        # -- step time, energy, events (same aggregation order) ----------
        comm_cache: dict[tuple[int, str], float] = {}
        comm = np.empty(C)
        for c, cfg in enumerate(configs):
            ckey = (cfg.n_nodes, cfg.scaling)
            if ckey not in comm_cache:
                comm_cache[ckey] = self._engine.comm_model.iteration_time(
                    app, cfg.n_nodes, scaling=cfg.scaling
                )
            comm[c] = comm_cache[ckey]
        t_step = np.where(mask, fz_t, -np.inf).max(axis=1) + comm  # (C,)
        total_time = iterations * t_step

        core_idle = p_leak + p_dyn * relmin_k * _IDLE_ACTIVITY  # (C, NN)
        idle_pkg = np.zeros((C, NN))
        for s in range(S):
            term = (p_base_pkg + tps_full[:, :, s] * core_idle) * eff
            if sock_w is not None:
                term = term * sock_w[:, :, s]
            idle_pkg = idle_pkg + term
        idle_dram = S_cell * ((p_base_mem + p_load_mem * 0.0) * eff)
        with np.errstate(divide="ignore", invalid="ignore"):
            busy_frac = np.where(
                t_step[:, None] > 0, fz_t / t_step[:, None], 1.0
            )
        avg_pkg = op["pkg_w"] * busy_frac + idle_pkg * (1.0 - busy_frac)
        avg_dram = op["dram_w"] * busy_frac + idle_dram * (1.0 - busy_frac)
        p_other = self._c_p_other[cls]  # (C, NN)

        # -- device power, accounted after timing like the scalar path --
        any_gpu = bool(hasgpu.any())
        gpu_w_op = np.zeros((C, NN))
        dev_busy = np.zeros((C, NN))
        avg_gpu = np.zeros((C, NN))
        if any_gpu:
            with np.errstate(divide="ignore", invalid="ignore"):
                dev_busy = np.where(
                    fz_t > 0, np.minimum(fz_dev / fz_t, 1.0), 0.0
                )
            for k in range(K):
                if not self._class_has_gpu[k]:
                    continue
                # busy boards: idle + dyn(level) * busy-fraction, per
                # board, times board count and node efficiency — the
                # exact gpu_power(clock, util) product chain
                dyn = self._gpu_dyn_k[k][gpu_level]
                per_board = self._gpu_idle_board_k[k] + dyn * dev_busy
                w_off = (self._gpu_n_k[k] * per_board) * eff
                w_idle = self._c_gpu_pidle[k] * eff
                w = np.where(offload, w_off, w_idle)
                gpu_w_op = np.where(cls_eq[k], w, gpu_w_op)
            idle_gpu = self._c_gpu_pidle[cls] * eff
            avg_gpu = np.where(
                hasgpu,
                gpu_w_op * busy_frac + idle_gpu * (1.0 - busy_frac),
                0.0,
            )
            node_energy = np.where(
                hasgpu,
                (avg_pkg + avg_dram + avg_gpu + p_other) * total_time[:, None],
                (avg_pkg + avg_dram + p_other) * total_time[:, None],
            )
        else:
            node_energy = (avg_pkg + avg_dram + p_other) * total_time[:, None]
        # sequential rank-order sums replicate the scalar accumulation
        energy = np.zeros(C)
        peak = np.zeros(C)
        for r in range(NN):
            energy = energy + np.where(mask[:, r], node_energy[:, r], 0.0)
            rank_peak = op["pkg_w"][:, r] + op["dram_w"][:, r]
            if any_gpu:
                rank_peak = np.where(
                    hasgpu[:, r], rank_peak + gpu_w_op[:, r], rank_peak
                )
            peak = peak + np.where(mask[:, r], rank_peak, 0.0)
        # p_other enters peak exactly as the scalar engine adds it:
        # count * value when all participants share one hardware class,
        # otherwise one per-rank addition at a time
        one_shot = np.zeros(C)
        rank_other = np.zeros((C, NN))
        is_multi = np.zeros(C, dtype=bool)
        for c, ids in enumerate(participants_ids):
            ks = {int(slot_class[i]) for i in ids}
            if len(ks) == 1:
                one_shot[c] = len(ids) * self._c_p_other[ks.pop()]
            else:
                is_multi[c] = True
                for r, i in enumerate(ids):
                    rank_other[c, r] = self._c_p_other[slot_class[i]]
        peak = peak + one_shot
        if is_multi.any():
            for r in range(NN):
                peak = peak + np.where(
                    is_multi & mask[:, r], rank_other[:, r], 0.0
                )
        with np.errstate(divide="ignore", invalid="ignore"):
            avg_power = np.where(total_time > 0, energy / total_time, 0.0)

        # event-counter synthesis (vectorized values, per-config noise)
        instr_run = instr_total * iterations  # (C,)
        bytes_run = dram_total * iterations
        duration = fz_t * iterations[:, None]  # (C, NN)
        reads = bytes_run * READ_FRACTION
        writes = bytes_run - reads
        misses = bytes_run / CACHE_LINE_BYTES
        values = np.empty((C, NN, 7))
        values[:, :, 0] = (app.icache_mpki * instr_run / 1e3)[:, None]
        values[:, :, 1] = reads[:, None]
        values[:, :, 2] = writes[:, None]
        values[:, :, 3] = misses[:, None] * (1.0 - remote)
        values[:, :, 4] = misses[:, None] * remote
        values[:, :, 5] = n_threads[:, None] * op["f_eff"] * duration
        values[:, :, 6] = instr_run[:, None]
        # noise draws: one generator per (n_nodes, n_threads), ranks
        # consuming sequential normal(7) draws — the scalar stream
        name_hash = sum(
            ord(ch) * (i + 1) for i, ch in enumerate(app.name)
        ) % (2**31)
        seed = self._engine.seed
        draw_cache: dict[tuple[int, int], list[np.ndarray]] = {}
        noise = np.zeros((C, NN, 7))
        for c, cfg in enumerate(configs):
            dkey = (cfg.n_nodes, cfg.n_threads)
            if dkey not in draw_cache:
                rng = np.random.default_rng(
                    [seed, name_hash, cfg.n_nodes, cfg.n_threads]
                )
                draw_cache[dkey] = [
                    rng.normal(0.0, 0.01, size=7) for _ in range(cfg.n_nodes)
                ]
            for rank in range(len(participants_ids[c])):
                noise[c, rank] = draw_cache[dkey][rank]
        values = values * np.exp(noise)

        # -- assemble RunResult objects ----------------------------------
        results: list[RunResult] = []
        for c, cfg in enumerate(configs):
            records = []
            for rank, node_id in enumerate(participants_ids[c]):
                n_sock = self._class_S_int[int(cls[c, rank])]
                point = OperatingPoint(
                    frequency_hz=float(op["f"][c, rank]),
                    bandwidth_per_socket=tuple(
                        float(op["limit"][c, rank]) for _ in range(n_sock)
                    ),
                    pkg_power_w=float(op["pkg_w"][c, rank]),
                    dram_power_w=float(op["dram_w"][c, rank]),
                    cpu_throttled=bool(op["cpu_throttled"][c, rank]),
                    mem_throttled=bool(op["mem_throttled"][c, rank]),
                    cpu_cap_violated=bool(op["cpu_violated"][c, rank]),
                    mem_cap_violated=bool(op["mem_violated"][c, rank]),
                    duty_cycle=float(op["duty"][c, rank]),
                    gpu_clock_hz=float(gpu_clock[c, rank]),
                    gpu_power_w=float(gpu_w_op[c, rank]),
                    gpu_throttled=bool(gpu_throt[c, rank]),
                    gpu_cap_violated=bool(gpu_violated[c, rank]),
                )
                events = EventCounters(
                    event0=float(values[c, rank, 0]),
                    event1=float(values[c, rank, 1]),
                    event2=float(values[c, rank, 2]),
                    event3=float(values[c, rank, 3]),
                    event4=float(values[c, rank, 4]),
                    event5=float(values[c, rank, 5]),
                    event6=float(values[c, rank, 6]),
                    event7=0.0,
                    duration_s=float(duration[c, rank]),
                )
                records.append(
                    NodeRunRecord(
                        node_id=node_id,
                        operating_point=point,
                        t_iter_s=float(fz_t[c, rank]),
                        activity=float(fz_act[c, rank]),
                        busy_fraction=float(busy_frac[c, rank]),
                        avg_pkg_w=float(avg_pkg[c, rank]),
                        avg_dram_w=float(avg_dram[c, rank]),
                        events=events,
                        phase_times=tuple(
                            (phase_names[j], float(fz_phase[c, rank, j]))
                            for j in range(P)
                        ),
                        avg_gpu_w=float(avg_gpu[c, rank]),
                        gpu_busy_fraction=float(dev_busy[c, rank]),
                    )
                )
            results.append(
                RunResult(
                    app_name=app.name,
                    n_nodes=cfg.n_nodes,
                    n_threads_per_node=cfg.n_threads,
                    affinity=placements_k[primary_k[c]][c].kind.value,
                    iterations=int(iterations[c]),
                    t_step_s=float(t_step[c]),
                    comm_s=float(comm[c]),
                    total_time_s=float(total_time[c]),
                    energy_j=float(energy[c]),
                    avg_power_w=float(avg_power[c]),
                    peak_power_w=float(peak[c]),
                    nodes=tuple(records),
                )
            )
        return results
