"""Table-II application definitions.

One :class:`~repro.workloads.characteristics.WorkloadCharacteristics`
per benchmark configuration the paper evaluates (Table II), plus the
extra codes its motivating figures use (NPB EP and SP, STREAM).

Calibration notes
-----------------
Parameters are chosen so that, on the simulated Haswell node, each app
*emerges* with the scalability class the paper measured (Fig. 6) — we
set physical knobs (memory intensity, synchronization cost, serial
fraction), not the class itself:

* **linear** (CoMD, miniMD, AMG): low-to-moderate bytes/instruction
  keeps the roofline compute-bound through 24 threads;
* **logarithmic** (BT-MZ, LU-MZ, CloverLeaf ×2): bytes/instruction high
  enough that node bandwidth saturates at an interior thread count —
  the saturation knee is the inflection point NP;
* **parabolic** (SP-MZ, miniAero, TeaLeaf): an appreciable per-thread
  synchronization/zone-exchange cost makes performance peak and then
  fall.

BT-MZ carries an ``exch_qbc`` phase with limited useful concurrency,
reproducing the stagnation the paper traces to that function (§V-B.1).

Instruction volumes are scaled for iteration times of roughly 0.1–1 s
on a full node, matching the order of magnitude of the real codes'
per-step times on the testbed.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.characteristics import (
    CommPattern,
    Phase,
    WorkloadCharacteristics,
)

__all__ = ["TABLE2_APPS", "EXTRA_APPS", "GPU_APPS", "all_apps", "get_app"]


def _app(**kw) -> WorkloadCharacteristics:
    return WorkloadCharacteristics(**kw)


#: The ten benchmark configurations of Table II, in the paper's order.
TABLE2_APPS: tuple[WorkloadCharacteristics, ...] = (
    _app(
        name="bt-mz.C",
        description="Block Tri-diagonal solver (multi-zone)",
        problem_size="C",
        instructions_per_iter=1.1e11,
        bytes_per_instruction=1.7,
        serial_fraction=0.004,
        sync_cost_s=4.0e-4,
        ipc_fraction=0.48,
        shared_fraction=0.25,
        icache_mpki=5.0,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=2.4e7,
        iterations=200,
        phases=(
            Phase(name="solve", weight=0.85),
            Phase(
                name="exch_qbc",
                weight=0.15,
                bytes_per_instruction=2.4,
                max_useful_threads=12,
            ),
        ),
    ),
    _app(
        name="lu-mz.C",
        description="Lower-Upper Gauss-Seidel solver (multi-zone)",
        problem_size="C",
        instructions_per_iter=9.0e10,
        bytes_per_instruction=1.85,
        serial_fraction=0.006,
        sync_cost_s=5.0e-4,
        ipc_fraction=0.45,
        shared_fraction=0.3,
        icache_mpki=4.0,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=2.0e7,
        iterations=250,
    ),
    _app(
        name="sp-mz.C",
        description="Scalar Penta-diagonal solver (multi-zone)",
        problem_size="C",
        instructions_per_iter=9.5e10,
        bytes_per_instruction=2.6,
        serial_fraction=0.004,
        sync_cost_s=2.8e-2,
        ipc_fraction=0.42,
        shared_fraction=0.35,
        icache_mpki=4.5,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=2.6e7,
        iterations=400,
    ),
    _app(
        name="comd",
        description="classical molecular dynamics",
        problem_size="-n 240 240 240",
        instructions_per_iter=6.5e10,
        bytes_per_instruction=0.09,
        serial_fraction=0.002,
        sync_cost_s=1.5e-4,
        ipc_fraction=0.6,
        shared_fraction=0.15,
        icache_mpki=0.8,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=8.0e6,
        iterations=100,
    ),
    _app(
        name="amg",
        description="algebraic multigrid solver",
        problem_size="-n 300 300 300",
        instructions_per_iter=8.0e10,
        bytes_per_instruction=0.42,
        serial_fraction=0.005,
        sync_cost_s=2.5e-4,
        ipc_fraction=0.5,
        shared_fraction=0.3,
        icache_mpki=2.0,
        comm_pattern=CommPattern.ALLREDUCE,
        comm_bytes_per_iter=6.0e6,
        iterations=150,
    ),
    _app(
        name="miniaero",
        description="mini-app solving the compressible Navier-Stokes equations",
        problem_size="default",
        instructions_per_iter=7.0e10,
        bytes_per_instruction=0.55,
        serial_fraction=0.006,
        sync_cost_s=6.0e-2,
        ipc_fraction=0.5,
        shared_fraction=0.3,
        icache_mpki=2.5,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=1.5e7,
        iterations=300,
    ),
    _app(
        name="minimd",
        description="molecular-dynamics force computations",
        problem_size="default",
        instructions_per_iter=5.5e10,
        bytes_per_instruction=0.06,
        serial_fraction=0.001,
        sync_cost_s=1.0e-4,
        ipc_fraction=0.62,
        shared_fraction=0.1,
        icache_mpki=0.5,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=6.0e6,
        iterations=100,
    ),
    _app(
        name="tealeaf",
        description="linear heat-conduction equation solver",
        problem_size="Tea10.in",
        instructions_per_iter=8.5e10,
        bytes_per_instruction=2.3,
        serial_fraction=0.005,
        sync_cost_s=2.2e-2,
        ipc_fraction=0.38,
        shared_fraction=0.4,
        icache_mpki=1.5,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=2.0e7,
        iterations=300,
    ),
    _app(
        name="cloverleaf.128",
        description="compressible Euler equations on a Cartesian grid",
        problem_size="clover128_short.in",
        instructions_per_iter=1.0e11,
        bytes_per_instruction=1.74,
        serial_fraction=0.005,
        sync_cost_s=4.5e-4,
        ipc_fraction=0.44,
        shared_fraction=0.3,
        icache_mpki=1.8,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=2.2e7,
        iterations=200,
    ),
    _app(
        name="cloverleaf.16",
        description="compressible Euler equations, small input",
        problem_size="clover16.in",
        instructions_per_iter=2.2e10,
        bytes_per_instruction=1.9,
        serial_fraction=0.012,
        sync_cost_s=3.5e-4,
        ipc_fraction=0.44,
        shared_fraction=0.3,
        icache_mpki=1.8,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=6.0e6,
        iterations=150,
    ),
)

#: Codes outside Table II used by the paper's motivating figures:
#: EP and STREAM anchor the linear/memory extremes of Fig. 3, and
#: single-zone NPB-SP is the subject of Figs. 1 and 3c.
EXTRA_APPS: tuple[WorkloadCharacteristics, ...] = (
    _app(
        name="ep.C",
        description="NPB Embarrassingly Parallel",
        problem_size="C",
        instructions_per_iter=5.0e10,
        bytes_per_instruction=0.004,
        serial_fraction=0.0005,
        sync_cost_s=2.0e-5,
        ipc_fraction=0.65,
        shared_fraction=0.02,
        icache_mpki=0.1,
        comm_pattern=CommPattern.NONE,
        comm_bytes_per_iter=0.0,
        iterations=50,
    ),
    _app(
        name="stream",
        description="UVA STREAM memory-bandwidth kernels",
        problem_size="N=2^27",
        instructions_per_iter=8.0e9,
        bytes_per_instruction=7.5,
        serial_fraction=0.0,
        sync_cost_s=1.0e-4,
        ipc_fraction=0.7,
        shared_fraction=0.05,
        icache_mpki=0.05,
        comm_pattern=CommPattern.NONE,
        comm_bytes_per_iter=0.0,
        iterations=50,
    ),
    _app(
        name="sp.C",
        description="NPB Scalar Penta-diagonal solver (single zone)",
        problem_size="C",
        instructions_per_iter=9.0e10,
        bytes_per_instruction=2.6,
        serial_fraction=0.004,
        sync_cost_s=2.6e-2,
        ipc_fraction=0.42,
        shared_fraction=0.35,
        icache_mpki=3.0,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=2.5e7,
        iterations=400,
    ),
)

#: Accelerator-offload ports.  Each record describes one code whose
#: main kernels run on the device when the node carries one
#: (``gpu_fraction`` of the parallel instructions) and fall back to the
#: host otherwise — the same record schedules correctly on both node
#: classes.  Host-side parameters are kept compute-bound so the CPU
#: fallback emerges linear; on a GPU node the device dominates the
#: iteration and the profiler sees a large device-busy fraction.
GPU_APPS: tuple[WorkloadCharacteristics, ...] = (
    _app(
        name="lulesh-gpu",
        description="shock hydrodynamics proxy, CUDA port",
        problem_size="-s 90",
        instructions_per_iter=1.8e11,
        bytes_per_instruction=0.10,
        serial_fraction=0.003,
        sync_cost_s=1.5e-4,
        ipc_fraction=0.55,
        shared_fraction=0.15,
        icache_mpki=1.0,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=1.0e7,
        gpu_fraction=0.88,
        iterations=150,
    ),
    _app(
        name="minife-gpu",
        description="implicit finite-element solver, device CG kernels",
        problem_size="-nx 200",
        instructions_per_iter=1.1e11,
        bytes_per_instruction=0.35,
        serial_fraction=0.004,
        sync_cost_s=2.5e-4,
        ipc_fraction=0.5,
        shared_fraction=0.25,
        icache_mpki=1.2,
        comm_pattern=CommPattern.ALLREDUCE,
        comm_bytes_per_iter=4.0e6,
        gpu_fraction=0.72,
        iterations=200,
    ),
    _app(
        name="hpgmg-gpu",
        description="geometric multigrid with offloaded smoothers",
        problem_size="7 8",
        instructions_per_iter=1.4e11,
        bytes_per_instruction=0.25,
        serial_fraction=0.005,
        sync_cost_s=3.0e-4,
        ipc_fraction=0.52,
        shared_fraction=0.2,
        icache_mpki=1.5,
        comm_pattern=CommPattern.HALO,
        comm_bytes_per_iter=8.0e6,
        gpu_fraction=0.8,
        iterations=120,
    ),
)

_BY_NAME = {a.name: a for a in TABLE2_APPS + EXTRA_APPS + GPU_APPS}


def all_apps() -> tuple[WorkloadCharacteristics, ...]:
    """Every predefined application (Table II first, extras after).

    GPU-offload ports are *not* included: they are host-fallback
    duplicates of covered behaviour on CPU testbeds and live in
    :data:`GPU_APPS` for the accelerator suites.
    """
    return TABLE2_APPS + EXTRA_APPS


def get_app(name: str) -> WorkloadCharacteristics:
    """Look up a predefined application by name.

    Raises :class:`~repro.errors.WorkloadError` with the list of known
    names when the lookup fails.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise WorkloadError(f"unknown app {name!r}; known: {known}") from None
