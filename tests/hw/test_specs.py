"""Unit tests for the hardware specifications."""

import pytest

from repro.errors import SpecError
from repro.hw.specs import (
    ClusterSpec,
    CoreSpec,
    MemorySpec,
    NodeGroup,
    NodeSpec,
    SocketSpec,
    broadwell_node,
    haswell_node,
    haswell_testbed,
    mixed_testbed,
)
from repro.units import ghz


class TestCoreSpec:
    def test_defaults_valid(self):
        core = CoreSpec()
        assert core.ipc_peak == 4.0
        assert core.p_dyn_w > 0

    def test_rejects_nonpositive_ipc(self):
        with pytest.raises(SpecError):
            CoreSpec(ipc_peak=0.0)

    def test_rejects_negative_power(self):
        with pytest.raises(SpecError):
            CoreSpec(p_leak_w=-1.0)

    def test_rejects_implausible_exponent(self):
        with pytest.raises(SpecError):
            CoreSpec(dyn_exponent=5.0)
        with pytest.raises(SpecError):
            CoreSpec(dyn_exponent=0.5)


class TestMemorySpec:
    def test_p_max_is_base_plus_load(self):
        mem = MemorySpec(p_base_w=4.0, p_load_max_w=14.0)
        assert mem.p_max_w == pytest.approx(18.0)

    def test_bandwidth_levels_monotone(self):
        mem = MemorySpec()
        bws = [mem.bandwidth_at_level(i) for i in range(mem.n_power_levels)]
        assert bws == sorted(bws)
        assert bws[-1] == pytest.approx(mem.peak_bandwidth)

    def test_lowest_level_retains_floor(self):
        mem = MemorySpec(n_power_levels=8)
        assert mem.bandwidth_at_level(0) == pytest.approx(mem.peak_bandwidth / 8)

    def test_rejects_bad_level(self):
        mem = MemorySpec()
        with pytest.raises(SpecError):
            mem.bandwidth_at_level(-1)
        with pytest.raises(SpecError):
            mem.bandwidth_at_level(mem.n_power_levels)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SpecError):
            MemorySpec(capacity_bytes=0)


class TestSocketSpec:
    def test_haswell_defaults(self):
        s = SocketSpec()
        assert s.n_cores == 12
        assert s.f_nominal == pytest.approx(ghz(2.3))
        assert s.f_min == pytest.approx(ghz(1.2))
        assert s.f_max == pytest.approx(ghz(3.1))
        assert s.tdp_w == pytest.approx(120.0)

    def test_ladder_spans_range(self):
        s = SocketSpec()
        assert s.freq_ladder[0] == pytest.approx(s.f_min)
        assert s.freq_ladder[-1] == pytest.approx(s.f_max)

    def test_pkg_max_exceeds_tdp_with_turbo(self):
        # all-core turbo is opportunistic: the uncapped ceiling is
        # above TDP, and RAPL's default PL1 clips it
        s = SocketSpec()
        assert s.p_pkg_max_w > s.tdp_w

    def test_pkg_min_active_below_tdp(self):
        s = SocketSpec()
        assert s.p_pkg_min_active_w < s.tdp_w

    def test_rejects_bad_frequency_order(self):
        with pytest.raises(SpecError):
            SocketSpec(f_min=ghz(3.0), f_nominal=ghz(2.3), f_max=ghz(3.1))

    def test_rejects_unsorted_ladder(self):
        with pytest.raises(SpecError):
            SocketSpec(freq_ladder=(ghz(2.3), ghz(1.2), ghz(3.1)))

    def test_rejects_zero_cores(self):
        with pytest.raises(SpecError):
            SocketSpec(n_cores=0)


class TestNodeSpec:
    def test_paper_node_has_24_cores(self):
        node = haswell_node()
        assert node.n_sockets == 2
        assert node.n_cores == 24

    def test_power_ceilings_compose(self):
        node = haswell_node()
        assert node.p_node_max_w == pytest.approx(
            node.p_cpu_max_w + node.p_mem_max_w + node.p_other_w
        )

    def test_aggregate_bandwidth(self):
        node = haswell_node()
        assert node.peak_bandwidth == pytest.approx(
            2 * node.socket.memory.peak_bandwidth
        )

    def test_rejects_zero_sockets(self):
        with pytest.raises(SpecError):
            NodeSpec(n_sockets=0)


class TestClusterSpec:
    def test_paper_testbed_shape(self):
        spec = haswell_testbed()
        assert spec.n_nodes == 8
        assert spec.total_cores == 192

    def test_cluster_peak_power(self):
        spec = haswell_testbed()
        assert spec.p_cluster_max_w == pytest.approx(8 * spec.node.p_node_max_w)

    def test_rejects_excess_variability(self):
        with pytest.raises(SpecError):
            ClusterSpec(variability_sigma=0.6)

    def test_rejects_zero_nodes(self):
        with pytest.raises(SpecError):
            ClusterSpec(n_nodes=0)

    def test_custom_node_count(self):
        spec = haswell_testbed(n_nodes=4)
        assert spec.n_nodes == 4


class TestNodeGroups:
    def test_group_rejects_zero_count(self):
        with pytest.raises(SpecError):
            NodeGroup(haswell_node(), 0)

    def test_groups_and_legacy_keywords_are_exclusive(self):
        with pytest.raises(SpecError):
            ClusterSpec(
                n_nodes=4, groups=(NodeGroup(haswell_node(), 4),)
            )

    def test_rejects_empty_groups(self):
        with pytest.raises(SpecError):
            ClusterSpec(groups=())

    def test_rejects_non_group_members(self):
        with pytest.raises(SpecError):
            ClusterSpec(groups=(haswell_node(),))

    def test_legacy_keywords_build_one_group(self):
        spec = haswell_testbed()
        assert spec.is_homogeneous
        assert len(spec.groups) == 1
        assert spec.groups[0].count == 8
        assert spec.node == spec.groups[0].spec

    def test_node_specs_follow_group_order(self):
        hw, bw = haswell_node(), broadwell_node()
        spec = ClusterSpec(groups=(NodeGroup(hw, 2), NodeGroup(bw, 3)))
        assert spec.node_specs == (hw, hw, bw, bw, bw)

    def test_mixed_cluster_refuses_the_node_accessor(self):
        spec = mixed_testbed()
        with pytest.raises(SpecError, match="heterogeneous"):
            spec.node

    def test_mixed_testbed_shape(self):
        spec = mixed_testbed()
        assert spec.n_nodes == 8
        assert not spec.is_homogeneous
        # 4 x 24 Haswell cores + 4 x 40 Broadwell cores
        assert spec.total_cores == 256
        names = [s.name for s in spec.node_specs]
        assert names == ["haswell"] * 4 + ["broadwell"] * 4

    def test_mixed_peak_power_sums_per_group(self):
        spec = mixed_testbed()
        expected = 4 * haswell_node().p_node_max_w + 4 * broadwell_node().p_node_max_w
        assert spec.p_cluster_max_w == pytest.approx(expected)

    def test_slot_zero_is_the_smallest_class(self):
        # profiling samples land on slot 0; its thread counts must be
        # valid on every slot, so the min-core class leads
        spec = mixed_testbed()
        assert spec.node_specs[0].n_cores == min(
            s.n_cores for s in spec.node_specs
        )


class TestRackSpecs:
    def test_rack_fleet_shape(self):
        spec = haswell_testbed(racks=8)
        assert spec.n_nodes == 64
        assert spec.n_racks == 8
        assert spec.rack_sizes == (8,) * 8
        assert spec.rack_names == tuple(f"rack{i}" for i in range(8))
        assert spec.rack_of_slot == tuple(i // 8 for i in range(64))

    def test_homogeneous_racks_stay_homogeneous(self):
        # identical racks of identical nodes merge into one group, so
        # the fast homogeneous paths still engage at fleet scale
        spec = haswell_testbed(racks=4)
        assert spec.is_homogeneous
        assert len(spec.groups) == 1

    def test_mixed_racks_keep_class_order(self):
        spec = mixed_testbed(racks=2)
        assert not spec.is_homogeneous
        names = [s.name for s in spec.node_specs]
        assert names == (["haswell"] * 4 + ["broadwell"] * 4) * 2

    def test_flat_spec_reports_one_rack(self):
        spec = haswell_testbed()
        assert spec.n_racks == 1
        assert spec.rack_sizes == (8,)
        assert spec.rack_of_slot == (0,) * 8

    def test_racks_one_is_the_legacy_spec(self):
        assert haswell_testbed(racks=1) == haswell_testbed()
        assert hash(haswell_testbed(racks=1)) == hash(haswell_testbed())

    def test_duplicate_rack_names_rejected(self):
        from repro.hw.specs import RackSpec

        group = (NodeGroup(haswell_node(), 2),)
        with pytest.raises(SpecError):
            ClusterSpec(racks=(RackSpec("r0", group), RackSpec("r0", group)))

    def test_racks_and_groups_are_exclusive(self):
        from repro.hw.specs import RackSpec

        group = (NodeGroup(haswell_node(), 2),)
        with pytest.raises(SpecError):
            ClusterSpec(
                racks=(RackSpec("r0", group),),
                groups=group,
            )

    def test_rack_needs_at_least_one_group(self):
        from repro.hw.specs import RackSpec

        with pytest.raises(SpecError):
            RackSpec("r0", ())


class TestGpuSpecs:
    """The accelerator domain at the spec layer."""

    def test_node_accessor_error_names_the_replacements(self):
        # the legacy single-class accessor must tell callers where to
        # go on a multi-group fleet (regression: the old message only
        # said "heterogeneous")
        from repro.hw.specs import mixed_gpu_testbed

        for spec in (mixed_testbed(), mixed_gpu_testbed()):
            with pytest.raises(SpecError, match="node_specs") as exc:
                spec.node
            assert "groups" in str(exc.value)

    def test_gpu_ladder_monotone(self):
        from repro.hw.specs import GpuSpec

        gpu = GpuSpec()
        assert gpu.clock_ladder_hz == tuple(sorted(gpu.clock_ladder_hz))
        assert gpu.clk_min_hz <= gpu.clk_nominal_hz <= gpu.clk_max_hz
        assert gpu.power_at(gpu.clk_min_hz) == gpu.p_min_w
        assert gpu.power_at(gpu.clk_max_hz) == gpu.p_max_w

    def test_node_level_views_align_with_ladder(self):
        from repro.hw.specs import gpu_node

        node = gpu_node()
        levels = node.gpu_cap_levels_w
        clocks = node.gpu_level_clocks_hz
        scales = node.gpu_level_clock_scale
        assert len(levels) == len(clocks) == len(scales)
        assert list(levels) == sorted(levels)
        assert list(clocks) == sorted(clocks)
        # the idle draw sits strictly under the lowest active level
        assert node.p_gpu_idle_w < node.p_gpu_min_w < node.p_gpu_max_w

    def test_cpu_node_reports_absent_not_zero_ladder(self):
        node = haswell_node()
        assert not node.has_gpu
        assert node.gpu_cap_levels_w == ()
        assert node.gpu_level_clocks_hz == ()
        assert node.p_gpu_max_w == 0.0

    def test_gpu_requires_count_and_count_requires_gpu(self):
        from repro.hw.specs import GpuSpec, gpu_node

        base = gpu_node()
        with pytest.raises(SpecError):
            NodeSpec(name="x", socket=SocketSpec(), gpu=GpuSpec(), n_gpus=0)
        with pytest.raises(SpecError):
            NodeSpec(name="x", socket=SocketSpec(), n_gpus=1)
        assert base.p_node_max_w > haswell_node().p_node_max_w

    def test_gpu_testbed_shape(self):
        from repro.hw.specs import gpu_testbed

        spec = gpu_testbed()
        assert spec.n_nodes == 8
        assert spec.is_homogeneous
        assert all(s.has_gpu for s in spec.node_specs)

    def test_mixed_gpu_testbed_puts_the_gpu_class_first(self):
        # profiling samples land on slot 0, which must be the
        # accelerated class for offload behaviour to be observable
        from repro.hw.specs import mixed_gpu_testbed

        spec = mixed_gpu_testbed()
        assert spec.n_nodes == 8
        assert not spec.is_homogeneous
        flags = [s.has_gpu for s in spec.node_specs]
        assert flags == [True] * 4 + [False] * 4
        # both classes share the Haswell host, so one thread count
        # is valid fleet-wide
        assert len({s.n_cores for s in spec.node_specs}) == 1

    def test_gpu_rack_fleet(self):
        from repro.hw.specs import mixed_gpu_testbed

        spec = mixed_gpu_testbed(racks=2)
        assert spec.n_racks == 2
        flags = [s.has_gpu for s in spec.node_specs]
        assert flags == ([True] * 4 + [False] * 4) * 2
