"""End-to-end integration tests across the full stack.

These exercise complete user journeys — profile → classify → predict →
allocate → execute — and system-level invariants that no single module
can check alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.traces import audit_cap_violations, summarize_run
from repro.core.knowledge import KnowledgeDB
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.apps import TABLE2_APPS, get_app


@pytest.fixture()
def clip(engine, trained_inflection):
    return ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )


class TestFullPipeline:
    @pytest.mark.parametrize("app", TABLE2_APPS, ids=lambda a: a.name)
    def test_every_table2_app_schedules_and_runs(self, clip, app):
        decision, result = clip.run(app, 1200.0, iterations=3)
        assert 1 <= decision.n_nodes <= 8
        assert 2 <= decision.n_threads <= 24
        assert decision.total_capped_w <= 1200.0 * (1 + 1e-9)
        assert result.performance > 0
        assert audit_cap_violations(result) == []

    @pytest.mark.parametrize("budget", [700.0, 1100.0, 1900.0, 2600.0])
    def test_budget_respected_in_execution(self, clip, budget):
        _, result = clip.run(get_app("tealeaf"), budget, iterations=3)
        drawn = sum(
            r.operating_point.pkg_power_w + r.operating_point.dram_power_w
            for r in result.nodes
        )
        assert drawn <= budget * (1 + 1e-6)

    def test_decisions_deterministic(self, engine, trained_inflection):
        a = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        ).schedule(get_app("bt-mz.C"), 1300.0)
        b = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        ).schedule(get_app("bt-mz.C"), 1300.0)
        assert a.n_nodes == b.n_nodes
        assert a.n_threads == b.n_threads
        assert a.total_capped_w == pytest.approx(b.total_capped_w)

    def test_knowledge_db_transferable(self, engine, trained_inflection, tmp_path):
        # profile with one scheduler, persist, reload in a fresh one:
        # decisions agree and no re-profiling happens
        first = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        d1 = first.schedule(get_app("sp-mz.C"), 1400.0)
        path = tmp_path / "kb.json"
        first.knowledge.save(path)

        second = ClipScheduler(
            engine,
            inflection=trained_inflection,
            knowledge=KnowledgeDB.load(path),
        )
        d2 = second.schedule(get_app("sp-mz.C"), 1400.0)
        assert d2.n_threads == d1.n_threads
        assert d2.n_nodes == d1.n_nodes
        assert d2.inflection_point == d1.inflection_point

    def test_simple_mode_end_to_end(self, clip):
        d, r = clip.run(
            get_app("comd"), 1300.0, iterations=3, allocation_mode="simple"
        )
        assert r.performance > 0
        assert d.total_capped_w <= 1300.0 * (1 + 1e-9)

    def test_predictive_not_worse_than_simple(self, clip):
        for name in ("comd", "bt-mz.C", "tealeaf"):
            app = get_app(name)
            _, r_pred = clip.run(app, 1000.0, iterations=3)
            _, r_simple = clip.run(
                app, 1000.0, iterations=3, allocation_mode="simple"
            )
            assert r_pred.performance >= r_simple.performance * 0.95, name


class TestSystemInvariants:
    @settings(max_examples=15, deadline=None)
    @given(budget=st.floats(min_value=650.0, max_value=2600.0))
    def test_budget_conservation_property(self, budget):
        clip = _SHARED.clip
        decision = clip.schedule(get_app("lu-mz.C"), budget)
        assert decision.total_capped_w <= budget * (1 + 1e-9)
        for cfg in decision.node_configs:
            assert cfg.pkg_cap_w > 0
            assert cfg.dram_cap_w > 0

    @settings(max_examples=10, deadline=None)
    @given(
        b1=st.floats(min_value=700.0, max_value=1500.0),
        delta=st.floats(min_value=50.0, max_value=900.0),
    )
    def test_more_budget_never_slower(self, b1, delta):
        clip = _SHARED.clip
        app = get_app("tealeaf")
        _, r1 = clip.run(app, b1, iterations=2)
        _, r2 = clip.run(app, b1 + delta, iterations=2)
        assert r2.performance >= r1.performance * 0.98

    def test_energy_decomposition_consistent(self, engine):
        result = engine.run(
            get_app("amg"),
            ExecutionConfig(n_nodes=4, n_threads=24, iterations=3),
        )
        s = summarize_run(result)
        assert s["energy_j"] == pytest.approx(
            s["avg_power_w"] * s["total_time_s"], rel=1e-9
        )

    def test_scheduler_beats_random_configs(self, clip, engine):
        """CLIP must beat the median of random valid configurations."""
        rng = np.random.default_rng(3)
        app = get_app("sp-mz.C")
        budget = 1200.0
        _, clip_result = clip.run(app, budget, iterations=3)
        random_perfs = []
        for _ in range(12):
            n_nodes = int(rng.integers(1, 9))
            n_threads = int(rng.integers(1, 13)) * 2
            share = budget / n_nodes
            dram = float(rng.uniform(10.0, 35.0))
            result = engine.run(
                app,
                ExecutionConfig(
                    n_nodes=n_nodes,
                    n_threads=n_threads,
                    pkg_cap_w=share - dram,
                    dram_cap_w=dram,
                    iterations=3,
                ),
            )
            drawn = sum(
                r.operating_point.pkg_power_w + r.operating_point.dram_power_w
                for r in result.nodes
            )
            if drawn <= budget * (1 + 1e-6):
                random_perfs.append(result.performance)
        assert clip_result.performance > np.median(random_perfs)


class _Shared:
    """Lazy shared scheduler for hypothesis tests (fixtures are banned
    inside @given)."""

    def __init__(self):
        self._clip = None

    @property
    def clip(self):
        if self._clip is None:
            from repro.analysis.experiments import build_trained_inflection

            engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
            self._clip = ClipScheduler(
                engine,
                inflection=build_trained_inflection(engine),
                knowledge=KnowledgeDB(),
            )
        return self._clip


_SHARED = _Shared()
