"""Cluster-level power allocation (§III-B.1, Algorithm 1 step 1).

Decides how many nodes participate and what power each gets, reasoning
entirely in CLIP's fitted models:

* The application's **acceptable node power range**
  ``[node_lo, node_hi]`` (from :class:`ClipPowerModel`) bounds how thin
  the budget may be sliced: below ``node_lo`` a node's performance
  collapses; above ``node_hi`` watts are wasted.
* Candidate node counts are those keeping the per-node share inside
  the range (or the application's predefined decomposition counts, per
  Algorithm 1's first branch).
* Following §III-B.1 ("determine the number of nodes by predicting the
  performance with different configurations"), each candidate is scored
  with the performance model — per-node iteration time at the
  achievable frequency, divided by the node count for the strong-scaled
  work — and the best predicted cluster performance wins.  The
  ``simple`` mode instead follows Algorithm 1's listed arithmetic
  literally (useful for ablations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coordination import VARIABILITY_THRESHOLD, coordinate_power
from repro.core.powermodel import ClipPowerModel
from repro.core.recommend import Recommender
from repro.errors import InfeasibleBudgetError, SchedulingError

__all__ = ["ClusterAllocation", "ClusterAllocator"]


@dataclass(frozen=True)
class ClusterAllocation:
    """Node count plus per-node budgets chosen for one job.

    ``node_lo_w`` / ``node_hi_w`` describe the primary hardware class;
    on a heterogeneous cluster ``node_ranges_w`` additionally carries
    each participating slot's own ``(lo, hi)`` (``None`` when every
    slot shares the primary range).
    """

    n_nodes: int
    node_budgets_w: tuple[float, ...]
    node_lo_w: float
    node_hi_w: float
    predicted_cluster_perf: float
    node_ranges_w: tuple[tuple[float, float], ...] | None = None
    rack_budgets_w: tuple[float, ...] | None = None

    @property
    def total_allocated_w(self) -> float:
        """Sum of per-node budgets (<= the cluster budget)."""
        return float(sum(self.node_budgets_w))

    @property
    def n_racks(self) -> int:
        """Racks the participating nodes span (1 on a flat cluster)."""
        return len(self.rack_budgets_w) if self.rack_budgets_w else 1


class ClusterAllocator:
    """Chooses node count and per-node budgets for one application."""

    def __init__(
        self,
        recommender: Recommender,
        n_total_nodes: int,
        node_factors: np.ndarray | None = None,
        variability_threshold: float = VARIABILITY_THRESHOLD,
        node_ranges: tuple[tuple[float, float], ...] | None = None,
        rack_of_slot: tuple[int, ...] | None = None,
        rack_names: tuple[str, ...] | None = None,
    ):
        if n_total_nodes < 1:
            raise SchedulingError("cluster must have at least one node")
        self._rec = recommender
        self._n_total = n_total_nodes
        self._factors = (
            np.asarray(node_factors, dtype=np.float64)
            if node_factors is not None
            else np.ones(n_total_nodes)
        )
        if len(self._factors) != n_total_nodes:
            raise SchedulingError("node_factors must cover every node")
        self._threshold = variability_threshold
        # per-slot (lo, hi) acceptable ranges: None on a homogeneous
        # cluster (every slot shares the recommender's range)
        self._ranges = (
            tuple((float(lo), float(hi)) for lo, hi in node_ranges)
            if node_ranges is not None
            else None
        )
        if self._ranges is not None and len(self._ranges) != n_total_nodes:
            raise SchedulingError("node_ranges must cover every node")
        # rack structure: None on a flat (single-rack) cluster, which
        # keeps every legacy code path untouched; multi-rack fleets
        # split hierarchically and search rack-decomposed candidates
        self._rack_of = (
            tuple(int(r) for r in rack_of_slot)
            if rack_of_slot is not None
            else None
        )
        if self._rack_of is not None and len(self._rack_of) != n_total_nodes:
            raise SchedulingError("rack_of_slot must cover every node")
        self._rack_names = rack_names
        self._range_cache: tuple[float, float] | None = None

    @property
    def power_model(self) -> ClipPowerModel:
        """The fitted power model the ranges come from."""
        return self._rec.power_model

    # ------------------------------------------------------------------

    def acceptable_range(self) -> tuple[float, float]:
        """Per-node acceptable power range.

        The ceiling is the power worth giving a node at the unbounded
        concurrency; the floor is the cheapest *candidate* concurrency
        — a node below the all-core floor can still contribute at
        reduced concurrency, CLIP's node-level lever.
        """
        if self._range_cache is None:
            n_threads = self._rec.unbounded_concurrency()
            rng = self._rec.power_model.power_range(n_threads)
            self._range_cache = (self._rec.min_floor_w(), rng.node_hi_w)
        return self._range_cache

    def candidate_node_counts(
        self, cluster_budget_w: float, predefined: tuple[int, ...] | None = None
    ) -> tuple[int, ...]:
        """Node counts whose per-node share lies in the acceptable range."""
        lo, hi = self.acceptable_range()
        if self._ranges is None:
            max_nodes = min(int(cluster_budget_w // lo), self._n_total)
            floor0 = lo
        else:
            # slots are filled in order: n nodes fit when the first n
            # floors fit under the budget together
            floors = np.cumsum([r[0] for r in self._ranges])
            max_nodes = int(
                np.searchsorted(floors, cluster_budget_w + 1e-9, side="right")
            )
            floor0 = self._ranges[0][0]
        if max_nodes < 1:
            raise InfeasibleBudgetError(
                f"cluster budget {cluster_budget_w:.1f} W below the single-node "
                f"floor {floor0:.1f} W"
            )
        if predefined:
            cands = tuple(n for n in sorted(predefined) if 1 <= n <= max_nodes)
            if not cands:
                raise InfeasibleBudgetError(
                    f"no predefined node count fits budget {cluster_budget_w:.1f} W"
                )
            return cands
        if self._rack_of is None:
            return tuple(range(1, max_nodes + 1))
        return self._rack_candidates(max_nodes)

    def _rack_candidates(self, max_nodes: int) -> tuple[int, ...]:
        """Rack-decomposed candidate node counts.

        Slots fill in rack order, and within one rack every node is
        interchangeable at the cluster-level granularity, so the search
        only needs (a) every count inside the first rack — the
        small-job regime where exact node count matters most — plus
        (b) each whole-rack prefix boundary, plus (c) the feasibility
        maximum.  Search cost scales with rack size, not fleet size.
        """
        sizes = np.bincount(np.asarray(self._rack_of, dtype=np.int64))
        boundaries = np.cumsum(sizes)
        cands = set(range(1, min(int(boundaries[0]), max_nodes) + 1))
        cands.update(int(b) for b in boundaries if b <= max_nodes)
        cands.add(max_nodes)
        return tuple(sorted(cands))

    def allocate(
        self,
        cluster_budget_w: float,
        predefined: tuple[int, ...] | None = None,
        mode: str = "predictive",
    ) -> ClusterAllocation:
        """Choose the node count and split the budget.

        ``mode='predictive'`` scores candidates with the performance
        model (the §III-B.1 procedure); ``mode='simple'`` applies
        Algorithm 1's listed arithmetic (largest count fitting the
        floor for predefined decompositions, budget over the range top
        otherwise).
        """
        if cluster_budget_w <= 0:
            raise InfeasibleBudgetError("cluster budget must be > 0")
        lo, hi = self.acceptable_range()
        if mode == "simple":
            n_nodes = self._simple_node_count(cluster_budget_w, lo, hi, predefined)
        elif mode == "predictive":
            n_nodes = self._predictive_node_count(cluster_budget_w, predefined)
        else:
            raise SchedulingError(f"unknown allocation mode {mode!r}")

        rack_budgets = None
        if self._rack_of is not None:
            # multi-rack fleet: split cluster → rack → node
            if self._ranges is None:
                lo_b: float | np.ndarray = lo
                hi_b: float | np.ndarray = hi
                total = min(cluster_budget_w / n_nodes, hi) * n_nodes
            else:
                lo_b = np.array([r[0] for r in self._ranges[:n_nodes]])
                hi_b = np.array([r[1] for r in self._ranges[:n_nodes]])
                total = min(cluster_budget_w, float(hi_b.sum()))
            from repro.core.hierarchy import split_cluster_budget

            budgets, rack_records = split_cluster_budget(
                total,
                self._factors[:n_nodes],
                lo_b,
                hi_b,
                self._rack_of,
                rack_names=self._rack_names,
                threshold=self._threshold,
            )
            rack_budgets = tuple(r.budget_w for r in rack_records)
        elif self._ranges is None:
            per_node = min(cluster_budget_w / n_nodes, hi)
            budgets = coordinate_power(
                per_node * n_nodes,
                self._factors[:n_nodes],
                lo_w=lo,
                hi_w=hi,
                threshold=self._threshold,
            )
        else:
            lo_arr = np.array([r[0] for r in self._ranges[:n_nodes]])
            hi_arr = np.array([r[1] for r in self._ranges[:n_nodes]])
            budgets = coordinate_power(
                min(cluster_budget_w, float(hi_arr.sum())),
                self._factors[:n_nodes],
                lo_w=lo_arr,
                hi_w=hi_arr,
                threshold=self._threshold,
            )
        perf = self._predict_cluster_perf(n_nodes, float(np.mean(budgets)))
        return ClusterAllocation(
            n_nodes=n_nodes,
            node_budgets_w=tuple(float(b) for b in budgets),
            node_lo_w=lo,
            node_hi_w=hi,
            predicted_cluster_perf=perf,
            node_ranges_w=(
                self._ranges[:n_nodes] if self._ranges is not None else None
            ),
            rack_budgets_w=rack_budgets,
        )

    # ------------------------------------------------------------------

    def _simple_node_count(
        self,
        budget: float,
        lo: float,
        hi: float,
        predefined: tuple[int, ...] | None,
    ) -> int:
        """Algorithm 1's literal node-count arithmetic."""
        if self._ranges is not None:
            return self._simple_node_count_ranged(budget, predefined)
        if predefined:
            fitting = [n for n in sorted(predefined) if n <= budget / lo]
            if not fitting:
                raise InfeasibleBudgetError(
                    f"no predefined count fits {budget:.1f} W at floor {lo:.1f} W"
                )
            return min(fitting[-1], self._n_total)
        if budget > self._n_total * hi:
            return self._n_total
        n = int(budget // hi)
        if n >= 1:
            return min(n, self._n_total)
        if budget >= lo:
            return 1
        raise InfeasibleBudgetError(
            f"budget {budget:.1f} W below single-node floor {lo:.1f} W"
        )

    def _simple_node_count_ranged(
        self, budget: float, predefined: tuple[int, ...] | None
    ) -> int:
        """The 'simple' arithmetic against per-slot ranges.

        Cumulative per-slot sums replace the ``n * lo`` / ``n * hi``
        products: n nodes fit when the first n floors fit, and the
        "each node at the range top" count is the largest n whose
        ceilings sum under the budget.
        """
        floors = np.cumsum([r[0] for r in self._ranges])
        if predefined:
            fitting = [
                n
                for n in sorted(predefined)
                if n <= self._n_total and floors[n - 1] <= budget + 1e-9
            ]
            if not fitting:
                raise InfeasibleBudgetError(
                    f"no predefined count fits {budget:.1f} W at floor "
                    f"{self._ranges[0][0]:.1f} W"
                )
            return fitting[-1]
        ceilings = np.cumsum([r[1] for r in self._ranges])
        if budget > ceilings[-1]:
            return self._n_total
        n = int(np.searchsorted(ceilings, budget + 1e-9, side="right"))
        if n >= 1:
            return n
        if budget >= self._ranges[0][0]:
            return 1
        raise InfeasibleBudgetError(
            f"budget {budget:.1f} W below single-node floor "
            f"{self._ranges[0][0]:.1f} W"
        )

    def _predictive_node_count(
        self, budget: float, predefined: tuple[int, ...] | None
    ) -> int:
        """Score candidate counts with the performance model.

        The per-node share clamps to the acceptable ceiling, so many
        candidate counts collapse to the same recommendation input on a
        large fleet — the recommender is consulted once per *unique*
        clamped share, keeping the scan's model cost bounded by the
        number of distinct shares rather than the fleet size.
        """
        _, hi = self.acceptable_range()
        best_n, best_perf = None, -np.inf
        memo: dict[float, float] = {}
        for n in self.candidate_node_counts(budget, predefined):
            share = min(budget / n, hi)
            node_perf = memo.get(share)
            if node_perf is None:
                node_perf = self._predict_node_perf(share)
                memo[share] = node_perf
            perf = node_perf * n
            if perf > best_perf * (1.0 + 1e-9):
                best_n, best_perf = n, perf
        if best_n is None:  # pragma: no cover - candidates is non-empty
            raise InfeasibleBudgetError("no feasible node count")
        return best_n

    def _predict_cluster_perf(self, n_nodes: int, node_budget: float) -> float:
        """Predicted job throughput at a candidate allocation.

        The profile measured full-problem single-node iteration times;
        with the work strong-scaled over *n_nodes*, the predicted step
        time is the node time divided by the node count (CLIP has no
        communication model — the allocator's estimate is deliberately
        the paper's optimistic one).
        """
        return self._predict_node_perf(node_budget) * n_nodes

    def _predict_node_perf(self, node_budget: float) -> float:
        """Predicted single-node throughput at a candidate budget."""
        _, hi = self.acceptable_range()
        try:
            cfg = self._rec.recommend(min(node_budget, hi))
        except InfeasibleBudgetError:
            return -np.inf
        return cfg.predicted_perf
