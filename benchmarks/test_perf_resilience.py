"""Build gate for the self-healing enforcement stack.

Runs the resilience benchmark (watchdog overhead, breach-to-correction
latency, chaos audit sweep), records ``BENCH_resilience.json`` at the
repository root, and **fails the build** when:

* the journal + watchdog stack costs more than 10% on the warm
  no-fault path (self-healing must be cheap when nothing is wrong);
* a drift breach takes more than 6 segments to correct (the ladder
  must converge, not oscillate);
* any cap set issued during the chaos sweep — including the watchdog's
  own corrections — violates the budget invariant.
"""

from bench_resilience import run_resilience_bench

#: Warm-path budget for the whole resilience stack.
MAX_OVERHEAD_FRAC = 0.10

#: A breach episode must close within this many segments.
MAX_BREACH_SEGMENTS = 6


def test_resilience_gates(report):
    payload = run_resilience_bench()
    overhead = payload["overhead"]
    latency = payload["correction_latency"]
    chaos = payload["chaos"]

    lines = [
        "Self-healing enforcement — overhead, latency, chaos audit",
        f"  warm path: bare {overhead['bare_s'] * 1e3:.1f} ms, "
        f"journal+watchdog {overhead['guarded_s'] * 1e3:.1f} ms "
        f"({overhead['overhead_frac']:+.1%})",
        f"  drift correction: {latency['breaches']} breach(es), "
        f"max episode {latency['max_breach_segments']} segment(s), "
        f"actions {latency['actions']}",
    ]
    for name, s in chaos.items():
        lines.append(
            f"  chaos {name:18s}: {s['events_fired']} events, "
            f"{s['breaches']} breach(es), "
            f"{s['n_violations']} violation(s) / {s['n_audits']} audits"
        )
    report("perf_resilience", "\n".join(lines))

    # gate 1: the resilience stack is near-free when nothing is wrong
    assert overhead["overhead_frac"] <= MAX_OVERHEAD_FRAC, overhead

    # gate 2: the escalation ladder converges quickly
    assert latency["breaches"] >= 1, latency  # the scenario really breached
    assert latency["max_breach_segments"] <= MAX_BREACH_SEGMENTS, latency

    # gate 3: zero invariant violations across every chaos scenario
    for name, s in chaos.items():
        assert s["completed"], name
        assert s["events_fired"] >= 1, name
        assert s["n_audits"] > 0, name
        assert s["n_violations"] == 0, (name, s)
    assert payload["total_violations"] == 0
