"""Perf guard for mixed-fleet scheduling.

Runs the heterogeneous-cluster benchmark, records the measurements to
``BENCH_hetero.json`` at the repository root, and enforces the
refactor's acceptance bar: warm per-class bundle hits must make a warm
mixed-fleet ``schedule()`` measurably faster than a cold one, with a
clean budget-invariant ledger throughout.
"""

from bench_hetero import run_hetero_bench

#: Acceptance floor: a warm mixed-fleet decision reuses every class's
#: cached bundle, skipping profiling and per-class model fitting
#: entirely, so it must be clearly cheaper than a cold one.
MIN_WARM_SPEEDUP = 1.5


def test_hetero_warm_speedup(report):
    payload = run_hetero_bench()
    cold = payload["cold"]
    warm = payload["warm"]
    cache = payload["bundle_cache"]

    lines = [
        "Mixed fleet — cold vs warm schedule() "
        f"({payload['node_classes']} node classes, "
        f"{len(payload['apps'])} apps, {len(payload['budgets_w'])} budgets)",
        f"  cold : {cold['per_decision_s'] * 1e3:8.2f} ms/decision "
        f"({cold['decisions']} decisions)",
        f"  warm : {warm['per_decision_s'] * 1e3:8.2f} ms/decision "
        f"({warm['decisions']} decisions, "
        f"{payload['warm_speedup']:.1f}x)",
        f"  bundles fitted: {cache['misses']} "
        f"(hits {cache['hits']}, hit rate {cache['hit_rate']:.3f})",
        f"  audits: {payload['audits']['n_audits']} cap sets, "
        f"{payload['audits']['n_violations']} violations",
    ]
    report("perf_hetero", "\n".join(lines))

    # Correctness first: every issued cap set honored the contract.
    assert payload["audits"]["n_violations"] == 0
    # One bundle per (app, class): warm decisions fit nothing new.
    assert cache["misses"] == payload["node_classes"] * len(payload["apps"])
    assert cache["hit_rate"] > 0.5
    assert payload["warm_speedup"] >= MIN_WARM_SPEEDUP, payload
