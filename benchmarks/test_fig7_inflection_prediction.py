"""Figure 7 — predicted vs. actual inflection points.

The paper trains the MLR on NPB/HPCC/STREAM/PolyBench-style corpora and
compares predicted NP against the value found by exhaustive search,
reporting strong predictions with underestimates for LU-MZ and TeaLeaf.
Predictions are floored to even values ("applications perform worse
with an odd-value concurrency").
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.core.profile import SmartProfiler
from repro.workloads.apps import TABLE2_APPS
from repro.workloads.model import true_inflection_point, true_scalability_class
from conftest import run_once


def predict_all(engine, trained_inflection):
    node = engine.cluster.spec.node
    profiler = SmartProfiler(engine)
    rows = []
    for app in TABLE2_APPS:
        if true_scalability_class(app, node) == "linear":
            continue
        profile = profiler.profile(app)
        rows.append(
            (
                app.name,
                trained_inflection.predict(profile),
                true_inflection_point(app, node),
            )
        )
    return rows


def test_fig7_inflection_prediction(benchmark, engine, trained_inflection, report):
    rows = run_once(benchmark, lambda: predict_all(engine, trained_inflection))

    table_rows = [
        [name, pred, actual, pred - actual] for name, pred, actual in rows
    ]
    report(
        "fig7",
        render_table(
            ["Benchmark", "Predicted NP", "Actual NP", "Error"],
            table_rows,
            title="Fig. 7 — predicted vs actual inflection points "
            "(actual from exhaustive search)",
        ),
    )

    preds = np.array([r[1] for r in rows])
    actuals = np.array([r[2] for r in rows])
    errors = np.abs(preds - actuals)

    # every non-linear Table-II app is covered
    assert len(rows) == 7

    # predictions are even and in range, as the paper floors them
    assert np.all(preds % 2 == 0)
    assert np.all((preds >= 2) & (preds <= 24))

    # Fig.-7-level quality: small mean error, no blowups
    assert errors.mean() <= 3.0, dict(zip([r[0] for r in rows], errors))
    assert errors.max() <= 8

    # actual knees all sit in the interior, like the paper's bars
    assert np.all((actuals >= 8) & (actuals <= 20))
