"""Unit tests for the alpha-beta communication model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.hw.specs import haswell_testbed
from repro.sim.mpi import ALLREDUCE_BYTES, CommModel
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics


def app(pattern, comm_bytes=1e7, msgs=6):
    return WorkloadCharacteristics(
        name="comm-test",
        instructions_per_iter=1e10,
        bytes_per_instruction=0.1,
        comm_pattern=pattern,
        comm_bytes_per_iter=comm_bytes,
        comm_msgs_per_iter=msgs,
    )


@pytest.fixture()
def comm():
    return CommModel(haswell_testbed())


class TestHalo:
    def test_single_node_free(self, comm):
        assert comm.iteration_time(app(CommPattern.HALO), 1) == 0.0

    def test_surface_to_volume_shrinks_per_node_bytes(self, comm):
        a = app(CommPattern.HALO)
        assert comm.halo_bytes(a, 8) < comm.halo_bytes(a, 2)
        assert comm.halo_bytes(a, 1) == pytest.approx(a.comm_bytes_per_iter)

    def test_halo_time_components(self, comm):
        a = app(CommPattern.HALO, comm_bytes=8e6, msgs=6)
        t = comm.iteration_time(a, 8)
        expected = 6 * comm.alpha_s + comm.halo_bytes(a, 8) * comm.beta_s_per_byte
        assert t == pytest.approx(expected)

    def test_zero_bytes_latency_only(self, comm):
        a = app(CommPattern.HALO, comm_bytes=0.0, msgs=4)
        assert comm.iteration_time(a, 4) == pytest.approx(4 * comm.alpha_s)


class TestAllreduce:
    def test_log_depth(self, comm):
        a = app(CommPattern.ALLREDUCE)
        t2 = comm.iteration_time(a, 2)
        t8 = comm.iteration_time(a, 8)
        per_level = comm.alpha_s + ALLREDUCE_BYTES * comm.beta_s_per_byte
        assert t2 == pytest.approx(1 * per_level)
        assert t8 == pytest.approx(3 * per_level)

    def test_nonpow2_rounds_up(self, comm):
        a = app(CommPattern.ALLREDUCE)
        t5 = comm.iteration_time(a, 5)
        t8 = comm.iteration_time(a, 8)
        assert t5 == pytest.approx(t8)


class TestNone:
    def test_embarrassingly_parallel_is_free(self, comm):
        a = app(CommPattern.NONE)
        assert comm.iteration_time(a, 8) == 0.0


class TestValidation:
    def test_rejects_zero_nodes(self, comm):
        with pytest.raises(WorkloadError):
            comm.iteration_time(app(CommPattern.HALO), 0)

    def test_rejects_beyond_cluster(self, comm):
        with pytest.raises(WorkloadError):
            comm.iteration_time(app(CommPattern.HALO), 9)

    def test_scaling_profile_shape(self, comm):
        a = app(CommPattern.HALO)
        prof = comm.scaling_profile(a, [1, 2, 4, 8])
        assert prof.shape == (4,)
        assert prof[0] == 0.0
        # total comm time grows with node count for halo exchange
        assert np.all(np.diff(prof[1:]) < 0) or np.all(prof[1:] > 0)
