"""Fault-injection scenarios: runtime, queue policies, and invariants.

The acceptance bar for the fault-tolerant runtime: scripted node
failure, recovery, and budget swings must drain real job mixes to
completion under both queue policies with the
:class:`~repro.core.monitor.BudgetInvariantMonitor` reporting zero
violations, and a rejected re-coordination must leave jobs untouched.
"""

import dataclasses

import pytest

from repro.core.jobqueue import PowerBoundedJobQueue
from repro.core.knowledge import KnowledgeDB
from repro.core.runtime import PowerBoundedRuntime
from repro.core.scheduler import ClipScheduler
from repro.errors import InfeasibleBudgetError, NodeFailureError
from repro.sim.faults import FaultEvent, FaultInjector, run_scripted
from repro.workloads.apps import get_app

SIX_JOBS = ("comd", "sp-mz.C", "stream", "bt-mz.C", "comd", "stream")


@pytest.fixture()
def clip(engine, trained_inflection):
    return ClipScheduler(
        engine, inflection=trained_inflection, knowledge=KnowledgeDB()
    )


@pytest.fixture()
def runtime(clip):
    return PowerBoundedRuntime(clip)


@pytest.fixture()
def queue(clip):
    return PowerBoundedJobQueue(clip)


class TestTransactionalRecoordination:
    def test_rejected_update_leaves_job_bit_identical(self, runtime):
        """Regression: a failed update must not half-mutate the job."""
        job = runtime.launch(get_app("comd"), 1600.0, n_nodes=8, n_threads=24)
        runtime.advance(job, 10)
        before = dataclasses.asdict(job)
        with pytest.raises(InfeasibleBudgetError):
            runtime.update_budget(job, 400.0)  # below the 8-node floor
        assert dataclasses.asdict(job) == before
        # and the job still executes consistently afterwards
        runtime.advance(job, 10)

    def test_rejected_update_then_feasible_update_works(self, runtime):
        job = runtime.launch(get_app("comd"), 1600.0, n_nodes=8, n_threads=24)
        with pytest.raises(InfeasibleBudgetError):
            runtime.update_budget(job, 400.0)
        runtime.update_budget(job, 1200.0)
        assert job.budget_w == 1200.0
        total = sum(pkg + dram for pkg, dram in job.per_node_caps)
        assert total <= 1200.0 * (1 + 1e-9)

    def test_runtime_caps_audited(self, runtime):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        runtime.update_budget(job, 1000.0)
        sources = [a.source for a in runtime.monitor.audits]
        assert sources.count("runtime") == 2  # launch + update
        runtime.monitor.assert_clean()


class TestRuntimeNodeFailure:
    def test_pinned_job_parks_on_failure(self, runtime):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        affected = runtime.fail_node(2)
        assert affected == [job]
        assert job.parked
        assert "node 2" in job.park_reason
        with pytest.raises(NodeFailureError):
            runtime.advance(job, 10)

    def test_shrink_onto_survivors_when_allowed(self, runtime):
        job = runtime.launch(
            get_app("comd"), 1400.0, n_nodes=4, allow_shrink=True
        )
        runtime.fail_node(2)
        assert not job.parked
        assert job.node_ids == (0, 1, 3)
        assert job.n_nodes == 3
        assert len(job.per_node_caps) == 3
        # the fixed job budget was re-split, not shrunk
        assert job.budget_w == 1400.0
        total = sum(pkg + dram for pkg, dram in job.per_node_caps)
        assert total <= 1400.0 * (1 + 1e-9)
        runtime.run_to_completion(job)
        runtime.monitor.assert_clean()

    def test_last_node_failure_parks_even_with_shrink(self, runtime):
        job = runtime.launch(
            get_app("comd"), 400.0, n_nodes=1, allow_shrink=True
        )
        runtime.fail_node(0)
        assert job.parked

    def test_unaffected_jobs_keep_running(self, runtime):
        job = runtime.launch(get_app("comd"), 700.0, n_nodes=2)
        affected = runtime.fail_node(5)
        assert affected == []
        assert not job.parked
        runtime.advance(job, 10)

    def test_recovery_resumes_parked_job(self, runtime):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        runtime.fail_node(2)
        assert job.parked
        resumed = runtime.recover_node(2)
        assert resumed == [job]
        assert not job.parked
        assert job.park_reason is None
        runtime.run_to_completion(job)
        runtime.monitor.assert_clean()

    def test_launch_avoids_failed_nodes(self, runtime):
        runtime.fail_node(0)
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        assert 0 not in job.node_ids
        with pytest.raises(NodeFailureError):
            runtime.launch(get_app("comd"), 2800.0, n_nodes=8)


class TestScriptedRuntimeScenarios:
    def test_fail_recover_budget_swings(self, runtime, engine):
        """Kill a node mid-job, recover it, swing the budget twice."""
        app = get_app("bt-mz.C")
        job = runtime.launch(
            app, 1600.0, n_nodes=8,
            allow_concurrency_change=True, allow_shrink=True,
        )
        first = runtime.advance(job, 20)
        horizon = first.time_s * 100  # well past the job's lifetime
        injector = FaultInjector(
            engine.cluster,
            [
                FaultEvent(at_s=first.time_s, action="fail_node", node_id=3),
                FaultEvent(
                    at_s=first.time_s * 1.5, action="set_budget", budget_w=900.0
                ),
                FaultEvent(
                    at_s=first.time_s * 2.5, action="recover_node", node_id=3
                ),
                FaultEvent(
                    at_s=horizon - 1, action="set_budget", budget_w=1600.0
                ),
            ],
            budget_w=1600.0,
        )
        run_scripted(runtime, job, injector, segment_iterations=20)
        assert job.done
        # the shrink really happened: post-failure segments ran on 7 nodes
        assert job.n_nodes == 7
        budgets_seen = {s.budget_w for s in job.segments}
        assert 900.0 in budgets_seen
        runtime.monitor.assert_clean()

    def test_parked_job_waits_for_scripted_rescue(self, runtime, engine):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        injector = FaultInjector(
            engine.cluster,
            [
                FaultEvent(at_s=0.0, action="fail_node", node_id=1),
                FaultEvent(at_s=1e9, action="recover_node", node_id=1),
            ],
        )
        run_scripted(runtime, job, injector, segment_iterations=25)
        assert job.done
        assert not job.parked
        runtime.monitor.assert_clean()

    def test_parked_job_without_rescue_raises(self, runtime, engine):
        job = runtime.launch(get_app("comd"), 1400.0, n_nodes=4)
        injector = FaultInjector(
            engine.cluster,
            [FaultEvent(at_s=0.0, action="fail_node", node_id=1)],
        )
        with pytest.raises(NodeFailureError):
            run_scripted(runtime, job, injector)


class TestQueueUnderFaults:
    def test_sequential_schedules_around_failed_node(self, queue, engine):
        injector = FaultInjector(
            engine.cluster,
            [FaultEvent(at_s=0.0, action="fail_node", node_id=2)],
        )
        apps = [get_app("comd"), get_app("comd")]
        report = queue.drain(apps, 1600.0, iterations=3, faults=injector)
        assert len(report.jobs) == 2
        assert all(j.n_nodes <= 7 for j in report.jobs)
        queue._scheduler.monitor.assert_clean()

    def test_sequential_recovery_restores_full_cluster(self, queue, engine):
        injector = FaultInjector(
            engine.cluster,
            [
                FaultEvent(at_s=0.0, action="fail_node", node_id=2),
                FaultEvent(at_s=1e-6, action="recover_node", node_id=2),
            ],
        )
        apps = [get_app("comd"), get_app("comd")]
        report = queue.drain(apps, 1600.0, iterations=3, faults=injector)
        jobs = sorted(report.jobs, key=lambda j: j.started_at_s)
        assert jobs[0].n_nodes <= 7  # scheduled during the outage
        assert jobs[1].n_nodes == 8  # recovery seen at the next boundary

    def test_sequential_budget_swings_reach_decisions(self, queue, engine):
        injector = FaultInjector(
            engine.cluster,
            [FaultEvent(at_s=1e-6, action="set_budget", budget_w=900.0)],
            budget_w=1600.0,
        )
        apps = [get_app("comd"), get_app("comd")]
        queue.drain(apps, 1600.0, iterations=3, faults=injector)
        budgets = [
            a.cluster_budget_w
            for a in queue._scheduler.monitor.audits
            if a.source == "jobqueue.sequential"
        ]
        assert budgets == [1600.0, 900.0]

    def test_coscheduled_batches_fit_surviving_pool(self, queue, engine):
        injector = FaultInjector(
            engine.cluster,
            [FaultEvent(at_s=0.0, action="fail_node", node_id=0)],
        )
        apps = [get_app(n) for n in SIX_JOBS]
        report = queue.drain(
            apps, 1600.0, policy="coscheduled", iterations=3, faults=injector
        )
        assert {j.app_name for j in report.jobs} == set(SIX_JOBS)
        by_batch = {}
        for j in report.jobs:
            by_batch[j.batch] = by_batch.get(j.batch, 0) + j.n_nodes
        assert all(n <= 7 for n in by_batch.values())
        queue._scheduler.monitor.assert_clean()

    @pytest.mark.parametrize("policy", ["sequential", "coscheduled"])
    def test_acceptance_scenario_drains_clean(self, queue, engine, policy):
        """Failure + recovery + two budget swings over a 6-job queue."""
        apps = [get_app(n) for n in SIX_JOBS]
        clean = queue.drain(apps, 1600.0, policy=policy, iterations=3)
        horizon = clean.makespan_s
        queue._scheduler.monitor.reset()
        injector = FaultInjector(
            engine.cluster,
            [
                FaultEvent(at_s=0.10 * horizon, action="fail_node", node_id=2),
                FaultEvent(
                    at_s=0.25 * horizon, action="set_budget", budget_w=1120.0
                ),
                FaultEvent(
                    at_s=0.45 * horizon, action="recover_node", node_id=2
                ),
                FaultEvent(
                    at_s=0.60 * horizon, action="set_budget", budget_w=1600.0
                ),
            ],
            budget_w=1600.0,
        )
        report = queue.drain(
            apps, 1600.0, policy=policy, iterations=3, faults=injector
        )
        monitor = queue._scheduler.monitor
        assert len(report.jobs) == 6
        assert {j.app_name for j in report.jobs} == set(SIX_JOBS)
        assert monitor.n_audits > 0
        assert monitor.n_violations == 0
        monitor.assert_clean()
