"""The staged scheduling decision pipeline (Algorithm 1 as a dataflow).

Algorithm 1 is an explicit chain — profile → classify → predict NP →
fit perf/power models → allocate nodes/budgets → recommend per-node
configurations — but the original code re-derived that chain ad hoc in
five places (`ClipScheduler.schedule`, `MultiJobCoordinator`,
`PowerBoundedJobQueue`, `PowerBoundedRuntime`, `BudgetPlanner`),
re-fitting the models from scratch on every call.  This module is the
single home of that chain:

* :class:`DecisionContext` — an immutable dataclass threaded through
  the stages; every stage returns a *new* context with its outputs
  filled in, never mutating its input.
* Named pure stages — :class:`ProfileStage`, :class:`ClassifyStage`,
  :class:`InflectionStage`, :class:`FitModelsStage`,
  :class:`AllocateStage`, :class:`RecommendStage` — each recording its
  inputs, outputs and wall time into a structured
  :class:`DecisionTrace`.
* :class:`ModelBundle` / :class:`ModelBundleCache` — the fitted
  (predictor, power model, recommender) triple is built **once** per
  knowledge-DB entry and reused across decisions; every consumer
  (scheduler, multi-job coordinator, queue, runtime, planner, the
  Coordinated baseline) shares the same bundles.
* :class:`SchedulingDecision` — Algorithm 1's output, JSON-serializable
  via :meth:`~SchedulingDecision.to_dict` /
  :meth:`~SchedulingDecision.from_dict` so decisions can be persisted
  or shipped over a wire.
* :meth:`DecisionPipeline.decide_many` — the batch entry point:
  duplicate (app, budget) jobs collapse to one pipeline pass, and
  profiling samples ride the vectorized engine path.

Model construction (:class:`PerformancePredictor`,
:class:`ClipPowerModel`, :class:`Recommender`) happens *only* here —
a test greps the consumer modules to keep it that way.
"""

from __future__ import annotations

import copy
import itertools
import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.allocation import ClusterAllocation, ClusterAllocator
from repro.core.classify import ScalabilityClass
from repro.core.coordination import VARIABILITY_THRESHOLD, measure_node_factors
from repro.core.inflection import InflectionPredictor
from repro.core.knowledge import (
    KnowledgeDB,
    KnowledgeEntry,
    ObservationRecord,
)
from repro.core.learning import (
    LearningConfig,
    empirical_best_concurrency,
    fit_calibration,
)
from repro.core.monitor import BudgetInvariantMonitor
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel
from repro.core.profile import AppProfile, SmartProfiler
from repro.core.recommend import NodeConfig, Recommender
from repro.errors import SchedulingError
from repro.hw.numa import AffinityKind
from repro.hw.specs import NodeSpec
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = [
    "ModelBundle",
    "ModelBundleCache",
    "DecisionContext",
    "StageRecord",
    "DecisionTrace",
    "SchedulingDecision",
    "DecisionPipeline",
    "ProfileStage",
    "ClassifyStage",
    "InflectionStage",
    "FitModelsStage",
    "AllocateStage",
    "RecommendStage",
]


# ----------------------------------------------------------------------
# model bundles
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ModelBundle:
    """The fitted model triple for one knowledge-DB entry.

    Everything a decision needs beyond the budget: the performance
    predictor (Eq. 1–3), the power model (Eq. 4–9), and the
    recommendation engine combining them.  Bundles are immutable and
    deterministic functions of ``(entry, node_spec)``, which is what
    makes caching them sound.
    """

    entry: KnowledgeEntry
    predictor: PerformancePredictor
    power_model: ClipPowerModel
    recommender: Recommender
    version: int = 1

    @property
    def profile(self) -> AppProfile:
        """The profile the models were fitted from."""
        return self.entry.profile

    @classmethod
    def from_entry(cls, entry: KnowledgeEntry, node: NodeSpec) -> "ModelBundle":
        """Fit the triple from a knowledge-DB entry (the only place
        the three models are constructed).

        The bundle inherits the entry's ``model_version`` and — when
        the learning loop has refitted the entry — its
        :class:`~repro.core.perfmodel.TimeCalibration`, so every
        decision can record which model generation produced it.
        """
        predictor = PerformancePredictor(
            entry.profile,
            entry.inflection_point,
            calibration=entry.calibration,
        )
        power_model = ClipPowerModel(entry.profile, node)
        recommender = Recommender(entry.profile, predictor, power_model)
        return cls(
            entry=entry,
            predictor=predictor,
            power_model=power_model,
            recommender=recommender,
            version=entry.model_version,
        )


class ModelBundleCache:
    """Caches :class:`ModelBundle`\\ s keyed on knowledge-DB entries.

    The key is ``(app_name, problem_size, node_class)``: on a
    heterogeneous cluster the same knowledge entry carries one fitted
    triple per hardware class (the power coefficients differ), while a
    homogeneous cluster sees exactly the old one-bundle-per-entry
    behavior.  A cached bundle is only served while its entry is still
    the one in the knowledge DB (re-profiling an app invalidates its
    bundles).  The ``hits`` / ``misses`` counters let tests assert the
    warm path builds each bundle exactly once.

    The cache is shared by every pipeline consumer, including the
    ``clip-sched serve`` request handlers, so all state transitions
    happen under an internal :class:`threading.RLock`: the
    check-fit-insert sequence in :meth:`get_or_build` is atomic
    (concurrent requests for the same cold key fit the models exactly
    once, the losers block briefly and reuse the winner's bundle) and
    the ``hits`` / ``misses`` counters cannot lose increments.  The
    single-threaded warm path pays one uncontended lock acquisition,
    which is noise next to the allocator work a decision does.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._bundles: dict[tuple[str, str, str], ModelBundle] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._bundles)

    def get_or_build(self, entry: KnowledgeEntry, node: NodeSpec) -> ModelBundle:
        """Return the entry's bundle for *node*'s class, fitting the
        models on first use (atomic: exactly one fit per cold key even
        under concurrent callers)."""
        key = entry.key + (node.name,)
        with self._lock:
            cached = self._bundles.get(key)
            # validity compares the *model inputs* (profile, NP,
            # calibration, version), not full entry equality: outcome
            # observations appending to the entry must not churn the
            # fitted triple, while a re-profile or refit rebuilds it
            if cached is not None and (
                cached.entry is entry or cached.entry.same_models(entry)
            ):
                self.hits += 1
                return cached
            self.misses += 1
            bundle = ModelBundle.from_entry(entry, node)
            self._bundles[key] = bundle
            return bundle

    def invalidate(self, key: tuple[str, str] | None = None) -> None:
        """Drop one entry's bundles (every class) or everything.

        *key* is the knowledge-DB key, ``(app_name, problem_size)``;
        any 2-element sequence is accepted and normalized.  Passing a
        full 3-element bundle key (or anything else) raises
        :class:`ValueError` instead of silently matching nothing.
        """
        if key is None:
            with self._lock:
                self._bundles.clear()
            return
        key = tuple(key)
        if len(key) != 2:
            raise ValueError(
                "invalidate expects the knowledge key (app_name, "
                f"problem_size); got {key!r}"
            )
        with self._lock:
            for k in [k for k in self._bundles if k[:2] == key]:
                self._bundles.pop(k, None)

    def stats(self) -> dict:
        """One consistent snapshot of the cache counters."""
        with self._lock:
            return {
                "bundles": len(self._bundles),
                "hits": self.hits,
                "misses": self.misses,
            }


# ----------------------------------------------------------------------
# decision output
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulingDecision:
    """Everything Algorithm 1 outputs for one job."""

    app_name: str
    cluster_budget_w: float
    scalability_class: ScalabilityClass
    inflection_point: int | None
    allocation: ClusterAllocation
    node_configs: tuple[NodeConfig, ...]
    phase_threads: dict[str, int] = field(default_factory=dict)
    #: Model generation the decision was made with (bumped by refits).
    model_version: int = 1
    #: True when epsilon-greedy exploration overrode the model's pick.
    explored: bool = False

    @property
    def n_nodes(self) -> int:
        """Suggested number of active compute nodes."""
        return self.allocation.n_nodes

    @property
    def n_threads(self) -> int:
        """Suggested active cores per node (uniform across nodes)."""
        return self.node_configs[0].n_threads

    @property
    def total_capped_w(self) -> float:
        """Sum of all programmed caps — must be <= the budget."""
        return float(sum(c.node_budget_w for c in self.node_configs))

    @property
    def predicted_perf(self) -> float:
        """Predicted job throughput (iterations/s)."""
        return self.allocation.predicted_cluster_perf

    @property
    def per_node_caps(self) -> tuple[tuple[float, ...], ...]:
        """Per-slot cap tuples as programmed into the hardware.

        Two entries (PKG, DRAM) on CPU nodes, three (PKG, DRAM, GPU)
        on accelerator nodes; a mixed fleet mixes lengths.  CPU-only
        decisions therefore serialize and compare exactly as before.
        """
        return tuple(
            (c.pkg_cap_w, c.dram_cap_w, c.gpu_cap_w)
            if c.has_gpu_grant
            else (c.pkg_cap_w, c.dram_cap_w)
            for c in self.node_configs
        )

    def to_execution_config(self, iterations: int | None = None) -> ExecutionConfig:
        """Translate the decision into an engine configuration."""
        return ExecutionConfig(
            n_nodes=self.n_nodes,
            n_threads=self.n_threads,
            affinity=self.node_configs[0].affinity,
            per_node_caps=self.per_node_caps,
            iterations=iterations,
            phase_threads=dict(self.phase_threads),
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (persisted / wire format).

        The per-slot ``node_ranges_w`` key appears only for decisions
        made on a heterogeneous cluster, so homogeneous documents stay
        byte-identical to previous releases.
        """
        alloc_dict = {
            "n_nodes": self.allocation.n_nodes,
            "node_budgets_w": list(self.allocation.node_budgets_w),
            "node_lo_w": self.allocation.node_lo_w,
            "node_hi_w": self.allocation.node_hi_w,
            "predicted_cluster_perf": self.allocation.predicted_cluster_perf,
        }
        if self.allocation.node_ranges_w is not None:
            alloc_dict["node_ranges_w"] = [
                [lo, hi] for lo, hi in self.allocation.node_ranges_w
            ]
        if self.allocation.rack_budgets_w is not None:
            alloc_dict["rack_budgets_w"] = list(self.allocation.rack_budgets_w)
        d = {
            "app_name": self.app_name,
            "cluster_budget_w": self.cluster_budget_w,
            "scalability_class": self.scalability_class.value,
            "inflection_point": self.inflection_point,
            "allocation": alloc_dict,
            "node_configs": [self._config_dict(c) for c in self.node_configs],
            "phase_threads": dict(self.phase_threads),
        }
        # learning keys appear only once learning has acted, so
        # learning-off documents stay byte-identical to the goldens
        if self.model_version != 1:
            d["model_version"] = self.model_version
        if self.explored:
            d["explored"] = True
        return d

    @staticmethod
    def _config_dict(c: NodeConfig) -> dict:
        """One node config's JSON form; GPU keys appear only when a
        device grant exists, so CPU documents stay byte-identical."""
        d = {
            "n_threads": c.n_threads,
            "affinity": c.affinity.value,
            "pkg_cap_w": c.pkg_cap_w,
            "dram_cap_w": c.dram_cap_w,
            "predicted_frequency_hz": c.predicted_frequency_hz,
            "predicted_perf": c.predicted_perf,
        }
        if c.has_gpu_grant:
            d["gpu_cap_w"] = c.gpu_cap_w
            d["predicted_gpu_clock_hz"] = c.predicted_gpu_clock_hz
        return d

    @classmethod
    def from_dict(cls, raw: dict) -> "SchedulingDecision":
        """Rebuild a decision from :meth:`to_dict` output."""
        alloc = raw["allocation"]
        return cls(
            app_name=raw["app_name"],
            cluster_budget_w=float(raw["cluster_budget_w"]),
            scalability_class=ScalabilityClass(raw["scalability_class"]),
            inflection_point=raw["inflection_point"],
            allocation=ClusterAllocation(
                n_nodes=int(alloc["n_nodes"]),
                node_budgets_w=tuple(float(b) for b in alloc["node_budgets_w"]),
                node_lo_w=float(alloc["node_lo_w"]),
                node_hi_w=float(alloc["node_hi_w"]),
                predicted_cluster_perf=float(alloc["predicted_cluster_perf"]),
                node_ranges_w=(
                    tuple(
                        (float(lo), float(hi))
                        for lo, hi in alloc["node_ranges_w"]
                    )
                    if alloc.get("node_ranges_w") is not None
                    else None
                ),
                rack_budgets_w=(
                    tuple(float(b) for b in alloc["rack_budgets_w"])
                    if alloc.get("rack_budgets_w") is not None
                    else None
                ),
            ),
            node_configs=tuple(
                NodeConfig(
                    n_threads=int(c["n_threads"]),
                    affinity=AffinityKind(c["affinity"]),
                    pkg_cap_w=float(c["pkg_cap_w"]),
                    dram_cap_w=float(c["dram_cap_w"]),
                    predicted_frequency_hz=float(c["predicted_frequency_hz"]),
                    predicted_perf=float(c["predicted_perf"]),
                    gpu_cap_w=float(c.get("gpu_cap_w", 0.0)),
                    predicted_gpu_clock_hz=float(
                        c.get("predicted_gpu_clock_hz", 0.0)
                    ),
                )
                for c in raw["node_configs"]
            ),
            phase_threads={
                str(k): int(v) for k, v in raw["phase_threads"].items()
            },
            model_version=int(raw.get("model_version", 1)),
            explored=bool(raw.get("explored", False)),
        )


# ----------------------------------------------------------------------
# context and trace
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DecisionContext:
    """Immutable state threaded through the pipeline stages.

    The request fields (app, budget, options) are set once; each stage
    fills in its own output field via :func:`dataclasses.replace` and
    hands a new context to the next stage.
    """

    app: WorkloadCharacteristics
    cluster_budget_w: float
    predefined_node_counts: tuple[int, ...] | None = None
    allocation_mode: str = "predictive"
    # stage outputs
    knowledge_hit: bool | None = None
    profile: AppProfile | None = None
    scalability_class: ScalabilityClass | None = None
    entry: KnowledgeEntry | None = None
    bundle: ModelBundle | None = None
    allocation: ClusterAllocation | None = None
    decision: SchedulingDecision | None = None

    def to_dict(self) -> dict:
        """JSON-safe summary of the request and stage progress."""
        return {
            "app_name": self.app.name,
            "problem_size": self.app.problem_size,
            "cluster_budget_w": self.cluster_budget_w,
            "predefined_node_counts": (
                list(self.predefined_node_counts)
                if self.predefined_node_counts is not None
                else None
            ),
            "allocation_mode": self.allocation_mode,
            "knowledge_hit": self.knowledge_hit,
            "scalability_class": (
                self.scalability_class.value
                if self.scalability_class is not None
                else None
            ),
            "inflection_point": (
                self.entry.inflection_point if self.entry is not None else None
            ),
            "decision": (
                self.decision.to_dict() if self.decision is not None else None
            ),
        }


@dataclass(frozen=True)
class StageRecord:
    """One stage's execution record inside a :class:`DecisionTrace`."""

    stage: str
    wall_time_s: float
    inputs: dict
    outputs: dict

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "stage": self.stage,
            "wall_time_s": self.wall_time_s,
            "inputs": self.inputs,
            "outputs": self.outputs,
        }


@dataclass
class DecisionTrace:
    """Structured record of one pipeline pass, stage by stage."""

    stages: list[StageRecord] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Wall time summed over the recorded stages."""
        return sum(s.wall_time_s for s in self.stages)

    def record(self, record: StageRecord) -> None:
        """Append one stage's record."""
        self.stages.append(record)

    def stage(self, name: str) -> StageRecord:
        """The named stage's record; raises on an unknown stage."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(name)

    def to_dict(self) -> dict:
        """JSON-safe representation (stage timings first)."""
        return {
            "total_time_s": self.total_time_s,
            "stages": [s.to_dict() for s in self.stages],
        }


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------


class ProfileStage:
    """Look the job up in the knowledge DB; smart-profile on a miss."""

    name = "profile"

    def __init__(self, knowledge: KnowledgeDB, profiler: SmartProfiler):
        self._kb = knowledge
        self._profiler = profiler

    def run(self, ctx: DecisionContext) -> DecisionContext:
        """Fill ``ctx.profile`` (and ``ctx.entry`` on a DB hit)."""
        app = ctx.app
        if self._kb.has(app.name, app.problem_size):
            entry = self._kb.get(app.name, app.problem_size)
            return replace(
                ctx, knowledge_hit=True, entry=entry, profile=entry.profile
            )
        return replace(
            ctx, knowledge_hit=False, profile=self._profiler.profile(app)
        )

    def outputs(self, ctx: DecisionContext) -> dict:
        """Trace summary of this stage's products."""
        return {
            "knowledge_hit": ctx.knowledge_hit,
            "n_samples": ctx.profile.n_samples,
        }


class ClassifyStage:
    """Derive the scalability class from the profiling ratio."""

    name = "classify"

    def run(self, ctx: DecisionContext) -> DecisionContext:
        """Fill ``ctx.scalability_class``."""
        return replace(ctx, scalability_class=ctx.profile.scalability_class)

    def outputs(self, ctx: DecisionContext) -> dict:
        """Trace summary of this stage's products."""
        return {
            "scalability_class": ctx.scalability_class.value,
            "ratio": ctx.profile.ratio,
        }


class InflectionStage:
    """Predict NP for non-linear classes and run the confirmation sample."""

    name = "inflection"

    def __init__(
        self,
        knowledge: KnowledgeDB,
        profiler: SmartProfiler,
        inflection: InflectionPredictor,
    ):
        self._kb = knowledge
        self._profiler = profiler
        self._inflection = inflection

    def run(self, ctx: DecisionContext) -> DecisionContext:
        """Fill ``ctx.entry`` and persist it to the knowledge DB."""
        if ctx.entry is not None:  # knowledge hit — NP already recorded
            return ctx
        profile = ctx.profile
        np_pred: int | None = None
        if ctx.scalability_class.is_nonlinear:
            np_pred = self._inflection.predict(profile)
            profile = self._profiler.confirm(ctx.app, profile, np_pred)
        entry = KnowledgeEntry(profile=profile, inflection_point=np_pred)
        self._kb.put(entry)
        return replace(ctx, entry=entry, profile=profile)

    def outputs(self, ctx: DecisionContext) -> dict:
        """Trace summary of this stage's products."""
        return {"inflection_point": ctx.entry.inflection_point}


class FitModelsStage:
    """Fetch (or fit once) the entry's performance/power/recommender triple."""

    name = "fit_models"

    def __init__(self, cache: ModelBundleCache, node: NodeSpec):
        self._cache = cache
        self._node = node
        # stage instances are shared across concurrent pipeline passes
        # (the serve daemon's handlers), so the only per-pass scratch —
        # whether this pass fitted or reused — lives in a thread-local
        self._scratch = threading.local()

    def run(self, ctx: DecisionContext) -> DecisionContext:
        """Fill ``ctx.bundle`` from the shared cache."""
        was_built = self._cache.misses
        bundle = self._cache.get_or_build(ctx.entry, self._node)
        self._scratch.fitted = self._cache.misses > was_built
        return replace(ctx, bundle=bundle)

    def outputs(self, ctx: DecisionContext) -> dict:
        """Trace summary of this stage's products."""
        return {
            "bundle_cached": not getattr(self._scratch, "fitted", False),
            "bundle_version": ctx.bundle.version,
        }


class AllocateStage:
    """Choose the node count and variability-coordinated per-node budgets.

    On a heterogeneous cluster (``node_specs`` given) each slot's own
    acceptable power range — from its hardware class's fitted power
    model — is handed to the allocator, so a Broadwell slot is budgeted
    against Broadwell coefficients even though the decision's
    concurrency is uniform.
    """

    name = "allocate"

    def __init__(
        self,
        n_total_nodes: int,
        node_factors: np.ndarray,
        variability_threshold: float,
        node_specs: tuple[NodeSpec, ...] | None = None,
        bundle_cache: ModelBundleCache | None = None,
        rack_of_slot: tuple[int, ...] | None = None,
        rack_names: tuple[str, ...] | None = None,
    ):
        self._n_total = n_total_nodes
        self._factors = node_factors
        self._threshold = variability_threshold
        self._node_specs = node_specs
        self._cache = bundle_cache
        self._rack_of = rack_of_slot
        self._rack_names = rack_names

    def _slot_ranges(
        self, ctx: DecisionContext
    ) -> tuple[tuple[float, float], ...] | None:
        if self._node_specs is None:
            return None
        by_spec: dict[NodeSpec, tuple[float, float]] = {}
        for spec in dict.fromkeys(self._node_specs):
            rec = self._cache.get_or_build(ctx.entry, spec).recommender
            rng = rec.power_model.power_range(rec.unbounded_concurrency())
            by_spec[spec] = (rec.min_floor_w(), rng.node_hi_w)
        return tuple(by_spec[s] for s in self._node_specs)

    def run(self, ctx: DecisionContext) -> DecisionContext:
        """Fill ``ctx.allocation``."""
        allocator = ClusterAllocator(
            ctx.bundle.recommender,
            self._n_total,
            node_factors=self._factors,
            variability_threshold=self._threshold,
            node_ranges=self._slot_ranges(ctx),
            rack_of_slot=self._rack_of,
            rack_names=self._rack_names,
        )
        allocation = allocator.allocate(
            ctx.cluster_budget_w,
            predefined=ctx.predefined_node_counts,
            mode=ctx.allocation_mode,
        )
        return replace(ctx, allocation=allocation)

    def outputs(self, ctx: DecisionContext) -> dict:
        """Trace summary of this stage's products."""
        return {
            "n_nodes": ctx.allocation.n_nodes,
            "total_allocated_w": ctx.allocation.total_allocated_w,
            "n_racks": ctx.allocation.n_racks,
        }


class RecommendStage:
    """Recommend per-node configs for each node's budget; emit the decision.

    On a heterogeneous cluster each slot's budget is split into PKG and
    DRAM caps by its own class's power model, so the cap pair matches
    the silicon it will be programmed on.
    """

    name = "recommend"

    def __init__(
        self,
        node_specs: tuple[NodeSpec, ...] | None = None,
        bundle_cache: ModelBundleCache | None = None,
    ):
        self._node_specs = node_specs
        self._cache = bundle_cache

    def run(self, ctx: DecisionContext) -> DecisionContext:
        """Fill ``ctx.decision``."""
        recommender = ctx.bundle.recommender
        allocation = ctx.allocation
        configs = []
        base = recommender.recommend(min(allocation.node_budgets_w))
        # split/frequency are pure functions of (budget, hardware
        # class); on a coordinated fleet most ranks share a handful of
        # distinct budgets, so memoize per (budget, class) instead of
        # re-deriving caps node by node
        split_memo: dict[tuple[float, int], NodeConfig] = {}
        for rank, budget in enumerate(allocation.node_budgets_w):
            # Keep concurrency uniform across ranks (one decomposition);
            # each node spends its own budget on frequency headroom.
            if self._node_specs is None:
                bundle = ctx.bundle
                key = (budget, 0)
            else:
                bundle = self._cache.get_or_build(
                    ctx.entry, self._node_specs[rank]
                )
                key = (budget, id(bundle.power_model))
            cfg = split_memo.get(key)
            if cfg is None:
                power_model = bundle.power_model
                if power_model.gpu_power_range()[1] > 0.0:
                    # GPU node: three-domain split, re-running the
                    # host↔device shift against this rank's budget
                    cfg = bundle.recommender.config_at(budget, base)
                else:
                    pkg, dram = power_model.split_node_budget(
                        budget, base.n_threads
                    )
                    f = power_model.max_freq_under(pkg, base.n_threads)
                    cfg = replace(
                        base,
                        pkg_cap_w=pkg,
                        dram_cap_w=dram,
                        predicted_frequency_hz=(
                            f if f is not None else base.predicted_frequency_hz
                        ),
                        # this rank has no device, whatever class slot 0 is
                        gpu_cap_w=0.0,
                        predicted_gpu_clock_hz=0.0,
                    )
                split_memo[key] = cfg
            configs.append(cfg)
        # phase-by-phase concurrency adjustment (§V-B.1): a phase whose
        # time did not improve from half- to all-core keeps the smaller
        # count (only kept when below the global choice)
        overrides = {
            name: n
            for name, n in recommender.phase_overrides().items()
            if n < base.n_threads
        }
        decision = SchedulingDecision(
            app_name=ctx.app.name,
            cluster_budget_w=ctx.cluster_budget_w,
            scalability_class=ctx.profile.scalability_class,
            inflection_point=ctx.entry.inflection_point,
            allocation=allocation,
            node_configs=tuple(configs),
            phase_threads=overrides,
            model_version=ctx.bundle.version,
        )
        return replace(ctx, decision=decision)

    def outputs(self, ctx: DecisionContext) -> dict:
        """Trace summary of this stage's products."""
        return {
            "n_threads": ctx.decision.n_threads,
            "total_capped_w": ctx.decision.total_capped_w,
            "phase_overrides": len(ctx.decision.phase_threads),
        }


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------


class DecisionPipeline:
    """The shared, staged scheduling core every consumer composes.

    Owns the knowledge DB, the smart profiler, the trained inflection
    predictor, the calibrated node factors, and the
    :class:`ModelBundleCache` — the full state Algorithm 1 needs.  All
    entry points are thin compositions of the same six stages:

    * :meth:`ensure_knowledge` — stages 1–3 (profile, classify, NP);
    * :meth:`bundle_for` — stages 1–4, returning the fitted models;
    * :meth:`decide` / :meth:`decide_traced` — the full chain;
    * :meth:`decide_many` — the batch entry point.
    """

    def __init__(
        self,
        engine: ExecutionEngine,
        inflection: InflectionPredictor,
        knowledge: KnowledgeDB | None = None,
        profiler: SmartProfiler | None = None,
        node_factors: np.ndarray | None = None,
        variability_threshold: float = VARIABILITY_THRESHOLD,
        monitor: BudgetInvariantMonitor | None = None,
        learning: LearningConfig | None = None,
    ):
        self._engine = engine
        self._kb = knowledge if knowledge is not None else KnowledgeDB()
        self._profiler = profiler or SmartProfiler(engine)
        self._monitor = monitor if monitor is not None else BudgetInvariantMonitor()
        self._learning = learning if learning is not None else LearningConfig()
        if self._learning.enabled:
            # a learning pipeline may refit the MLR corpus online; give
            # it a private copy so shared/session-cached predictors
            # (and every learning-off consumer) stay untouched
            inflection = copy.deepcopy(inflection)
        self._inflection = inflection
        self._learn_lock = threading.Lock()
        self._outcomes = 0
        self._refits = 0
        self._inflection_refits = 0
        self._explorations = 0
        self._factors = (
            np.asarray(node_factors, dtype=np.float64)
            if node_factors is not None
            else measure_node_factors(engine)
        )
        self._threshold = variability_threshold
        self._bundles = ModelBundleCache()
        cluster_spec = engine.cluster.spec
        self._node_specs = cluster_spec.node_specs
        self._hetero = not cluster_spec.is_homogeneous
        # fingerprint observations are keyed by: "8xhaswell" reads as
        # 8 slots of the haswell class, mixed fleets concatenate runs
        self._testbed = "+".join(
            f"{len(tuple(group))}x{name}"
            for name, group in itertools.groupby(
                s.name for s in self._node_specs
            )
        )
        hetero_specs = self._node_specs if self._hetero else None
        # rack structure engages only on multi-rack fleets, so legacy
        # single-rack specs keep their decisions bit-identical
        multirack = cluster_spec.n_racks > 1
        self._rack_of = cluster_spec.rack_of_slot if multirack else None
        self._rack_names = cluster_spec.rack_names if multirack else None
        node = self._node_specs[0]
        self._knowledge_stages = (
            ProfileStage(self._kb, self._profiler),
            ClassifyStage(),
            InflectionStage(self._kb, self._profiler, inflection),
        )
        self._model_stage = FitModelsStage(self._bundles, node)
        self._decision_stages = (
            AllocateStage(
                engine.cluster.n_nodes,
                self._factors,
                variability_threshold,
                node_specs=hetero_specs,
                bundle_cache=self._bundles if self._hetero else None,
                rack_of_slot=self._rack_of,
                rack_names=self._rack_names,
            ),
            RecommendStage(
                node_specs=hetero_specs,
                bundle_cache=self._bundles if self._hetero else None,
            ),
        )

    # -- shared state --------------------------------------------------

    @property
    def engine(self) -> ExecutionEngine:
        """The execution engine decisions are made for."""
        return self._engine

    @property
    def knowledge(self) -> KnowledgeDB:
        """The knowledge database (shared, persistable)."""
        return self._kb

    @property
    def bundle_cache(self) -> ModelBundleCache:
        """The shared fitted-model cache."""
        return self._bundles

    @property
    def monitor(self) -> BudgetInvariantMonitor:
        """The shared budget-invariant auditor (one ledger per pipeline)."""
        return self._monitor

    @property
    def node_factors(self) -> np.ndarray:
        """Calibrated per-node power-efficiency factors."""
        return self._factors.copy()

    @property
    def stages(self) -> tuple:
        """The six stages, in execution order."""
        return (
            *self._knowledge_stages,
            self._model_stage,
            *self._decision_stages,
        )

    # -- stage execution -----------------------------------------------

    def _run_stage(
        self, stage, ctx: DecisionContext, trace: DecisionTrace | None
    ) -> DecisionContext:
        if trace is None:
            return stage.run(ctx)
        inputs = {
            "app_name": ctx.app.name,
            "problem_size": ctx.app.problem_size,
            "cluster_budget_w": ctx.cluster_budget_w,
        }
        start = time.perf_counter()
        out = stage.run(ctx)
        elapsed = time.perf_counter() - start
        trace.record(
            StageRecord(
                stage=stage.name,
                wall_time_s=elapsed,
                inputs=inputs,
                outputs=stage.outputs(out) if hasattr(stage, "outputs") else {},
            )
        )
        return out

    def _ensure_knowledge_ctx(
        self, ctx: DecisionContext, trace: DecisionTrace | None
    ) -> DecisionContext:
        for stage in self._knowledge_stages:
            ctx = self._run_stage(stage, ctx, trace)
        return ctx

    # -- entry points --------------------------------------------------

    def ensure_knowledge(self, app: WorkloadCharacteristics) -> KnowledgeEntry:
        """Return the app's knowledge entry, profiling on a miss.

        Profiling is the 2-sample smart profile, plus — for non-linear
        classes — the NP prediction and the confirmation sample.
        """
        ctx = DecisionContext(app=app, cluster_budget_w=0.0)
        return self._ensure_knowledge_ctx(ctx, None).entry

    def bundle_for(self, app: WorkloadCharacteristics) -> ModelBundle:
        """The app's fitted model bundle (stages 1–4, cached).

        On a heterogeneous cluster this is the primary (slot-0) class's
        bundle; use :meth:`class_bundle` for another hardware class.
        """
        ctx = DecisionContext(app=app, cluster_budget_w=0.0)
        ctx = self._ensure_knowledge_ctx(ctx, None)
        return self._run_stage(self._model_stage, ctx, None).bundle

    def class_bundle(
        self, entry: KnowledgeEntry, node: NodeSpec
    ) -> ModelBundle:
        """The entry's bundle fitted for one hardware class (cached)."""
        return self._bundles.get_or_build(entry, node)

    @property
    def node_specs(self) -> tuple[NodeSpec, ...]:
        """Per-slot node specs of the cluster decisions are made for."""
        return self._node_specs

    @property
    def testbed(self) -> str:
        """Fingerprint of the fleet observations are recorded against."""
        return self._testbed

    @property
    def learning(self) -> LearningConfig:
        """The learning configuration this pipeline runs under."""
        return self._learning

    # -- the outcome choke point ---------------------------------------

    def record_outcome(
        self,
        app: WorkloadCharacteristics,
        decision: SchedulingDecision | None = None,
        result=None,
        *,
        predicted_perf: float | None = None,
        measured_perf: float | None = None,
        predicted_power_w: float | None = None,
        measured_power_w: float | None = None,
        budget_w: float | None = None,
        n_nodes: int | None = None,
        n_threads: int | None = None,
        model_version: int | None = None,
        source: str = "runtime",
        flags: tuple[str, ...] = (),
    ) -> ObservationRecord | None:
        """Report one completed job's outcome (the single choke point).

        Every consumer — both queue drain policies, the segment
        runtime, and the serve daemon — funnels completions through
        here.  The predicted side defaults from *decision* (and the
        measured side from *result*, a
        :class:`~repro.sim.trace.RunResult`); explicit keyword values
        override either.  The observation is appended to the app's
        knowledge entry (capped history), and — **only when learning is
        enabled** — the :class:`~repro.core.learning.RefitPolicy` may
        trigger a refit: the per-segment time calibration is re-fitted
        from the observation window, the entry's ``model_version`` is
        bumped, exactly that knowledge key is invalidated in the bundle
        cache, and (when the history pins an empirically better knee)
        the MLR inflection corpus is augmented.

        Returns the recorded observation, or ``None`` when the app has
        no knowledge entry or the measurement is degenerate.  With
        learning disabled this is pure telemetry: no model, cache, or
        decision changes — the golden suites enforce that bit-for-bit.
        """
        flags = tuple(flags)
        if decision is not None:
            predicted_perf = (
                decision.predicted_perf
                if predicted_perf is None
                else predicted_perf
            )
            predicted_power_w = (
                decision.total_capped_w
                if predicted_power_w is None
                else predicted_power_w
            )
            budget_w = (
                decision.cluster_budget_w if budget_w is None else budget_w
            )
            n_nodes = decision.n_nodes if n_nodes is None else n_nodes
            n_threads = decision.n_threads if n_threads is None else n_threads
            model_version = (
                decision.model_version
                if model_version is None
                else model_version
            )
            if decision.explored and "explored" not in flags:
                flags = (*flags, "explored")
        if result is not None:
            measured_perf = (
                result.performance if measured_perf is None else measured_perf
            )
            if measured_power_w is None and result.total_time_s > 0:
                measured_power_w = result.energy_j / result.total_time_s
        if (
            predicted_perf is None
            or measured_perf is None
            or budget_w is None
            or n_nodes is None
            or n_threads is None
        ):
            raise SchedulingError(
                "record_outcome needs a decision/result pair or explicit "
                "predicted_perf, measured_perf, budget_w, n_nodes, n_threads"
            )
        if predicted_perf <= 0 or measured_perf <= 0:
            return None
        obs = ObservationRecord(
            predicted_time_s=1.0 / predicted_perf,
            measured_time_s=1.0 / measured_perf,
            predicted_power_w=float(predicted_power_w or 0.0),
            measured_power_w=float(measured_power_w or 0.0),
            budget_w=float(budget_w),
            n_nodes=int(n_nodes),
            n_threads=int(n_threads),
            testbed=self._testbed,
            model_version=int(model_version or 1),
            source=source,
            flags=flags,
        )
        with self._learn_lock:
            if not self._kb.has(app.name, app.problem_size):
                return None
            entry = self._kb.get(app.name, app.problem_size)
            new_entry = entry.with_observation(obs)
            if self._learning.enabled and self._learning.refit.should_refit(
                new_entry
            ):
                new_entry = self._refit_entry(new_entry)
                self._refits += 1
                self._bundles.invalidate(entry.key)
            self._kb.put(new_entry)
            self._outcomes += 1
        return obs

    def _refit_entry(self, entry: KnowledgeEntry) -> KnowledgeEntry:
        """Refit one entry's models from its observation history."""
        calibration = fit_calibration(
            entry.observations, entry.inflection_point
        )
        refitted = entry.with_refit(calibration)
        if entry.profile.scalability_class.is_nonlinear:
            best = empirical_best_concurrency(entry.observations)
            if best is not None and best != entry.inflection_point:
                # observed execution pins the knee elsewhere: feed the
                # evidence to the (private) MLR corpus so future
                # profiles of similar apps predict a better NP
                self._inflection.refit_with(
                    entry.profile.feature_vector(), [float(best)]
                )
                self._inflection_refits += 1
        return refitted

    def count_exploration(self) -> None:
        """Tally one epsilon-greedy override (scheduler-reported)."""
        with self._learn_lock:
            self._explorations += 1

    def learning_stats(self) -> dict:
        """JSON-safe learning-telemetry snapshot."""
        observed_entries = 0
        observations = 0
        refitted_entries = 0
        for key in self._kb.keys():
            entry = self._kb.get(*key)
            if entry.observations:
                observed_entries += 1
                observations += len(entry.observations)
            if entry.model_version > 1:
                refitted_entries += 1
        with self._learn_lock:
            return {
                "enabled": self._learning.enabled,
                "outcomes": self._outcomes,
                "refits": self._refits,
                "inflection_refits": self._inflection_refits,
                "explorations": self._explorations,
                "observed_entries": observed_entries,
                "observations_held": observations,
                "refitted_entries": refitted_entries,
            }

    def decide(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> SchedulingDecision:
        """Run the full pipeline and return the decision."""
        decision, _ = self._decide(
            app,
            cluster_budget_w,
            predefined_node_counts,
            allocation_mode,
            trace=None,
        )
        return decision

    def decide_traced(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> tuple[SchedulingDecision, DecisionTrace]:
        """Run the full pipeline, recording a :class:`DecisionTrace`."""
        return self._decide(
            app,
            cluster_budget_w,
            predefined_node_counts,
            allocation_mode,
            trace=DecisionTrace(),
        )

    def _decide(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None,
        allocation_mode: str,
        trace: DecisionTrace | None,
    ) -> tuple[SchedulingDecision, DecisionTrace | None]:
        if cluster_budget_w <= 0:
            raise SchedulingError("cluster budget must be > 0")
        ctx = DecisionContext(
            app=app,
            cluster_budget_w=cluster_budget_w,
            predefined_node_counts=predefined_node_counts,
            allocation_mode=allocation_mode,
        )
        ctx = self._ensure_knowledge_ctx(ctx, trace)
        ctx = self._run_stage(self._model_stage, ctx, trace)
        for stage in self._decision_stages:
            ctx = self._run_stage(stage, ctx, trace)
        self._audit_decision(ctx, trace)
        return ctx.decision, trace

    def _audit_decision(
        self, ctx: DecisionContext, trace: DecisionTrace | None
    ) -> None:
        """Audit the issued cap set; record the enforcement event.

        The floor/ceiling come from the power model at the decision's
        actual concurrency (the allocator may have reasoned at another
        one), with the DRAM cap margin folded into the ceiling — see
        :meth:`~repro.core.powermodel.ClipPowerModel.cap_ceiling_w`.
        """
        decision = ctx.decision
        if not self._hetero:
            power = ctx.bundle.power_model
            rng = power.power_range(decision.n_threads)
            lo_bound: float | tuple = rng.node_lo_w
            hi_bound: float | tuple = power.cap_ceiling_w(decision.n_threads)
        else:
            # per-rank bounds from each slot's own class power model
            models = [
                self._bundles.get_or_build(
                    ctx.entry, self._node_specs[r]
                ).power_model
                for r in range(decision.n_nodes)
            ]
            lo_bound = tuple(
                m.power_range(decision.n_threads).node_lo_w for m in models
            )
            hi_bound = tuple(
                m.cap_ceiling_w(decision.n_threads) for m in models
            )
        start = time.perf_counter()
        audit = self._monitor.audit(
            "pipeline",
            decision.app_name,
            decision.cluster_budget_w,
            decision.per_node_caps,
            node_lo_w=lo_bound,
            node_hi_w=hi_bound,
        )
        rack_budgets = decision.allocation.rack_budgets_w
        if rack_budgets is not None:
            # hierarchical contract: rack shares stay under the cluster
            # budget, and each rack's issued caps stay under its share
            self._monitor.audit_split(
                "pipeline.rack",
                decision.app_name,
                decision.cluster_budget_w,
                rack_budgets,
            )
            rack_of = self._rack_of
            caps = list(decision.per_node_caps)
            # slots fill in rack order, so each rack's caps are one
            # contiguous run — a single walk audits every rack
            n, i, k = decision.n_nodes, 0, 0
            while i < n:
                r = rack_of[i]
                j = i
                while j < n and rack_of[j] == r:
                    j += 1
                self._monitor.audit(
                    f"pipeline.rack/{self._rack_names[r]}",
                    decision.app_name,
                    rack_budgets[k],
                    tuple(caps[i:j]),
                )
                i, k = j, k + 1
        if trace is not None:
            trace.record(
                StageRecord(
                    stage="audit",
                    wall_time_s=time.perf_counter() - start,
                    inputs={
                        "app_name": decision.app_name,
                        "cluster_budget_w": decision.cluster_budget_w,
                    },
                    outputs={
                        "ok": audit.ok,
                        "total_capped_w": audit.total_capped_w,
                        "violations": list(audit.violations),
                    },
                )
            )

    def decide_many(
        self,
        apps: list[WorkloadCharacteristics],
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> list[SchedulingDecision]:
        """Decide a batch of jobs under one budget, sharing all caches.

        Duplicate ``(app, problem_size)`` submissions collapse to a
        single pipeline pass (the queue workload: many arrivals of few
        distinct applications).  Every submission still gets its *own*
        :class:`SchedulingDecision`: the memoized decision is re-issued
        via :func:`dataclasses.replace` with a fresh ``phase_threads``
        dict, so mutating one queued job's phase overrides (the dict is
        the decision's only mutable field) can never leak into the
        other submissions that happened to share a pipeline pass.
        """
        memo: dict[tuple[str, str], SchedulingDecision] = {}
        out: list[SchedulingDecision] = []
        for app in apps:
            key = (app.name, app.problem_size)
            decision = memo.get(key)
            if decision is None:
                decision = self.decide(
                    app,
                    cluster_budget_w,
                    predefined_node_counts=predefined_node_counts,
                    allocation_mode=allocation_mode,
                )
                memo[key] = decision
            else:
                decision = replace(
                    decision, phase_threads=dict(decision.phase_threads)
                )
            out.append(decision)
        return out
