"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; this module keeps the formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with *float_fmt*; everything else with
    ``str``.  Column widths adapt to the content.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
