"""Perf and correctness guard for the closed-loop learning layer.

Runs the simulated learning campaign (``bench_learning.py``), records
the measurements to ``BENCH_learning.json`` at the repository root,
and enforces the ISSUE 10 acceptance bar: the oracle gap over the
campaign's final third is no worse than over its first third, the
learning-off decisions stay byte-identical to the golden captures
while outcomes are recorded, every issued cap set audits clean, and
the converged warm path costs at most 10% over a learning-off
scheduler.
"""

from bench_learning import run_learning_bench

#: Campaign length floor (ISSUE 10: a >= 60-decision campaign).
MIN_DECISIONS = 60
#: Converged learning-on decision cost over warm learning-off.
MAX_WARM_OVERHEAD = 1.10


def test_learning_closes_oracle_gap(report):
    payload = run_learning_bench()
    thirds = payload["thirds"]
    learning = payload["learning"]
    identity = payload["golden_identity"]
    overhead = payload["overhead"]

    lines = [
        "closed-loop learning — "
        f"{payload['campaign']['decisions']}-decision campaign "
        f"({payload['campaign']['rounds']} rounds x "
        f"{len(payload['campaign']['apps'])} apps x "
        f"{len(payload['campaign']['budgets_w'])} budgets)",
        f"  oracle gap: first {thirds['first']['mean_gap']:.4f} -> "
        f"middle {thirds['middle']['mean_gap']:.4f} -> "
        f"final {thirds['final']['mean_gap']:.4f}",
        f"  learner   : {learning['outcomes']} outcomes, "
        f"{learning['refits']} refits, "
        f"{learning['explorations']} explorations, "
        f"{learning['refitted_entries']} entries refitted",
        f"  golden    : {identity['checked']} learning-off decisions "
        f"re-checked with {identity['outcomes_recorded']} outcomes "
        f"recorded — identical: {identity['identical']}",
        f"  audits    : {payload['audit']['audits']} "
        f"(violations {payload['audit']['violations']})",
        f"  warm path : {overhead['on_per_decision_s'] * 1e6:.0f} us "
        f"learned vs {overhead['off_per_decision_s'] * 1e6:.0f} us off "
        f"({overhead['ratio']:.2f}x)",
    ]
    report("perf_learning", "\n".join(lines))

    # The campaign is long enough to mean something.
    assert payload["campaign"]["decisions"] >= MIN_DECISIONS, payload[
        "campaign"
    ]["decisions"]
    # The loop is actually closed: outcomes flowed and refits happened.
    assert learning["outcomes"] >= payload["campaign"]["decisions"]
    assert learning["refits"] > 0, learning
    # Learning converges: the final third is no worse than the first.
    assert (
        thirds["final"]["mean_gap"] <= thirds["first"]["mean_gap"]
    ), thirds
    # Exploration is confined to the low-confidence phase — by the
    # final third every cell is confident and the bandit only exploits.
    assert thirds["final"]["explored"] == 0, thirds
    # Learning off is bit-identical to the golden captures even with
    # observation history accumulating.
    assert identity["identical"], identity["mismatches"]
    # Every cap set issued during the campaign audited clean.
    assert payload["audit"]["violations"] == 0, payload["audit"]
    # The converged warm path stays cheap.
    assert overhead["ratio"] <= MAX_WARM_OVERHEAD, overhead
