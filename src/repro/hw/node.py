"""A simulated compute node.

:class:`SimulatedNode` composes the per-node substrate pieces — power
model (with this node's variability factor), RAPL interface, per-socket
DVFS controllers, NUMA topology, and a power meter — behind the small
surface the execution engine and CLIP's helper tools use.
"""

from __future__ import annotations

from repro.hw.dvfs import DvfsController
from repro.hw.meter import PowerMeter
from repro.hw.numa import NumaTopology
from repro.hw.power import PowerModel
from repro.hw.rapl import Domain, RaplInterface
from repro.hw.specs import NodeSpec

__all__ = ["SimulatedNode"]


class SimulatedNode:
    """One node of the simulated testbed.

    Parameters
    ----------
    spec:
        Static node description.
    node_id:
        Position in the cluster (also used in the default name).
    efficiency:
        Manufacturing-variability multiplier for this part.
    """

    def __init__(self, spec: NodeSpec, node_id: int = 0, efficiency: float = 1.0):
        self._spec = spec
        self._node_id = node_id
        self._power_model = PowerModel(spec, efficiency=efficiency)
        self._rapl = RaplInterface(self._power_model)
        self._dvfs = tuple(
            DvfsController(spec.socket) for _ in range(spec.n_sockets)
        )
        self._numa = NumaTopology(spec)
        self._meter = PowerMeter()

    # -- identity ------------------------------------------------------

    @property
    def spec(self) -> NodeSpec:
        """Static description of the node."""
        return self._spec

    @property
    def node_id(self) -> int:
        """Cluster-wide index of this node."""
        return self._node_id

    @property
    def name(self) -> str:
        """Human-readable node name."""
        return f"{self._spec.name}-{self._node_id:02d}"

    @property
    def efficiency(self) -> float:
        """This part's variability multiplier."""
        return self._power_model.efficiency

    # -- substrate components ------------------------------------------

    @property
    def power_model(self) -> PowerModel:
        """Ground-truth power model (includes the variability factor)."""
        return self._power_model

    @property
    def rapl(self) -> RaplInterface:
        """RAPL cap/measurement interface."""
        return self._rapl

    @property
    def numa(self) -> NumaTopology:
        """NUMA topology of the node."""
        return self._numa

    @property
    def meter(self) -> PowerMeter:
        """Wall-power meter for this node."""
        return self._meter

    def dvfs(self, socket: int) -> DvfsController:
        """Per-socket DVFS controller."""
        return self._dvfs[socket]

    # -- convenience ----------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Physical cores on the node."""
        return self._spec.n_cores

    def set_power_caps(
        self,
        pkg_w: float | None,
        dram_w: float | None,
        gpu_w: float | None = None,
    ) -> None:
        """Program the RAPL limits at once (``None`` clears a limit).

        The GPU limit applies only on accelerator-bearing nodes; on
        CPU-only nodes it is ignored (the domain does not exist).
        """
        self._rapl.set_cap(Domain.PKG, pkg_w)
        self._rapl.set_cap(Domain.DRAM, dram_w)
        if self._spec.has_gpu:
            self._rapl.set_cap(Domain.GPU, gpu_w)

    def reset(self) -> None:
        """Clear caps, traces, injected faults; return DVFS to nominal."""
        self._rapl.clear_caps()
        self._rapl.reset_actuation()
        self._meter.reset()
        for ctrl in self._dvfs:
            ctrl.reset()
