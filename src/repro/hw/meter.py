"""Sampled power measurement.

The paper's helper tools include "a power meter reader" (§IV-B.4) that
records power traces for jobs.  :class:`PowerMeter` plays that role for
the simulated testbed: the execution engine reports each steady-state
interval, and the meter resamples it onto a fixed grid so traces look
like what a physical meter (or RAPL polling loop) produces.

Real sensors also lie.  Polling loops miss windows, I2C buses glitch,
and BMC firmware serves cached values.  :class:`TelemetryFault` models
that *read-side* corruption: the recorded trace stays ground truth
(energy accounting is exact as before), but the watchdog-facing
:meth:`PowerMeter.read_capped_power_w` can return noisy, stale, or
dropped values, seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.hw.power import PowerBreakdown
from repro.units import check_fraction, check_non_negative, check_positive

__all__ = ["PowerSample", "PowerMeter", "TelemetryFault"]


class TelemetryFault:
    """Seeded read-side sensor corruption.

    Parameters
    ----------
    seed:
        RNG seed; the corruption train is reproducible per meter.
    noise_frac:
        Gaussian relative noise applied to each reading
        (``value * (1 + N(0, noise_frac))``, floored at zero).
    drop_prob:
        Probability a reading is lost entirely (returns ``None``).
    stale_reads:
        Serve the *first* corrupted reading for this many subsequent
        reads before resuming live values — a cached-BMC-value hang.

    The attributes are mutable so scripted fault events can tighten or
    relax the corruption mid-run without disturbing the RNG stream.
    """

    def __init__(
        self,
        seed: int = 0,
        noise_frac: float = 0.0,
        drop_prob: float = 0.0,
        stale_reads: int = 0,
    ) -> None:
        check_non_negative(noise_frac, "noise_frac")
        check_fraction(drop_prob, "drop_prob")
        if stale_reads < 0:
            raise ValueError("stale_reads must be >= 0")
        self.noise_frac = noise_frac
        self.drop_prob = drop_prob
        self._rng = random.Random(seed)
        self._stale_left = int(stale_reads)
        self._stale_value: float | None = None

    def make_stale(self, reads: int) -> None:
        """Freeze the next reading and serve it for *reads* reads."""
        if reads < 0:
            raise ValueError("stale_reads must be >= 0")
        self._stale_left = int(reads)
        self._stale_value = None

    def corrupt(self, value: float) -> float | None:
        """Corrupt one truthful reading (``None`` = reading lost)."""
        if self._stale_left > 0:
            self._stale_left -= 1
            if self._stale_value is None:
                self._stale_value = value
            return self._stale_value
        self._stale_value = None
        if self.drop_prob > 0.0 and self._rng.random() < self.drop_prob:
            return None
        if self.noise_frac > 0.0:
            value = max(0.0, value * (1.0 + self._rng.gauss(0.0, self.noise_frac)))
        return value


@dataclass(frozen=True)
class PowerSample:
    """One meter reading."""

    t_s: float
    pkg_w: float
    dram_w: float
    other_w: float

    @property
    def total_w(self) -> float:
        """Wall power at the sample instant."""
        return self.pkg_w + self.dram_w + self.other_w


class PowerMeter:
    """Accumulates piecewise-constant power intervals into a trace."""

    def __init__(self, sample_period_s: float = 0.1):
        self._period = check_positive(sample_period_s, "sample_period_s")
        self._t = 0.0
        self._energy_j = 0.0
        self._intervals: list[tuple[float, float, PowerBreakdown]] = []
        self._telemetry: TelemetryFault | None = None

    @property
    def telemetry(self) -> TelemetryFault | None:
        """Active read-side corruption, or ``None`` for a honest sensor."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, fault: TelemetryFault | None) -> None:
        self._telemetry = fault

    @property
    def elapsed_s(self) -> float:
        """Total recorded time."""
        return self._t

    @property
    def energy_j(self) -> float:
        """Exact integrated wall energy over all intervals."""
        return self._energy_j

    def record(self, breakdown: PowerBreakdown, dt_s: float) -> None:
        """Append a steady-state interval of *dt_s* seconds."""
        check_non_negative(dt_s, "dt")
        if dt_s == 0.0:
            return
        self._intervals.append((self._t, self._t + dt_s, breakdown))
        self._t += dt_s
        self._energy_j += breakdown.total_w * dt_s

    def capped_power_w(self) -> float:
        """Truthful capped-domain power of the most recent interval.

        Sums exactly the domains that caps govern (PKG + DRAM, plus GPU
        when present) and excludes the uncapped component draw — the
        quantity enforcement compares against a node's issued caps.
        """
        if not self._intervals:
            return 0.0
        return self._intervals[-1][2].capped_w

    def read_capped_power_w(self) -> float | None:
        """Sensor reading of :meth:`capped_power_w`, possibly corrupted.

        This is the *watchdog-facing* read path: with a telemetry fault
        installed the value may be noisy, stale, or lost (``None``).
        The recorded trace and energy accounting stay truthful either
        way.
        """
        truth = self.capped_power_w()
        if self._telemetry is None:
            return truth
        return self._telemetry.corrupt(truth)

    def average_power_w(self) -> float:
        """Time-weighted average wall power."""
        return self._energy_j / self._t if self._t > 0 else 0.0

    def peak_power_w(self) -> float:
        """Highest interval wall power."""
        if not self._intervals:
            return 0.0
        return max(b.total_w for _, _, b in self._intervals)

    def samples(self) -> list[PowerSample]:
        """Resample the trace on the meter's fixed period.

        Each sample reports the power of the interval containing the
        sample instant, matching a polling meter's behaviour.
        """
        out: list[PowerSample] = []
        if not self._intervals:
            return out
        times = np.arange(0.0, self._t, self._period)
        starts = np.array([s for s, _, _ in self._intervals])
        idx = np.searchsorted(starts, times, side="right") - 1
        for t, i in zip(times, idx):
            b = self._intervals[int(i)][2]
            out.append(
                PowerSample(
                    t_s=float(t), pkg_w=b.pkg_w, dram_w=b.dram_w, other_w=b.other_w
                )
            )
        return out

    def reset(self) -> None:
        """Clear the trace, counters, and any telemetry fault."""
        self._t = 0.0
        self._energy_j = 0.0
        self._intervals.clear()
        self._telemetry = None
