"""Tests for the package thermal model."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.hw.thermal import ThermalModel, ThermalSpec


class TestSpec:
    def test_defaults_sane(self):
        spec = ThermalSpec()
        # an uncapped 120 W package equilibrates below the junction
        # limit in a normal machine room
        assert spec.steady_state_c(120.0) < spec.t_junction_max_c
        assert spec.max_sustainable_power_w() > 120.0

    def test_tau(self):
        spec = ThermalSpec(r_c_per_w=0.5, c_j_per_c=100.0)
        assert spec.tau_s == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalSpec(r_c_per_w=0.0)
        with pytest.raises(SpecError):
            ThermalSpec(t_junction_max_c=20.0, t_ambient_c=28.0)
        with pytest.raises(SpecError):
            ThermalSpec(t_hysteresis_c=-1.0)


class TestDynamics:
    def test_starts_at_ambient(self):
        model = ThermalModel()
        assert model.temperature_c == pytest.approx(ThermalSpec().t_ambient_c)

    def test_converges_to_steady_state(self):
        model = ThermalModel()
        spec = model.spec
        model.run(100.0, duration_s=10 * spec.tau_s, dt_s=5.0)
        assert model.temperature_c == pytest.approx(
            spec.steady_state_c(100.0), abs=0.1
        )

    def test_exact_solution_step_size_independent(self):
        a = ThermalModel()
        b = ThermalModel()
        a.run(150.0, duration_s=60.0, dt_s=1.0)
        b.run(150.0, duration_s=60.0, dt_s=15.0)
        assert a.temperature_c == pytest.approx(b.temperature_c, rel=1e-9)

    def test_monotone_warming_under_constant_power(self):
        model = ThermalModel()
        temps = [s.temperature_c for s in model.run(150.0, 120.0, dt_s=2.0)]
        assert temps == sorted(temps)

    def test_cooling_after_load_drop(self):
        model = ThermalModel()
        model.run(150.0, 200.0)
        hot = model.temperature_c
        model.run(20.0, 200.0)
        assert model.temperature_c < hot

    def test_rejects_negative_power(self):
        with pytest.raises(SpecError):
            ThermalModel().step(-1.0, 1.0)


class TestThrottle:
    def _hot_spec(self):
        # a failing fan: resistance doubles, sustainable power halves
        return ThermalSpec(r_c_per_w=0.9)

    def test_unsustainable_power_throttles(self):
        model = ThermalModel(self._hot_spec())
        assert model.spec.max_sustainable_power_w() < 100.0
        samples = model.run(110.0, duration_s=2000.0, dt_s=5.0)
        assert any(s.throttled for s in samples)

    def test_sustainable_power_never_throttles(self):
        model = ThermalModel()
        samples = model.run(120.0, duration_s=5000.0, dt_s=10.0)
        assert not any(s.throttled for s in samples)

    def test_hysteresis_holds_throttle(self):
        spec = self._hot_spec()
        model = ThermalModel(spec)
        model.reset(temperature_c=spec.t_junction_max_c - 0.5)
        model.step(200.0, 10.0)  # unsustainable burst trips PROCHOT
        assert model.throttled
        model.step(0.0, 1.0)  # cools a little, still inside the band
        assert model.throttled
        model.step(0.0, 10 * spec.tau_s)  # cools far below: releases
        assert not model.throttled

    def test_time_to_throttle_analytic(self):
        spec = self._hot_spec()
        model = ThermalModel(spec)
        eta = model.time_to_throttle_s(120.0)
        assert eta is not None and eta > 0
        # integrate just short of eta: not yet throttled
        model.run(120.0, duration_s=eta * 0.95, dt_s=eta / 200)
        assert not model.throttled
        model.run(120.0, duration_s=eta * 0.1, dt_s=eta / 200)
        assert model.throttled

    def test_time_to_throttle_none_when_sustainable(self):
        model = ThermalModel()
        assert model.time_to_throttle_s(100.0) is None

    def test_time_to_throttle_zero_when_hot(self):
        spec = self._hot_spec()
        model = ThermalModel(spec)
        model.reset(temperature_c=spec.t_junction_max_c + 1.0)
        assert model.time_to_throttle_s(150.0) == 0.0
