"""Tests for the comparison schedulers (§V-C)."""

import pytest

from repro.baselines import (
    AllInScheduler,
    CoordinatedScheduler,
    LowerLimitScheduler,
    OracleScheduler,
)
from repro.baselines.allin import ALLIN_MEM_W
from repro.baselines.lowerlimit import NODE_FLOOR_W
from repro.errors import InfeasibleBudgetError
from repro.workloads.apps import get_app


class TestAllIn:
    def test_uses_all_nodes_all_cores(self, engine):
        cfg = AllInScheduler(engine).plan(get_app("comd"), 1600.0)
        assert cfg.n_nodes == 8
        assert cfg.n_threads == 24

    def test_fixed_memory_grant(self, engine):
        cfg = AllInScheduler(engine).plan(get_app("stream"), 1600.0)
        assert cfg.dram_cap_w == pytest.approx(ALLIN_MEM_W)
        assert cfg.pkg_cap_w == pytest.approx(1600.0 / 8 - ALLIN_MEM_W)

    def test_oblivious_to_application(self, engine):
        sched = AllInScheduler(engine)
        a = sched.plan(get_app("comd"), 1600.0)
        b = sched.plan(get_app("stream"), 1600.0)
        assert (a.pkg_cap_w, a.dram_cap_w, a.n_threads) == (
            b.pkg_cap_w,
            b.dram_cap_w,
            b.n_threads,
        )

    def test_absurd_budget_raises(self, engine):
        with pytest.raises(InfeasibleBudgetError):
            AllInScheduler(engine).plan(get_app("comd"), 200.0)

    def test_run_produces_result(self, engine):
        r = AllInScheduler(engine).run(get_app("comd"), 1600.0, iterations=2)
        assert r.n_nodes == 8
        assert r.performance > 0


class TestLowerLimit:
    def test_sheds_nodes_below_floor(self, engine):
        cfg = LowerLimitScheduler(engine).plan(get_app("comd"), 900.0)
        assert cfg.n_nodes == 5  # floor(900 / 180)

    def test_all_nodes_when_budget_allows(self, engine):
        cfg = LowerLimitScheduler(engine).plan(get_app("comd"), 8 * 200.0)
        assert cfg.n_nodes == 8

    def test_budget_below_floor_raises(self, engine):
        with pytest.raises(InfeasibleBudgetError):
            LowerLimitScheduler(engine).plan(get_app("comd"), 150.0)

    def test_custom_floor(self, engine):
        cfg = LowerLimitScheduler(engine, node_floor_w=220.0).plan(
            get_app("comd"), 900.0
        )
        assert cfg.n_nodes == 4

    def test_floor_must_exceed_mem_grant(self, engine):
        with pytest.raises(InfeasibleBudgetError):
            LowerLimitScheduler(engine, node_floor_w=20.0)

    def test_still_all_cores(self, engine):
        cfg = LowerLimitScheduler(engine).plan(get_app("sp-mz.C"), 1100.0)
        assert cfg.n_threads == 24


class TestCoordinated:
    def test_app_specific_floor(self, engine):
        sched = CoordinatedScheduler(engine)
        light = sched.plan(get_app("ep.C"), 900.0)
        heavy = sched.plan(get_app("stream"), 900.0)
        # different applications may keep different node counts
        assert light.n_nodes >= 1 and heavy.n_nodes >= 1

    def test_model_driven_split(self, engine):
        sched = CoordinatedScheduler(engine)
        mem_cfg = sched.plan(get_app("stream"), 1400.0)
        cpu_cfg = sched.plan(get_app("ep.C"), 1400.0)
        assert mem_cfg.dram_cap_w > cpu_cfg.dram_cap_w

    def test_always_max_concurrency(self, engine):
        sched = CoordinatedScheduler(engine)
        for name in ("sp-mz.C", "tealeaf", "comd"):
            assert sched.plan(get_app(name), 1400.0).n_threads == 24

    def test_profiles_cached_in_kb(self, engine):
        from repro.core.knowledge import KnowledgeDB

        kb = KnowledgeDB()
        sched = CoordinatedScheduler(engine, knowledge=kb)
        sched.plan(get_app("comd"), 1400.0)
        assert kb.has("comd", "-n 240 240 240")
        sched.plan(get_app("comd"), 900.0)  # second plan reuses it
        assert len(kb) == 1

    def test_budget_respected(self, engine):
        cfg = CoordinatedScheduler(engine).plan(get_app("bt-mz.C"), 1200.0)
        assert cfg.n_nodes * (cfg.pkg_cap_w + cfg.dram_cap_w) <= 1200.0 * (1 + 1e-9)


class TestOracle:
    def test_finds_budget_respecting_config(self, engine):
        oracle = OracleScheduler(engine, thread_step=6)
        cfg = oracle.plan(get_app("sp-mz.C"), 1400.0)
        r = engine.run(get_app("sp-mz.C"), cfg)
        drawn = sum(
            n.operating_point.pkg_power_w + n.operating_point.dram_power_w
            for n in r.nodes
        )
        assert drawn <= 1400.0 * (1 + 1e-6)

    def test_oracle_beats_or_matches_allin(self, engine):
        app = get_app("sp-mz.C")
        oracle = OracleScheduler(engine, thread_step=6).run(
            app, 1400.0, iterations=2
        )
        allin = AllInScheduler(engine).run(app, 1400.0, iterations=2)
        assert oracle.performance >= allin.performance * (1 - 1e-9)

    def test_oracle_throttles_parabolic_apps(self, engine):
        cfg = OracleScheduler(engine, thread_step=4).plan(
            get_app("sp-mz.C"), 1800.0
        )
        assert cfg.n_threads < 24

    def test_thread_grid_includes_serial_and_full_node(self, engine):
        grid = OracleScheduler(engine).thread_grid
        n_cores = engine.cluster.spec.node.n_cores
        assert grid[0] == 1  # serial execution is swept, not skipped
        assert grid[-1] == n_cores
        assert grid == tuple(sorted(set(grid)))

    def test_dram_grid_starts_at_hardware_floor(self, engine):
        node = engine.cluster.spec.node
        floor = node.n_sockets * node.socket.memory.p_base_w
        grid = OracleScheduler(engine).dram_grid_w
        assert grid[0] == pytest.approx(floor)
        assert grid[-1] == pytest.approx(node.p_mem_max_w)

    def test_batch_and_scalar_paths_agree(self, engine):
        app = get_app("sp-mz.C")
        batch = OracleScheduler(engine, thread_step=6, use_batch=True)
        scalar = OracleScheduler(engine, thread_step=6, use_batch=False)
        for budget in (900.0, 1400.0):
            assert batch.plan(app, budget) == scalar.plan(app, budget)
            assert batch.search_stats == scalar.search_stats

    def test_search_stats_bookkeeping(self, engine):
        oracle = OracleScheduler(engine, thread_step=6)
        oracle.plan(get_app("comd"), 1200.0)
        stats = oracle.search_stats
        assert stats["candidates"] == stats["pruned"] + stats["evaluated"]
        assert 0 < stats["feasible"] <= stats["evaluated"]

    def test_pruning_is_sound(self, engine):
        """Every pruned candidate really does overshoot the budget.

        At a budget barely above one node's power floor the analytic
        prune fires; executing a pruned-shape candidate must confirm it
        could never have passed the budget filter.
        """
        from repro.baselines.optimal import BUDGET_TOLERANCE
        from repro.sim.engine import ExecutionConfig

        node = engine.cluster.spec.node
        floor_1x1 = (
            node.n_sockets * node.socket.p_base_w
            + node.n_sockets * node.socket.memory.p_base_w
            + node.socket.core.p_leak_w
        )
        budget = floor_1x1 * 1.5
        oracle = OracleScheduler(engine, thread_step=6)
        try:
            oracle.plan(get_app("ep.C"), budget)
        except InfeasibleBudgetError:
            pass  # fine — stats are still recorded
        stats = oracle.search_stats
        assert stats["pruned"] > 0
        # the largest pruned shape: all nodes, all cores
        cfg = ExecutionConfig(
            n_nodes=engine.cluster.n_nodes,
            n_threads=node.n_cores,
            iterations=2,
        )
        r = engine.run(get_app("ep.C"), cfg)
        drawn = sum(
            n.operating_point.pkg_power_w + n.operating_point.dram_power_w
            for n in r.nodes
        )
        assert drawn > budget * BUDGET_TOLERANCE
