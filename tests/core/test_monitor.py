"""Tests for the cluster-wide budget-invariant monitor."""

import json

import pytest

from repro.core.monitor import BudgetInvariantMonitor
from repro.errors import BudgetInvariantError


@pytest.fixture()
def monitor():
    return BudgetInvariantMonitor()


class TestAudit:
    def test_clean_cap_set_passes(self, monitor):
        audit = monitor.audit(
            "test", "app", 400.0, ((150.0, 40.0), (150.0, 40.0)),
            node_lo_w=100.0, node_hi_w=250.0,
        )
        assert audit.ok
        assert audit.total_capped_w == pytest.approx(380.0)
        assert monitor.n_audits == 1
        assert monitor.n_violations == 0

    def test_sum_over_budget_flagged(self, monitor):
        audit = monitor.audit("test", "app", 300.0, ((150.0, 40.0), (150.0, 40.0)))
        assert not audit.ok
        assert "exceeds cluster budget" in audit.violations[0]
        assert monitor.n_violations == 1

    def test_node_below_floor_flagged(self, monitor):
        audit = monitor.audit(
            "test", "app", 400.0, ((50.0, 10.0), (150.0, 40.0)),
            node_lo_w=100.0, node_hi_w=250.0,
        )
        assert any("below the acceptable floor" in v for v in audit.violations)

    def test_node_above_ceiling_flagged(self, monitor):
        audit = monitor.audit(
            "test", "app", 1000.0, ((200.0, 90.0),),
            node_lo_w=100.0, node_hi_w=250.0,
        )
        assert any("above the acceptable ceiling" in v for v in audit.violations)

    def test_negative_cap_flagged(self, monitor):
        audit = monitor.audit("test", "app", 400.0, ((-5.0, 40.0),))
        assert any("negative cap" in v for v in audit.violations)

    def test_float_roundoff_tolerated(self, monitor):
        total = 400.0 + 1e-10
        audit = monitor.audit("test", "app", 400.0, ((total / 2, total / 2),))
        assert audit.ok

    def test_range_checks_skipped_without_range(self, monitor):
        audit = monitor.audit("test", "app", 400.0, ((10.0, 5.0),))
        assert audit.ok  # only the budget-sum invariant applies


class TestLedger:
    def test_assert_clean_raises_with_context(self, monitor):
        monitor.audit("pipeline", "a", 400.0, ((300.0, 200.0),))
        monitor.audit("runtime", "b", 400.0, ((100.0, 50.0),))
        with pytest.raises(BudgetInvariantError, match="pipeline"):
            monitor.assert_clean()

    def test_assert_clean_passes_when_clean(self, monitor):
        monitor.audit("runtime", "b", 400.0, ((100.0, 50.0),))
        monitor.assert_clean()

    def test_reset_clears_trail(self, monitor):
        monitor.audit("x", "a", 100.0, ((90.0, 20.0),))
        monitor.reset()
        assert monitor.n_audits == 0
        monitor.assert_clean()

    def test_report_is_json_safe(self, monitor):
        monitor.audit("pipeline", "a", 400.0, ((100.0, 50.0),))
        monitor.audit("runtime", "a", 400.0, ((500.0, 50.0),))
        payload = json.loads(json.dumps(monitor.report()))
        assert payload["n_audits"] == 2
        assert payload["n_violations"] == 1
        assert payload["audits_by_source"] == {"pipeline": 1, "runtime": 1}
        assert len(payload["violations"]) == 1
        assert payload["violations"][0]["source"] == "runtime"


class TestPipelineWiring:
    def test_every_decision_is_audited(self, engine, trained_inflection):
        from repro.core.scheduler import ClipScheduler
        from repro.workloads.apps import get_app

        clip = ClipScheduler(engine, inflection=trained_inflection)
        assert clip.monitor.n_audits == 0
        clip.schedule(get_app("comd"), 1400.0)
        clip.schedule(get_app("comd"), 900.0)
        assert clip.monitor.n_audits == 2
        assert clip.monitor.n_violations == 0
        assert clip.monitor.audits[0].source == "pipeline"

    def test_trace_records_audit_event(self, engine, trained_inflection):
        from repro.core.scheduler import ClipScheduler
        from repro.workloads.apps import get_app

        clip = ClipScheduler(engine, inflection=trained_inflection)
        _, trace = clip.schedule_traced(get_app("comd"), 1400.0)
        record = trace.stage("audit")
        assert record.outputs["ok"] is True
        assert record.outputs["violations"] == []
        assert record.outputs["total_capped_w"] <= 1400.0 + 1e-6
