"""Unit tests for variability, the power meter, and node/cluster glue."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecError
from repro.hw.cluster import SimulatedCluster
from repro.hw.meter import PowerMeter
from repro.hw.node import SimulatedNode
from repro.hw.power import PowerBreakdown
from repro.hw.rapl import Domain
from repro.hw.specs import haswell_node, haswell_testbed
from repro.hw.variability import VariabilityModel


class TestVariability:
    def test_deterministic_in_seed(self):
        a = VariabilityModel(8, sigma=0.03, seed=5)
        b = VariabilityModel(8, sigma=0.03, seed=5)
        np.testing.assert_array_equal(a.factors, b.factors)

    def test_different_seeds_differ(self):
        a = VariabilityModel(8, sigma=0.03, seed=5)
        b = VariabilityModel(8, sigma=0.03, seed=6)
        assert not np.array_equal(a.factors, b.factors)

    def test_zero_sigma_is_homogeneous(self):
        m = VariabilityModel(8, sigma=0.0)
        np.testing.assert_array_equal(m.factors, np.ones(8))
        assert m.spread == pytest.approx(0.0)

    def test_truncation(self):
        m = VariabilityModel(1000, sigma=0.05, seed=1)
        assert np.all(m.factors >= 1 - 3 * 0.05 - 1e-12)
        assert np.all(m.factors <= 1 + 3 * 0.05 + 1e-12)

    def test_slowdown_is_relative_to_best(self):
        m = VariabilityModel(8, sigma=0.03, seed=2017)
        s = m.slowdown_under_uniform_cap()
        assert s.min() == pytest.approx(1.0)
        assert s.max() == pytest.approx(1.0 + m.spread)

    def test_factor_of_bounds(self):
        m = VariabilityModel(4)
        with pytest.raises(SpecError):
            m.factor_of(4)

    def test_rejects_bad_params(self):
        with pytest.raises(SpecError):
            VariabilityModel(0)
        with pytest.raises(SpecError):
            VariabilityModel(4, sigma=0.6)

    @given(st.integers(min_value=1, max_value=64), st.integers())
    def test_spread_nonnegative(self, n, seed):
        m = VariabilityModel(n, sigma=0.03, seed=seed % 2**31)
        assert m.spread >= 0.0


class TestPowerMeter:
    def test_energy_integration(self):
        meter = PowerMeter()
        meter.record(PowerBreakdown(100.0, 20.0, 30.0), 2.0)
        meter.record(PowerBreakdown(50.0, 10.0, 30.0), 1.0)
        assert meter.elapsed_s == pytest.approx(3.0)
        assert meter.energy_j == pytest.approx(150 * 2 + 90 * 1)

    def test_average_power(self):
        meter = PowerMeter()
        meter.record(PowerBreakdown(100.0, 0.0, 0.0), 1.0)
        meter.record(PowerBreakdown(200.0, 0.0, 0.0), 1.0)
        assert meter.average_power_w() == pytest.approx(150.0)

    def test_peak_power(self):
        meter = PowerMeter()
        meter.record(PowerBreakdown(100.0, 0.0, 0.0), 1.0)
        meter.record(PowerBreakdown(200.0, 0.0, 0.0), 0.1)
        assert meter.peak_power_w() == pytest.approx(200.0)

    def test_samples_follow_intervals(self):
        meter = PowerMeter(sample_period_s=0.5)
        meter.record(PowerBreakdown(100.0, 0.0, 0.0), 1.0)
        meter.record(PowerBreakdown(200.0, 0.0, 0.0), 1.0)
        samples = meter.samples()
        assert len(samples) == 4
        assert samples[0].total_w == pytest.approx(100.0)
        assert samples[-1].total_w == pytest.approx(200.0)

    def test_empty_meter(self):
        meter = PowerMeter()
        assert meter.samples() == []
        assert meter.average_power_w() == 0.0
        assert meter.peak_power_w() == 0.0

    def test_zero_duration_ignored(self):
        meter = PowerMeter()
        meter.record(PowerBreakdown(100.0, 0.0, 0.0), 0.0)
        assert meter.elapsed_s == 0.0

    def test_reset(self):
        meter = PowerMeter()
        meter.record(PowerBreakdown(100.0, 0.0, 0.0), 1.0)
        meter.reset()
        assert meter.elapsed_s == 0.0
        assert meter.energy_j == 0.0


class TestSimulatedNode:
    def test_composition(self):
        node = SimulatedNode(haswell_node(), node_id=3, efficiency=1.05)
        assert node.node_id == 3
        assert node.n_cores == 24
        assert node.efficiency == pytest.approx(1.05)
        assert "03" in node.name

    def test_set_power_caps(self):
        node = SimulatedNode(haswell_node())
        node.set_power_caps(150.0, 25.0)
        assert node.rapl.caps()[Domain.PKG] == pytest.approx(150.0)
        assert node.rapl.caps()[Domain.DRAM] == pytest.approx(25.0)

    def test_reset_clears_state(self):
        node = SimulatedNode(haswell_node())
        node.set_power_caps(150.0, 25.0)
        node.dvfs(0).set_all(1.2e9)
        node.reset()
        assert all(v is None for v in node.rapl.caps().values())
        assert node.dvfs(0).frequency_of(0) == pytest.approx(
            node.spec.socket.f_nominal
        )


class TestSimulatedCluster:
    def test_testbed_shape(self):
        c = SimulatedCluster.testbed()
        assert c.n_nodes == 8
        assert len(c.nodes) == 8

    def test_nodes_carry_variability(self):
        c = SimulatedCluster.testbed()
        effs = [n.efficiency for n in c.nodes]
        np.testing.assert_allclose(effs, c.variability.factors)

    def test_node_lookup_bounds(self):
        c = SimulatedCluster.testbed()
        with pytest.raises(SpecError):
            c.node(8)

    def test_reset_all(self):
        c = SimulatedCluster.testbed()
        c.node(0).set_power_caps(100.0, 20.0)
        c.reset()
        assert c.node(0).rapl.caps()[Domain.PKG] is None

    def test_aggregates(self):
        spec = haswell_testbed()
        c = SimulatedCluster(spec)
        assert c.p_max_w == pytest.approx(spec.p_cluster_max_w)
        assert c.p_other_total_w == pytest.approx(8 * spec.node.p_other_w)
