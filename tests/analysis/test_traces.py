"""Tests for trace export and run audits."""

import pytest

from repro.analysis.traces import (
    audit_cap_violations,
    cluster_trace_csv,
    samples_to_csv,
    summarize_run,
)
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import get_app


@pytest.fixture()
def run(engine):
    return engine.run(
        get_app("comd"),
        ExecutionConfig(
            n_nodes=2, n_threads=24, pkg_cap_w=150.0, dram_cap_w=25.0, iterations=3
        ),
    )


class TestCsv:
    def test_samples_csv_shape(self, engine, run):
        csv = samples_to_csv(engine.cluster.node(0).meter.samples())
        lines = csv.strip().splitlines()
        assert lines[0] == "t_s,pkg_w,dram_w,other_w,total_w"
        assert len(lines) > 1
        assert all(len(line.split(",")) == 5 for line in lines[1:])

    def test_cluster_csv_covers_participants(self, engine, run):
        csv = cluster_trace_csv(engine.cluster)
        node_ids = {line.split(",")[0] for line in csv.strip().splitlines()[1:]}
        assert node_ids == {"0", "1"}

    def test_empty_meter_header_only(self, engine):
        csv = samples_to_csv(engine.cluster.node(5).meter.samples())
        assert csv.strip().splitlines() == ["t_s,pkg_w,dram_w,other_w,total_w"]


class TestAudit:
    def test_clean_run_has_no_violations(self, run):
        assert audit_cap_violations(run) == []

    def test_starved_cap_is_flagged(self, engine):
        result = engine.run(
            get_app("comd"),
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=40.0, dram_cap_w=25.0,
                iterations=2,
            ),
        )
        violations = audit_cap_violations(result)
        assert len(violations) == 1
        assert violations[0].domain == "pkg"
        assert violations[0].steady_power_w > 40.0


class TestSummary:
    def test_summary_fields(self, run):
        s = summarize_run(run)
        assert s["app"] == "comd"
        assert s["n_nodes"] == 2
        assert s["performance"] == pytest.approx(run.performance)
        assert s["energy_j"] == pytest.approx(run.energy_j)
        assert s["cap_violations"] == 0
        assert s["min_frequency_ghz"] <= s["max_frequency_ghz"]

    def test_duty_cycling_flagged(self, engine):
        result = engine.run(
            get_app("comd"),
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=65.0, dram_cap_w=20.0,
                iterations=2,
            ),
        )
        assert summarize_run(result)["any_duty_cycling"] is True


class TestThermalAssessment:
    def test_normal_run_sustainable(self, run):
        from repro.analysis.traces import assess_thermals

        for a in assess_thermals(run):
            assert a.sustainable
            assert a.time_to_throttle_s is None
            assert a.steady_state_c < 100.0

    def test_degraded_cooling_flags_unsustainable(self, engine, run):
        from repro.analysis.traces import assess_thermals
        from repro.hw.thermal import ThermalSpec

        hot = ThermalSpec(r_c_per_w=1.4, t_ambient_c=35.0)
        assessments = assess_thermals(run, spec=hot)
        assert any(not a.sustainable for a in assessments)
        for a in assessments:
            if not a.sustainable:
                assert a.time_to_throttle_s is not None
                assert a.time_to_throttle_s > 0
