"""Tests for the staged decision pipeline (repro.core.pipeline).

Covers the refactor's contracts:

* golden equivalence — pipeline decisions match the pre-refactor
  scheduler bit for bit on the Table-II suite across a budget sweep;
* warm-path caching — a knowledge-DB hit rebuilds nothing: zero
  profiling runs and exactly one ModelBundle construction across
  repeated ``schedule()`` calls for the same app;
* serialization — ``SchedulingDecision.to_dict``/``from_dict``
  round-trips, JSON-safety of the trace and context;
* the budget invariant — ``total_capped_w <= cluster_budget_w`` for
  every decision the pipeline emits across the app/budget matrix;
* single construction site — no consumer module constructs
  ``PerformancePredictor`` / ``ClipPowerModel`` / ``Recommender``
  directly (grep-enforced).
"""

import json
import re
from pathlib import Path

import pytest

from repro.core.pipeline import DecisionPipeline, SchedulingDecision
from repro.core.scheduler import ClipScheduler
from repro.errors import ClipError
from repro.workloads.apps import TABLE2_APPS, get_app

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_decisions.json"

#: Stage names, in the order Algorithm 1 lists them.
STAGE_ORDER = [
    "profile",
    "classify",
    "inflection",
    "fit_models",
    "allocate",
    "recommend",
]

#: Every trace additionally records the budget-invariant audit event.
TRACE_ORDER = STAGE_ORDER + ["audit"]


@pytest.fixture()
def clip(engine, trained_inflection):
    return ClipScheduler(engine, inflection=trained_inflection)


@pytest.fixture(scope="module")
def warm_clip(trained_inflection):
    """A module-scoped scheduler whose knowledge DB fills up once."""
    from repro.hw.cluster import SimulatedCluster
    from repro.sim.engine import ExecutionEngine

    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    return ClipScheduler(engine, inflection=trained_inflection)


class TestGoldenEquivalence:
    """Refactored pipeline == pre-refactor scheduler, decision for decision."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_full_sweep(self, warm_clip, golden):
        budgets = golden["budgets"]
        for app in TABLE2_APPS:
            for budget in budgets:
                key = f"{app.name}@{budget:.0f}"
                expected = golden["decisions"][key]
                try:
                    d = warm_clip.schedule(app, budget)
                except ClipError as exc:
                    assert expected.get("error") == type(exc).__name__, key
                    continue
                assert "error" not in expected, key
                assert d.n_nodes == expected["n_nodes"], key
                assert d.n_threads == expected["n_threads"], key
                assert d.node_configs[0].affinity.value == expected["affinity"], key
                assert d.inflection_point == expected["inflection_point"], key
                assert d.scalability_class.value == expected["scalability_class"], key
                assert dict(sorted(d.phase_threads.items())) == expected[
                    "phase_threads"
                ], key
                caps = [
                    [round(c.pkg_cap_w, 6), round(c.dram_cap_w, 6)]
                    for c in d.node_configs
                ]
                assert caps == expected["caps"], key
                assert round(d.total_capped_w, 6) == pytest.approx(
                    expected["total_capped_w"], abs=1e-5
                ), key


class TestWarmPath:
    """A knowledge hit must rebuild nothing (satellite regression test)."""

    def test_zero_profiles_one_bundle_when_warm(self, clip, monkeypatch):
        app = get_app("sp-mz.C")
        clip.schedule(app, 1400.0)  # cold: profiles and fits once
        cache = clip.pipeline.bundle_cache
        builds_after_cold = cache.misses
        assert builds_after_cold == 1

        profile_calls = 0
        profiler = clip.pipeline._profiler
        real_profile = profiler.profile

        def counting_profile(app_):
            nonlocal profile_calls
            profile_calls += 1
            return real_profile(app_)

        monkeypatch.setattr(profiler, "profile", counting_profile)
        for budget in (900.0, 1400.0, 2000.0, 1400.0):
            clip.schedule(app, budget)
        assert profile_calls == 0
        assert cache.misses == builds_after_cold  # no re-fit, ever
        assert cache.hits >= 4

    def test_trace_marks_warm_stages(self, clip):
        app = get_app("comd")
        _, cold = clip.schedule_traced(app, 1400.0)
        _, warm = clip.schedule_traced(app, 1400.0)
        assert [s.stage for s in cold.stages] == TRACE_ORDER
        assert [s.stage for s in warm.stages] == TRACE_ORDER
        assert cold.stage("profile").outputs["knowledge_hit"] is False
        assert warm.stage("profile").outputs["knowledge_hit"] is True
        assert cold.stage("fit_models").outputs["bundle_cached"] is False
        assert warm.stage("fit_models").outputs["bundle_cached"] is True

    def test_bundle_shared_across_consumers(self, clip):
        """Scheduler, runtime, planner and multijob reuse one bundle."""
        from repro.core.multijob import MultiJobCoordinator
        from repro.core.planner import BudgetPlanner
        from repro.core.runtime import PowerBoundedRuntime

        app = get_app("comd")
        clip.schedule(app, 1400.0)
        cache = clip.pipeline.bundle_cache
        builds = cache.misses
        PowerBoundedRuntime(clip).launch(app, 1200.0, n_nodes=4)
        MultiJobCoordinator(clip).partition([app], 1400.0)
        BudgetPlanner(clip).max_useful_budget_w(app)
        assert cache.misses == builds  # everyone hit the cached bundle


class TestSerialization:
    """SchedulingDecision and the trace are JSON round-trippable."""

    @pytest.mark.parametrize("name", ["comd", "sp-mz.C", "bt-mz.C"])
    def test_roundtrip_equality(self, warm_clip, name):
        d = warm_clip.schedule(get_app(name), 1400.0)
        wire = json.dumps(d.to_dict())
        back = SchedulingDecision.from_dict(json.loads(wire))
        assert back == d
        assert back.to_dict() == d.to_dict()

    def test_trace_is_json_safe(self, warm_clip):
        _, trace = warm_clip.schedule_traced(get_app("comd"), 1400.0)
        payload = json.loads(json.dumps(trace.to_dict()))
        assert [s["stage"] for s in payload["stages"]] == TRACE_ORDER
        assert payload["total_time_s"] >= 0
        assert all(s["wall_time_s"] >= 0 for s in payload["stages"])

    def test_context_is_json_safe(self, warm_clip):
        from repro.core.pipeline import DecisionContext

        app = get_app("comd")
        ctx = DecisionContext(app=app, cluster_budget_w=1400.0)
        payload = json.loads(json.dumps(ctx.to_dict()))
        assert payload["app_name"] == "comd"
        assert payload["decision"] is None

    @pytest.mark.parametrize("name", [a.name for a in TABLE2_APPS])
    @pytest.mark.parametrize("budget", [700.0, 1200.0, 1800.0, 2400.0])
    def test_budget_invariant_matrix(self, warm_clip, name, budget):
        """Property: every emitted decision respects its power bound."""
        try:
            d = warm_clip.schedule(get_app(name), budget)
        except ClipError:
            return  # infeasible corner of the matrix — nothing emitted
        assert d.total_capped_w <= budget * (1 + 1e-9)
        roundtrip = SchedulingDecision.from_dict(d.to_dict())
        assert roundtrip.total_capped_w <= budget * (1 + 1e-9)


class TestScheduleMany:
    def test_batch_matches_singles(self, warm_clip):
        apps = [get_app("comd"), get_app("sp-mz.C"), get_app("comd")]
        batch = warm_clip.schedule_many(apps, 1400.0)
        assert len(batch) == 3
        assert batch[0] == warm_clip.schedule(get_app("comd"), 1400.0)
        assert batch[1] == warm_clip.schedule(get_app("sp-mz.C"), 1400.0)
        # duplicate submissions share one pipeline pass (equal plans)
        # but each gets its own decision with independent phase_threads
        # — see tests/core/test_concurrency.py for the aliasing
        # regression this prevents
        assert batch[2] == batch[0]
        assert batch[2] is not batch[0]
        assert batch[2].phase_threads is not batch[0].phase_threads

    def test_batch_profiles_each_app_once(self, engine, trained_inflection):
        clip = ClipScheduler(engine, inflection=trained_inflection)
        apps = [get_app("comd")] * 4 + [get_app("minimd")] * 3
        clip.schedule_many(apps, 1400.0)
        assert clip.pipeline.bundle_cache.misses == 2


class TestSingleConstructionSite:
    """Model fitting happens only inside core/pipeline.py."""

    CONSUMERS = [
        "src/repro/core/scheduler.py",
        "src/repro/core/multijob.py",
        "src/repro/core/jobqueue.py",
        "src/repro/core/runtime.py",
        "src/repro/core/planner.py",
        "src/repro/baselines/coordinated.py",
    ]
    FORBIDDEN = re.compile(
        r"\b(PerformancePredictor|ClipPowerModel|Recommender)\s*\("
    )

    @pytest.mark.parametrize("rel_path", CONSUMERS)
    def test_no_direct_model_construction(self, rel_path):
        root = Path(__file__).parent.parent.parent
        source = (root / rel_path).read_text()
        matches = self.FORBIDDEN.findall(source)
        assert not matches, f"{rel_path} constructs models directly: {matches}"


class TestHeterogeneityLayering:
    """No decision-stack module assumes a single node class.

    ``ClusterSpec.node`` is the legacy single-class accessor (it raises
    on mixed clusters); every module under ``core/`` and ``baselines/``
    must go through ``node_specs`` instead, so a heterogeneous cluster
    flows through the whole stack without special cases.  ``node_specs``
    itself does not match — ``_`` is a word character.
    """

    FORBIDDEN = re.compile(r"\bspec\.node\b")

    def _layer_files(self):
        src = Path(__file__).parent.parent.parent / "src" / "repro"
        for layer in ("core", "baselines"):
            yield from sorted((src / layer).glob("*.py"))

    def test_no_single_class_spec_access(self):
        offenders = {
            path.name: self.FORBIDDEN.findall(path.read_text())
            for path in self._layer_files()
            if self.FORBIDDEN.search(path.read_text())
        }
        assert not offenders, (
            f"modules reach for the single-class spec.node accessor: {offenders}"
        )

    def test_layer_scan_is_not_vacuous(self):
        files = list(self._layer_files())
        assert len(files) >= 10, "layering scan found suspiciously few modules"


class TestGpuLayering:
    """``hw/`` GPU internals stay out of the decision stack.

    ``core/`` and ``baselines/`` may consume the accelerator domain
    only through spec-level views (``p_gpu_max_w``,
    ``gpu_cap_levels_w``, ``gpu_level_clocks_hz``, ``has_gpu``, …) —
    never ``GpuSpec`` itself, the RAPL ``Domain.GPU`` enum, or a bare
    ``.gpu`` attribute walk.  The underscore keeps ``.gpu_*`` view
    accessors from matching (``_`` is a word character), exactly like
    the ``node_specs`` carve-out above.
    """

    FORBIDDEN = re.compile(r"\bGpuSpec\b|\bDomain\.GPU\b|\.gpu\b")

    def _layer_files(self):
        src = Path(__file__).parent.parent.parent / "src" / "repro"
        for layer in ("core", "baselines"):
            yield from sorted((src / layer).glob("*.py"))

    def test_no_gpu_internals_in_decision_stack(self):
        offenders = {
            path.name: self.FORBIDDEN.findall(path.read_text())
            for path in self._layer_files()
            if self.FORBIDDEN.search(path.read_text())
        }
        assert not offenders, (
            f"decision-stack modules reach into hw/ GPU internals: {offenders}"
        )

    def test_scan_catches_the_forbidden_forms(self):
        # the regex itself is load-bearing; prove it matches the three
        # access forms and passes the allowed spec-level views
        assert self.FORBIDDEN.search("spec.gpu.p_idle_w")
        assert self.FORBIDDEN.search("GpuSpec()")
        assert self.FORBIDDEN.search("Domain.GPU")
        assert not self.FORBIDDEN.search("node.gpu_cap_levels_w")
        assert not self.FORBIDDEN.search("self._power.gpu_power_range()")


class TestPipelineDirect:
    def test_pipeline_standalone(self, engine, trained_inflection):
        """The pipeline works without the ClipScheduler facade."""
        pipeline = DecisionPipeline(engine, trained_inflection)
        d = pipeline.decide(get_app("comd"), 1400.0)
        assert d.n_nodes >= 1
        assert [s.name for s in pipeline.stages] == STAGE_ORDER

    def test_rejects_nonpositive_budget(self, engine, trained_inflection):
        from repro.errors import SchedulingError

        pipeline = DecisionPipeline(engine, trained_inflection)
        with pytest.raises(SchedulingError):
            pipeline.decide(get_app("comd"), 0.0)
