"""Tests for CLIP's fitted power model and acceptable ranges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.powermodel import ClipPowerModel
from repro.errors import InfeasibleBudgetError, ProfilingError
from repro.units import ghz
from repro.workloads.apps import get_app


@pytest.fixture()
def model_for(profiler, engine):
    node = engine.cluster.spec.node

    def build(name):
        return ClipPowerModel(profiler.profile(get_app(name)), node)

    return build


_COMD_MODEL = None


def _cached_comd_model():
    """Module-level model for hypothesis tests (fixtures are banned
    inside @given because they would be reused across examples)."""
    global _COMD_MODEL
    if _COMD_MODEL is None:
        from repro.core.profile import SmartProfiler
        from repro.hw.cluster import SimulatedCluster
        from repro.sim.engine import ExecutionEngine

        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        profile = SmartProfiler(engine).profile(get_app("comd"))
        _COMD_MODEL = ClipPowerModel(profile, engine.cluster.spec.node)
    return _COMD_MODEL


class TestFit:
    def test_coefficients_physical(self, model_for):
        for name in ("comd", "bt-mz.C", "stream", "ep.C"):
            m = model_for(name)
            assert m.p_base_w >= 0
            assert m.p_core_w >= 0.05
            assert m.mem_base_w >= 0
            assert m.mem_w_per_bw >= 0

    def test_fitted_base_near_truth(self, model_for, engine):
        # ground truth: 2 x 16 W uncore; fits land in a sane band
        m = model_for("comd")
        assert 10.0 <= m.p_base_w <= 70.0

    def test_cpu_power_monotone_in_threads_and_freq(self, model_for):
        m = model_for("comd")
        assert m.cpu_power(24, ghz(2.3)) > m.cpu_power(12, ghz(2.3))
        assert m.cpu_power(12, ghz(2.3)) > m.cpu_power(12, ghz(1.2))

    def test_cpu_power_rejects_negative_threads(self, model_for):
        with pytest.raises(ProfilingError):
            model_for("comd").cpu_power(-1, ghz(2.0))


class TestBandwidthDemand:
    def test_saturating_shape(self, model_for):
        m = model_for("stream")
        d2 = m.bandwidth_demand(2)
        d12 = m.bandwidth_demand(12)
        d24 = m.bandwidth_demand(24)
        assert d2 < d12 <= d24 * (1 + 1e-9)

    def test_interior_not_underestimated(self, model_for):
        # the extraction model must not dip between samples: demand at
        # 16 threads is at least the 12-thread measurement
        m = model_for("bt-mz.C")
        assert m.bandwidth_demand(16) >= m.bandwidth_demand(12)

    def test_mem_power_follows_demand(self, model_for):
        m = model_for("stream")
        assert m.mem_power(24) >= m.mem_power(4)


class TestMaxFreqUnder:
    def test_generous_budget_gives_fmax(self, model_for, engine):
        m = model_for("comd")
        f = m.max_freq_under(500.0, 24)
        assert f == pytest.approx(engine.cluster.spec.node.socket.f_max)

    def test_starved_budget_none(self, model_for):
        m = model_for("comd")
        assert m.max_freq_under(20.0, 24) is None

    def test_monotone_in_budget(self, model_for):
        m = model_for("comd")
        budgets = [105.0, 130.0, 170.0, 210.0]
        freqs = [m.max_freq_under(b, 24) for b in budgets]
        assert all(f is not None for f in freqs)
        assert freqs == sorted(freqs)

    def test_fewer_threads_higher_freq(self, model_for):
        m = model_for("comd")
        f24 = m.max_freq_under(140.0, 24)
        f12 = m.max_freq_under(140.0, 12)
        assert f12 >= f24

    def test_rejects_zero_threads(self, model_for):
        with pytest.raises(ProfilingError):
            model_for("comd").max_freq_under(100.0, 0)

    @settings(max_examples=30, deadline=None)
    @given(budget=st.floats(min_value=60.0, max_value=400.0))
    def test_result_within_dvfs_range(self, budget):
        m = _cached_comd_model()
        f = m.max_freq_under(budget, 24)
        socket = m._node.socket
        if f is not None:
            assert socket.f_min <= f <= socket.f_max


class TestPowerRange:
    def test_range_ordering(self, model_for):
        for name in ("comd", "bt-mz.C", "tealeaf"):
            rng = model_for(name).power_range(24)
            assert rng.cpu_lo_w <= rng.cpu_hi_w
            assert rng.mem_lo_w <= rng.mem_hi_w
            assert rng.node_lo_w < rng.node_hi_w

    def test_contains(self, model_for):
        rng = model_for("comd").power_range(24)
        mid = (rng.node_lo_w + rng.node_hi_w) / 2
        assert rng.contains(mid)
        assert not rng.contains(rng.node_lo_w - 1)
        assert not rng.contains(rng.node_hi_w + 1)

    def test_fewer_threads_lower_floor(self, model_for):
        m = model_for("bt-mz.C")
        assert m.power_range(8).node_lo_w < m.power_range(24).node_lo_w

    def test_memory_intensive_app_keeps_mem_floor(self, model_for):
        # a memory-bound app's DRAM power barely drops at low frequency
        rng = model_for("stream").power_range(24)
        assert rng.mem_lo_w > 0.6 * rng.mem_hi_w

    def test_moderate_bandwidth_app_mem_floor_drops(self, model_for):
        # amg moves real traffic that shrinks at low frequency; EP-style
        # codes sit at the DRAM base power where lo ~= hi
        rng = model_for("amg").power_range(24)
        assert rng.mem_lo_w < 0.95 * rng.mem_hi_w
        rng_ep = model_for("ep.C").power_range(24)
        assert rng_ep.mem_lo_w <= rng_ep.mem_hi_w


class TestBudgetSplit:
    def test_split_sums_within_budget(self, model_for):
        m = model_for("bt-mz.C")
        pkg, dram = m.split_node_budget(200.0, 24)
        assert pkg + dram <= 200.0 * (1 + 1e-9)
        assert pkg > 0 and dram > 0

    def test_memory_app_gets_more_dram(self, model_for):
        _, dram_mem = model_for("stream").split_node_budget(180.0, 24)
        _, dram_cpu = model_for("ep.C").split_node_budget(180.0, 24)
        assert dram_mem > dram_cpu

    def test_infeasible_budget_raises(self, model_for):
        with pytest.raises(InfeasibleBudgetError):
            model_for("comd").split_node_budget(30.0, 24)

    def test_surplus_not_wasted_on_dram(self, model_for):
        # a huge budget should not balloon the DRAM cap past its target
        m = model_for("ep.C")
        _, dram = m.split_node_budget(400.0, 24)
        assert dram < 40.0

    def test_cpu_clipped_at_ceiling(self, model_for):
        m = model_for("ep.C")
        pkg, _ = m.split_node_budget(500.0, 24)
        assert pkg <= m.power_range(24).cpu_hi_w * (1 + 1e-9)
