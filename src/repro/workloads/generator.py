"""Randomized synthetic application generator.

CLIP's inflection-point regression is trained on a corpus of benchmarks
(NPB, HPCC, STREAM, PolyBench — §V-B.2).  We stand that corpus in with
randomized :class:`WorkloadCharacteristics` drawn from ranges wide
enough to cover all three scalability classes; the generator is seeded
and therefore reproducible.

Draws are rejection-filtered so a requested class mix can be produced
(e.g. "give me 40 logarithmic apps" for Fig. 7's training set).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.hw.specs import NodeSpec, haswell_node
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics
from repro.workloads.model import true_scalability_class

__all__ = ["SyntheticAppGenerator"]


class SyntheticAppGenerator:
    """Draws random workloads, optionally conditioned on their class."""

    #: Upper bound on rejection-sampling attempts per requested app.
    MAX_ATTEMPTS = 400

    def __init__(self, node: NodeSpec | None = None, seed: int = 7):
        self._node = node or haswell_node()
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    @property
    def node(self) -> NodeSpec:
        """Node the class labels are evaluated on."""
        return self._node

    def draw(self) -> WorkloadCharacteristics:
        """One unconditioned random workload."""
        rng = self._rng
        self._counter += 1
        # log-uniform memory intensity spanning compute-bound to STREAM
        bpi = float(np.exp(rng.uniform(np.log(0.01), np.log(6.0))))
        instr = float(rng.uniform(2e10, 1.5e11))
        # synchronization cost: log-uniform, scaled with problem size so
        # its share of the iteration time (not its absolute value)
        # decides scalability — large draws flip the app parabolic
        sync = float(
            np.exp(rng.uniform(np.log(1e-4), np.log(2e-1))) * instr / 8e10
        )
        return WorkloadCharacteristics(
            name=f"synthetic-{self._counter:04d}",
            description="generated training workload",
            instructions_per_iter=instr,
            bytes_per_instruction=bpi,
            serial_fraction=float(rng.uniform(0.0, 0.02)),
            sync_cost_s=sync,
            ipc_fraction=float(rng.uniform(0.3, 0.7)),
            shared_fraction=float(rng.uniform(0.05, 0.5)),
            icache_mpki=float(np.exp(rng.uniform(np.log(0.05), np.log(8.0)))),
            comm_pattern=CommPattern.HALO,
            comm_bytes_per_iter=float(rng.uniform(0.0, 3e7)),
            iterations=int(rng.integers(50, 400)),
            problem_size="synthetic",
        )

    def draw_class(self, want: str) -> WorkloadCharacteristics:
        """One random workload whose emergent class equals *want*."""
        if want not in ("linear", "logarithmic", "parabolic"):
            raise WorkloadError(f"unknown class {want!r}")
        for _ in range(self.MAX_ATTEMPTS):
            app = self.draw()
            if true_scalability_class(app, self._node) == want:
                return app
        raise WorkloadError(
            f"could not draw a {want} app in {self.MAX_ATTEMPTS} attempts"
        )

    def corpus(
        self,
        n_linear: int = 15,
        n_logarithmic: int = 25,
        n_parabolic: int = 20,
    ) -> list[WorkloadCharacteristics]:
        """A class-balanced training corpus.

        Defaults are weighted toward the non-linear classes because
        only those contribute inflection points the MLR must predict.
        """
        out: list[WorkloadCharacteristics] = []
        for want, count in (
            ("linear", n_linear),
            ("logarithmic", n_logarithmic),
            ("parabolic", n_parabolic),
        ):
            out.extend(self.draw_class(want) for _ in range(count))
        return out
