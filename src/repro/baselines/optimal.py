"""Oracle: exhaustive configuration search.

The paper repeatedly compares CLIP against "the optimal solution"
found "through an exhaustive search" (Figs. 7–9 discussion).  On the
simulated testbed we can afford the real thing: sweep node counts,
thread counts, both affinities, and a grid of CPU/DRAM splits;
execute each candidate with a short iteration count; keep the best
*budget-respecting* result.

This is also the upper bound the Conductor-style related work would
approach at much higher search cost — CLIP's claim is getting close
with 2–3 profiling runs.

The search runs on the engine's batched evaluation path
(:meth:`ExecutionEngine.evaluate_many`): all surviving candidates are
scored as one ``(n_candidates, n_nodes)`` array program, and
candidates whose *analytic power floor* already exceeds the budget are
pruned before simulation.  The floor comes from the Eq. 4–9 power
model: a node hosting ``n`` threads draws at least

    ``(n_sockets * P_base_pkg + n * P_leak + n_sockets * P_base_dram) * eff``

(zero dynamic power, zero delivered bandwidth), so when the floors of
the participating nodes sum above the tolerated budget the candidate
can never pass the budget filter — skipping it cannot change the
search result.  Pass ``use_batch=False`` to fall back to the scalar
:meth:`ExecutionEngine.run` path; both paths return identical plans.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import accumulate

import numpy as np

from repro.baselines.base import PowerBoundedScheduler
from repro.errors import InfeasibleBudgetError
from repro.hw.numa import AffinityKind
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["OracleScheduler"]

#: Iterations used to score candidates during the search.
SEARCH_ITERATIONS = 2

#: Budget tolerance: a candidate qualifies if the sum of its nodes'
#: steady-state capped power stays within this factor of the budget.
BUDGET_TOLERANCE = 1.0 + 1e-6

#: Extra relative slack applied to the pruning floor so float noise can
#: never prune a candidate the budget filter would have accepted.
_PRUNE_MARGIN = 1.0 + 1e-9


class OracleScheduler(PowerBoundedScheduler):
    """Exhaustive search over the configuration space.

    Parameters
    ----------
    dram_grid_w:
        DRAM-cap grid.  Defaults to the exact hardware floor
        (``n_sockets * P_base_dram``, the lowest cap the memory can
        honor) plus five points up to the DRAM domain maximum.
    thread_step:
        Stride of the thread sweep.  One thread is always tried in
        addition to the stepped range, so ``thread_step=2`` covers
        ``1, 2, 4, ...`` instead of silently skipping serial execution.
    use_batch:
        Score candidates on the vectorized batch path (default).  The
        scalar path is kept as an escape hatch and for equivalence
        testing; both choose the same plan.
    """

    name = "Optimal"

    def __init__(
        self,
        engine: ExecutionEngine,
        dram_grid_w: tuple[float, ...] | None = None,
        thread_step: int = 2,
        use_batch: bool = True,
    ):
        super().__init__(engine)
        classes = list(dict.fromkeys(engine.cluster.spec.node_specs))
        if dram_grid_w is None:
            # every grid point must be honorable on every class: floor
            # at the highest class floor, ceiling at the lowest class max
            lo = max(s.n_sockets * s.socket.memory.p_base_w for s in classes)
            hi = min(s.p_mem_max_w for s in classes)
            dram_grid_w = (lo,) + tuple(
                float(w) for w in np.linspace(lo + 2.0, hi, 5)
            )
        self._dram_grid = dram_grid_w
        self._thread_step = max(1, thread_step)
        min_cores = min(s.n_cores for s in classes)
        self._thread_grid = tuple(
            sorted({1} | set(range(self._thread_step, min_cores + 1, self._thread_step)))
        )
        self._use_batch = use_batch
        self._last_stats: dict[str, int] = {}

    @property
    def thread_grid(self) -> tuple[int, ...]:
        """Thread counts the search sweeps."""
        return self._thread_grid

    @property
    def dram_grid_w(self) -> tuple[float, ...]:
        """DRAM caps the search sweeps."""
        return tuple(self._dram_grid)

    @property
    def search_stats(self) -> dict[str, int]:
        """Bookkeeping of the most recent :meth:`plan` call.

        Keys: ``candidates`` (full enumeration size), ``pruned``
        (skipped by the analytic floor), ``evaluated`` (simulated),
        ``feasible`` (passed the budget filter).
        """
        return dict(self._last_stats)

    def _candidate_node_counts(self) -> tuple[int, ...]:
        """Node counts the exhaustive sweep enumerates.

        A flat (single-rack) cluster sweeps every count — the paper's
        8-node exhaustive search, bit-identical to previous releases.
        A multi-rack fleet decomposes by rack: slots fill in rack
        order and racks repeat the same hardware groups, so the sweep
        needs every count within the first rack plus each whole-rack
        prefix boundary — search cost scales with rack size, not fleet
        size.
        """
        cluster = self.engine.cluster
        if cluster.n_racks <= 1:
            return tuple(range(1, cluster.n_nodes + 1))
        boundaries = list(accumulate(cluster.spec.rack_sizes))
        cands = set(range(1, boundaries[0] + 1))
        cands.update(boundaries)
        return tuple(sorted(cands))

    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """Exhaustively search and return the best budget-respecting config."""
        cluster = self.engine.cluster
        homogeneous = cluster.spec.is_homogeneous
        # Eq. 4-9 floor: per-thread leakage on top of the package and
        # DRAM base powers, scaled by each node's variability factor.
        if homogeneous:
            node = cluster.spec.node_specs[0]
            static_base = (
                node.n_sockets * node.socket.p_base_w
                + node.n_sockets * node.socket.memory.p_base_w
            )
            p_leak = node.socket.core.p_leak_w
            eff_prefix = list(accumulate(n.efficiency for n in cluster.nodes))
        else:
            # mixed cluster: each slot contributes its own class's base
            # and leakage terms, so the floor splits into two prefixes
            static_prefix = list(
                accumulate(
                    (
                        n.spec.n_sockets * n.spec.socket.p_base_w
                        + n.spec.n_sockets * n.spec.socket.memory.p_base_w
                    )
                    * n.efficiency
                    for n in cluster.nodes
                )
            )
            leak_prefix = list(
                accumulate(
                    n.spec.socket.core.p_leak_w * n.efficiency
                    for n in cluster.nodes
                )
            )

        candidates: list[ExecutionConfig] = []
        total = 0
        pruned = 0
        for n_nodes in self._candidate_node_counts():
            node_share = cluster_budget_w / n_nodes
            for dram in self._dram_grid:
                pkg = node_share - dram
                if pkg <= 0:
                    continue
                for n_threads in self._thread_grid:
                    total += len(AffinityKind)
                    if homogeneous:
                        floor = (static_base + n_threads * p_leak) * eff_prefix[
                            n_nodes - 1
                        ]
                    else:
                        floor = (
                            static_prefix[n_nodes - 1]
                            + n_threads * leak_prefix[n_nodes - 1]
                        )
                    if floor > cluster_budget_w * BUDGET_TOLERANCE * _PRUNE_MARGIN:
                        pruned += len(AffinityKind)
                        continue
                    for kind in AffinityKind:
                        candidates.append(
                            ExecutionConfig(
                                n_nodes=n_nodes,
                                n_threads=n_threads,
                                affinity=kind,
                                pkg_cap_w=pkg,
                                dram_cap_w=dram,
                                iterations=SEARCH_ITERATIONS,
                            )
                        )

        if self._use_batch:
            results = self.engine.evaluate_many(app, candidates)
        else:
            results = [self.engine.run(app, cfg) for cfg in candidates]

        best_cfg: ExecutionConfig | None = None
        best_perf = -np.inf
        feasible = 0
        for cfg, result in zip(candidates, results):
            drawn = sum(
                r.operating_point.pkg_power_w + r.operating_point.dram_power_w
                for r in result.nodes
            )
            if drawn > cluster_budget_w * BUDGET_TOLERANCE:
                continue  # cap floor overshot the budget
            feasible += 1
            if result.performance > best_perf:
                best_perf = result.performance
                best_cfg = cfg
        self._last_stats = {
            "candidates": total,
            "pruned": pruned,
            "evaluated": len(candidates),
            "feasible": feasible,
        }
        if best_cfg is None:
            raise InfeasibleBudgetError(
                f"oracle found no budget-respecting configuration at "
                f"{cluster_budget_w:.1f} W"
            )
        return replace(best_cfg, iterations=None)
