"""Hierarchical cluster → rack → node budget partitioning.

A 1,000-node facility does not coordinate power as one flat pool:
FastCap-style hierarchical capping splits the budget at an intermediate
enclosure level first, then solves each enclosure independently — the
split is exact, each sub-problem is small, and the search cost scales
with rack size instead of fleet size.

:func:`split_cluster_budget` implements the two-level split for CLIP:
the cluster budget is divided across racks proportionally to each
rack's aggregate power capacity (the sum of its slots' acceptable
ceilings), clamped into ``[sum(lo), sum(hi)]`` per rack with the same
exact deficit/water-fill machinery the node-level coordinator uses,
then each rack's share is handed to
:func:`~repro.core.coordination.coordinate_power` for the
variability-aware intra-rack split.  Both levels are auditable: the
returned :class:`RackBudget` records carry the rack shares so
:class:`~repro.core.monitor.BudgetInvariantMonitor` can check
``sum(rack budgets) <= cluster budget`` and, per rack,
``sum(node caps) <= rack budget``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coordination import (
    VARIABILITY_THRESHOLD,
    coordinate_power,
    waterfill_surplus,
)
from repro.errors import SchedulingError

__all__ = ["RackBudget", "split_cluster_budget"]


@dataclass(frozen=True)
class RackBudget:
    """One rack's share of the cluster budget.

    ``budget_w`` is the share assigned by the cluster-level split;
    ``allocated_w`` is what the intra-rack coordination actually handed
    out (at most ``budget_w``).  ``lo_w`` / ``hi_w`` are the rack's
    aggregate floor and ceiling (sums over its participating slots).
    """

    index: int
    name: str
    start_slot: int
    n_nodes: int
    budget_w: float
    allocated_w: float
    lo_w: float
    hi_w: float

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "index": self.index,
            "name": self.name,
            "start_slot": self.start_slot,
            "n_nodes": self.n_nodes,
            "budget_w": self.budget_w,
            "allocated_w": self.allocated_w,
            "lo_w": self.lo_w,
            "hi_w": self.hi_w,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RackBudget":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            index=int(raw["index"]),
            name=str(raw["name"]),
            start_slot=int(raw["start_slot"]),
            n_nodes=int(raw["n_nodes"]),
            budget_w=float(raw["budget_w"]),
            allocated_w=float(raw["allocated_w"]),
            lo_w=float(raw["lo_w"]),
            hi_w=float(raw["hi_w"]),
        )


def split_cluster_budget(
    total_budget_w: float,
    factors: np.ndarray,
    lo_w: float | np.ndarray,
    hi_w: float | np.ndarray,
    rack_of_slot: tuple[int, ...] | np.ndarray,
    rack_names: tuple[str, ...] | None = None,
    threshold: float = VARIABILITY_THRESHOLD,
) -> tuple[np.ndarray, tuple[RackBudget, ...]]:
    """Split a cluster budget cluster → rack → node.

    Parameters
    ----------
    total_budget_w:
        Power available to all participating nodes together.
    factors:
        Per-slot efficiency factors (participating slots only).
    lo_w / hi_w:
        Acceptable per-node power range — scalar or one entry per
        participating slot.
    rack_of_slot:
        Rack index of each participating slot.  Slots of one rack must
        be contiguous (slots are filled in rack order).
    rack_names:
        Display names per rack index (defaults to ``rackN``).
    threshold:
        Variability spread below which intra-rack splits stay uniform.

    Returns
    -------
    (budgets, rack_budgets):
        Per-slot budgets (same order as ``factors``) and one
        :class:`RackBudget` per rack with participating slots.

    Raises
    ------
    SchedulingError
        If the budget cannot give every slot its floor, or the slots of
        a rack are not contiguous.
    """
    factors = np.asarray(factors, dtype=np.float64)
    n = len(factors)
    if n < 1:
        raise SchedulingError("need at least one participating node")
    rack_of = np.asarray(rack_of_slot[:n], dtype=np.int64)
    if len(rack_of) != n:
        raise SchedulingError("rack_of_slot must cover every participating slot")
    if np.any(np.diff(rack_of) < 0):
        raise SchedulingError("slots of one rack must be contiguous")
    lo = np.array(np.broadcast_to(np.asarray(lo_w, dtype=np.float64), (n,)))
    hi = np.array(np.broadcast_to(np.asarray(hi_w, dtype=np.float64), (n,)))
    if np.any(lo <= 0) or np.any(hi < lo):
        raise SchedulingError("invalid per-node power ranges")

    # racks that actually hold participating slots, in slot order
    present = np.unique(rack_of)
    n_present = len(present)
    # position of each slot's rack inside `present`
    pos = np.searchsorted(present, rack_of)
    rack_lo = np.bincount(pos, weights=lo, minlength=n_present)
    rack_hi = np.bincount(pos, weights=hi, minlength=n_present)
    sizes = np.bincount(pos, minlength=n_present)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)

    total_eff = min(float(total_budget_w), float(rack_hi.sum()))
    if total_eff < rack_lo.sum() - 1e-9:
        raise SchedulingError(
            f"budget {total_budget_w:.1f} W cannot give {n} nodes their "
            f"floors summing to {rack_lo.sum():.1f} W"
        )

    # cluster → rack: proportional to aggregate capacity, clamped into
    # each rack's [sum(lo), sum(hi)], then the clipping error moved
    # back exactly (same deficit / water-fill machinery as the node
    # level)
    shares = np.clip(total_eff * rack_hi / rack_hi.sum(), rack_lo, rack_hi)
    deficit = shares.sum() - total_eff
    if deficit > 1e-9:
        room = shares - rack_lo
        if room.sum() > 1e-12:
            shares = shares - deficit * room / room.sum()
        shares = np.clip(shares, rack_lo, rack_hi)
    elif deficit < -1e-9:
        shares = waterfill_surplus(shares, -deficit, rack_hi, rack_hi)

    # rack → node: the existing variability-aware coordinator per rack
    budgets = np.empty(n)
    records = []
    for k in range(n_present):
        s, e = int(starts[k]), int(starts[k] + sizes[k])
        rack_nodes = coordinate_power(
            float(shares[k]), factors[s:e], lo[s:e], hi[s:e], threshold
        )
        budgets[s:e] = rack_nodes
        r = int(present[k])
        records.append(
            RackBudget(
                index=r,
                name=rack_names[r] if rack_names is not None else f"rack{r}",
                start_slot=s,
                n_nodes=int(sizes[k]),
                budget_w=float(shares[k]),
                allocated_w=float(rack_nodes.sum()),
                lo_w=float(rack_lo[k]),
                hi_w=float(rack_hi[k]),
            )
        )
    return budgets, tuple(records)
