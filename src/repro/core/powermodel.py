"""CLIP's node power model (Eqs. 5–9) fitted from profiling samples.

The framework decomposes node power into processor power (base + one
load term per active core, Eq. 7) and memory power (base + a
bandwidth-driven load term, Eq. 9).  CLIP fits those coefficients from
the two mandatory profiling samples — it has measured (threads, RAPL
PKG power, RAPL DRAM power, delivered bandwidth, frequency) at the
half-core and all-core points, which is exactly enough to solve the
two-parameter models.

Frequency dependence uses public facts only: the DVFS range from the
machine specification and a generic Haswell dynamic-power exponent.
From the fitted model CLIP derives the application's **acceptable
power range** ``[P_cpu,L2 + P_mem,L2, P_cpu,L1 + P_mem,L1]`` (power at
lowest/highest frequency, §III-B.1), the quantity the cluster-level
allocator reasons in, plus the CPU/DRAM split of a node budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profile import AppProfile
from repro.errors import InfeasibleBudgetError, ProfilingError
from repro.hw.specs import NodeSpec

__all__ = ["PowerRange", "ClipPowerModel"]

#: CLIP-side assumptions about per-core power: a leakage share that does
#: not scale with frequency, and the dynamic exponent.  These are
#: textbook Haswell constants, not readings of the simulator's ground
#: truth (which may differ per part).
LEAKAGE_SHARE = 0.15
DYN_EXPONENT = 2.4

#: Multiplier on the estimated DRAM load power when setting the DRAM
#: cap: headroom against demand-estimation error is nearly free (the
#: cap is a ceiling; power follows delivered traffic).
DRAM_CAP_MARGIN = 1.25

#: Headroom over the DRAM *floor*: base DRAM power varies across nodes
#: with manufacturing variability, and a cap programmed below a node's
#: base power is unenforceable (the hardware violates it).
DRAM_FLOOR_HEADROOM = 1.08


@dataclass(frozen=True)
class PowerRange:
    """Per-node acceptable power range for one app at one concurrency.

    The GPU bounds default to zero: on CPU-only nodes the domain is
    absent and contributes nothing to the node range.  On GPU nodes
    the bounds cover the device grant — the full ladder for offloaded
    apps, the idle draw for host-only apps (the board still burns it).
    """

    cpu_lo_w: float
    cpu_hi_w: float
    mem_lo_w: float
    mem_hi_w: float
    gpu_lo_w: float = 0.0
    gpu_hi_w: float = 0.0

    @property
    def node_lo_w(self) -> float:
        """Lower bound of the acceptable node power range."""
        return self.cpu_lo_w + self.mem_lo_w + self.gpu_lo_w

    @property
    def node_hi_w(self) -> float:
        """Upper bound — more power than this is wasted on the node."""
        return self.cpu_hi_w + self.mem_hi_w + self.gpu_hi_w

    def contains(self, node_budget_w: float) -> bool:
        """Whether a node budget falls inside the acceptable range."""
        return self.node_lo_w <= node_budget_w <= self.node_hi_w


class ClipPowerModel:
    """Eq. 5–9 coefficients fitted from one application's profile."""

    def __init__(self, profile: AppProfile, node: NodeSpec):
        self._node = node
        self._f_min = node.socket.f_min
        self._f_max = node.socket.f_max
        self._f_nom = node.socket.f_nominal

        half, all_ = profile.half_run, profile.all_run

        # --- processor: pkg = B + n * c * g(f)  (Eq. 7) -----------------
        # Each sample configuration was measured at both frequency
        # extremes (§III-B.1), giving four (n, f, pkg) points; the
        # frequency spread separates the base term from the per-core
        # load term, which two same-frequency points cannot.
        points = []
        for run in (half, all_):
            points.append((run.n_threads, run.frequency_hz, run.pkg_w))
            points.append((run.n_threads, run.frequency_lo_hz, run.pkg_lo_w))
        A = np.array([[1.0, n * self._freq_factor(f)] for n, f, _ in points])
        b = np.array([p for _, _, p in points])
        (base, per_core), *_ = np.linalg.lstsq(A, b, rcond=None)
        # Physical guards: both terms must be non-negative; a tiny or
        # negative per-core estimate means the samples were power-flat.
        self._p_base = float(max(base, 0.0))
        self._p_core = float(max(per_core, 0.05))

        # --- memory: dram = mb + k * bandwidth  (Eq. 9) ----------------
        bw1 = half.events.memory_bandwidth
        bw2 = all_.events.memory_bandwidth
        if abs(bw2 - bw1) > 1e6:
            k = (all_.dram_w - half.dram_w) / (bw2 - bw1)
            mb = all_.dram_w - k * bw2
        else:
            k, mb = 0.0, min(half.dram_w, all_.dram_w)
        self._mem_base = float(np.clip(mb, 0.0, min(half.dram_w, all_.dram_w)))
        self._mem_per_bw = float(max(k, 0.0))

        # measured anchors for interpolation over thread counts
        self._bw_samples = sorted(
            [(half.n_threads, bw1), (all_.n_threads, bw2)]
        )
        self._dram_lo_samples = sorted(
            [(half.n_threads, half.dram_lo_w), (all_.n_threads, all_.dram_lo_w)]
        )
        self._pkg_hi_samples = sorted(
            [(half.n_threads, half.pkg_w), (all_.n_threads, all_.pkg_w)]
        )
        self._dram_hi_samples = sorted(
            [(half.n_threads, half.dram_w), (all_.n_threads, all_.dram_w)]
        )
        self._pkg_lo_samples = sorted(
            [(half.n_threads, half.pkg_lo_w), (all_.n_threads, all_.pkg_lo_w)]
        )
        self._memory_intensive = profile.memory_intensive

        # --- accelerator domain (Eq. 5 extended) -----------------------
        # The device has no fitted coefficients: its power quantizes to
        # the published clock ladder (a machine-specification fact,
        # like the DVFS range), so the model only needs to know whether
        # this application drives the device (measured during
        # profiling) or leaves it idling.
        self._has_gpu = node.has_gpu
        self._gpu_offloaded = profile.gpu_offloaded

    # ------------------------------------------------------------------

    def _freq_factor(self, f: float) -> float:
        """Per-core load multiplier at frequency *f* vs. nominal."""
        rel = f / self._f_nom
        return LEAKAGE_SHARE + (1.0 - LEAKAGE_SHARE) * rel**DYN_EXPONENT

    @property
    def p_base_w(self) -> float:
        """Fitted node-level processor base power (all packages)."""
        return self._p_base

    @property
    def p_core_w(self) -> float:
        """Fitted per-active-core load power at nominal frequency."""
        return self._p_core

    @property
    def mem_base_w(self) -> float:
        """Fitted node-level DRAM base power."""
        return self._mem_base

    @property
    def mem_w_per_bw(self) -> float:
        """Fitted DRAM watts per byte/s of traffic."""
        return self._mem_per_bw

    # ------------------------------------------------------------------

    def cpu_power(self, n_threads: int, frequency_hz: float) -> float:
        """Predicted node PKG power (Eq. 6–7)."""
        if n_threads < 0:
            raise ProfilingError("n_threads must be >= 0")
        return self._p_base + n_threads * self._p_core * self._freq_factor(
            frequency_hz
        )

    def bandwidth_demand(self, n_threads: int) -> float:
        """Estimated bandwidth demand at a thread count (B/s).

        Bandwidth extraction grows roughly linearly with threads until
        the controllers saturate, so the estimate is
        ``min(n * per-thread rate, saturated rate)`` with the
        per-thread rate taken from the half-core sample and the
        saturation level from whichever sample saw more traffic.  A
        straight interpolation between the samples would *under*state
        demand between them and starve the DRAM cap.
        """
        (n1, b1), (n2, b2) = self._bw_samples
        per_thread = b1 / n1 if n1 > 0 else 0.0
        return float(min(n_threads * per_thread, max(b1, b2)))

    def mem_power(self, n_threads: int, level_fraction: float = 1.0) -> float:
        """Predicted DRAM power (Eq. 8–9) at a memory power level."""
        bw = self.bandwidth_demand(n_threads) * level_fraction
        return self._mem_base + self._mem_per_bw * bw

    @staticmethod
    def _interp(
        samples: list[tuple[int, float]], n_threads: int, base: float
    ) -> float:
        """Linear interpolation between the two measured anchors.

        Below the half-core anchor the value scales with the thread
        count down to the fitted *base*; above the all-core anchor it
        stays flat (there are no more cores to add).
        """
        (n1, v1), (n2, v2) = samples
        if n_threads <= n1:
            return base + (v1 - base) * n_threads / n1
        if n_threads >= n2:
            return v2
        w = (n_threads - n1) / (n2 - n1)
        return v1 + w * (v2 - v1)

    def max_freq_under(self, pkg_budget_w: float, n_threads: int) -> float | None:
        """Highest frequency the power model fits under a PKG budget.

        The inversion anchors on the *measured* PKG powers at the two
        frequency extremes (interpolated over threads) and places the
        frequency on the generic Haswell dynamic-power curve between
        them; this keeps the answer consistent with the measured
        acceptable range even when the fitted base/per-core split is
        blurred by activity differences between the samples.  Returns
        ``None`` when even the lowest frequency does not fit.
        """
        if n_threads < 1:
            raise ProfilingError("n_threads must be >= 1")
        p_lo = self._interp(self._pkg_lo_samples, n_threads, self._p_base)
        p_hi = max(self.cpu_power(n_threads, self._f_max), p_lo + 1e-6)
        if pkg_budget_w < p_lo:
            return None
        if pkg_budget_w >= p_hi:
            return self._f_max
        # interpolate on the dynamic-power curve: p(f) = p_lo +
        # (p_hi - p_lo) * (g(f) - g(f_min)) / (g(f_max) - g(f_min))
        g_lo, g_hi = self._freq_factor(self._f_min), self._freq_factor(self._f_max)
        g = g_lo + (pkg_budget_w - p_lo) / (p_hi - p_lo) * (g_hi - g_lo)
        rel_dyn = (g - LEAKAGE_SHARE) / (1.0 - LEAKAGE_SHARE)
        f = self._f_nom * rel_dyn ** (1.0 / DYN_EXPONENT)
        return float(np.clip(f, self._f_min, self._f_max))

    # ------------------------------------------------------------------

    @property
    def gpu_offloaded(self) -> bool:
        """Whether the profiled app drives the accelerator."""
        return self._gpu_offloaded

    def gpu_power_range(self) -> tuple[float, float]:
        """Acceptable device power grant ``(lo, hi)`` in watts.

        Offloaded apps may run anywhere on the clock ladder, so the
        range spans the lowest to the highest full-utilization level.
        Host-only apps on a GPU node still burn the idle draw — the
        grant must cover it, but more is wasted.  Zero-width zero on
        CPU-only nodes (the domain is absent).
        """
        if not self._has_gpu:
            return (0.0, 0.0)
        if not self._gpu_offloaded:
            return (self._node.p_gpu_idle_w, self._node.p_gpu_idle_w)
        return (self._node.p_gpu_min_w, self._node.p_gpu_max_w)

    def gpu_shift_candidates(
        self, lo_w: float, hi_w: float
    ) -> tuple[tuple[float, float], ...]:
        """Device cap candidates ``(cap_w, clock_hz)`` inside a window.

        Only ladder levels are worth issuing (capping between levels
        buys nothing), so the EcoShift-style host↔device re-balance
        enumerates exactly these.  When the window falls between
        levels, the highest level not exceeding *hi_w* is returned —
        or the bottom level if even that does not fit, because the
        device cannot clock lower.
        """
        if not self._has_gpu or not self._gpu_offloaded:
            return ()
        levels = tuple(
            zip(self._node.gpu_cap_levels_w, self._node.gpu_level_clocks_hz)
        )
        inside = tuple(p for p in levels if lo_w <= p[0] <= hi_w)
        if inside:
            return inside
        under = tuple(p for p in levels if p[0] <= hi_w)
        return (under[-1],) if under else (levels[0],)

    def power_range(self, n_threads: int) -> PowerRange:
        """Acceptable power range at a concurrency (§III-B.1).

        L1 (upper) is the power at the highest frequency; L2 (lower) at
        the lowest — both measured directly during profiling at the
        sampled concurrencies and interpolated between them, which is
        more faithful than re-predicting them through the fitted model
        (the measurements embed the application's true activity).
        """
        cpu_hi = self.cpu_power(n_threads, self._f_max)
        cpu_lo = self._interp(self._pkg_lo_samples, n_threads, self._p_base)
        cpu_hi = max(cpu_hi, cpu_lo)
        mem_hi = self.mem_power(n_threads)
        mem_lo = min(
            self._interp(self._dram_lo_samples, n_threads, self._mem_base), mem_hi
        )
        gpu_lo, gpu_hi = self.gpu_power_range()
        return PowerRange(
            cpu_lo_w=cpu_lo,
            cpu_hi_w=cpu_hi,
            mem_lo_w=mem_lo,
            mem_hi_w=mem_hi,
            gpu_lo_w=gpu_lo,
            gpu_hi_w=gpu_hi,
        )

    def split_node_budget(
        self, node_budget_w: float, n_threads: int
    ) -> tuple[float, float]:
        """Split a node budget into (PKG cap, DRAM cap).

        Memory receives its estimated demand plus a safety margin: the
        DRAM cap is a ceiling, and actual DRAM power follows delivered
        traffic, so over-provisioning the cap only reserves headroom —
        whereas under-provisioning throttles bandwidth outright.  The
        CPU receives the rest, clipped to its own useful ceiling.
        Raises :class:`InfeasibleBudgetError` when the budget cannot
        cover the floor of both domains.
        """
        rng = self.power_range(n_threads)
        if node_budget_w < rng.node_lo_w:
            raise InfeasibleBudgetError(
                f"node budget {node_budget_w:.1f} W below acceptable floor "
                f"{rng.node_lo_w:.1f} W at {n_threads} threads"
            )
        # The device grant (idle draw for host-only apps on GPU nodes,
        # zero on CPU nodes — `x - 0.0` leaves host arithmetic
        # bit-identical) comes off the top before the host split.
        host = node_budget_w - rng.gpu_lo_w
        pkg, dram = self._split_host(host, rng)
        return pkg, dram

    def _split_host(self, host_budget_w: float, rng: PowerRange) -> tuple[float, float]:
        """PKG/DRAM split of the host share of a node budget."""
        # Anchor the DRAM grant on the highest *measured* DRAM power —
        # demand can only fall with fewer threads or a slower clock —
        # plus headroom; the model estimate alone can overshoot and
        # steal budget the CPU needs.
        measured_peak = max(v for _, v in self._dram_hi_samples)
        target = self._mem_base + (
            min(rng.mem_hi_w, measured_peak) - self._mem_base
        ) * DRAM_CAP_MARGIN
        dram = max(target, rng.mem_lo_w) * DRAM_FLOOR_HEADROOM
        dram = min(dram, host_budget_w - rng.cpu_lo_w)
        pkg = min(host_budget_w - dram, rng.cpu_hi_w)
        return float(pkg), float(dram)

    def split_node_budget_gpu(
        self, node_budget_w: float, n_threads: int, gpu_cap_w: float
    ) -> tuple[float, float, float]:
        """Split a node budget into (PKG, DRAM, GPU) caps.

        The device grant is chosen by the caller (a ladder level from
        :meth:`gpu_shift_candidates`, or the idle draw for host-only
        apps); the remainder splits between the host domains exactly
        like :meth:`split_node_budget`.  Raises
        :class:`InfeasibleBudgetError` when the host remainder cannot
        cover the host floors.
        """
        rng = self.power_range(n_threads)
        host = node_budget_w - gpu_cap_w
        host_lo = rng.cpu_lo_w + rng.mem_lo_w
        if host < host_lo:
            raise InfeasibleBudgetError(
                f"host remainder {host:.1f} W (node {node_budget_w:.1f} W "
                f"minus GPU grant {gpu_cap_w:.1f} W) below host floor "
                f"{host_lo:.1f} W at {n_threads} threads"
            )
        pkg, dram = self._split_host(host, rng)
        return pkg, dram, float(gpu_cap_w)

    def cap_ceiling_w(self, n_threads: int) -> float:
        """Highest defensible (PKG + DRAM) cap total at a concurrency.

        :meth:`split_node_budget` deliberately over-provisions the DRAM
        cap (it is a ceiling, not a draw), so an issued cap set may sit
        above the acceptable range's ``node_hi_w`` by the DRAM margin.
        Budget-invariant audits use this value as the per-node ceiling:
        anything above it cannot come from a well-formed split.
        """
        rng = self.power_range(n_threads)
        host = rng.cpu_hi_w + rng.mem_hi_w * DRAM_CAP_MARGIN * DRAM_FLOOR_HEADROOM
        return host + rng.gpu_hi_w
