"""Mixed-cluster acceptance: heterogeneity through the whole stack.

The headline scenario of the heterogeneity refactor: CLIP scheduling on
the mixed 4× Haswell + 4× Broadwell fleet under a budget sweep, with
the budget-invariant monitor auditing every issued cap set against each
slot's *own* acceptable power range.  Also pins the class-preservation
regression (degrade/recover must rebuild a slot from its own spec) and
the per-class model-bundle keying.
"""

import pytest

from repro.core.scheduler import ClipScheduler
from repro.errors import SpecError
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

#: The sweep of the acceptance scenario (W).  Spans shedding-tight to
#: nearly saturated on the mixed fleet.
BUDGET_SWEEP_W = (900.0, 1200.0, 1600.0, 2100.0, 2600.0)

SWEEP_APPS = ("comd", "sp-mz.C", "stream")


@pytest.fixture()
def mixed_engine():
    return ExecutionEngine(SimulatedCluster.mixed_testbed(), seed=42)


@pytest.fixture()
def mixed_clip(mixed_engine, trained_inflection):
    # the predictor was trained on the Haswell corpus; the mixed fleet's
    # primary (slot-0) class is Haswell, so it transfers unchanged
    return ClipScheduler(mixed_engine, inflection=trained_inflection)


class TestMixedAcceptance:
    def test_budget_sweep_audits_clean(self, mixed_clip):
        """Every cap set of the sweep honors budget and per-slot ranges."""
        for name in SWEEP_APPS:
            for budget in BUDGET_SWEEP_W:
                decision = mixed_clip.schedule(get_app(name), budget)
                assert decision.total_capped_w <= budget + 1e-6
        audits = mixed_clip.monitor.n_audits
        assert audits >= len(SWEEP_APPS) * len(BUDGET_SWEEP_W)
        mixed_clip.monitor.assert_clean()

    def test_decision_carries_per_slot_ranges(self, mixed_clip):
        decision = mixed_clip.schedule(get_app("sp-mz.C"), 1400.0)
        ranges = decision.allocation.node_ranges_w
        assert ranges is not None
        assert len(ranges) == decision.n_nodes
        for budget, (lo, hi) in zip(
            decision.allocation.node_budgets_w, ranges
        ):
            assert lo <= budget + 1e-6
            assert budget <= hi + 1e-6

    def test_mixed_decision_round_trips_through_json(self, mixed_clip):
        from repro.core.pipeline import SchedulingDecision

        decision = mixed_clip.schedule(get_app("comd"), 1500.0)
        assert decision.allocation.node_ranges_w is not None
        clone = SchedulingDecision.from_dict(decision.to_dict())
        assert clone == decision

    def test_homogeneous_decision_json_has_no_ranges(
        self, engine, trained_inflection
    ):
        clip = ClipScheduler(engine, inflection=trained_inflection)
        decision = clip.schedule(get_app("comd"), 1500.0)
        assert "node_ranges_w" not in decision.to_dict()["allocation"]

    def test_mixed_schedule_executes(self, mixed_clip):
        decision, result = mixed_clip.run(get_app("comd"), 1600.0)
        assert result.performance > 0
        assert result.n_nodes == decision.n_nodes
        mixed_clip.monitor.assert_clean()

    def test_thread_count_fits_every_participating_slot(self, mixed_clip):
        spec = mixed_clip.engine.cluster.spec
        for budget in (1200.0, 2200.0):
            decision = mixed_clip.schedule(get_app("stream"), budget)
            limit = min(
                spec.node_specs[i].n_cores for i in range(decision.n_nodes)
            )
            assert decision.n_threads <= limit


class TestPerClassBundles:
    def test_one_bundle_per_hardware_class(self, mixed_clip):
        """Model triples fit once per (app, size, class), not per slot."""
        mixed_clip.schedule(get_app("comd"), 1500.0)
        pipeline = mixed_clip.pipeline
        entry = pipeline.ensure_knowledge(get_app("comd"))
        specs = pipeline.node_specs
        hw = pipeline.class_bundle(entry, specs[0])
        bw = pipeline.class_bundle(entry, specs[-1])
        assert hw is not bw
        # cached: a second lookup returns the same object
        assert pipeline.class_bundle(entry, specs[0]) is hw
        assert pipeline.class_bundle(entry, specs[-1]) is bw

    def test_class_ceilings_differ(self, mixed_clip):
        """Broadwell's 40-core sockets price power differently."""
        pipeline = mixed_clip.pipeline
        entry = pipeline.ensure_knowledge(get_app("comd"))
        specs = pipeline.node_specs
        n = pipeline.class_bundle(entry, specs[0]).recommender.unbounded_concurrency()
        hw_hi = (
            pipeline.class_bundle(entry, specs[0]).power_model.power_range(n).node_hi_w
        )
        bw_hi = (
            pipeline.class_bundle(entry, specs[-1]).power_model.power_range(n).node_hi_w
        )
        assert hw_hi != bw_hi


class TestClassPreservation:
    """Regression: degrade/recover rebuilds a slot from its own spec.

    The original code rebuilt replacement nodes from the cluster-wide
    single node spec; on a mixed cluster that silently swapped a
    degraded Broadwell slot for a Haswell one.
    """

    def test_degrade_keeps_broadwell_spec(self):
        cluster = SimulatedCluster.mixed_testbed()
        before = cluster.node(6).spec
        assert before.name == "broadwell"
        replacement = cluster.degrade_node(6, 1.2)
        assert replacement.spec == before
        assert cluster.node(6).spec == before

    def test_recover_keeps_broadwell_spec(self):
        cluster = SimulatedCluster.mixed_testbed()
        before = cluster.node(5).spec
        cluster.fail_node(5)
        recovered = cluster.recover_node(5)
        assert recovered.spec == before
        assert recovered.spec.name == "broadwell"

    def test_degrade_keeps_haswell_spec_on_mixed(self):
        cluster = SimulatedCluster.mixed_testbed()
        before = cluster.node(1).spec
        assert before.name == "haswell"
        assert cluster.degrade_node(1, 1.1).spec == before

    def test_mixed_node_accessor_raises(self):
        cluster = SimulatedCluster.mixed_testbed()
        with pytest.raises(SpecError):
            cluster.spec.node
