"""Inter-node power coordination under manufacturing variability.

Section III-B.2 (following Inadomi et al., SC'15): nominally identical
nodes convert watts to frequency differently; under a uniform per-node
budget the least efficient node paces every bulk-synchronous step.
CLIP measures per-node efficiency once per cluster with a calibration
kernel, and — when the spread exceeds a threshold (the paper's testbed
is "quite homogeneous", so coordination only engages beyond it) —
redistributes the job's power proportionally to each node's efficiency
factor so all nodes sustain the same operating point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics

__all__ = [
    "VARIABILITY_THRESHOLD",
    "measure_node_factors",
    "coordinate_power",
]

#: Relative max-to-min power spread below which nodes are treated as
#: homogeneous and budgets stay uniform.
VARIABILITY_THRESHOLD = 0.05

#: Calibration workload: a fixed compute-bound kernel so measured power
#: differences reflect the silicon, not workload placement.
_CALIBRATION_APP = WorkloadCharacteristics(
    name="clip.calibration",
    description="fixed DGEMM-like kernel for variability calibration",
    instructions_per_iter=2.0e10,
    bytes_per_instruction=0.02,
    serial_fraction=0.0,
    sync_cost_s=0.0,
    ipc_fraction=0.65,
    shared_fraction=0.05,
    icache_mpki=0.1,
    comm_pattern=CommPattern.NONE,
    iterations=3,
    problem_size="calibration",
)


def measure_node_factors(engine: ExecutionEngine, n_threads: int | None = None) -> np.ndarray:
    """Measure each node's power-efficiency factor (mean-normalized).

    Runs the calibration kernel on every node at a fixed frequency and
    reads RAPL power; a node drawing more watts for the same work gets
    a factor above 1.  This is a one-time cluster calibration, not a
    per-application cost.

    The default uses half the cores: an all-core compute kernel sits at
    the factory power limit, where inefficient parts silently throttle
    and the power signal collapses to the cap value.

    Nodes currently marked failed are skipped and carry a neutral
    factor of 1.0 (they cannot participate in runs anyway); the
    normalization uses only the measured survivors.
    """
    cluster = engine.cluster
    node_spec = cluster.spec.node
    n_threads = n_threads or node_spec.n_cores // 2
    powers = np.full(cluster.n_nodes, np.nan)
    for i in cluster.available_node_ids:
        result = engine.run(
            _CALIBRATION_APP,
            ExecutionConfig(
                n_nodes=1,
                n_threads=n_threads,
                node_ids=(i,),
                frequency_hz=node_spec.socket.f_nominal,
            ),
        )
        rec = result.nodes[0]
        powers[i] = rec.operating_point.pkg_power_w + rec.operating_point.dram_power_w
    measured = powers[~np.isnan(powers)]
    if measured.size == 0:
        raise SchedulingError("cannot calibrate: every node is failed")
    factors = powers / measured.mean()
    factors[np.isnan(factors)] = 1.0
    return factors


def coordinate_power(
    total_budget_w: float,
    factors: np.ndarray,
    lo_w: float,
    hi_w: float,
    threshold: float = VARIABILITY_THRESHOLD,
) -> np.ndarray:
    """Split a job budget across nodes, variability-aware.

    Parameters
    ----------
    total_budget_w:
        Power available to the participating nodes together.
    factors:
        Per-node efficiency factors (watts per unit work, normalized);
        only the participating nodes' entries are passed.
    lo_w / hi_w:
        Acceptable per-node power range of the application; budgets are
        kept inside it.
    threshold:
        Spread below which the split stays uniform.

    Returns
    -------
    numpy.ndarray
        Per-node budgets summing to at most ``total_budget_w``.

    Raises
    ------
    SchedulingError
        If the budget cannot give every node at least ``lo_w``.
    """
    factors = np.asarray(factors, dtype=np.float64)
    n = len(factors)
    if n < 1:
        raise SchedulingError("need at least one participating node")
    if lo_w <= 0 or hi_w < lo_w:
        raise SchedulingError(f"invalid power range [{lo_w}, {hi_w}]")
    if total_budget_w < n * lo_w - 1e-9:
        raise SchedulingError(
            f"budget {total_budget_w:.1f} W cannot give {n} nodes the "
            f"floor of {lo_w:.1f} W each"
        )
    uniform = np.full(n, min(total_budget_w / n, hi_w))
    spread = factors.max() / factors.min() - 1.0
    if n == 1 or spread <= threshold:
        return uniform

    # Proportional split: node i needs factor_i times the watts of the
    # nominal part to sustain the same frequency.  Clamp into the
    # acceptable range and hand clipped surplus back proportionally.
    budgets = np.clip(total_budget_w * factors / factors.sum(), lo_w, hi_w)
    deficit = budgets.sum() - total_budget_w
    if deficit > 1e-9:
        # Clamping weak nodes up to lo_w pushed the sum past the
        # budget; take the overage back from nodes above the floor,
        # proportionally to their headroom.  The feasibility guard
        # above guarantees sum(room) = sum - n*lo >= deficit, so one
        # proportional pass lands exactly on the budget without
        # dropping anyone below lo_w.
        room = budgets - lo_w
        budgets = budgets - deficit * room / room.sum()
        return np.clip(budgets, lo_w, hi_w)
    surplus = -deficit
    for _ in range(8):
        if surplus <= 1e-9:
            break
        room = hi_w - budgets
        open_idx = room > 1e-12
        if not np.any(open_idx):
            break
        add = np.zeros(n)
        add[open_idx] = surplus * factors[open_idx] / factors[open_idx].sum()
        new = np.minimum(budgets + add, hi_w)
        surplus -= float((new - budgets).sum())
        budgets = new
    return budgets
