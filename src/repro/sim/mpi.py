"""Inter-node communication model.

An alpha–beta (latency–bandwidth) model of the hybrid applications' MPI
step, in the spirit of the buffer-based communication idioms of mpi4py:
per iteration each rank exchanges halo messages with neighbours and/or
participates in collectives.  The model captures the two cluster-level
effects CLIP's allocator must weigh:

* communication cost *grows* with node count (more surfaces, deeper
  collective trees), opposing the compute gain of adding nodes;
* halo volume per node *shrinks* as the per-node domain shrinks
  (surface-to-volume under strong scaling).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.hw.specs import ClusterSpec
from repro.units import check_positive
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics

__all__ = ["CommModel"]

#: Payload of one allreduce element set (bytes) — small, latency-bound.
ALLREDUCE_BYTES = 4096.0


class CommModel:
    """Per-iteration communication time for one application."""

    def __init__(self, cluster: ClusterSpec):
        self._alpha = cluster.link_latency_s
        self._beta = 1.0 / check_positive(
            cluster.link_bandwidth, "link_bandwidth"
        )
        self._max_nodes = cluster.n_nodes

    @property
    def alpha_s(self) -> float:
        """Per-message latency (seconds)."""
        return self._alpha

    @property
    def beta_s_per_byte(self) -> float:
        """Per-byte transfer time (seconds/byte)."""
        return self._beta

    def halo_bytes(
        self,
        chars: WorkloadCharacteristics,
        n_nodes: int,
        scaling: str = "strong",
    ) -> float:
        """Per-node halo volume per iteration at *n_nodes*.

        ``comm_bytes_per_iter`` is the reference volume of the 1-node
        decomposition.  Under strong scaling the per-node surface
        shrinks as :math:`(1/N)^{2/3}` (3-D domain decompositions);
        under weak scaling each node keeps its reference-size domain
        and therefore its full surface.
        """
        if scaling == "strong":
            return chars.comm_bytes_per_iter * n_nodes ** (-2.0 / 3.0)
        if scaling == "weak":
            return chars.comm_bytes_per_iter
        raise WorkloadError(f"unknown scaling mode {scaling!r}")

    def iteration_time(
        self,
        chars: WorkloadCharacteristics,
        n_nodes: int,
        scaling: str = "strong",
    ) -> float:
        """Communication seconds added to each bulk-synchronous step."""
        if not 1 <= n_nodes <= self._max_nodes:
            raise WorkloadError(
                f"n_nodes {n_nodes} outside [1, {self._max_nodes}]"
            )
        if n_nodes == 1 or chars.comm_pattern is CommPattern.NONE:
            return 0.0
        if chars.comm_pattern is CommPattern.HALO:
            msgs = chars.comm_msgs_per_iter
            vol = self.halo_bytes(chars, n_nodes, scaling)
            # neighbour exchanges proceed concurrently; one message set
            # per direction pays latency, the volume pays bandwidth
            return msgs * self._alpha + vol * self._beta
        if chars.comm_pattern is CommPattern.ALLREDUCE:
            depth = float(np.ceil(np.log2(n_nodes)))
            return depth * (self._alpha + ALLREDUCE_BYTES * self._beta)
        raise WorkloadError(  # pragma: no cover - enum exhaustive
            f"unknown comm pattern {chars.comm_pattern!r}"
        )

    def scaling_profile(
        self, chars: WorkloadCharacteristics, n_nodes_values
    ) -> np.ndarray:
        """Vector of per-iteration comm times over candidate node counts."""
        return np.array(
            [self.iteration_time(chars, int(n)) for n in n_nodes_values]
        )
