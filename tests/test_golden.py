"""Golden-number regression tests.

The reproduction's value is that the evaluation *shapes* are stable: a
refactor of the substrate or the scheduler must not silently shift the
headline numbers.  These tests pin key quantities at seed 42 with loose
tolerances — tight enough to catch a behavioural regression, loose
enough to survive benign model recalibration (update the constants
consciously when calibration changes, and re-check EXPERIMENTS.md).
"""

import pytest

from repro.core.knowledge import KnowledgeDB
from repro.core.profile import SmartProfiler
from repro.core.scheduler import ClipScheduler
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import get_app

#: Fig.-6 classification ratios at seed 42 (tolerance 10 %).
GOLDEN_RATIOS = {
    "comd": 0.514,
    "minimd": 0.508,
    "bt-mz.C": 0.920,
    "cloverleaf.128": 0.810,
    "sp-mz.C": 1.077,
    "tealeaf": 1.048,
}

#: Unbounded All-In throughput (it/s) on the 8-node testbed.
GOLDEN_UNBOUNDED_PERF = {
    "comd": 14.7,
    "sp-mz.C": 1.0,
    "stream": 14.4,
}


class TestGoldenRatios:
    @pytest.mark.parametrize("name,expected", sorted(GOLDEN_RATIOS.items()))
    def test_classification_ratio(self, profiler, name, expected):
        profile = profiler.profile(get_app(name))
        assert profile.ratio == pytest.approx(expected, rel=0.10), name


class TestGoldenThroughput:
    @pytest.mark.parametrize(
        "name,expected", sorted(GOLDEN_UNBOUNDED_PERF.items())
    )
    def test_unbounded_allin_perf(self, engine, name, expected):
        r = engine.run(
            get_app(name),
            ExecutionConfig(n_nodes=8, n_threads=24, iterations=3),
        )
        assert r.performance == pytest.approx(expected, rel=0.15), name


class TestGoldenDecisions:
    def test_spmz_decision_at_1200(self, engine, trained_inflection):
        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        d = clip.schedule(get_app("sp-mz.C"), 1200.0)
        assert d.n_nodes == 8
        assert d.n_threads == 14
        assert d.inflection_point == 14

    def test_clip_advantage_on_spmz(self, engine, trained_inflection):
        from repro.baselines import AllInScheduler

        clip = ClipScheduler(
            engine, inflection=trained_inflection, knowledge=KnowledgeDB()
        )
        _, clip_r = clip.run(get_app("sp-mz.C"), 1200.0, iterations=3)
        allin_r = AllInScheduler(engine).run(
            get_app("sp-mz.C"), 1200.0, iterations=3
        )
        gain = clip_r.performance / allin_r.performance - 1.0
        # headline-scale advantage on the flagship parabolic app
        assert 0.3 <= gain <= 0.8, gain
