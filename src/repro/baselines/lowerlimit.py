"""The Lower-Limit baseline (§V-C).

"This method ensures that no nodes participating in the computation
are allocated a budget less than a preset value, i.e., 180 Watts.  If
the total power budget cannot allocate every node more than 180 watts,
the scheduler decreases the number of active nodes.  Additionally, this
method utilizes all cores on each active node and allocates 30 watts to
memory."

The 180 W floor is application-*oblivious* — the same preset for every
code — which is exactly what CLIP's application-specific acceptable
range improves on.
"""

from __future__ import annotations

from repro.baselines.allin import ALLIN_MEM_W
from repro.baselines.base import PowerBoundedScheduler
from repro.errors import InfeasibleBudgetError
from repro.sim.engine import ExecutionConfig
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["LowerLimitScheduler", "NODE_FLOOR_W"]

#: The preset per-node budget floor.
NODE_FLOOR_W = 180.0


class LowerLimitScheduler(PowerBoundedScheduler):
    """Shed nodes until each active node gets at least 180 W."""

    name = "Lower-Limit"

    def __init__(self, engine, node_floor_w: float = NODE_FLOOR_W):
        super().__init__(engine)
        if node_floor_w <= ALLIN_MEM_W:
            raise InfeasibleBudgetError(
                "node floor must exceed the fixed memory grant"
            )
        self._floor = node_floor_w

    @property
    def node_floor_w(self) -> float:
        """The preset per-node minimum."""
        return self._floor

    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """Shed nodes until each share clears the preset floor."""
        cluster = self.engine.cluster
        n_nodes = min(int(cluster_budget_w // self._floor), cluster.n_nodes)
        if n_nodes < 1:
            raise InfeasibleBudgetError(
                f"Lower-Limit: budget {cluster_budget_w:.1f} W below the "
                f"{self._floor:.0f} W single-node floor"
            )
        node_share = cluster_budget_w / n_nodes
        return ExecutionConfig(
            n_nodes=n_nodes,
            n_threads=min(s.n_cores for s in cluster.spec.node_specs),
            pkg_cap_w=node_share - ALLIN_MEM_W,
            dram_cap_w=ALLIN_MEM_W,
        )
