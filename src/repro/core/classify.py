"""Scalability-trend classification (§III-A.1).

The paper's classifier is deliberately simple: compare the performance
of the half-core and all-core profiling runs.

* ``Perf_half / Perf_all < 0.7``  → **linear**
* ``0.7 <= ratio < 1``            → **logarithmic**
* ``ratio >= 1``                  → **parabolic**

The 0.7 threshold is an empirical constant the authors chose from their
benchmark collection; the ablation bench sweeps it.
"""

from __future__ import annotations

import enum

from repro.errors import ProfilingError

__all__ = ["ScalabilityClass", "classify_ratio", "LINEAR_THRESHOLD", "PARABOLIC_THRESHOLD"]

#: Ratio below which an application counts as linear.
LINEAR_THRESHOLD = 0.7

#: Ratio at or above which an application counts as parabolic.
PARABOLIC_THRESHOLD = 1.0


class ScalabilityClass(enum.Enum):
    """The scalability trends of Section II, plus accelerator offload.

    ``GPU_OFFLOAD`` marks applications whose profiling samples show the
    device busy for a substantial share of the iteration (Minos-style
    accelerator classification).  Host-side thread scaling for these
    codes behaves like the linear class — the offloaded kernels leave
    the host share thread-scalable — so the class carries no inflection
    point; what it adds is the host↔device power trade-off the
    recommendation stage exploits.
    """

    LINEAR = "linear"
    LOGARITHMIC = "logarithmic"
    PARABOLIC = "parabolic"
    GPU_OFFLOAD = "gpu_offload"

    @property
    def is_nonlinear(self) -> bool:
        """Whether the class carries an inflection point to predict."""
        return self in (
            ScalabilityClass.LOGARITHMIC,
            ScalabilityClass.PARABOLIC,
        )


def classify_ratio(
    perf_half: float,
    perf_all: float,
    linear_threshold: float = LINEAR_THRESHOLD,
    parabolic_threshold: float = PARABOLIC_THRESHOLD,
) -> ScalabilityClass:
    """Classify from the two profiling performances.

    Parameters are the raw throughputs (higher is better); thresholds
    are exposed for the ablation study.
    """
    if perf_half <= 0 or perf_all <= 0:
        raise ProfilingError(
            f"performances must be positive, got half={perf_half}, all={perf_all}"
        )
    if not 0 < linear_threshold < parabolic_threshold:
        raise ProfilingError(
            "thresholds must satisfy 0 < linear < parabolic"
        )
    ratio = perf_half / perf_all
    if ratio < linear_threshold:
        return ScalabilityClass.LINEAR
    if ratio < parabolic_threshold:
        return ScalabilityClass.LOGARITHMIC
    return ScalabilityClass.PARABOLIC
