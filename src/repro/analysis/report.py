"""Reproduction report assembly.

Collects the artifacts the benchmark harness persisted under
``benchmarks/results/`` into one markdown report — the "did the
reproduction hold?" document an operator regenerates after touching the
substrate or the scheduler.  Sections are ordered by the paper's
exposition; missing artifacts are reported as *not yet regenerated*
rather than silently skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ReportSection", "REPORT_SECTIONS", "assemble_report"]


@dataclass(frozen=True)
class ReportSection:
    """One experiment's slot in the report."""

    exp_id: str
    title: str
    paper_claim: str


#: Report layout: every table/figure plus the extension studies.
REPORT_SECTIONS: tuple[ReportSection, ...] = (
    ReportSection(
        "fig1", "Figure 1 — single-node coordination at 120 W",
        "Application-aware power distribution and resource allocation on "
        "a single node improves NPB-SP by up to 75 %.",
    ),
    ReportSection(
        "fig2", "Figure 2 — scalability trends",
        "Performance grows linearly (linear), saturates past an "
        "inflection point (logarithmic), or peaks and declines "
        "(parabolic); S(freq) is proportional to freq.",
    ),
    ReportSection(
        "fig3", "Figure 3 — power-budget impact per class",
        "Max concurrency stays optimal for linear apps; the optimum "
        "shifts with budget for logarithmic apps; the optimal-vs-max "
        "gap widens at low budgets for parabolic apps.",
    ),
    ReportSection(
        "table1", "Table I — hardware events",
        "Eight Haswell events related to memory access patterns feed "
        "the MLR predictor.",
    ),
    ReportSection(
        "table2", "Table II — benchmarks",
        "Ten configurations spanning the three scalability types.",
    ),
    ReportSection(
        "fig6", "Figure 6 — speedup-ratio classification",
        "Half/all-core ratios sort the suite into linear (<0.7), "
        "logarithmic (0.7-1), and parabolic (>=1).",
    ),
    ReportSection(
        "fig7", "Figure 7 — inflection-point prediction",
        "MLR predictions are strong for most applications, with some "
        "underestimates; values floored to even.",
    ),
    ReportSection(
        "fig8", "Figure 8 — high-budget comparison",
        "CLIP ~ All-In for most apps; beats Coordinated on parabolic "
        "apps by up to 60 %.",
    ),
    ReportSection(
        "fig9", "Figure 9 — low-budget comparison",
        "CLIP wins most cases, especially logarithmic and parabolic "
        "applications.",
    ),
    ReportSection(
        "headline", "Headline claims",
        "Over 20 % average improvement over compared methods.",
    ),
    ReportSection(
        "oracle_gap", "CLIP vs exhaustive optimum",
        "Near-optimal configurations without exhaustive search.",
    ),
    ReportSection(
        "overhead_profiling", "Profiling overhead",
        "Smart profiling with a few iterations incurs minimal overhead.",
    ),
    ReportSection(
        "overhead_decision", "Decision latency",
        "A solution with a low overhead.",
    ),
    ReportSection(
        "ablation_threshold", "Ablation — classification threshold", ""
    ),
    ReportSection("ablation_piecewise", "Ablation — piecewise model", ""),
    ReportSection("ablation_even_floor", "Ablation — even flooring", ""),
    ReportSection(
        "ablation_variability", "Ablation — variability coordination", ""
    ),
    ReportSection("ablation_profiling", "Ablation — profiling budget", ""),
    ReportSection(
        "scaling_cluster", "Extension — cluster-size scaling", ""
    ),
    ReportSection(
        "phase_adjustment", "§V-B.1 — phase-by-phase concurrency", ""
    ),
    ReportSection(
        "energy_efficiency", "Extension — energy and EDP", ""
    ),
)


def assemble_report(results_dir: str | Path) -> str:
    """Build the markdown report from a results directory.

    Returns the document; sections whose artifact file is missing say
    so explicitly (run ``pytest benchmarks/ --benchmark-only`` first).
    """
    results = Path(results_dir)
    lines = [
        "# Reproduction report",
        "",
        f"Artifacts read from `{results}`.",
        "Regenerate with: `pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    missing = 0
    for section in REPORT_SECTIONS:
        lines.append(f"## {section.title}")
        if section.paper_claim:
            lines.append(f"*Paper claim:* {section.paper_claim}")
        lines.append("")
        artifact = results / f"{section.exp_id}.txt"
        if artifact.exists():
            lines.append("```")
            lines.append(artifact.read_text().rstrip())
            lines.append("```")
        else:
            missing += 1
            lines.append("*(not yet regenerated — artifact missing)*")
        lines.append("")
    lines.insert(
        4,
        f"{len(REPORT_SECTIONS) - missing}/{len(REPORT_SECTIONS)} "
        "experiment artifacts present.",
    )
    return "\n".join(lines)
