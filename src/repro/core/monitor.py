"""Cluster-wide budget-invariant auditing.

A power-bounded system has one non-negotiable contract: the sum of the
caps it programs never exceeds the cluster budget, and every node's cap
stays inside the application's acceptable power range (§III-B.1's
:math:`[L2, L1]`).  The scheduler, the multi-job coordinator, the job
queue, and the §VII runtime all *intend* to honour that contract, but
each computes caps on its own path — re-coordination after a budget
swing, a shrink onto surviving nodes, a co-scheduled batch — and a bug
on any path silently hands out watts the facility does not have.

:class:`BudgetInvariantMonitor` closes the loop: every issued cap set
is audited at the moment it is committed, and the audit trail is a
first-class artifact (JSON-safe, CI-checkable).  The monitor is shared
through :class:`~repro.core.pipeline.DecisionPipeline`, so every
consumer of the pipeline reports to the same ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetInvariantError

__all__ = ["CapAudit", "BudgetInvariantMonitor"]

#: Absolute slack (watts) granted to floating-point cap arithmetic.
AUDIT_TOLERANCE_W = 1e-6


def _per_rank_bounds(bound, n_ranks: int) -> list[float] | None:
    """Normalize a scalar-or-sequence bound to one float per rank."""
    if bound is None:
        return None
    if isinstance(bound, (int, float)):
        return [float(bound)] * n_ranks
    seq = [float(b) for b in bound]
    if len(seq) != n_ranks:
        raise ValueError(
            f"per-rank bounds cover {len(seq)} ranks, cap set has {n_ranks}"
        )
    return seq


def _bound_field(bound):
    """The bound as stored on :class:`CapAudit` (scalar or tuple)."""
    if bound is None or isinstance(bound, (int, float)):
        return bound if bound is None else float(bound)
    return tuple(float(b) for b in bound)


@dataclass(frozen=True)
class CapAudit:
    """One audited cap set: who issued what against which budget.

    ``node_lo_w`` / ``node_hi_w`` are floats when every rank shares one
    acceptable range (homogeneous cluster) and per-rank tuples when
    each slot carries its own (heterogeneous cluster).
    """

    source: str
    app_name: str
    cluster_budget_w: float
    #: Per-node cap tuples: ``(pkg, dram)`` on CPU nodes, ``(pkg,
    #: dram, gpu)`` on accelerator nodes — a set may mix both.
    caps: tuple[tuple[float, ...], ...]
    node_lo_w: float | tuple[float, ...] | None
    node_hi_w: float | tuple[float, ...] | None
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether the cap set satisfied every checked invariant."""
        return not self.violations

    @property
    def total_capped_w(self) -> float:
        """Sum of every programmed cap across all nodes and domains."""
        return float(sum(sum(cap) for cap in self.caps))

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "source": self.source,
            "app_name": self.app_name,
            "cluster_budget_w": self.cluster_budget_w,
            "total_capped_w": self.total_capped_w,
            "n_nodes": len(self.caps),
            "node_lo_w": (
                list(self.node_lo_w)
                if isinstance(self.node_lo_w, tuple)
                else self.node_lo_w
            ),
            "node_hi_w": (
                list(self.node_hi_w)
                if isinstance(self.node_hi_w, tuple)
                else self.node_hi_w
            ),
            "ok": self.ok,
            "violations": list(self.violations),
        }


@dataclass
class BudgetInvariantMonitor:
    """Audits every issued cap set against the cluster power contract.

    The monitor is append-only: :meth:`audit` records the outcome and
    returns it, never raising, so enforcement paths stay hot;
    :meth:`assert_clean` is the strict checkpoint for tests, CI, and
    drain loops that must prove zero violations.
    """

    audits: list[CapAudit] = field(default_factory=list)

    def audit(
        self,
        source: str,
        app_name: str,
        cluster_budget_w: float,
        caps: tuple[tuple[float, ...], ...],
        node_lo_w: "float | Sequence[float] | None" = None,
        node_hi_w: "float | Sequence[float] | None" = None,
        tolerance_w: float = AUDIT_TOLERANCE_W,
    ) -> CapAudit:
        """Record one issued cap set and check the invariants.

        Checks: the caps summed over every node and power domain stay
        at or under ``cluster_budget_w``; when the acceptable range is
        supplied, every node's total cap sits in ``[node_lo_w,
        node_hi_w]``.  Each node's tuple carries one entry per capped
        domain — ``(pkg, dram)`` on CPU nodes, ``(pkg, dram, gpu)`` on
        accelerator nodes — and a set may mix lengths on a mixed
        fleet.  Bounds may be scalars (one range for all ranks) or
        per-rank sequences aligned with *caps* — the
        heterogeneous-cluster form, where each slot's class has its
        own range.  Range checks use a relative tolerance on top of
        *tolerance_w* so legitimate float round-off never flags.
        """
        lo_seq = _per_rank_bounds(node_lo_w, len(caps))
        hi_seq = _per_rank_bounds(node_hi_w, len(caps))
        violations: list[str] = []
        total = float(sum(sum(cap) for cap in caps))
        slack = tolerance_w + 1e-9 * max(abs(cluster_budget_w), 1.0)
        if total > cluster_budget_w + slack:
            violations.append(
                f"sum of caps {total:.3f} W exceeds cluster budget "
                f"{cluster_budget_w:.3f} W"
            )
        for rank, cap in enumerate(caps):
            node_total = sum(cap)
            lo = lo_seq[rank] if lo_seq is not None else None
            hi = hi_seq[rank] if hi_seq is not None else None
            if any(c < -tolerance_w for c in cap):
                listed = ", ".join(f"{c:.3f}" for c in cap)
                violations.append(
                    f"node {rank}: negative cap ({listed}) W"
                )
            if lo is not None and node_total < lo - slack:
                violations.append(
                    f"node {rank}: cap {node_total:.3f} W below the "
                    f"acceptable floor {lo:.3f} W"
                )
            if hi is not None and node_total > hi + slack:
                violations.append(
                    f"node {rank}: cap {node_total:.3f} W above the "
                    f"acceptable ceiling {hi:.3f} W"
                )
        audit = CapAudit(
            source=source,
            app_name=app_name,
            cluster_budget_w=cluster_budget_w,
            caps=tuple(tuple(float(c) for c in cap) for cap in caps),
            node_lo_w=_bound_field(node_lo_w),
            node_hi_w=_bound_field(node_hi_w),
            violations=tuple(violations),
        )
        self.audits.append(audit)
        return audit

    def audit_split(
        self,
        source: str,
        app_name: str,
        parent_budget_w: float,
        child_budgets_w,
        tolerance_w: float = AUDIT_TOLERANCE_W,
    ) -> CapAudit:
        """Audit one level of a hierarchical budget split.

        Checks that the child budgets (e.g. per-rack shares of the
        cluster budget) sum to at most the parent budget.  Each child
        budget is recorded as a ``(budget, 0)`` cap pair so the split
        rides the same append-only ledger as node-level cap sets.
        """
        return self.audit(
            source,
            app_name,
            parent_budget_w,
            tuple((float(b), 0.0) for b in child_budgets_w),
            tolerance_w=tolerance_w,
        )

    # ------------------------------------------------------------------

    @property
    def n_audits(self) -> int:
        """Total cap sets recorded so far."""
        return len(self.audits)

    @property
    def n_violations(self) -> int:
        """Number of recorded cap sets that broke an invariant."""
        return sum(1 for a in self.audits if not a.ok)

    def violations(self) -> list[CapAudit]:
        """The failed audits, in issue order."""
        return [a for a in self.audits if not a.ok]

    def assert_clean(self) -> None:
        """Raise :class:`BudgetInvariantError` if any audit failed."""
        bad = self.violations()
        if bad:
            first = bad[0]
            raise BudgetInvariantError(
                f"{len(bad)}/{self.n_audits} cap sets violated the power "
                f"contract; first: [{first.source}] {first.violations[0]}"
            )

    def reset(self) -> None:
        """Clear the audit trail (between independent scenarios)."""
        self.audits.clear()

    def report(self) -> dict:
        """JSON-safe summary: counts per source plus any violations."""
        per_source: dict[str, int] = {}
        for a in self.audits:
            per_source[a.source] = per_source.get(a.source, 0) + 1
        return {
            "n_audits": self.n_audits,
            "n_violations": self.n_violations,
            "audits_by_source": per_source,
            "violations": [a.to_dict() for a in self.violations()],
        }
