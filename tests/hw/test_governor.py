"""Tests for the time-stepped RAPL governor."""

import numpy as np
import pytest

from repro.errors import PowerDomainError
from repro.hw.governor import RaplGovernor
from repro.hw.power import PowerModel
from repro.hw.rapl import Domain, RaplInterface
from repro.hw.specs import haswell_node


@pytest.fixture()
def rapl():
    return RaplInterface(PowerModel(haswell_node()))


def make_governor(rapl, **kw):
    return RaplGovernor(rapl, **kw)


class TestControlLaw:
    def test_settles_at_steady_state_frequency(self, rapl):
        rapl.set_cap(Domain.PKG, 150.0)
        gov = make_governor(rapl)
        settled = gov.settled_frequency([12, 12], 0.9)
        steady = rapl.resolve([12, 12], 0.9, [1e10, 1e10]).frequency_hz
        # the dynamic loop oscillates at most one P-state around the
        # analytic steady state
        ladder = rapl._ladder
        assert settled in (
            steady, ladder.step_up(steady), ladder.step_down(steady)
        )

    def test_window_average_complies_after_settling(self, rapl):
        rapl.set_cap(Domain.PKG, 150.0)
        gov = make_governor(rapl)
        samples = gov.run(300, [12, 12], 0.9)
        tail = samples[-50:]
        avg = np.mean([s.power_w for s in tail])
        assert avg <= 150.0 * 1.02

    def test_transient_overshoot_allowed_then_averaged_out(self, rapl):
        rapl.set_cap(Domain.PKG, 130.0)
        gov = make_governor(rapl)
        samples = gov.run(200, [12, 12], 1.0)
        # the first interval starts at turbo: instantaneous power is
        # legally above the limit...
        assert samples[0].over_limit
        # ...then the controller settles into a dither between the two
        # adjacent P-states whose *average* complies (real RAPL hits
        # non-quantized limits exactly this way)
        tail = samples[-40:]
        assert np.mean([s.window_avg_w for s in tail]) <= 130.0 * 1.01
        assert np.mean([s.over_limit for s in tail]) < 0.6

    def test_uncapped_stays_at_demand(self, rapl):
        gov = make_governor(rapl)
        samples = gov.run(50, [2, 2], 0.5, demanded_frequency_hz=2.0e9)
        assert samples[-1].frequency_hz == pytest.approx(2.0e9)

    def test_recovers_after_load_drop(self, rapl):
        rapl.set_cap(Domain.PKG, 150.0)
        gov = make_governor(rapl)
        gov.run(200, [12, 12], 1.0)  # heavy phase: throttled
        f_heavy = gov.frequency_hz
        gov.run(200, [2, 2], 0.5)  # light phase: headroom returns
        assert gov.frequency_hz > f_heavy

    def test_monotone_settle_in_cap(self, rapl):
        freqs = []
        for cap in (110.0, 150.0, 200.0):
            rapl.set_cap(Domain.PKG, cap)
            gov = make_governor(rapl)
            freqs.append(gov.settled_frequency([12, 12], 0.9))
        assert freqs == sorted(freqs)


class TestMechanics:
    def test_reset(self, rapl):
        gov = make_governor(rapl)
        gov.run(20, [12, 12], 1.0)
        gov.reset(frequency_hz=1.5e9)
        assert gov.frequency_hz == pytest.approx(1.5e9)

    def test_time_advances_per_interval(self, rapl):
        gov = make_governor(rapl, interval_s=0.1)
        samples = gov.run(5, [2, 2], 0.5)
        assert samples[-1].t_s == pytest.approx(0.4)

    def test_rejects_interval_above_window(self, rapl):
        with pytest.raises(PowerDomainError):
            make_governor(rapl, window_s=0.1, interval_s=0.5)

    def test_rejects_bad_window(self, rapl):
        with pytest.raises(ValueError):
            make_governor(rapl, window_s=0.0)
