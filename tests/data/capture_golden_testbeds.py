"""Regenerate ``golden_decisions_testbeds.json``.

Captures CLIP's full serialized decisions on the three CPU testbeds so
refactors of the power-domain substrate can prove CPU-only decisions
stay bit-identical.  Run from the repo root:

    PYTHONPATH=src python tests/data/capture_golden_testbeds.py

Re-run (and review the diff consciously) only when a deliberate
behaviour change moves the decisions.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.experiments import build_trained_inflection
from repro.core.scheduler import ClipScheduler
from repro.errors import ClipError
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import broadwell_testbed, haswell_testbed, mixed_testbed
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

TESTBEDS = {
    "haswell": haswell_testbed,
    "broadwell": broadwell_testbed,
    "mixed": mixed_testbed,
}
APPS = ("comd", "sp-mz.C", "stream", "bt-mz.C", "tealeaf")
BUDGETS = (1000.0, 1400.0, 1800.0)


def capture() -> dict:
    payload: dict = {"apps": list(APPS), "budgets": list(BUDGETS), "testbeds": {}}
    for name, factory in TESTBEDS.items():
        engine = ExecutionEngine(SimulatedCluster(factory()), seed=42)
        clip = ClipScheduler(
            engine, inflection=build_trained_inflection(engine)
        )
        decisions: dict = {}
        for app_name in APPS:
            for budget in BUDGETS:
                key = f"{app_name}@{budget:.0f}"
                try:
                    d = clip.schedule(get_app(app_name), budget)
                except ClipError as exc:
                    decisions[key] = {"error": type(exc).__name__}
                    continue
                decisions[key] = d.to_dict()
        payload["testbeds"][name] = decisions
    return payload


if __name__ == "__main__":
    out = Path(__file__).parent / "golden_decisions_testbeds.json"
    out.write_text(json.dumps(capture(), indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")
