"""Performance prediction models (Eqs. 1–3).

The predictors map a thread count (and optionally a frequency) to an
estimated iteration time, built *only* from the profiling samples:

* **linear** apps (Eq. 1): a single hyperbolic model
  ``T(n) = a/n + b`` solved exactly through the half-core and all-core
  samples — the discrete form of "run time is a linear function of the
  sample times" with scalability reflected in the ``a/n`` term.
* **non-linear** apps (Eqs. 2–3): a two-segment piecewise model around
  the inflection point NP.  The first segment is the same hyperbola
  through the half-core and confirmation samples; the second segment
  is the straight line through the NP and all-core samples.  For
  parabolic applications the paper "disregards the prediction for the
  n > NP segment" when *choosing* configurations, but the segment is
  still available for what-if queries (the baselines run there).
  For **logarithmic** applications the two segments are combined into
  a roofline form ``T(n, f) = max(hyperbola(n) * f_ref/f, plateau)``:
  the inflection point is where node memory bandwidth saturates, so
  the all-core sample's time is the memory plateau no concurrency or
  frequency choice can beat — which is what makes "high frequency
  over high concurrency" safe for this class (§III-A.2).

Frequency scaling follows the paper's empirical observation
``S(freq) ∝ freq``: the parallel-compute share of the fitted time (the
``a/n`` term) scales inversely with frequency while the flat share
(memory/synchronization, the ``b`` term) does not — which is also why
the model prefers "high frequency to high concurrency for logarithmic
applications" (§III-A.2).

**GPU-offload** apps take the linear (single-hyperbola) host path —
there is no inflection point to confirm because host concurrency is
not the bottleneck — and add a device term: the profiled device-busy
time scales inversely with the device clock, and the host share that
is *not* overlapped by the device is whatever the fitted host model
predicts above the device time.  ``predict_time`` accepts an optional
``gpu_clock_hz`` to evaluate host↔device power-shift candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ScalabilityClass
from repro.core.profile import AppProfile
from repro.errors import ModelNotFittedError, ProfilingError

__all__ = ["PerformancePredictor", "TimeCalibration"]


@dataclass(frozen=True)
class TimeCalibration:
    """Piecewise multiplicative time correction learned from outcomes.

    The profiling-sample fit is a one-shot snapshot; the closed-loop
    learning layer compares every completed job's predicted and
    measured iteration time and least-squares-fits one multiplicative
    scale per model segment (below/at the inflection point and above
    it).  An identity calibration — the default, and the only thing a
    learning-disabled deployment ever sees — leaves every prediction
    bit-identical to the uncalibrated model.
    """

    seg1_scale: float = 1.0
    seg2_scale: float = 1.0
    n_observations: int = 0

    @property
    def is_identity(self) -> bool:
        """Whether applying this calibration is a no-op."""
        return self.seg1_scale == 1.0 and self.seg2_scale == 1.0

    def scale_for(self, n_threads: int, inflection_point: int | None) -> float:
        """The correction factor governing *n_threads*."""
        if inflection_point is None or n_threads <= inflection_point:
            return self.seg1_scale
        return self.seg2_scale

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "seg1_scale": self.seg1_scale,
            "seg2_scale": self.seg2_scale,
            "n_observations": self.n_observations,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "TimeCalibration":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            seg1_scale=float(raw["seg1_scale"]),
            seg2_scale=float(raw["seg2_scale"]),
            n_observations=int(raw["n_observations"]),
        )


@dataclass(frozen=True)
class _Hyperbola:
    """T(n) = a/n + b through two sample points."""

    a: float
    b: float

    def time(self, n: int) -> float:
        return self.a / n + self.b

    @classmethod
    def through(cls, n1: int, t1: float, n2: int, t2: float) -> "_Hyperbola":
        if n1 == n2:
            raise ProfilingError("hyperbola needs two distinct thread counts")
        a = (t1 - t2) / (1.0 / n1 - 1.0 / n2)
        if a < 0:
            # non-physical: time growing with 1/n means the two samples
            # straddle a peak (e.g. the confirmation ran *below* the
            # half-core count on a wide-socket platform).  Extrapolating
            # the inverted hyperbola would predict absurd speedups at
            # tiny thread counts, so degrade to a flat model at the
            # better sample — "no predicted benefit from fewer threads".
            return cls(a=0.0, b=min(t1, t2))
        return cls(a=a, b=t1 - a / n1)


@dataclass(frozen=True)
class _Line:
    """T(n) = c + d * n through two sample points."""

    c: float
    d: float

    def time(self, n: int) -> float:
        return self.c + self.d * n

    @classmethod
    def through(cls, n1: int, t1: float, n2: int, t2: float) -> "_Line":
        if n1 == n2:
            raise ProfilingError("line needs two distinct thread counts")
        d = (t2 - t1) / (n2 - n1)
        return cls(c=t1 - d * n1, d=d)


class PerformancePredictor:
    """Iteration-time predictor for one profiled application."""

    def __init__(
        self,
        profile: AppProfile,
        inflection_point: int | None = None,
        calibration: TimeCalibration | None = None,
    ):
        self._profile = profile
        self._calibration = (
            calibration
            if calibration is not None and not calibration.is_identity
            else None
        )
        self._cls = profile.scalability_class
        self._f_ref = profile.all_run.frequency_hz
        self._n_cores = profile.n_cores
        self._np = inflection_point

        half, all_ = profile.half_run, profile.all_run
        self._plateau = 0.0
        self._plateau_lo = 0.0
        self._f_lo = profile.all_run.frequency_lo_hz
        # Device reference point for GPU-offload apps: the measured
        # busy time at the clock the profiling sample resolved to.
        self._dev_ref_s = all_.device_s
        self._gpu_clock_ref_hz = all_.gpu_clock_hz
        if self._cls is ScalabilityClass.LINEAR or inflection_point is None:
            # Eq. 1 — single model through the two mandatory samples.
            self._seg1 = _Hyperbola.through(
                half.n_threads, half.t_iter_s, all_.n_threads, all_.t_iter_s
            )
            self._seg2: _Line | None = None
            self._np = None if self._cls is ScalabilityClass.LINEAR else inflection_point
        else:
            if profile.confirm_run is None:
                raise ModelNotFittedError(
                    "non-linear model needs the confirmation sample at NP; "
                    "run SmartProfiler.confirm first"
                )
            conf = profile.confirm_run
            anchor = half if half.n_threads != conf.n_threads else all_
            self._seg1 = _Hyperbola.through(
                anchor.n_threads, anchor.t_iter_s, conf.n_threads, conf.t_iter_s
            )
            if all_.n_threads != conf.n_threads:
                self._seg2 = _Line.through(
                    conf.n_threads, conf.t_iter_s, all_.n_threads, all_.t_iter_s
                )
            else:
                self._seg2 = None
            if self._cls is ScalabilityClass.LOGARITHMIC:
                # NP is the bandwidth-saturation knee, so the flattest
                # measured time is the memory plateau (see module doc).
                # The plateau itself degrades at low frequency (uncore
                # frequency scaling steals bandwidth); the low-frequency
                # phase of the all-core sample measured that directly.
                self._plateau = min(all_.t_iter_s, conf.t_iter_s)
                self._plateau_lo = max(all_.t_iter_lo_s, self._plateau)
                self._f_lo = all_.frequency_lo_hz
                # The compute (frequency-scaled) share comes from the
                # half-core sample's own two frequency points: below
                # the knee the run is compute-bound, so the time delta
                # between the frequency extremes isolates the 1/f term
                # exactly — robust even when NP coincides with the
                # half-core count and the hyperbola degenerates.
                f_gain = half.frequency_hz / half.frequency_lo_hz
                s12 = (half.t_iter_lo_s - half.t_iter_s) / max(f_gain - 1.0, 1e-9)
                self._log_scalable = max(s12, 0.0)
                self._log_flat = max(half.t_iter_s - self._log_scalable, 0.0)
                self._log_n_ref = half.n_threads

    # ------------------------------------------------------------------

    @property
    def scalability_class(self) -> ScalabilityClass:
        """Class the model was built for."""
        return self._cls

    @property
    def inflection_point(self) -> int | None:
        """NP the piecewise model pivots on (None for linear)."""
        return self._np

    @property
    def reference_frequency_hz(self) -> float:
        """Frequency the samples ran at; scaling is relative to it."""
        return self._f_ref

    @property
    def calibration(self) -> TimeCalibration | None:
        """Outcome-learned correction applied on top of the fit (or None)."""
        return self._calibration

    @property
    def device_ref_time_s(self) -> float:
        """Profiled device-busy time per iteration (0 for host-only)."""
        return self._dev_ref_s

    @property
    def gpu_clock_ref_hz(self) -> float:
        """Device clock the profiling sample ran at (0 for host-only)."""
        return self._gpu_clock_ref_hz

    def predict_time(
        self,
        n_threads: int,
        frequency_hz: float | None = None,
        gpu_clock_hz: float | None = None,
    ) -> float:
        """Predicted iteration time at *n_threads* (and frequency).

        For GPU-offload apps *gpu_clock_hz* evaluates the prediction at
        a candidate device clock (defaults to the profiled clock); it
        is ignored for host-only scalability classes.
        """
        if not 1 <= n_threads <= self._n_cores:
            raise ProfilingError(
                f"n_threads {n_threads} outside [1, {self._n_cores}]"
            )
        if frequency_hz is not None and frequency_hz <= 0:
            raise ProfilingError("frequency must be > 0")
        if gpu_clock_hz is not None and gpu_clock_hz <= 0:
            raise ProfilingError("gpu clock must be > 0")
        f = frequency_hz if frequency_hz is not None else self._f_ref
        if self._cls is ScalabilityClass.LOGARITHMIC and self._np is not None:
            # roofline: the frequency-scaled compute term (calibrated
            # from the half-core dual-frequency measurements) against
            # the measured memory plateau, itself interpolated between
            # its nominal- and lowest-frequency measurements
            comp = (
                self._log_scalable
                * (self._log_n_ref / n_threads)
                * (self._f_ref / f)
            )
            t = max(comp + self._log_flat, self._plateau_at(f))
            return self._calibrated(max(t, 1e-9), n_threads)
        if self._np is None or n_threads <= self._np or self._seg2 is None:
            t = self._seg1.time(n_threads)
            scalable = self._seg1.a / n_threads
            flat = self._seg1.b
        else:
            t = self._seg2.time(n_threads)
            # flat share at the segment boundary carries over
            flat = min(self._seg1.b, t)
            scalable = t - flat
        t = max(t, 1e-9)
        if f != self._f_ref:
            t = max(scalable * (self._f_ref / f) + flat, 1e-9)
        return self._calibrated(self._with_device(t, gpu_clock_hz), n_threads)

    def _calibrated(self, t: float, n_threads: int) -> float:
        """Apply the learned per-segment correction (identity when unset)."""
        if self._calibration is None:
            return t
        return max(t * self._calibration.scale_for(n_threads, self._np), 1e-9)

    def _with_device(self, t_host: float, gpu_clock_hz: float | None) -> float:
        """Re-evaluate the device roofline at a candidate clock.

        The profiled iteration time already contains the device share
        at the reference clock, so the host residual is whatever sits
        above it; the device term itself scales inversely with clock
        (device instruction rate ∝ clock).
        """
        if (
            self._cls is not ScalabilityClass.GPU_OFFLOAD
            or gpu_clock_hz is None
            or self._dev_ref_s <= 0
            or self._gpu_clock_ref_hz <= 0
        ):
            return t_host
        host_resid = max(t_host - self._dev_ref_s, 0.0)
        t_dev = self._dev_ref_s * (self._gpu_clock_ref_hz / gpu_clock_hz)
        return max(host_resid + t_dev, 1e-9)

    def _plateau_at(self, f: float) -> float:
        """Memory plateau at frequency *f* (linear between measurements)."""
        if f >= self._f_ref:
            return self._plateau
        if f <= self._f_lo:
            return self._plateau_lo
        w = (self._f_ref - f) / (self._f_ref - self._f_lo)
        return self._plateau + w * (self._plateau_lo - self._plateau)

    def predict_perf(
        self,
        n_threads: int,
        frequency_hz: float | None = None,
        gpu_clock_hz: float | None = None,
    ) -> float:
        """Predicted throughput (1 / iteration time)."""
        return 1.0 / self.predict_time(n_threads, frequency_hz, gpu_clock_hz)

    def candidate_concurrencies(self) -> tuple[int, ...]:
        """Even thread counts worth evaluating, per class.

        Linear apps stay at full concurrency unless power forces less;
        logarithmic apps consider NP up to all cores; parabolic apps
        never exceed NP (§II / §III-A.2).
        """
        evens = tuple(range(2, self._n_cores + 1, 2))
        if self._cls is ScalabilityClass.LINEAR or self._np is None:
            return evens
        if self._cls is ScalabilityClass.PARABOLIC:
            return tuple(n for n in evens if n <= self._np)
        return evens

    def flat_share(self, n_threads: int) -> float:
        """Fraction of the predicted time insensitive to frequency."""
        t = self.predict_time(n_threads)
        if self._np is None or n_threads <= self._np or self._seg2 is None:
            flat = self._seg1.b
        else:
            flat = min(self._seg1.b, t)
        return float(np.clip(flat / t, 0.0, 1.0))
