"""Consistency between the execution engine and the analytic model.

The engine is a fixed-point wrapper around the ground-truth model plus
RAPL resolution; with generous caps the wrapper must reduce exactly to
the model.  These tests pin that equivalence and a set of physical
invariants the fixed point must never break.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.cluster import SimulatedCluster
from repro.hw.numa import AffinityKind, NumaTopology
from repro.sim.affinity import make_placement
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.apps import get_app
from repro.workloads.model import GroundTruthModel


@pytest.fixture()
def setup():
    cluster = SimulatedCluster.testbed(variability_sigma=0.0)
    return ExecutionEngine(cluster, seed=0), GroundTruthModel(cluster.spec.node)


class TestUncappedEquivalence:
    @pytest.mark.parametrize("name", ["comd", "sp-mz.C", "stream"])
    @pytest.mark.parametrize("n_threads", [6, 12, 24])
    def test_engine_matches_model_when_uncapped(self, setup, name, n_threads):
        engine, model = setup
        app = get_app(name)
        node = engine.cluster.spec.node
        f_nom = node.socket.f_nominal
        result = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1,
                n_threads=n_threads,
                affinity=AffinityKind.SCATTER,
                frequency_hz=f_nom,
                iterations=2,
            ),
        )
        placement = make_placement(
            NumaTopology(node), n_threads, AffinityKind.SCATTER,
            app.shared_fraction,
        )
        full_bw = np.full(node.n_sockets, node.socket.memory.peak_bandwidth)
        expected = model.iteration_time(
            app,
            placement.threads_per_socket,
            f_nom,
            full_bw,
            remote_fraction=placement.remote_fraction,
        )
        assert result.nodes[0].t_iter_s == pytest.approx(
            expected.t_iter_s, rel=1e-6
        )

    def test_work_fraction_matches_model(self, setup):
        engine, model = setup
        app = get_app("comd")
        node = engine.cluster.spec.node
        f_nom = node.socket.f_nominal
        r4 = engine.run(
            app,
            ExecutionConfig(
                n_nodes=4, n_threads=24, frequency_hz=f_nom, iterations=2
            ),
        )
        placement = make_placement(
            NumaTopology(node), 24, AffinityKind.SCATTER, app.shared_fraction
        )
        full_bw = np.full(node.n_sockets, node.socket.memory.peak_bandwidth)
        expected = model.iteration_time(
            app,
            placement.threads_per_socket,
            f_nom,
            full_bw,
            remote_fraction=placement.remote_fraction,
            work_fraction=0.25,
        )
        assert r4.nodes[0].t_iter_s == pytest.approx(
            expected.t_iter_s, rel=1e-6
        )


class TestPhysicalInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        pkg=st.floats(min_value=70.0, max_value=250.0),
        name=st.sampled_from(["comd", "bt-mz.C", "tealeaf"]),
    )
    def test_frequency_monotone_in_pkg_cap(self, pkg, name):
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=0)
        app = get_app(name)
        lo = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=pkg, dram_cap_w=30.0,
                iterations=1,
            ),
        ).nodes[0].operating_point
        hi = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=pkg + 30.0, dram_cap_w=30.0,
                iterations=1,
            ),
        ).nodes[0].operating_point
        assert hi.effective_frequency_hz >= lo.effective_frequency_hz * (1 - 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(dram=st.floats(min_value=10.0, max_value=36.0))
    def test_memory_app_perf_monotone_in_dram_cap(self, dram):
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=0)
        app = get_app("stream")
        lo = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=200.0, dram_cap_w=dram,
                iterations=1,
            ),
        ).performance
        hi = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1, n_threads=24, pkg_cap_w=200.0, dram_cap_w=dram + 4.0,
                iterations=1,
            ),
        ).performance
        assert hi >= lo * (1 - 1e-9)

    def test_activity_bounds(self, setup):
        engine, _ = setup
        for name in ("ep.C", "stream", "sp-mz.C"):
            r = engine.run(
                get_app(name),
                ExecutionConfig(n_nodes=1, n_threads=24, iterations=1),
            )
            assert 0.05 <= r.nodes[0].activity <= 1.0

    def test_power_higher_for_compute_bound(self, setup):
        engine, _ = setup
        f = engine.cluster.spec.node.socket.f_nominal
        ep = engine.run(
            get_app("ep.C"),
            ExecutionConfig(
                n_nodes=1, n_threads=24, frequency_hz=f, iterations=1
            ),
        ).nodes[0].operating_point
        stream = engine.run(
            get_app("stream"),
            ExecutionConfig(
                n_nodes=1, n_threads=24, frequency_hz=f, iterations=1
            ),
        ).nodes[0].operating_point
        # compute-bound cores switch more: higher PKG power at equal f
        assert ep.pkg_power_w > stream.pkg_power_w
        # bandwidth-bound DRAM draws more than EP's idle memory
        assert stream.dram_power_w > ep.dram_power_w
