"""Unit and property tests for the power-enforcement watchdog.

The watchdog's contract is behavioural, so beyond the example-based
unit tests a hypothesis suite drives it with randomly drawn drift and
sensor-noise scripts and checks the two properties that define it:

* within the guard band it never intervenes;
* after its corrections, every audited cap total stays at or below the
  facility budget (plus the guard band the breach test allows).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.knowledge import KnowledgeDB
from repro.core.runtime import PowerBoundedRuntime
from repro.core.scheduler import ClipScheduler
from repro.core.watchdog import (
    DEFAULT_GUARD_BAND_FRAC,
    MAX_DERATE,
    MIN_DERATE,
    EnforcementGuard,
    PowerEnforcementWatchdog,
)
from repro.hw.actuation import FaultyActuation
from repro.hw.cluster import SimulatedCluster
from repro.hw.meter import TelemetryFault
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

# hypothesis forbids function-scoped fixtures inside @given, so the
# heavyweight scheduler is module-cached and mutable state (cluster,
# monitor) is reset per example
_STATE: dict = {}


def _runtime() -> PowerBoundedRuntime:
    if "clip" not in _STATE:
        engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        from repro.analysis.experiments import build_trained_inflection

        _STATE["clip"] = ClipScheduler(
            engine,
            inflection=build_trained_inflection(engine),
            knowledge=KnowledgeDB(),
        )
    clip = _STATE["clip"]
    clip.engine.cluster.reset()
    for node_id in clip.engine.cluster.failed_node_ids:
        clip.engine.cluster.recover_node(node_id)
    clip.monitor.reset()
    return PowerBoundedRuntime(clip)


@pytest.fixture()
def runtime():
    return _runtime()


class TestObservation:
    def test_no_intervention_without_faults(self, runtime):
        dog = PowerEnforcementWatchdog(runtime)
        job = runtime.launch(get_app("comd"), 1200.0, n_nodes=4)
        runtime.advance(job, 10)
        assert runtime.watchdog is dog
        obs = dog.observations[-1]
        assert not obs.breach
        assert obs.action == "none"
        assert obs.measured_w <= obs.allowed_w + obs.guard_band_w

    def test_blind_when_every_sensor_drops(self, runtime):
        dog = PowerEnforcementWatchdog(runtime)
        job = runtime.launch(get_app("comd"), 1200.0, n_nodes=4)
        for node_id in job.node_ids:
            runtime.scheduler.engine.cluster.node(node_id).meter.telemetry = (
                TelemetryFault(seed=1, drop_prob=1.0)
            )
        runtime.advance(job, 10)
        obs = dog.observations[-1]
        assert obs.measured_w is None
        assert obs.action == "blind"
        assert not obs.breach

    def test_drift_breach_walks_the_escalation_ladder(self, runtime):
        dog = PowerEnforcementWatchdog(runtime)
        # 700 W binds comd's caps (its unthrottled 4-node draw is ~940 W),
        # so drifted enforcement genuinely overdraws the budget
        job = runtime.launch(
            get_app("comd"), 700.0, n_nodes=4, allow_concurrency_change=True
        )
        for node_id in job.node_ids:
            rapl = runtime.scheduler.engine.cluster.node(node_id).rapl
            rapl.actuation = FaultyActuation(
                seed=1, drift_prob=1.0, drift_frac=0.25
            )
        runtime.reissue_caps(job)  # arm the drift on current caps
        while not job.done and len(dog.observations) < 12:
            runtime.advance(job, 5)
        actions = [o.action for o in dog.observations]
        # reissue fires first (and cannot fix drift), then the derated
        # re-coordination pulls measured power back inside the band
        assert "reissue" in actions
        assert "recoordinate" in actions
        assert actions[-1] == "none"
        runtime.monitor.assert_clean()

    def test_emergency_when_recoordination_infeasible(self, runtime):
        dog = PowerEnforcementWatchdog(runtime)
        # pinned threads just above the feasibility floor leave no
        # re-plan slack: heavy drift forces the ladder all the way to
        # the emergency floor
        job = runtime.launch(get_app("comd"), 450.0, n_nodes=4, n_threads=24)
        for node_id in job.node_ids:
            rapl = runtime.scheduler.engine.cluster.node(node_id).rapl
            rapl.actuation = FaultyActuation(
                seed=1, drift_prob=1.0, drift_frac=0.5
            )
        runtime.reissue_caps(job)
        while not job.done and len(dog.observations) < 12:
            runtime.advance(job, 5)
        actions = [o.action for o in dog.observations]
        assert "emergency" in actions
        if actions.index("emergency") < len(actions) - 1:
            after = actions[actions.index("emergency") + 1]
            assert after in ("emergency.hold", "none")
        runtime.monitor.assert_clean()

    def test_report_counts_episodes(self, runtime):
        dog = PowerEnforcementWatchdog(runtime)
        job = runtime.launch(
            get_app("comd"), 700.0, n_nodes=4, allow_concurrency_change=True
        )
        for node_id in job.node_ids:
            rapl = runtime.scheduler.engine.cluster.node(node_id).rapl
            rapl.actuation = FaultyActuation(
                seed=1, drift_prob=1.0, drift_frac=0.25
            )
        runtime.reissue_caps(job)
        while not job.done:
            runtime.advance(job, 5)
        rep = dog.report()
        assert rep["observations"] == len(dog.observations)
        assert rep["breaches"] >= 1
        assert rep["episodes"] >= 1
        assert rep["max_breach_segments"] >= 1
        assert rep["mean_breach_segments"] > 0


class TestWatchdogProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        drift_frac=st.floats(min_value=0.08, max_value=0.45),
        noise_frac=st.floats(min_value=0.0, max_value=0.04),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_corrections_restore_the_budget_invariant(
        self, drift_frac, noise_frac, seed
    ):
        runtime = _runtime()
        dog = PowerEnforcementWatchdog(runtime)
        budget_w = 700.0  # binds comd's caps, so drift truly overdraws
        job = runtime.launch(
            get_app("comd"), budget_w, n_nodes=4,
            allow_concurrency_change=True,
        )
        cluster = runtime.scheduler.engine.cluster
        for node_id in job.node_ids:
            cluster.node(node_id).rapl.actuation = FaultyActuation(
                seed=seed, drift_prob=1.0, drift_frac=drift_frac
            )
            if noise_frac > 0.0:
                cluster.node(node_id).meter.telemetry = TelemetryFault(
                    seed=seed + 1, noise_frac=noise_frac
                )
        runtime.reissue_caps(job)
        while not job.done:
            runtime.advance(job, 5)
        runtime.monitor.assert_clean()
        # every post-correction audited plan stays within budget + band
        band = 1.0 + DEFAULT_GUARD_BAND_FRAC + 1e-9
        for audit in runtime.monitor.audits:
            if audit.source.startswith("watchdog"):
                assert audit.total_capped_w <= budget_w * band

    @settings(max_examples=12, deadline=None)
    @given(
        noise_frac=st.floats(min_value=0.0, max_value=0.015),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_no_intervention_within_the_guard_band(self, noise_frac, seed):
        # honest actuation and sensor jitter well inside the band:
        # the watchdog must never touch the job
        runtime = _runtime()
        dog = PowerEnforcementWatchdog(runtime)
        job = runtime.launch(
            get_app("comd"), 1200.0, n_nodes=4,
            allow_concurrency_change=True,
        )
        if noise_frac > 0.0:
            cluster = runtime.scheduler.engine.cluster
            for node_id in job.node_ids:
                cluster.node(node_id).meter.telemetry = TelemetryFault(
                    seed=seed, noise_frac=noise_frac
                )
        while not job.done:
            runtime.advance(job, 5)
        assert all(o.action in ("none", "blind") for o in dog.observations)
        assert dog.report()["breaches"] == 0


class TestEnforcementGuard:
    def test_breach_derates_and_heal_relaxes(self):
        guard = EnforcementGuard()
        assert guard.scheduling_budget(1000.0) == pytest.approx(1000.0)
        assert guard.observe(1200.0, 1000.0) is True
        assert guard.derate < 1.0
        derated = guard.derate
        assert guard.observe(990.0, 1000.0) is False
        assert guard.derate > derated
        for _ in range(20):
            guard.observe(990.0, 1000.0)
        assert guard.derate == pytest.approx(1.0)

    def test_derate_is_clamped(self):
        guard = EnforcementGuard()
        for _ in range(50):
            guard.observe(10_000.0, 1000.0)
        assert guard.derate >= MIN_DERATE
        guard2 = EnforcementGuard()
        guard2.observe(1001.0 * (1 + DEFAULT_GUARD_BAND_FRAC), 1000.0)
        assert guard2.derate >= MAX_DERATE - 1e-9

    def test_report_shape(self):
        guard = EnforcementGuard()
        guard.observe(1200.0, 1000.0)
        rep = guard.report()
        assert rep["checks"] == 1
        assert rep["breaches"] == 1
        assert 0 < rep["derate"] < 1
