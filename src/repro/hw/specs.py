"""Static hardware specifications.

The dataclasses here describe the *shape* of a machine — core counts,
frequency range, peak bandwidths, and the coefficients of the analytic
power model.  They are immutable; runtime state (current frequency,
caps, energy counters) lives in :mod:`repro.hw.node`.

:func:`haswell_testbed` builds the paper's evaluation platform: an
8-node cluster where each node has two 12-core Intel Xeon E5-2670 v3
(Haswell) processors at 2.30 GHz and 128 GB of DDR4 split evenly across
the two NUMA sockets (§V-A).  Power-model coefficients are calibrated to
public Haswell figures: 120 W TDP per package and DDR4 DIMM power in the
tens of watts per socket under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecError
from repro.units import GHZ, gbps, ghz

__all__ = [
    "CoreSpec",
    "SocketSpec",
    "MemorySpec",
    "GpuSpec",
    "NodeSpec",
    "NodeGroup",
    "RackSpec",
    "ClusterSpec",
    "haswell_node",
    "haswell_testbed",
    "broadwell_node",
    "broadwell_testbed",
    "mixed_testbed",
    "gpu_node",
    "gpu_testbed",
    "mixed_gpu_testbed",
    "HASWELL_FREQ_LADDER_GHZ",
    "BROADWELL_FREQ_LADDER_GHZ",
    "GPU_CLOCK_LADDER_GHZ",
]

#: Discrete DVFS ladder of the E5-2670 v3 in GHz.  1.2 GHz is the lowest
#: P-state, 2.3 GHz the nominal frequency, 3.1 GHz the max turbo bin.
HASWELL_FREQ_LADDER_GHZ: tuple[float, ...] = (
    1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2, 2.3,
    2.4, 2.5, 2.6, 2.7, 2.8, 2.9, 3.0, 3.1,
)


@dataclass(frozen=True)
class CoreSpec:
    """A single CPU core.

    Attributes
    ----------
    ipc_peak:
        Peak retired instructions per cycle for compute-bound code; used
        by the event synthesizer and the workload ground-truth model.
    p_leak_w:
        Static (leakage) power drawn whenever the core is active,
        independent of frequency.
    p_dyn_w:
        Dynamic power at the *nominal* frequency under full load.  The
        power model scales this as ``(f / f_nominal) ** dyn_exponent``.
    dyn_exponent:
        Exponent of the frequency–power relationship.  Voltage scales
        roughly linearly with frequency in the DVFS range, making
        dynamic power super-linear; 2.4 is a common empirical fit for
        Haswell.
    """

    ipc_peak: float = 4.0
    p_leak_w: float = 1.0
    p_dyn_w: float = 7.5
    dyn_exponent: float = 2.4

    def __post_init__(self) -> None:
        if self.ipc_peak <= 0:
            raise SpecError(f"ipc_peak must be > 0, got {self.ipc_peak}")
        if self.p_leak_w < 0 or self.p_dyn_w <= 0:
            raise SpecError("core power coefficients must be non-negative")
        if not 1.0 <= self.dyn_exponent <= 3.5:
            raise SpecError(
                f"dyn_exponent outside plausible range [1, 3.5]: {self.dyn_exponent}"
            )


@dataclass(frozen=True)
class MemorySpec:
    """The DRAM attached to one NUMA socket.

    Attributes
    ----------
    capacity_bytes:
        Installed DRAM capacity.
    peak_bandwidth:
        Peak sustainable read+write bandwidth (bytes/s) at the highest
        memory power level.
    p_base_w:
        Background DRAM power (refresh, PLLs) at idle — the
        :math:`P_{mbase}` term of Eq. 9.
    p_load_max_w:
        Additional power at peak bandwidth — the :math:`P_{mload}` term
        of Eq. 9 evaluated at full load.  Load power is modeled as
        linear in delivered bandwidth, the relationship RAPL's DRAM
        domain exploits.
    n_power_levels:
        Number of discrete memory power levels the platform exposes
        (bandwidth throttling states used to honor a DRAM cap).
    """

    capacity_bytes: float = 64 * 2**30
    peak_bandwidth: float = gbps(59.7)
    p_base_w: float = 4.0
    p_load_max_w: float = 14.0
    n_power_levels: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.peak_bandwidth <= 0:
            raise SpecError("memory capacity and bandwidth must be > 0")
        if self.p_base_w < 0 or self.p_load_max_w < 0:
            raise SpecError("memory power coefficients must be >= 0")
        if self.n_power_levels < 1:
            raise SpecError("need at least one memory power level")

    @property
    def p_max_w(self) -> float:
        """Maximum DRAM power for this socket (base + full load)."""
        return self.p_base_w + self.p_load_max_w

    def bandwidth_at_level(self, level: int) -> float:
        """Peak bandwidth available at a discrete power *level*.

        Level ``n_power_levels - 1`` is full speed; level 0 retains a
        floor of 1/n of peak so memory never stalls completely.
        """
        if not 0 <= level < self.n_power_levels:
            raise SpecError(
                f"memory power level {level} outside [0, {self.n_power_levels})"
            )
        return self.peak_bandwidth * (level + 1) / self.n_power_levels


@dataclass(frozen=True)
class SocketSpec:
    """One processor package plus its local memory controller.

    Attributes
    ----------
    n_cores:
        Physical cores in the package.
    f_min / f_nominal / f_max:
        DVFS range in Hz; ``f_max`` includes turbo headroom.
    freq_ladder:
        Discrete frequencies (Hz) the DVFS controller may select.
    p_base_w:
        Package power with all cores idle — uncore, caches, and the
        memory controller: the :math:`P_{pbase}` term of Eq. 7.
    tdp_w:
        Thermal design power of the package; default PKG RAPL cap.
    core:
        Per-core specification.
    memory:
        Local DRAM specification.
    """

    n_cores: int = 12
    f_min: float = ghz(1.2)
    f_nominal: float = ghz(2.3)
    f_max: float = ghz(3.1)
    freq_ladder: tuple[float, ...] = tuple(f * GHZ for f in HASWELL_FREQ_LADDER_GHZ)
    p_base_w: float = 16.0
    tdp_w: float = 120.0
    core: CoreSpec = field(default_factory=CoreSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SpecError(f"socket needs >= 1 core, got {self.n_cores}")
        if not 0 < self.f_min <= self.f_nominal <= self.f_max:
            raise SpecError(
                "frequency range must satisfy 0 < f_min <= f_nominal <= f_max"
            )
        if not self.freq_ladder:
            raise SpecError("freq_ladder must be non-empty")
        if tuple(sorted(self.freq_ladder)) != self.freq_ladder:
            raise SpecError("freq_ladder must be sorted ascending")
        if abs(self.freq_ladder[0] - self.f_min) > 1e3:
            raise SpecError("freq_ladder must start at f_min")
        if abs(self.freq_ladder[-1] - self.f_max) > 1e3:
            raise SpecError("freq_ladder must end at f_max")
        if self.p_base_w < 0 or self.tdp_w <= 0:
            raise SpecError("socket power coefficients must be valid")

    @property
    def p_pkg_max_w(self) -> float:
        """Package power with all cores at maximum frequency.

        May exceed ``tdp_w``: turbo is opportunistic, and RAPL resolves
        the overshoot by clipping frequency — exactly the behaviour the
        cap-resolution logic models.
        """
        core_w = self.core.p_leak_w + self.core.p_dyn_w * (
            self.f_max / self.f_nominal
        ) ** self.core.dyn_exponent
        return self.p_base_w + self.n_cores * core_w

    @property
    def p_pkg_min_active_w(self) -> float:
        """Package power with all cores active at the lowest frequency."""
        core_w = self.core.p_leak_w + self.core.p_dyn_w * (
            self.f_min / self.f_nominal
        ) ** self.core.dyn_exponent
        return self.p_base_w + self.n_cores * core_w


#: Discrete clock ladder of the simulated accelerator board in GHz.
#: 0.6 GHz is the lowest P-state, 1.1 GHz the nominal clock, 1.3 GHz
#: the boost bin.
GPU_CLOCK_LADDER_GHZ: tuple[float, ...] = (
    0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3,
)


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator board attached to a node.

    The accelerator is a third RAPL-style power domain: it has its own
    clock ladder, its own cap, and its own power curve, mirroring the
    CPU package idiom.

    Attributes
    ----------
    clock_ladder_hz:
        Discrete clocks (Hz) the device firmware may select, ascending.
    clk_nominal_hz:
        Reference clock; dynamic power and throughput scale relative
        to it.
    p_idle_w:
        Board power with the device powered but idle.
    p_dyn_w:
        Additional board power at the nominal clock under full
        utilization; scales as ``(clk / clk_nominal) ** dyn_exponent``.
    dyn_exponent:
        Exponent of the clock–power relationship.
    instr_rate:
        Device throughput (instructions/s) at the nominal clock; the
        offload performance model scales it linearly with clock.
    """

    name: str = "gpu"
    clock_ladder_hz: tuple[float, ...] = tuple(
        f * GHZ for f in GPU_CLOCK_LADDER_GHZ
    )
    clk_nominal_hz: float = ghz(1.1)
    p_idle_w: float = 18.0
    p_dyn_w: float = 165.0
    dyn_exponent: float = 2.0
    instr_rate: float = 4.0e11

    def __post_init__(self) -> None:
        if not self.clock_ladder_hz:
            raise SpecError("gpu clock_ladder_hz must be non-empty")
        if tuple(sorted(self.clock_ladder_hz)) != self.clock_ladder_hz:
            raise SpecError("gpu clock_ladder_hz must be sorted ascending")
        if not (
            self.clock_ladder_hz[0]
            <= self.clk_nominal_hz
            <= self.clock_ladder_hz[-1]
        ):
            raise SpecError("gpu nominal clock must lie inside the ladder")
        if self.p_idle_w < 0 or self.p_dyn_w <= 0:
            raise SpecError("gpu power coefficients must be valid")
        if not 1.0 <= self.dyn_exponent <= 3.5:
            raise SpecError(
                f"gpu dyn_exponent outside [1, 3.5]: {self.dyn_exponent}"
            )
        if self.instr_rate <= 0:
            raise SpecError("gpu instr_rate must be > 0")

    @property
    def clk_min_hz(self) -> float:
        """Lowest selectable device clock."""
        return self.clock_ladder_hz[0]

    @property
    def clk_max_hz(self) -> float:
        """Highest selectable device clock."""
        return self.clock_ladder_hz[-1]

    def power_at(self, clock_hz: float, utilization: float = 1.0) -> float:
        """Board power at *clock_hz* and busy-fraction *utilization*."""
        scale = (clock_hz / self.clk_nominal_hz) ** self.dyn_exponent
        return self.p_idle_w + self.p_dyn_w * scale * utilization

    @property
    def p_min_w(self) -> float:
        """Board power at the lowest clock, fully utilized."""
        return self.power_at(self.clk_min_hz)

    @property
    def p_max_w(self) -> float:
        """Board power at the highest clock, fully utilized."""
        return self.power_at(self.clk_max_hz)


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: one or more sockets plus non-capped components.

    ``p_other_w`` covers the board, fans, NIC, and disks — the
    :math:`P_{OtherT}` term of Eq. 5.  It is constant and outside RAPL
    control, so schedulers must subtract it from any node budget before
    splitting power between CPU and DRAM.

    Nodes may carry accelerator boards (``gpu`` + ``n_gpus``): those add
    a third cappable power domain next to PKG and DRAM.  The
    ``gpu_cap_levels_w`` / ``gpu_level_clock_scale`` views expose the
    quantized cap↔clock trade-off at the spec level, so decision layers
    can reason about the device domain without reaching into
    :class:`GpuSpec` internals.
    """

    name: str = "node"
    n_sockets: int = 2
    socket: SocketSpec = field(default_factory=SocketSpec)
    p_other_w: float = 35.0
    gpu: GpuSpec | None = None
    n_gpus: int = 0

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise SpecError(f"node needs >= 1 socket, got {self.n_sockets}")
        if self.p_other_w < 0:
            raise SpecError("p_other_w must be >= 0")
        if self.gpu is not None and self.n_gpus < 1:
            raise SpecError("a GPU-bearing node needs n_gpus >= 1")
        if self.gpu is None and self.n_gpus != 0:
            raise SpecError("n_gpus > 0 requires a GpuSpec")

    @property
    def n_cores(self) -> int:
        """Total physical cores on the node."""
        return self.n_sockets * self.socket.n_cores

    @property
    def has_gpu(self) -> bool:
        """Whether this node class carries accelerator boards."""
        return self.gpu is not None

    @property
    def p_cpu_max_w(self) -> float:
        """Aggregate package power ceiling across sockets."""
        return self.n_sockets * self.socket.p_pkg_max_w

    @property
    def p_mem_max_w(self) -> float:
        """Aggregate DRAM power ceiling across sockets."""
        return self.n_sockets * self.socket.memory.p_max_w

    @property
    def p_gpu_max_w(self) -> float:
        """Aggregate device power ceiling across boards (0 without GPUs)."""
        if self.gpu is None:
            return 0.0
        return self.n_gpus * self.gpu.p_max_w

    @property
    def p_gpu_min_w(self) -> float:
        """Aggregate device power at the lowest clock, fully utilized."""
        if self.gpu is None:
            return 0.0
        return self.n_gpus * self.gpu.p_min_w

    @property
    def p_gpu_idle_w(self) -> float:
        """Aggregate device idle power (0 without GPUs)."""
        if self.gpu is None:
            return 0.0
        return self.n_gpus * self.gpu.p_idle_w

    @property
    def gpu_cap_levels_w(self) -> tuple[float, ...]:
        """Full-utilization device power at each clock level, ascending.

        Empty without GPUs.  These are the meaningful GPU cap choices:
        capping between two levels buys nothing, because the device
        quantizes to the ladder anyway.
        """
        if self.gpu is None:
            return ()
        return tuple(
            self.n_gpus * self.gpu.power_at(clk)
            for clk in self.gpu.clock_ladder_hz
        )

    @property
    def gpu_level_clock_scale(self) -> tuple[float, ...]:
        """Clock of each level relative to nominal (device speedup)."""
        if self.gpu is None:
            return ()
        return tuple(
            clk / self.gpu.clk_nominal_hz for clk in self.gpu.clock_ladder_hz
        )

    @property
    def gpu_level_clocks_hz(self) -> tuple[float, ...]:
        """Absolute device clock of each ladder level, ascending."""
        if self.gpu is None:
            return ()
        return tuple(self.gpu.clock_ladder_hz)

    @property
    def p_node_max_w(self) -> float:
        """Peak node power: CPU + DRAM (+ GPU) + uncapped components."""
        if self.gpu is None:
            return self.p_cpu_max_w + self.p_mem_max_w + self.p_other_w
        return (
            self.p_cpu_max_w
            + self.p_mem_max_w
            + self.p_gpu_max_w
            + self.p_other_w
        )

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate DRAM bandwidth across sockets (bytes/s)."""
        return self.n_sockets * self.socket.memory.peak_bandwidth


@dataclass(frozen=True)
class NodeGroup:
    """A run of identical nodes inside a (possibly mixed) cluster.

    Clusters are described as an ordered list of groups — e.g.
    4× Haswell followed by 4× Broadwell — and slot ids are assigned in
    group order: the first ``count`` slots carry the first group's spec,
    and so on.
    """

    spec: NodeSpec
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpecError(f"node group needs >= 1 node, got {self.count}")


@dataclass(frozen=True)
class RackSpec:
    """One rack (or enclosure): an ordered run of node groups.

    Racks are the intermediate tier between the cluster and its nodes
    — the level facility budgets are partitioned at (FastCap-style
    per-level splitting).  A rack is described exactly like a small
    cluster population: an ordered tuple of :class:`NodeGroup`\\ s,
    slot ids assigned in group order within the rack.
    """

    name: str
    groups: tuple[NodeGroup, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("rack needs a non-empty name")
        if not self.groups:
            raise SpecError(f"rack {self.name!r} needs >= 1 node group")
        for g in self.groups:
            if not isinstance(g, NodeGroup):
                raise SpecError(
                    f"rack {self.name!r} groups must contain NodeGroup, got {g!r}"
                )

    @property
    def n_nodes(self) -> int:
        """Number of node slots in this rack."""
        return sum(g.count for g in self.groups)

    @property
    def node_specs(self) -> tuple[NodeSpec, ...]:
        """One :class:`NodeSpec` per rack slot, in slot order."""
        return tuple(g.spec for g in self.groups for _ in range(g.count))


def _merge_adjacent_groups(
    groups: tuple[NodeGroup, ...],
) -> tuple[NodeGroup, ...]:
    """Coalesce adjacent groups with identical specs.

    Rack-composed clusters concatenate each rack's groups; a fleet of
    identical racks would otherwise carry one group per rack and lose
    its homogeneity (``is_homogeneous`` is the one-group case).
    """
    merged: list[NodeGroup] = []
    for g in groups:
        if merged and merged[-1].spec == g.spec:
            merged[-1] = NodeGroup(g.spec, merged[-1].count + g.count)
        else:
            merged.append(g)
    return tuple(merged)


class ClusterSpec:
    """A cluster of nodes plus its interconnect.

    The node population is an ordered tuple of :class:`NodeGroup`\\ s;
    homogeneous clusters are the one-group special case and may still be
    constructed with the legacy ``n_nodes=``/``node=`` keywords.  The
    per-slot view is :attr:`node_specs`; the legacy :attr:`node`
    property remains valid only for single-group clusters and raises
    :class:`SpecError` on mixed ones.

    Fleet-scale clusters are composed of **racks** (``racks=``): an
    ordered tuple of :class:`RackSpec`\\ s whose groups are concatenated
    (adjacent identical specs merged) into the flat group population,
    with the rack partition kept alongside for hierarchical budgeting.
    Clusters built without ``racks=`` are one implicit rack.

    ``variability_sigma`` is the relative standard deviation of each
    node's power-efficiency multiplier due to manufacturing variability
    (§III-B.2); the paper's testbed is "quite homogeneous" so the
    default is small.  The interconnect is described by an alpha–beta
    model consumed by :mod:`repro.sim.mpi`.

    Instances are immutable and hashable (run-cache keys include the
    cluster spec).
    """

    __slots__ = (
        "name",
        "groups",
        "racks",
        "link_latency_s",
        "link_bandwidth",
        "variability_sigma",
        "variability_seed",
        "_node_specs",
    )

    def __init__(
        self,
        name: str = "cluster",
        n_nodes: int | None = None,
        node: NodeSpec | None = None,
        *,
        groups: tuple[NodeGroup, ...] | None = None,
        racks: tuple[RackSpec, ...] | None = None,
        link_latency_s: float = 1.5e-6,
        link_bandwidth: float = gbps(6.8),
        variability_sigma: float = 0.03,
        variability_seed: int = 2017,
    ):
        if racks is not None:
            if groups is not None or n_nodes is not None or node is not None:
                raise SpecError(
                    "pass racks= alone, not with groups= or the legacy "
                    "n_nodes=/node= keywords"
                )
            racks = tuple(racks)
            if not racks:
                raise SpecError("cluster needs >= 1 rack")
            for r in racks:
                if not isinstance(r, RackSpec):
                    raise SpecError(f"racks must contain RackSpec, got {r!r}")
            seen: set[str] = set()
            for r in racks:
                if r.name in seen:
                    raise SpecError(f"duplicate rack name {r.name!r}")
                seen.add(r.name)
            groups = _merge_adjacent_groups(
                tuple(g for r in racks for g in r.groups)
            )
        elif groups is not None:
            if n_nodes is not None or node is not None:
                raise SpecError(
                    "pass either groups= or the legacy n_nodes=/node= "
                    "keywords, not both"
                )
            groups = tuple(groups)
            if not groups:
                raise SpecError("cluster needs >= 1 node group")
            for g in groups:
                if not isinstance(g, NodeGroup):
                    raise SpecError(f"groups must contain NodeGroup, got {g!r}")
        else:
            count = 8 if n_nodes is None else n_nodes
            if count < 1:
                raise SpecError(f"cluster needs >= 1 node, got {count}")
            groups = (NodeGroup(node if node is not None else NodeSpec(), count),)
        if link_latency_s < 0 or link_bandwidth <= 0:
            raise SpecError("interconnect parameters must be valid")
        if not 0.0 <= variability_sigma < 0.5:
            raise SpecError("variability_sigma must lie in [0, 0.5)")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "groups", groups)
        object.__setattr__(self, "racks", racks)
        object.__setattr__(self, "link_latency_s", link_latency_s)
        object.__setattr__(self, "link_bandwidth", link_bandwidth)
        object.__setattr__(self, "variability_sigma", variability_sigma)
        object.__setattr__(self, "variability_seed", variability_seed)
        object.__setattr__(
            self,
            "_node_specs",
            tuple(g.spec for g in groups for _ in range(g.count)),
        )

    def __setattr__(self, key, value):
        raise AttributeError(f"ClusterSpec is immutable (tried to set {key!r})")

    def __delattr__(self, key):
        raise AttributeError(f"ClusterSpec is immutable (tried to delete {key!r})")

    def _identity(self) -> tuple:
        return (
            self.name,
            self.groups,
            self.racks,
            self.link_latency_s,
            self.link_bandwidth,
            self.variability_sigma,
            self.variability_seed,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, ClusterSpec):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:
        racks = f"racks={self.racks!r}, " if self.racks is not None else ""
        return (
            f"ClusterSpec(name={self.name!r}, groups={self.groups!r}, "
            f"{racks}"
            f"link_latency_s={self.link_latency_s!r}, "
            f"link_bandwidth={self.link_bandwidth!r}, "
            f"variability_sigma={self.variability_sigma!r}, "
            f"variability_seed={self.variability_seed!r})"
        )

    @property
    def n_nodes(self) -> int:
        """Number of node slots across all groups."""
        return sum(g.count for g in self.groups)

    @property
    def is_homogeneous(self) -> bool:
        """Whether every slot carries the same node spec."""
        return len(self.groups) == 1

    @property
    def node(self) -> NodeSpec:
        """The single node spec of a homogeneous cluster.

        Mixed clusters have no "the" node; use :attr:`node_specs`.
        """
        if not self.is_homogeneous:
            raise SpecError(
                f"cluster {self.name!r} is heterogeneous "
                f"({len(self.groups)} node groups); use node_specs for the "
                f"per-slot view or groups for the group population"
            )
        return self.groups[0].spec

    @property
    def node_specs(self) -> tuple[NodeSpec, ...]:
        """One :class:`NodeSpec` per slot, in slot-id order."""
        return self._node_specs

    @property
    def total_cores(self) -> int:
        """Total physical cores in the cluster."""
        return sum(g.count * g.spec.n_cores for g in self.groups)

    @property
    def p_cluster_max_w(self) -> float:
        """Peak cluster power (all nodes flat out)."""
        if self.is_homogeneous:
            # keep the seed's count * value arithmetic bit-identical
            return self.n_nodes * self.groups[0].spec.p_node_max_w
        return float(
            sum(g.count * g.spec.p_node_max_w for g in self.groups)
        )

    # -- rack partition (hierarchical budgeting) ------------------------

    @property
    def n_racks(self) -> int:
        """Number of racks (1 for clusters built without ``racks=``)."""
        return len(self.racks) if self.racks is not None else 1

    @property
    def rack_names(self) -> tuple[str, ...]:
        """Rack names, in rack order (a single implicit ``rack0``
        when the cluster was built without ``racks=``)."""
        if self.racks is None:
            return ("rack0",)
        return tuple(r.name for r in self.racks)

    @property
    def rack_sizes(self) -> tuple[int, ...]:
        """Node count per rack, in rack order."""
        if self.racks is None:
            return (self.n_nodes,)
        return tuple(r.n_nodes for r in self.racks)

    @property
    def rack_of_slot(self) -> tuple[int, ...]:
        """Rack index of every node slot, in slot-id order.

        Slot ids run rack by rack: rack 0's slots first, then rack 1's,
        matching the group concatenation order of the constructor.
        """
        return tuple(
            r for r, size in enumerate(self.rack_sizes) for _ in range(size)
        )


def haswell_node(name: str = "haswell") -> NodeSpec:
    """The paper's node: 2× 12-core E5-2670 v3 @ 2.30 GHz, 128 GB DDR4."""
    return NodeSpec(name=name)


def _rack_fleet(racks: int, rack_groups: tuple[NodeGroup, ...]) -> tuple[RackSpec, ...]:
    """*racks* identical racks, each carrying *rack_groups*."""
    if racks < 2:
        raise SpecError(f"a rack fleet needs >= 2 racks, got {racks}")
    return tuple(RackSpec(f"rack{r}", rack_groups) for r in range(racks))


def haswell_testbed(
    n_nodes: int = 8,
    variability_sigma: float = 0.03,
    seed: int = 2017,
    racks: int | None = None,
) -> ClusterSpec:
    """The paper's testbed: an 8-node dual-socket Haswell cluster (§V-A).

    ``racks=N`` (N >= 2) composes a fleet of N identical racks of
    ``n_nodes`` Haswell nodes each; ``racks=None`` or ``racks=1`` keeps
    the original single-rack construction bit-identical.
    """
    if racks is not None and racks > 1:
        return ClusterSpec(
            name="haswell-testbed",
            racks=_rack_fleet(racks, (NodeGroup(haswell_node(), n_nodes),)),
            variability_sigma=variability_sigma,
            variability_seed=seed,
        )
    return ClusterSpec(
        name="haswell-testbed",
        n_nodes=n_nodes,
        node=haswell_node(),
        variability_sigma=variability_sigma,
        variability_seed=seed,
    )


#: Broadwell (E5-2698 v4 class) DVFS ladder in GHz.
BROADWELL_FREQ_LADDER_GHZ: tuple[float, ...] = (
    1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2,
    2.3, 2.4, 2.5, 2.6, 2.7, 2.8, 2.9, 3.0, 3.1, 3.2, 3.3, 3.4, 3.5, 3.6,
)


def broadwell_node(name: str = "broadwell") -> NodeSpec:
    """A next-generation node: 2x 20-core Broadwell-class sockets.

    More cores per socket at a lower nominal clock, a higher TDP, and
    faster DDR4 — the kind of platform shift that broke the fixed
    regression models CLIP's related work used ("hardware evolution
    causes the old methods to lose precision", §III-A), and exactly
    what the profile-driven method should absorb without retuning.
    """
    socket = SocketSpec(
        n_cores=20,
        f_min=ghz(1.2),
        f_nominal=ghz(2.2),
        f_max=ghz(3.6),
        freq_ladder=tuple(f * GHZ for f in BROADWELL_FREQ_LADDER_GHZ),
        p_base_w=20.0,
        tdp_w=135.0,
        core=CoreSpec(p_dyn_w=5.2),
        memory=MemorySpec(
            capacity_bytes=128 * 2**30,
            peak_bandwidth=gbps(68.0),
            p_base_w=5.0,
            p_load_max_w=16.0,
        ),
    )
    return NodeSpec(name=name, n_sockets=2, socket=socket, p_other_w=40.0)


def broadwell_testbed(
    n_nodes: int = 8,
    variability_sigma: float = 0.03,
    seed: int = 2016,
    racks: int | None = None,
) -> ClusterSpec:
    """An 8-node Broadwell-class cluster for generality studies.

    ``racks=N`` (N >= 2) composes N identical Broadwell racks.
    """
    if racks is not None and racks > 1:
        return ClusterSpec(
            name="broadwell-testbed",
            racks=_rack_fleet(racks, (NodeGroup(broadwell_node(), n_nodes),)),
            link_latency_s=1.2e-6,
            link_bandwidth=gbps(12.0),
            variability_sigma=variability_sigma,
            variability_seed=seed,
        )
    return ClusterSpec(
        name="broadwell-testbed",
        n_nodes=n_nodes,
        node=broadwell_node(),
        link_latency_s=1.2e-6,
        link_bandwidth=gbps(12.0),
        variability_sigma=variability_sigma,
        variability_seed=seed,
    )


def mixed_testbed(
    n_haswell: int = 4,
    n_broadwell: int = 4,
    variability_sigma: float = 0.03,
    seed: int = 2017,
    racks: int | None = None,
) -> ClusterSpec:
    """A mixed fleet: Haswell slots first, then Broadwell slots.

    The incremental-procurement cluster: the original Haswell racks
    plus a newer Broadwell purchase behind the same interconnect.  The
    Haswell group comes first deliberately — slot 0 (where profiling
    samples land) is the *smaller* node class, so a uniform per-rank
    thread count chosen from it is valid on every slot.

    ``racks=N`` (N >= 2) composes N identical mixed racks, each with
    ``n_haswell`` Haswell slots followed by ``n_broadwell`` Broadwell
    slots; ``racks=None`` or ``racks=1`` keeps the original
    single-rack construction bit-identical.
    """
    if racks is not None and racks > 1:
        return ClusterSpec(
            name="mixed-testbed",
            racks=_rack_fleet(
                racks,
                (
                    NodeGroup(haswell_node(), n_haswell),
                    NodeGroup(broadwell_node(), n_broadwell),
                ),
            ),
            variability_sigma=variability_sigma,
            variability_seed=seed,
        )
    return ClusterSpec(
        name="mixed-testbed",
        groups=(
            NodeGroup(haswell_node(), n_haswell),
            NodeGroup(broadwell_node(), n_broadwell),
        ),
        variability_sigma=variability_sigma,
        variability_seed=seed,
    )


def gpu_node(name: str = "haswell-gpu") -> NodeSpec:
    """A Haswell host carrying one accelerator board.

    Same dual-socket host as :func:`haswell_node`, plus a GPU whose
    board power is a third cappable domain.  ``p_other_w`` is a little
    higher than the CPU-only node for the board's fans and VRMs.
    """
    return NodeSpec(
        name=name,
        n_sockets=2,
        socket=SocketSpec(),
        p_other_w=45.0,
        gpu=GpuSpec(),
        n_gpus=1,
    )


def gpu_testbed(
    n_nodes: int = 8,
    variability_sigma: float = 0.03,
    seed: int = 2018,
    racks: int | None = None,
) -> ClusterSpec:
    """An 8-node GPU cluster: every node is a Haswell host + one GPU.

    ``racks=N`` (N >= 2) composes N identical GPU racks.
    """
    if racks is not None and racks > 1:
        return ClusterSpec(
            name="gpu-testbed",
            racks=_rack_fleet(racks, (NodeGroup(gpu_node(), n_nodes),)),
            variability_sigma=variability_sigma,
            variability_seed=seed,
        )
    return ClusterSpec(
        name="gpu-testbed",
        n_nodes=n_nodes,
        node=gpu_node(),
        variability_sigma=variability_sigma,
        variability_seed=seed,
    )


def mixed_gpu_testbed(
    n_gpu: int = 4,
    n_haswell: int = 4,
    variability_sigma: float = 0.03,
    seed: int = 2018,
    racks: int | None = None,
) -> ClusterSpec:
    """A mixed fleet: GPU slots first, then CPU-only Haswell slots.

    The partial-accelerator procurement: half the fleet gained boards,
    half stayed CPU-only, all behind one fabric.  The GPU group comes
    first deliberately — slot 0 (where profiling samples land) is the
    accelerated class, so offload behaviour is visible to the profiler;
    both classes share the Haswell host, so a uniform per-rank thread
    count is valid on every slot.

    ``racks=N`` (N >= 2) composes N identical mixed racks, each with
    ``n_gpu`` GPU slots followed by ``n_haswell`` CPU-only slots.
    """
    if racks is not None and racks > 1:
        return ClusterSpec(
            name="mixed-gpu-testbed",
            racks=_rack_fleet(
                racks,
                (
                    NodeGroup(gpu_node(), n_gpu),
                    NodeGroup(haswell_node(), n_haswell),
                ),
            ),
            variability_sigma=variability_sigma,
            variability_seed=seed,
        )
    return ClusterSpec(
        name="mixed-gpu-testbed",
        groups=(
            NodeGroup(gpu_node(), n_gpu),
            NodeGroup(haswell_node(), n_haswell),
        ),
        variability_sigma=variability_sigma,
        variability_seed=seed,
    )
