"""Perf guard for accelerator-fleet scheduling.

Runs the GPU benchmark, records the measurements to ``BENCH_gpu.json``
at the repository root, and enforces the refactor's acceptance bar:
warm GPU decisions must be measurably faster than cold ones (the
host↔device cap-ladder enumeration rides the knowledge DB like every
other class), and the mixed CPU+GPU sweep must close with zero
budget-invariant violations across all three power domains.
"""

from bench_gpu import run_gpu_bench

#: Acceptance floor: a warm GPU decision skips profiling and the
#: offload model fit, so it must be clearly cheaper than a cold one.
MIN_WARM_SPEEDUP = 1.5


def test_gpu_warm_speedup_and_clean_mixed_sweep(report):
    payload = run_gpu_bench()
    cold = payload["cold"]
    warm = payload["warm"]
    mixed = payload["mixed_sweep"]

    lines = [
        "GPU fleet — cold vs warm schedule() "
        f"({len(payload['apps'])} apps, {len(payload['budgets_w'])} budgets)",
        f"  cold : {cold['per_decision_s'] * 1e3:8.2f} ms/decision "
        f"({cold['decisions']} decisions)",
        f"  warm : {warm['per_decision_s'] * 1e3:8.2f} ms/decision "
        f"({warm['decisions']} decisions, "
        f"{payload['warm_speedup']:.1f}x)",
        f"  mixed sweep: {mixed['decisions']} decisions "
        f"({mixed['offload_decisions']} offloaded) in "
        f"{mixed['total_s']:.2f} s",
        f"  audits: {mixed['n_audits']} cap sets, "
        f"{mixed['n_violations']} violations",
    ]
    report("perf_gpu", "\n".join(lines))

    # Correctness first: three-domain cap sets honored the contract on
    # both fleets, and every GPU app actually got an active device
    # grant in the mixed sweep.
    assert payload["gpu_audits"]["n_violations"] == 0
    assert mixed["n_violations"] == 0
    assert mixed["offload_decisions"] > 0
    assert payload["warm_speedup"] >= MIN_WARM_SPEEDUP, payload
