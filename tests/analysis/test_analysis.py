"""Tests for metrics, table rendering, and the experiment harness."""

import pytest

from repro.analysis.experiments import (
    ClipSchedulerAdapter,
    compare_methods,
    make_schedulers,
)
from repro.analysis.metrics import (
    geometric_mean,
    improvement_over,
    relative_performance,
)
from repro.analysis.tables import render_table
from repro.errors import ClipError
from repro.workloads.apps import get_app


class TestMetrics:
    def test_relative_performance(self):
        assert relative_performance(2.0, 4.0) == pytest.approx(0.5)

    def test_relative_rejects_zero_reference(self):
        with pytest.raises(ClipError):
            relative_performance(1.0, 0.0)

    def test_improvement_over(self):
        assert improvement_over(1.2, 1.0) == pytest.approx(0.2)
        assert improvement_over(0.8, 1.0) == pytest.approx(-0.2)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ClipError):
            geometric_mean([])

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ClipError):
            geometric_mean([1.0, 0.0])


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(
            ["app", "perf"], [["comd", 1.234567], ["amg", 0.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "app" in lines[1]
        assert "1.235" in out
        assert "0.500" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_custom_float_format(self):
        out = render_table(["x"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in out

    def test_non_float_cells_stringified(self):
        out = render_table(["n", "name"], [[3, "x"]])
        assert "3" in out and "x" in out


class TestHarness:
    def test_make_schedulers_order(self, engine):
        scheds = make_schedulers(engine)
        assert list(scheds) == ["All-In", "Lower-Limit", "Coordinated", "CLIP"]
        assert isinstance(scheds["CLIP"], ClipSchedulerAdapter)

    def test_make_schedulers_without_clip(self, engine):
        scheds = make_schedulers(engine, include_clip=False)
        assert "CLIP" not in scheds

    def test_compare_methods_structure(self, engine):
        apps = [get_app("comd"), get_app("sp-mz.C")]
        comp = compare_methods(engine, apps, [1400.0], iterations=2)
        assert len(comp.cells) == 2 * 1 * 4
        cell = comp.cell("CLIP", "sp-mz.C", 1400.0)
        assert cell.feasible
        assert cell.relative > 0
        assert comp.reference_perf["comd"] > 0

    def test_compare_methods_flags_infeasible(self, engine):
        # 200 W cannot feed All-In: below the 8 x 30 W memory grants
        apps = [get_app("comd")]
        comp = compare_methods(engine, apps, [200.0], iterations=2)
        allin = comp.cell("All-In", "comd", 200.0)
        assert not allin.feasible
        assert allin.performance == 0.0

    def test_cell_lookup_miss_raises(self, engine):
        comp = compare_methods(engine, [get_app("comd")], [1400.0], iterations=2)
        with pytest.raises(ClipError):
            comp.cell("CLIP", "comd", 999.0)

    def test_by_method_filters_feasible(self, engine):
        comp = compare_methods(
            engine, [get_app("comd")], [200.0, 1400.0], iterations=2
        )
        cells = comp.by_method("All-In")
        assert all(c.feasible for c in cells)
        assert len(cells) == 1


class TestReport:
    def test_assemble_with_missing_artifacts(self, tmp_path):
        from repro.analysis.report import REPORT_SECTIONS, assemble_report

        out = assemble_report(tmp_path)
        assert "Reproduction report" in out
        assert out.count("not yet regenerated") == len(REPORT_SECTIONS)
        assert "0/" in out

    def test_assemble_picks_up_artifacts(self, tmp_path):
        from repro.analysis.report import assemble_report

        (tmp_path / "fig1.txt").write_text("FIG1 CONTENT\n")
        out = assemble_report(tmp_path)
        assert "FIG1 CONTENT" in out
        assert "1/" in out

    def test_sections_cover_every_paper_artifact(self):
        from repro.analysis.report import REPORT_SECTIONS

        ids = {s.exp_id for s in REPORT_SECTIONS}
        for required in ("fig1", "fig2", "fig3", "table1", "table2",
                         "fig6", "fig7", "fig8", "fig9", "headline"):
            assert required in ids
