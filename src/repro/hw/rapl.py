"""RAPL-like power domains: measurement and cap enforcement.

Real RAPL (Intel Running Average Power Limit, SDM Vol. 3B [21]) exposes
per-domain *energy status* registers that accumulate in fixed units and
wrap around, plus *power limit* registers the hardware honors by
throttling.  This module reproduces both halves for the two domains the
paper caps — ``PKG`` (all packages of a node) and ``DRAM``:

* :class:`RaplDomain` — an energy counter with the 32-bit wraparound
  semantics of the MSR, a cap, and cap bookkeeping;
* :class:`RaplInterface` — cap *resolution*: given a workload's demand
  (active cores, activity factor, desired bandwidth) find the highest
  ladder frequency and memory level that fit under the caps, which is
  how hardware RAPL actually behaves (it lowers the effective frequency
  until the running average obeys the limit).

The simulated counters are exact integrators of the analytic power
model, so tests can assert energy conservation to float precision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ActuationError, PowerDomainError
from repro.hw.actuation import PERFECT_ACTUATION, ActuationPolicy
from repro.hw.dvfs import FrequencyLadder
from repro.hw.power import PowerModel
from repro.units import check_non_negative, check_positive

__all__ = ["Domain", "RaplDomain", "RaplInterface", "OperatingPoint"]

#: Verified-write retry budget: one initial attempt plus this many
#: re-issues before :class:`~repro.errors.ActuationError` is raised.
MAX_CAP_RETRIES = 4

#: First retry backoff (seconds, simulated — accounted, never slept).
CAP_BACKOFF_INITIAL_S = 1e-3

#: Readback comparison tolerance for verified cap writes.
CAP_READBACK_TOLERANCE_W = 1e-9

#: Energy unit of the simulated energy-status register (joules per LSB).
#: Haswell uses 61 microjoule units; we keep the same granularity.
ENERGY_UNIT_J = 6.103515625e-05

#: Wraparound modulus of the 32-bit energy-status register.
ENERGY_WRAP = 2**32

#: Deepest clock-modulation level (Intel T-states step in 6.25 %).
MIN_DUTY_CYCLE = 0.0625


class Domain(enum.Enum):
    """RAPL domains the framework caps and measures.

    ``GPU`` exists only on accelerator-bearing nodes: their
    :class:`RaplInterface` grows a third register block, while CPU-only
    nodes keep exactly the PKG/DRAM pair.
    """

    PKG = "pkg"
    DRAM = "dram"
    GPU = "gpu"


#: Domain order of positional cap tuples: ``(pkg, dram)`` on CPU nodes,
#: ``(pkg, dram, gpu)`` on accelerator nodes.
CAP_TUPLE_DOMAINS = (Domain.PKG, Domain.DRAM, Domain.GPU)


class RaplDomain:
    """One power domain: an energy counter plus a power limit.

    The limit is held twice: ``cap_w`` is the *programmed* value — what
    a readback of the limit register returns — while the *enforced*
    value is what the silicon actually honours.  Under perfect
    actuation the two are identical; a drifted write makes them
    diverge, which is exactly the failure mode readback verification
    cannot see.
    """

    def __init__(self, domain: Domain, max_power_w: float):
        self._domain = domain
        self._max_power_w = check_positive(max_power_w, "max_power_w")
        self._cap_w: float | None = None
        self._enforced_w: float | None = None
        self._raw_energy = 0  # register value, wraps at ENERGY_WRAP
        self._total_energy_j = 0.0  # unwrapped, for tests/metrics
        self._throttle_events = 0

    @property
    def domain(self) -> Domain:
        """Which domain this register block controls."""
        return self._domain

    @property
    def cap_w(self) -> float | None:
        """Programmed power limit (readback value), ``None`` if uncapped."""
        return self._cap_w

    @property
    def enforced_w(self) -> float | None:
        """Limit the silicon honours; differs from ``cap_w`` under drift."""
        return self._enforced_w

    @property
    def effective_cap_w(self) -> float:
        """Cap actually enforced: the limit, clipped to the domain max."""
        if self._enforced_w is None:
            return self._max_power_w
        return min(self._enforced_w, self._max_power_w)

    @property
    def throttle_events(self) -> int:
        """How many cap resolutions required throttling below demand."""
        return self._throttle_events

    def set_cap(self, watts: float | None) -> None:
        """Program the power limit perfectly; ``None`` clears it.

        This is the raw register write — no actuation policy involved.
        Fault-aware callers go through :meth:`RaplInterface.set_cap`,
        which routes through the node's policy and may call
        :meth:`program` with diverging values instead.
        """
        if watts is not None:
            check_non_negative(watts, "cap")
        self._cap_w = watts
        self._enforced_w = watts

    def program(self, readback_w: float | None, enforced_w: float | None) -> None:
        """Set the programmed (readback) and enforced limits separately."""
        if readback_w is not None:
            check_non_negative(readback_w, "cap")
        if enforced_w is not None:
            check_non_negative(enforced_w, "enforced cap")
        self._cap_w = readback_w
        self._enforced_w = enforced_w

    def read_energy_register(self) -> int:
        """Raw energy-status register (wraps like the hardware MSR)."""
        return self._raw_energy

    @property
    def energy_j(self) -> float:
        """Unwrapped accumulated energy in joules."""
        return self._total_energy_j

    def accumulate(self, power_w: float, dt_s: float) -> None:
        """Integrate *power_w* over *dt_s* into the counters."""
        check_non_negative(power_w, "power")
        check_non_negative(dt_s, "dt")
        joules = power_w * dt_s
        self._total_energy_j += joules
        ticks = int(round(joules / ENERGY_UNIT_J))
        self._raw_energy = (self._raw_energy + ticks) % ENERGY_WRAP

    def note_throttled(self) -> None:
        """Record that honoring the cap required throttling."""
        self._throttle_events += 1


@dataclass(frozen=True)
class OperatingPoint:
    """Cap-feasible steady state chosen by :meth:`RaplInterface.resolve`.

    Attributes
    ----------
    frequency_hz:
        Ladder frequency all active cores run at.
    bandwidth_per_socket:
        Per-socket DRAM bandwidth *ceiling* (B/s) granted by the DRAM
        cap — the memory power level's allowance, not delivered traffic.
    pkg_power_w / dram_power_w:
        Resulting steady-state domain powers.
    cpu_throttled / mem_throttled:
        Whether each cap forced operation below the demanded point.
    cpu_cap_violated / mem_cap_violated:
        Whether the cap was below the hardware floor (lowest P-state /
        lowest memory level), in which case the domain runs at its
        floor and *exceeds* the programmed limit — the behaviour of
        real RAPL when the limit is set under the minimum operating
        point.
    """

    frequency_hz: float
    bandwidth_per_socket: tuple[float, ...]
    pkg_power_w: float
    dram_power_w: float
    cpu_throttled: bool
    mem_throttled: bool
    cpu_cap_violated: bool = False
    mem_cap_violated: bool = False
    duty_cycle: float = 1.0
    #: Device state; all-default on CPU-only nodes.  ``gpu_power_w`` is
    #: the busy-interval average device power accounted after timing.
    gpu_clock_hz: float = 0.0
    gpu_power_w: float = 0.0
    gpu_throttled: bool = False
    gpu_cap_violated: bool = False

    @property
    def cap_violated(self) -> bool:
        """Whether any domain runs above its programmed limit."""
        return (
            self.cpu_cap_violated
            or self.mem_cap_violated
            or self.gpu_cap_violated
        )

    @property
    def effective_frequency_hz(self) -> float:
        """Throughput-equivalent clock: P-state x duty cycle.

        Below the lowest P-state's power, RAPL falls back to clock
        modulation (T-states): the core runs at ``f_min`` but only for
        ``duty_cycle`` of the time, so delivered instruction throughput
        scales with the product.
        """
        return self.frequency_hz * self.duty_cycle


class RaplInterface:
    """Cap programming and cap resolution for one node.

    Parameters
    ----------
    power_model:
        The node's ground-truth power model (includes its variability
        multiplier, so an inefficient part throttles earlier — the
        effect §III-B.2 coordinates away).
    """

    def __init__(
        self,
        power_model: PowerModel,
        actuation: ActuationPolicy | None = None,
    ):
        self._model = power_model
        self._actuation = actuation if actuation is not None else PERFECT_ACTUATION
        self._stats = {
            "writes": 0,
            "dropped": 0,
            "partial": 0,
            "drifted": 0,
            "verified": 0,
            "retries": 0,
            "forced": 0,
            "backoff_s": 0.0,
        }
        node = power_model.node
        self._ladder = FrequencyLadder.from_socket(node.socket)
        # Factory defaults: PL1 = TDP per package; DRAM limited only by
        # its own peak draw.  Turbo above TDP is therefore only
        # reachable when few cores are active, as on real parts.
        self._domains = {
            Domain.PKG: RaplDomain(Domain.PKG, node.n_sockets * node.socket.tdp_w),
            Domain.DRAM: RaplDomain(Domain.DRAM, node.p_mem_max_w),
        }
        # The GPU domain exists only on accelerator-bearing nodes, so
        # CPU-only interfaces keep exactly the legacy PKG/DRAM pair.
        self._gpu_ladder: FrequencyLadder | None = None
        if node.has_gpu:
            self._domains[Domain.GPU] = RaplDomain(
                Domain.GPU, node.p_gpu_max_w
            )
            self._gpu_ladder = FrequencyLadder.from_gpu(node.gpu)

    @property
    def model(self) -> PowerModel:
        """The underlying ground-truth power model."""
        return self._model

    @property
    def has_gpu_domain(self) -> bool:
        """Whether this node exposes the GPU power domain."""
        return Domain.GPU in self._domains

    def domain(self, domain: Domain) -> RaplDomain:
        """Access one domain's registers.

        Raises :class:`PowerDomainError` for :attr:`Domain.GPU` on a
        CPU-only node — the domain does not exist there.
        """
        try:
            return self._domains[domain]
        except KeyError:
            raise PowerDomainError(
                f"node has no {domain.value!r} power domain"
            ) from None

    @property
    def actuation(self) -> ActuationPolicy:
        """Policy deciding the fate of every routed cap write."""
        return self._actuation

    @actuation.setter
    def actuation(self, policy: ActuationPolicy) -> None:
        self._actuation = policy

    @property
    def actuation_stats(self) -> dict[str, float]:
        """Write-path counters: writes, drops, partials, drifts, retries,
        verified writes, forced (out-of-band) writes, and the total
        simulated backoff the retry schedule accumulated."""
        return dict(self._stats)

    def reset_actuation(self) -> None:
        """Restore perfect actuation and zero the write-path counters."""
        self._actuation = PERFECT_ACTUATION
        for key in self._stats:
            self._stats[key] = 0.0 if key == "backoff_s" else 0

    def set_cap(self, domain: Domain, watts: float | None) -> bool:
        """Program a domain power limit through the actuation policy.

        ``None`` always clears the limit (removing a cap is a
        fail-safe operation).  Returns whether the register now holds
        the requested value — a dropped or partially-applied write
        returns ``False`` so callers on the verified path know to
        retry.  A *drifted* write returns ``True``: its readback is
        correct by construction, only the enforcement is wrong.
        """
        reg = self.domain(domain)
        if watts is None:
            reg.set_cap(None)
            return True
        requested = float(watts)
        check_non_negative(requested, "cap")
        self._stats["writes"] += 1
        result = self._actuation.apply(
            domain.value, requested, reg.effective_cap_w
        )
        if result.kind == "drop":
            self._stats["dropped"] += 1
            return False
        if result.kind == "partial":
            self._stats["partial"] += 1
            reg.program(result.enforced_w, result.enforced_w)
            return False
        if result.kind == "drift":
            self._stats["drifted"] += 1
            reg.program(requested, result.enforced_w)
            return True
        reg.set_cap(requested)
        return True

    def set_cap_verified(
        self,
        domain: Domain,
        watts: float | None,
        max_retries: int = MAX_CAP_RETRIES,
    ) -> int:
        """Write a cap, read it back, and retry until it sticks.

        Mirrors production practice: each failed readback re-issues the
        write after an exponentially growing backoff (simulated — the
        delay is accounted in ``actuation_stats['backoff_s']``, never
        slept).  Returns the number of retries that were needed; raises
        :class:`~repro.errors.ActuationError` when ``1 + max_retries``
        attempts all failed verification.  Silent drift passes readback
        and is *not* retried — catching it is the watchdog's job.
        """
        backoff_s = CAP_BACKOFF_INITIAL_S
        reg = self.domain(domain)
        for attempt in range(1 + max_retries):
            self.set_cap(domain, watts)
            read = reg.cap_w
            if watts is None:
                landed = read is None
            else:
                landed = (
                    read is not None
                    and abs(read - float(watts)) <= CAP_READBACK_TOLERANCE_W
                )
            if landed:
                self._stats["verified"] += 1
                self._stats["retries"] += attempt
                return attempt
            self._stats["backoff_s"] += backoff_s
            backoff_s *= 2.0
        self._stats["retries"] += max_retries
        raise ActuationError(
            f"{domain.value} cap write of "
            f"{'None' if watts is None else f'{float(watts):.3f} W'} failed "
            f"readback verification after {1 + max_retries} attempts",
            domain=domain.value,
            requested_w=None if watts is None else float(watts),
        )

    def write_caps_verified(
        self,
        caps_w,
        max_retries: int = MAX_CAP_RETRIES,
    ) -> int:
        """Verified write of a positional ``(pkg, dram[, gpu])`` cap tuple.

        The hardware-class arity convention of the decision stack maps
        positionally onto :data:`CAP_TUPLE_DOMAINS`.  Returns total
        retries across the tuple; raises
        :class:`~repro.errors.ActuationError` as soon as one domain
        exhausts its budget (caller is responsible for rollback).
        """
        retries = 0
        for dom, watts in zip(CAP_TUPLE_DOMAINS, caps_w):
            retries += self.set_cap_verified(dom, watts, max_retries=max_retries)
        return retries

    def force_caps(self, caps_w) -> None:
        """Out-of-band cap write bypassing the actuation policy.

        Models the BMC/service-processor path real clusters fall back
        to when the in-band write path is wedged: slower, but it always
        lands.  Used for transactional rollback and for the watchdog's
        emergency throttle.
        """
        for dom, watts in zip(CAP_TUPLE_DOMAINS, caps_w):
            self.domain(dom).set_cap(None if watts is None else float(watts))
            self._stats["forced"] += 1

    def snapshot_caps(self) -> dict[str, tuple[float | None, float | None]]:
        """Capture every domain's (programmed, enforced) limit pair."""
        return {
            d.value: (reg.cap_w, reg.enforced_w)
            for d, reg in self._domains.items()
        }

    def restore_caps(
        self, snapshot: dict[str, tuple[float | None, float | None]]
    ) -> None:
        """Out-of-band restore of a :meth:`snapshot_caps` capture."""
        for name, (readback_w, enforced_w) in snapshot.items():
            self._domains[Domain(name)].program(readback_w, enforced_w)
            self._stats["forced"] += 1

    def caps(self) -> dict[Domain, float | None]:
        """Currently programmed caps."""
        return {d: reg.cap_w for d, reg in self._domains.items()}

    def clear_caps(self) -> None:
        """Remove every domain cap."""
        for reg in self._domains.values():
            reg.set_cap(None)

    # ------------------------------------------------------------------
    # cap resolution
    # ------------------------------------------------------------------

    def resolve(
        self,
        active_per_socket,
        activity: float,
        demanded_bandwidth_per_socket,
        demanded_frequency_hz: float | None = None,
        strict: bool = False,
    ) -> OperatingPoint:
        """Find the operating point hardware capping would settle at.

        The PKG limit is honored by stepping down the shared frequency;
        the DRAM limit by stepping down the memory power level, which
        bounds delivered bandwidth.  Both mirror the mechanisms listed
        in the paper (§I: "memory power level setting, thread
        concurrency throttling").

        Parameters
        ----------
        active_per_socket:
            Active core counts per socket.
        activity:
            Core activity factor in [0, 1] (memory-stalled < 1).
        demanded_bandwidth_per_socket:
            Bandwidth (B/s) the workload would consume uncapped.
        demanded_frequency_hz:
            Optional software frequency pin; defaults to the ladder max.
        strict:
            When true, a cap below the hardware floor raises
            :class:`PowerDomainError`; the default mirrors real RAPL,
            which clamps at the lowest operating point and lets the
            limit be exceeded (flagged via ``cap_violated``).
        """
        node = self._model.node
        active = tuple(int(n) for n in active_per_socket)
        if len(active) != node.n_sockets:
            raise PowerDomainError("active_per_socket length != n_sockets")
        demand_bw = tuple(float(b) for b in demanded_bandwidth_per_socket)
        if len(demand_bw) != node.n_sockets:
            raise PowerDomainError("bandwidth list length != n_sockets")

        # --- DRAM: the cap sets a per-socket bandwidth ceiling -----------
        # The returned ``bandwidth_per_socket`` is the *allowed* ceiling
        # (what a memory power level grants), not the delivered traffic;
        # power is accounted from the delivered estimate min(demand, cap).
        dram_reg = self._domains[Domain.DRAM]
        dram_cap = dram_reg.effective_cap_w
        per_socket_cap = dram_cap / node.n_sockets
        limit = self._model.max_bandwidth_under_dram_cap(per_socket_cap)
        mem_cap_violated = False
        if limit is None:
            if strict:
                raise PowerDomainError(
                    f"DRAM cap {dram_cap:.1f} W below base power; cannot honor"
                )
            # hardware floor: lowest memory power level keeps running
            mem = node.socket.memory
            limit = mem.bandwidth_at_level(0)
            mem_cap_violated = True
        bw = tuple(limit for _ in demand_bw)
        delivered = tuple(min(b, limit) for b in demand_bw)
        mem_throttled = mem_cap_violated or any(
            b > limit * (1 + 1e-9) for b in demand_bw
        )
        if mem_throttled:
            dram_reg.note_throttled()
        dram_w = float(sum(self._model.dram_power(b) for b in delivered))

        # --- PKG: highest ladder frequency fitting under the cap ---
        pkg_reg = self._domains[Domain.PKG]
        pkg_cap = pkg_reg.effective_cap_w
        f_demand = (
            self._ladder.quantize_down(demanded_frequency_hz)
            if demanded_frequency_hz is not None
            else self._ladder.f_max
        )
        f_cont = self._model.max_freq_under_pkg_cap(pkg_cap, active, activity)
        cpu_cap_violated = False
        duty = 1.0
        if f_cont is None:
            if strict:
                raise PowerDomainError(
                    f"PKG cap {pkg_cap:.1f} W below static power of "
                    f"{sum(active)} active cores; cannot honor"
                )
            # Below the lowest P-state's power RAPL falls back to clock
            # modulation: run at f_min but gate the clock for part of
            # each window.  Gating scales the dynamic term only; if the
            # cap is below static power even at the deepest duty cycle,
            # the limit is genuinely violated.
            f_cont = self._ladder.f_min
            static = float(
                sum(
                    self._model.pkg_power(n, 0.0, activity) for n in active
                )
            )
            dyn_fmin = (
                float(
                    sum(
                        self._model.pkg_power(n, f_cont, activity)
                        for n in active
                    )
                )
                - static
            )
            if dyn_fmin > 0:
                duty = (pkg_cap - static) / dyn_fmin
            duty = float(np.clip(duty, MIN_DUTY_CYCLE, 1.0))
            cpu_cap_violated = pkg_cap < static + MIN_DUTY_CYCLE * max(dyn_fmin, 0.0)
        f_allowed = self._ladder.quantize_down(f_cont)
        cpu_throttled = duty < 1.0 or cpu_cap_violated or f_allowed < f_demand
        if cpu_throttled:
            pkg_reg.note_throttled()
        f = min(f_demand, f_allowed)
        pkg_w = float(
            sum(
                self._model.pkg_power(n, 0.0, activity)
                + (
                    self._model.pkg_power(n, f, activity)
                    - self._model.pkg_power(n, 0.0, activity)
                )
                * duty
                for n in active
            )
        )
        return OperatingPoint(
            frequency_hz=f,
            bandwidth_per_socket=bw,
            pkg_power_w=pkg_w,
            dram_power_w=dram_w,
            cpu_throttled=cpu_throttled,
            mem_throttled=mem_throttled,
            cpu_cap_violated=cpu_cap_violated,
            mem_cap_violated=mem_cap_violated,
            duty_cycle=duty,
        )

    def resolve_gpu(self, strict: bool = False) -> tuple[float, bool, bool]:
        """Highest device clock whose full-utilization power fits the cap.

        The GPU cap is honoured by stepping the device clock down its
        ladder, sized against *worst-case* (fully-busy) draw so the
        clock choice is independent of the workload's actual device
        utilization — which is what lets the clock be resolved once,
        outside the host's damped fixed point.

        Returns ``(clock_hz, throttled, cap_violated)``.  When the cap
        sits below the lowest clock's busy power the device clamps at
        the ladder floor and the limit may be exceeded (real boards
        behave the same below their minimum P-state); ``strict`` turns
        that into :class:`PowerDomainError`.
        """
        if self._gpu_ladder is None:
            raise PowerDomainError("node has no 'gpu' power domain")
        reg = self._domains[Domain.GPU]
        cap = reg.effective_cap_w
        clock = self._gpu_ladder.highest_under(
            lambda clk: self._model.gpu_power(clk, 1.0) <= cap
        )
        violated = False
        if clock is None:
            if strict:
                raise PowerDomainError(
                    f"GPU cap {cap:.1f} W below the lowest clock's busy "
                    f"power; cannot honor"
                )
            clock = self._gpu_ladder.f_min
            violated = True
        throttled = violated or clock < self._gpu_ladder.f_max
        if throttled:
            reg.note_throttled()
        return clock, throttled, violated

    # ------------------------------------------------------------------
    # energy accounting
    # ------------------------------------------------------------------

    def accumulate(self, point: OperatingPoint, dt_s: float) -> None:
        """Integrate a steady-state interval into the energy counters."""
        self._domains[Domain.PKG].accumulate(point.pkg_power_w, dt_s)
        self._domains[Domain.DRAM].accumulate(point.dram_power_w, dt_s)
        gpu = self._domains.get(Domain.GPU)
        if gpu is not None:
            gpu.accumulate(point.gpu_power_w, dt_s)

    def energy_j(self, domain: Domain) -> float:
        """Unwrapped accumulated energy of *domain* in joules."""
        return self.domain(domain).energy_j
