"""Shared fixtures for the test suite.

Heavyweight artifacts (the trained inflection predictor, profiled
testbeds) are session-scoped: they are deterministic, and re-training
the MLR corpus per test would dominate the suite's runtime.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import build_trained_inflection
from repro.core.profile import SmartProfiler
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import haswell_node, haswell_testbed
from repro.sim.engine import ExecutionEngine


@pytest.fixture(scope="session")
def node_spec():
    """The paper's dual-socket Haswell node."""
    return haswell_node()


@pytest.fixture(scope="session")
def cluster_spec():
    """The paper's 8-node testbed specification."""
    return haswell_testbed()


@pytest.fixture()
def cluster():
    """A fresh simulated testbed (mutable state per test)."""
    return SimulatedCluster.testbed()


@pytest.fixture()
def engine(cluster):
    """An execution engine on a fresh testbed."""
    return ExecutionEngine(cluster, seed=42)


@pytest.fixture()
def profiler(engine):
    """A smart profiler bound to the fresh engine."""
    return SmartProfiler(engine)


@pytest.fixture(scope="session")
def trained_inflection():
    """The MLR inflection predictor trained on the default corpus.

    Session-scoped: training profiles ~60 applications.  The predictor
    itself is immutable after fit, so sharing is safe.
    """
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    return build_trained_inflection(engine)
