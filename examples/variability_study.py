#!/usr/bin/env python3
"""Manufacturing-variability study (§III-B.2).

Sweeps the cluster's manufacturing-variability sigma, measures the
node-level power spread CLIP's calibration detects, and compares
uniform per-node budgets against variability-coordinated ones on a
bulk-synchronous workload.  On a homogeneous cluster coordination is a
no-op (the paper's testbed case); as variability grows, the slowest
node taxes every step and power shifting buys the difference back.

Run:  python examples/variability_study.py
"""

import numpy as np

from repro.analysis.experiments import build_trained_inflection
from repro.analysis.tables import render_table
from repro.core.knowledge import KnowledgeDB
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads import get_app

SIGMAS = (0.0, 0.03, 0.06, 0.10)
BUDGET_W = 1200.0


def main() -> None:
    app = get_app("comd")
    rows = []
    inflection = None
    for sigma in SIGMAS:
        engine = ExecutionEngine(
            SimulatedCluster.testbed(variability_sigma=sigma), seed=42
        )
        if inflection is None:
            print("Training CLIP (reused across clusters)...")
            inflection = build_trained_inflection(engine)
        coordinated = ClipScheduler(
            engine, inflection=inflection, knowledge=KnowledgeDB()
        )
        uniform = ClipScheduler(
            engine,
            inflection=inflection,
            knowledge=KnowledgeDB(),
            variability_threshold=999.0,  # coordination never engages
        )
        spread = engine.cluster.variability.spread
        _, r_coord = coordinated.run(app, BUDGET_W, iterations=5)
        _, r_unif = uniform.run(app, BUDGET_W, iterations=5)
        rows.append(
            [
                sigma,
                spread,
                r_unif.performance,
                r_coord.performance,
                r_coord.performance / r_unif.performance - 1.0,
                r_unif.imbalance,
                r_coord.imbalance,
            ]
        )

    print()
    print(
        render_table(
            ["sigma", "power spread", "perf uniform", "perf coordinated",
             "gain", "imbalance unif", "imbalance coord"],
            rows,
            title=(
                f"Variability study — {app.name} at {BUDGET_W:.0f} W, "
                "uniform vs coordinated per-node budgets"
            ),
        )
    )
    print(
        "\nThe paper's testbed was 'quite homogeneous', so CLIP only "
        "shifts power when the calibrated spread exceeds its threshold "
        "— visible here as zero gain at sigma=0 and growing gain after."
    )


if __name__ == "__main__":
    main()
