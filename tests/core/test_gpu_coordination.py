"""Three-domain coordination: GPU fleets end to end.

Covers the accelerator refactor's contracts:

* hypothesis properties over arbitrary budgets on the mixed CPU+GPU
  fleet — per-slot cap totals stay inside that slot's own acceptable
  range, the fleet-wide sum never exceeds the cluster budget, cap
  tuple arity matches each slot's hardware class, and the host↔device
  shift conserves the slot budget it was handed;
* the mixed acceptance sweep — GPU and CPU apps across a budget grid,
  every decision audited by the shared BudgetInvariantMonitor and
  executed on the simulated fleet;
* golden bit-identity — the CPU-only testbeds (haswell, broadwell,
  mixed) produce byte-identical decision documents to the captures
  taken before the accelerator domain existed.

Shared immutable state is module-cached because hypothesis forbids
function-scoped fixtures inside @given.
"""

import json
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.classify import ScalabilityClass
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import gpu_testbed, mixed_gpu_testbed
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import GPU_APPS, get_app

DATA_DIR = Path(__file__).parent.parent / "data"

#: Apps exercised by the acceptance sweep: every GPU port plus two
#: host-only classes (linear and logarithmic) that land on GPU slots.
SWEEP_APPS = tuple(a.name for a in GPU_APPS) + ("comd", "stream")
SWEEP_BUDGETS = (1400.0, 2200.0, 3000.0)

_STATE: dict = {}


def _inflection():
    if "inflection" not in _STATE:
        from repro.analysis.experiments import build_trained_inflection

        _STATE["inflection"] = build_trained_inflection(
            ExecutionEngine(SimulatedCluster.testbed(), seed=42)
        )
    return _STATE["inflection"]


def scheduler(kind: str) -> ClipScheduler:
    """Module-cached scheduler per testbed kind."""
    if kind not in _STATE:
        spec = {"gpu": gpu_testbed, "mixed-gpu": mixed_gpu_testbed}[kind]()
        engine = ExecutionEngine(SimulatedCluster(spec), seed=42)
        _STATE[kind] = ClipScheduler(engine, inflection=_inflection())
    return _STATE[kind]


class TestThreeDomainProperties:
    """Hypothesis net over the mixed CPU+GPU fleet."""

    @given(
        budget=st.floats(min_value=1200.0, max_value=3600.0),
        app_name=st.sampled_from(("lulesh-gpu", "minife-gpu", "comd")),
    )
    @settings(max_examples=15, deadline=None)
    def test_caps_respect_all_three_domains(self, budget, app_name):
        clip = scheduler("mixed-gpu")
        spec = clip.engine.cluster.spec
        try:
            d = clip.schedule(get_app(app_name), budget)
        except Exception:
            return  # infeasible budgets are exercised elsewhere
        caps = d.per_node_caps
        # fleet sum never exceeds the cluster budget
        total = sum(sum(cap) for cap in caps)
        assert total <= budget * (1.0 + 1e-9) + 1e-6
        # arity matches the slot's hardware class: slots 0-3 carry the
        # board (3 domains), 4-7 are CPU-only (2 domains)
        for rank, cap in enumerate(caps):
            has_gpu = spec.node_specs[rank].has_gpu
            assert len(cap) == (3 if has_gpu else 2), (rank, cap)
            assert all(c >= 0.0 for c in cap), (rank, cap)
        # each slot's total stays inside its own acceptable range
        ranges = d.allocation.node_ranges_w
        if ranges is not None:
            for rank, (cap, (lo, hi)) in enumerate(zip(caps, ranges)):
                node_total = sum(cap)
                slack = 1e-6 + 1e-9 * max(abs(hi), 1.0)
                assert lo - slack <= node_total <= hi + slack, (
                    rank,
                    node_total,
                    (lo, hi),
                )

    @given(
        budget=st.floats(min_value=1400.0, max_value=3600.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_shift_conserves_the_slot_budget(self, budget):
        """pkg + dram + gpu never exceeds the budget the slot was handed."""
        clip = scheduler("mixed-gpu")
        try:
            d = clip.schedule(get_app("hpgmg-gpu"), budget)
        except Exception:
            return
        assert d.scalability_class is ScalabilityClass.GPU_OFFLOAD
        for cfg, slot_budget in zip(
            d.node_configs, d.allocation.node_budgets_w
        ):
            granted = cfg.pkg_cap_w + cfg.dram_cap_w + cfg.gpu_cap_w
            assert granted <= slot_budget * (1.0 + 1e-9) + 1e-6
            if cfg.has_gpu_grant and cfg.predicted_gpu_clock_hz > 0:
                # an active device grant is a real ladder level
                spec = clip.engine.cluster.spec.node_specs[0]
                assert cfg.predicted_gpu_clock_hz in spec.gpu_level_clocks_hz

    @given(budget=st.floats(min_value=1400.0, max_value=3600.0))
    @settings(max_examples=10, deadline=None)
    def test_homogeneous_gpu_fleet_audits_clean(self, budget):
        clip = scheduler("gpu")
        try:
            clip.schedule(get_app("lulesh-gpu"), budget)
        except Exception:
            return
        clip.monitor.assert_clean()


class TestMixedAcceptanceSweep:
    """The ISSUE acceptance criterion: mixed fleet, clean audits."""

    @pytest.fixture(scope="class")
    def swept(self):
        clip = scheduler("mixed-gpu")
        decisions = {}
        for name in SWEEP_APPS:
            for budget in SWEEP_BUDGETS:
                decisions[(name, budget)] = clip.schedule(
                    get_app(name), budget
                )
        return clip, decisions

    def test_monitor_is_clean_across_the_sweep(self, swept):
        clip, decisions = swept
        assert len(decisions) == len(SWEEP_APPS) * len(SWEEP_BUDGETS)
        assert clip.monitor.n_audits >= len(decisions)
        clip.monitor.assert_clean()

    def test_gpu_apps_get_active_grants_cpu_apps_get_idle(self, swept):
        _, decisions = swept
        gpu_names = {a.name for a in GPU_APPS}
        for (name, budget), d in decisions.items():
            cfg0 = d.node_configs[0]  # slot 0 is always a GPU node
            if name in gpu_names:
                assert d.scalability_class is ScalabilityClass.GPU_OFFLOAD
                spec = scheduler("mixed-gpu").engine.cluster.spec
                node = spec.node_specs[0]
                assert cfg0.gpu_cap_w >= node.p_gpu_min_w - 1e-9
                assert cfg0.predicted_gpu_clock_hz > 0
            else:
                # host-only app: the board idles but its draw is capped
                spec = scheduler("mixed-gpu").engine.cluster.spec
                node = spec.node_specs[0]
                assert cfg0.gpu_cap_w == pytest.approx(node.p_gpu_idle_w)
                assert cfg0.predicted_gpu_clock_hz == 0.0

    def test_grants_scale_with_the_budget(self, swept):
        """More cluster power buys a faster device clock."""
        _, decisions = swept
        lo = decisions[("lulesh-gpu", SWEEP_BUDGETS[0])]
        hi = decisions[("lulesh-gpu", SWEEP_BUDGETS[-1])]
        assert (
            hi.node_configs[0].predicted_gpu_clock_hz
            >= lo.node_configs[0].predicted_gpu_clock_hz
        )
        assert hi.node_configs[0].gpu_cap_w >= lo.node_configs[0].gpu_cap_w

    def test_decisions_execute_on_the_fleet(self, swept):
        clip, decisions = swept
        for name in ("lulesh-gpu", "comd"):
            d = decisions[(name, 2200.0)]
            result = clip.engine.run(
                get_app(name), d.to_execution_config(iterations=5)
            )
            assert result.t_step_s > 0
            assert result.avg_power_w > 0

    def test_serialization_round_trips_gpu_grants(self, swept):
        from repro.core.pipeline import SchedulingDecision

        _, decisions = swept
        d = decisions[("minife-gpu", 2200.0)]
        doc = json.loads(json.dumps(d.to_dict()))
        back = SchedulingDecision.from_dict(doc)
        assert back.per_node_caps == d.per_node_caps
        assert [c.predicted_gpu_clock_hz for c in back.node_configs] == [
            c.predicted_gpu_clock_hz for c in d.node_configs
        ]


class TestCpuGoldenBitIdentity:
    """CPU-only decisions are byte-identical to pre-GPU captures."""

    def test_testbed_capture_matches_stored_golden(self):
        sys.path.insert(0, str(DATA_DIR))
        try:
            import capture_golden_testbeds as cg
        finally:
            sys.path.pop(0)
        stored = json.loads(
            (DATA_DIR / "golden_decisions_testbeds.json").read_text()
        )
        assert cg.capture() == stored
