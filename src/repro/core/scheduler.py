"""Algorithm 1: the CLIP power-bounded scheduler, end to end.

Composes every piece of the framework:

1. look the job up in the knowledge database; on a miss, smart-profile
   it (and, for non-linear classes, predict NP and run the
   confirmation sample);
2. fit the performance and power models from the profile and derive
   the acceptable per-node power range;
3. choose the node count and per-node budgets (cluster level,
   variability-coordinated);
4. recommend the per-node configuration — threads, affinity, CPU/DRAM
   caps — for each node's budget.

:meth:`ClipScheduler.schedule` returns the decision;
:meth:`ClipScheduler.run` additionally executes it on the simulated
testbed and returns the :class:`~repro.sim.trace.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.allocation import ClusterAllocation, ClusterAllocator
from repro.core.classify import ScalabilityClass
from repro.core.coordination import VARIABILITY_THRESHOLD, measure_node_factors
from repro.core.inflection import InflectionPredictor
from repro.core.knowledge import KnowledgeDB, KnowledgeEntry
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel
from repro.core.profile import SmartProfiler
from repro.core.recommend import NodeConfig, Recommender
from repro.errors import SchedulingError
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.sim.trace import RunResult
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["SchedulingDecision", "ClipScheduler"]


@dataclass(frozen=True)
class SchedulingDecision:
    """Everything Algorithm 1 outputs for one job."""

    app_name: str
    cluster_budget_w: float
    scalability_class: ScalabilityClass
    inflection_point: int | None
    allocation: ClusterAllocation
    node_configs: tuple[NodeConfig, ...]
    phase_threads: dict[str, int] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        """Suggested number of active compute nodes."""
        return self.allocation.n_nodes

    @property
    def n_threads(self) -> int:
        """Suggested active cores per node (uniform across nodes)."""
        return self.node_configs[0].n_threads

    @property
    def total_capped_w(self) -> float:
        """Sum of all programmed caps — must be <= the budget."""
        return float(sum(c.node_budget_w for c in self.node_configs))

    @property
    def predicted_perf(self) -> float:
        """Predicted job throughput (iterations/s)."""
        return self.allocation.predicted_cluster_perf

    def to_execution_config(self, iterations: int | None = None) -> ExecutionConfig:
        """Translate the decision into an engine configuration."""
        return ExecutionConfig(
            n_nodes=self.n_nodes,
            n_threads=self.n_threads,
            affinity=self.node_configs[0].affinity,
            per_node_caps=tuple(
                (c.pkg_cap_w, c.dram_cap_w) for c in self.node_configs
            ),
            iterations=iterations,
            phase_threads=dict(self.phase_threads),
        )


class ClipScheduler:
    """The cluster-level intelligent power coordination system."""

    def __init__(
        self,
        engine: ExecutionEngine,
        inflection: InflectionPredictor,
        knowledge: KnowledgeDB | None = None,
        profiler: SmartProfiler | None = None,
        calibrate_variability: bool = True,
        variability_threshold: float = VARIABILITY_THRESHOLD,
    ):
        self._engine = engine
        self._inflection = inflection
        self._kb = knowledge if knowledge is not None else KnowledgeDB()
        self._profiler = profiler or SmartProfiler(engine)
        self._threshold = variability_threshold
        self._factors = (
            measure_node_factors(engine)
            if calibrate_variability
            else np.ones(engine.cluster.n_nodes)
        )

    @property
    def knowledge(self) -> KnowledgeDB:
        """The knowledge database (shared, persistable)."""
        return self._kb

    @property
    def node_factors(self) -> np.ndarray:
        """Calibrated per-node power-efficiency factors."""
        return self._factors.copy()

    # ------------------------------------------------------------------

    def ensure_knowledge(self, app: WorkloadCharacteristics) -> KnowledgeEntry:
        """Return the app's knowledge entry, profiling on a miss.

        Profiling is the 2-sample smart profile, plus — for non-linear
        classes — the NP prediction and the confirmation sample.
        """
        if self._kb.has(app.name, app.problem_size):
            return self._kb.get(app.name, app.problem_size)
        profile = self._profiler.profile(app)
        np_pred: int | None = None
        if profile.scalability_class.is_nonlinear:
            np_pred = self._inflection.predict(profile)
            profile = self._profiler.confirm(app, profile, np_pred)
        entry = KnowledgeEntry(profile=profile, inflection_point=np_pred)
        self._kb.put(entry)
        return entry

    def schedule(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        predefined_node_counts: tuple[int, ...] | None = None,
        allocation_mode: str = "predictive",
    ) -> SchedulingDecision:
        """Run Algorithm 1 and return the decision (no execution)."""
        if cluster_budget_w <= 0:
            raise SchedulingError("cluster budget must be > 0")
        entry = self.ensure_knowledge(app)
        profile = entry.profile
        predictor = PerformancePredictor(profile, entry.inflection_point)
        power_model = ClipPowerModel(profile, self._engine.cluster.spec.node)
        recommender = Recommender(profile, predictor, power_model)
        allocator = ClusterAllocator(
            recommender,
            self._engine.cluster.n_nodes,
            node_factors=self._factors,
            variability_threshold=self._threshold,
        )
        allocation = allocator.allocate(
            cluster_budget_w,
            predefined=predefined_node_counts,
            mode=allocation_mode,
        )
        configs = []
        base = recommender.recommend(min(allocation.node_budgets_w))
        for budget in allocation.node_budgets_w:
            # Keep concurrency uniform across ranks (one decomposition);
            # each node spends its own budget on frequency headroom.
            pkg, dram = power_model.split_node_budget(budget, base.n_threads)
            f = power_model.max_freq_under(pkg, base.n_threads)
            configs.append(
                replace(
                    base,
                    pkg_cap_w=pkg,
                    dram_cap_w=dram,
                    predicted_frequency_hz=f if f is not None else base.predicted_frequency_hz,
                )
            )
        # phase-by-phase concurrency adjustment (§V-B.1): a phase whose
        # time did not improve from half- to all-core keeps the smaller
        # count (only kept when below the global choice)
        overrides = {
            name: n
            for name, n in recommender.phase_overrides().items()
            if n < base.n_threads
        }
        return SchedulingDecision(
            app_name=app.name,
            cluster_budget_w=cluster_budget_w,
            scalability_class=profile.scalability_class,
            inflection_point=entry.inflection_point,
            allocation=allocation,
            node_configs=tuple(configs),
            phase_threads=overrides,
        )

    def run(
        self,
        app: WorkloadCharacteristics,
        cluster_budget_w: float,
        iterations: int | None = None,
        **schedule_kwargs,
    ) -> tuple[SchedulingDecision, RunResult]:
        """Schedule and execute the job on the simulated testbed."""
        decision = self.schedule(app, cluster_budget_w, **schedule_kwargs)
        result = self._engine.run(
            app, decision.to_execution_config(iterations=iterations)
        )
        return decision, result
