#!/usr/bin/env python3
"""Power-budget sweep — regenerate the paper's Figs. 8-9 comparison.

Runs All-In, Lower-Limit, Coordinated [15], and CLIP across the
Table-II benchmark suite for a range of cluster power budgets and
prints the relative-performance matrix (normalized to unbounded
All-In), plus the per-budget average improvement — the paper's
headline ">20 % on average".

Run:  python examples/power_budget_sweep.py [budget_w ...]
"""

import sys

from repro.analysis.experiments import compare_methods, make_schedulers
from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import render_table
from repro.hw.cluster import SimulatedCluster
from repro.sim.engine import ExecutionEngine
from repro.workloads import TABLE2_APPS

METHODS = ("All-In", "Lower-Limit", "Coordinated", "CLIP")


def main(budgets_w: list[float]) -> None:
    engine = ExecutionEngine(SimulatedCluster.testbed(), seed=42)
    print("Profiling the suite and training CLIP...")
    schedulers = make_schedulers(engine)
    comp = compare_methods(
        engine, list(TABLE2_APPS), budgets_w, schedulers, iterations=3
    )

    for budget in budgets_w:
        rows = []
        for app in TABLE2_APPS:
            rows.append(
                [app.name]
                + [comp.cell(m, app.name, budget).relative for m in METHODS]
            )
        print()
        print(
            render_table(
                ["Benchmark"] + list(METHODS),
                rows,
                title=(
                    f"Relative performance at {budget:.0f} W "
                    "(1.0 = unbounded All-In)"
                ),
            )
        )
        imps = []
        for app in TABLE2_APPS:
            clip = comp.cell("CLIP", app.name, budget).relative
            for m in METHODS[:-1]:
                cell = comp.cell(m, app.name, budget)
                if cell.feasible and cell.relative > 0:
                    imps.append(clip / cell.relative)
        print(
            f"CLIP average improvement over compared methods: "
            f"{geometric_mean(imps) - 1:+.1%}"
        )


if __name__ == "__main__":
    budgets = [float(b) for b in sys.argv[1:]] or [800.0, 1200.0, 2000.0]
    main(budgets)
