"""The Coordinated baseline — Ge et al., ICPP 2016 [15] (§V-C).

"This method ensures that the nodes participating in computation are
allocated a budget no less than a preset value *specific to the
application*.  It coordinates power between CPU and memory according to
the power model.  The Coordinated method executes applications at the
highest possible concurrency."

Coordinated is CLIP minus the concurrency/scalability intelligence: it
profiles the application (reusing the same smart profiler) to learn its
power demands and acceptable floor at *full* concurrency, sheds nodes
against that floor, and splits each node's budget between CPU and DRAM
with the fitted power model — but it never throttles threads and knows
nothing about scalability classes, which is exactly where CLIP beats it
on logarithmic and parabolic applications.
"""

from __future__ import annotations

from repro.baselines.base import PowerBoundedScheduler
from repro.core.knowledge import KnowledgeDB, KnowledgeEntry
from repro.core.pipeline import ModelBundleCache
from repro.core.profile import SmartProfiler
from repro.errors import InfeasibleBudgetError
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics

__all__ = ["CoordinatedScheduler"]


class CoordinatedScheduler(PowerBoundedScheduler):
    """App-specific node floor + CPU/DRAM coordination, max concurrency."""

    name = "Coordinated"

    def __init__(
        self,
        engine: ExecutionEngine,
        profiler: SmartProfiler | None = None,
        knowledge: KnowledgeDB | None = None,
    ):
        super().__init__(engine)
        self._profiler = profiler or SmartProfiler(engine)
        self._kb = knowledge if knowledge is not None else KnowledgeDB()
        self._bundles = ModelBundleCache()

    def _power_model(self, app: WorkloadCharacteristics):
        """The app's fitted power model, via the shared bundle cache.

        Coordinated uses no inflection prediction, so its entries carry
        ``inflection_point=None`` — the bundle's power model is all it
        reads; the scalability intelligence stays switched off.
        """
        if self._kb.has(app.name, app.problem_size):
            entry = self._kb.get(app.name, app.problem_size)
        else:
            entry = KnowledgeEntry(profile=self._profiler.profile(app))
            self._kb.put(entry)
        # primary-class model: Coordinated learns one floor per app, on
        # the class hosting slot 0 (the class profiling samples ran on)
        primary = self.engine.cluster.spec.node_specs[0]
        bundle = self._bundles.get_or_build(entry, primary)
        return bundle.power_model

    def plan(
        self, app: WorkloadCharacteristics, cluster_budget_w: float
    ) -> ExecutionConfig:
        """App-specific node floor; model-driven CPU/DRAM split; all cores."""
        cluster = self.engine.cluster
        n_cores = min(s.n_cores for s in cluster.spec.node_specs)
        model = self._power_model(app)
        floor = model.power_range(n_cores).node_lo_w
        n_nodes = min(int(cluster_budget_w // floor), cluster.n_nodes)
        if n_nodes < 1:
            raise InfeasibleBudgetError(
                f"Coordinated: budget {cluster_budget_w:.1f} W below the "
                f"application floor {floor:.1f} W"
            )
        node_share = cluster_budget_w / n_nodes
        pkg, dram = model.split_node_budget(node_share, n_cores)
        return ExecutionConfig(
            n_nodes=n_nodes,
            n_threads=n_cores,
            pkg_cap_w=pkg,
            dram_cap_w=dram,
        )
