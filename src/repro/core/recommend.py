"""The Configuration Recommendation Module (§IV-B.2).

Given a profiled application and a per-node power budget, recommend the
node-level execution configuration: thread count, affinity, and the
CPU/DRAM cap split.  The decision engine combines

* the class-specific candidate concurrencies (linear apps hold full
  concurrency unless power forces less; parabolic apps never exceed
  NP; logarithmic apps trade concurrency against frequency),
* the fitted performance model (time vs. threads and frequency), and
* the fitted power model (achievable frequency under a PKG cap),

and returns the candidate with the best *predicted* performance — no
exhaustive execution, which is the paper's selling point over
Conductor-style search.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.classify import ScalabilityClass
from repro.core.perfmodel import PerformancePredictor
from repro.core.powermodel import ClipPowerModel
from repro.core.profile import AppProfile
from repro.errors import InfeasibleBudgetError
from repro.hw.numa import AffinityKind

__all__ = ["NodeConfig", "Recommender"]


@dataclass(frozen=True)
class NodeConfig:
    """A recommended node-level execution configuration.

    The GPU fields stay at their zero defaults on CPU-only nodes — the
    domain is absent, and the configuration compares equal to one from
    a build that never heard of accelerators.
    """

    n_threads: int
    affinity: AffinityKind
    pkg_cap_w: float
    dram_cap_w: float
    predicted_frequency_hz: float
    predicted_perf: float
    gpu_cap_w: float = 0.0
    predicted_gpu_clock_hz: float = 0.0

    @property
    def node_budget_w(self) -> float:
        """Total capped power this configuration is granted."""
        return self.pkg_cap_w + self.dram_cap_w + self.gpu_cap_w

    @property
    def has_gpu_grant(self) -> bool:
        """Whether any device power was granted (idle or active)."""
        return self.gpu_cap_w > 0.0


class Recommender:
    """Decision engine for one profiled application."""

    def __init__(
        self,
        profile: AppProfile,
        predictor: PerformancePredictor,
        power_model: ClipPowerModel,
    ):
        self._profile = profile
        self._predictor = predictor
        self._power = power_model

    @property
    def profile(self) -> AppProfile:
        """The profile the recommendation is based on."""
        return self._profile

    @property
    def predictor(self) -> PerformancePredictor:
        """The fitted performance model."""
        return self._predictor

    @property
    def power_model(self) -> ClipPowerModel:
        """The fitted power model."""
        return self._power

    # ------------------------------------------------------------------

    def min_floor_w(self) -> float:
        """Lowest acceptable node power over the candidate concurrencies.

        The cluster allocator uses this as the true per-node floor: a
        budget that cannot feed all-core execution may still feed a
        reduced concurrency, which is exactly CLIP's lever.
        """
        return min(
            self._power.power_range(n).node_lo_w for n in self._candidates()
        )

    def unbounded_concurrency(self) -> int:
        """Concurrency with sufficient power, by class rule.

        Linear and logarithmic applications use every core (their
        performance still rises, if slowly, toward full concurrency);
        parabolic applications stop at the inflection point.
        """
        cls = self._predictor.scalability_class
        np_ = self._predictor.inflection_point
        if cls is ScalabilityClass.PARABOLIC and np_ is not None:
            return np_
        return self._profile.n_cores

    def recommend(self, node_budget_w: float) -> NodeConfig:
        """Best configuration for one node under a capped-power budget.

        Evaluates the class's candidate concurrencies: for each, split
        the budget, invert the power model into an achievable
        frequency, and score with the performance model.  GPU-offload
        applications additionally enumerate the device cap ladder at
        each concurrency (the host↔accelerator power shift).  Raises
        :class:`InfeasibleBudgetError` when no candidate fits.
        """
        if self._predictor.scalability_class is ScalabilityClass.GPU_OFFLOAD:
            return self._recommend_gpu(node_budget_w)
        linear = self._predictor.scalability_class is ScalabilityClass.LINEAR
        # Host-only app on a GPU node: the board idles, but the idle
        # draw is real and the cap must admit it.  0.0 on CPU nodes.
        gpu_grant = self._power.gpu_power_range()[0]
        best: NodeConfig | None = None
        for n in self._candidates():
            try:
                pkg, dram = self._power.split_node_budget(node_budget_w, n)
            except InfeasibleBudgetError:
                continue
            f = self._power.max_freq_under(pkg, n)
            if f is None:
                continue
            perf = self._predictor.predict_perf(n, f)
            if best is None or perf > best.predicted_perf * (1.0 + 1e-9):
                best = NodeConfig(
                    n_threads=n,
                    affinity=self._profile.affinity,
                    pkg_cap_w=pkg,
                    dram_cap_w=dram,
                    predicted_frequency_hz=f,
                    predicted_perf=perf,
                    gpu_cap_w=gpu_grant,
                )
            if linear and best is not None:
                # "we do not consider decreasing the concurrency unless
                # the power budget is lower than the lower bound" (§II):
                # take the largest feasible count, no what-if scoring.
                break
        if best is None:
            raise InfeasibleBudgetError(
                f"no feasible configuration for node budget "
                f"{node_budget_w:.1f} W ({self._profile.app_name})"
            )
        return best

    def _recommend_gpu(self, node_budget_w: float) -> NodeConfig:
        """Best configuration with the host↔device shift (EcoShift).

        At each candidate concurrency (largest first, like the linear
        rule — host threads only serve the non-offloaded share), every
        device cap ladder level that leaves the host domains feasible
        is scored: the device term speeds up with its clock while the
        host remainder buys frequency, and the predicted-time roofline
        between them picks the balance point.  The first concurrency
        with any feasible split wins, mirroring "do not decrease
        concurrency unless power forces it".
        """
        lo, hi = self._power.gpu_power_range()
        best: NodeConfig | None = None
        for n in self._candidates():
            feasible = False
            for gpu_cap, clk in self._power.gpu_shift_candidates(
                lo, min(hi, node_budget_w)
            ):
                try:
                    pkg, dram, gpu = self._power.split_node_budget_gpu(
                        node_budget_w, n, gpu_cap
                    )
                except InfeasibleBudgetError:
                    continue
                f = self._power.max_freq_under(pkg, n)
                if f is None:
                    continue
                feasible = True
                perf = self._predictor.predict_perf(n, f, gpu_clock_hz=clk)
                if best is None or perf > best.predicted_perf * (1.0 + 1e-9):
                    best = NodeConfig(
                        n_threads=n,
                        affinity=self._profile.affinity,
                        pkg_cap_w=pkg,
                        dram_cap_w=dram,
                        predicted_frequency_hz=f,
                        predicted_perf=perf,
                        gpu_cap_w=gpu,
                        predicted_gpu_clock_hz=clk,
                    )
            if feasible:
                break
        if best is None:
            raise InfeasibleBudgetError(
                f"no feasible GPU-offload configuration for node budget "
                f"{node_budget_w:.1f} W ({self._profile.app_name})"
            )
        return best

    def config_at(self, node_budget_w: float, base: NodeConfig) -> NodeConfig:
        """Cap split for one node budget at an already-chosen concurrency.

        Per-rank budgets differ under variability coordination while
        the concurrency stays uniform, so each rank re-derives only its
        cap split (and, on GPU nodes, re-runs the host↔device shift for
        its own budget).  Used by the recommend stage; CPU-only ranks
        do not call this (their split stays on the legacy path).
        """
        n = base.n_threads
        lo, hi = self._power.gpu_power_range()
        if not self._power.gpu_offloaded:
            pkg, dram, gpu = self._power.split_node_budget_gpu(
                node_budget_w, n, lo
            )
            f = self._power.max_freq_under(pkg, n)
            return replace(
                base,
                pkg_cap_w=pkg,
                dram_cap_w=dram,
                gpu_cap_w=gpu,
                predicted_frequency_hz=(
                    f if f is not None else base.predicted_frequency_hz
                ),
            )
        best: NodeConfig | None = None
        for gpu_cap, clk in self._power.gpu_shift_candidates(
            lo, min(hi, node_budget_w)
        ):
            try:
                pkg, dram, gpu = self._power.split_node_budget_gpu(
                    node_budget_w, n, gpu_cap
                )
            except InfeasibleBudgetError:
                continue
            f = self._power.max_freq_under(pkg, n)
            if f is None:
                continue
            perf = self._predictor.predict_perf(n, f, gpu_clock_hz=clk)
            if best is None or perf > best.predicted_perf * (1.0 + 1e-9):
                best = replace(
                    base,
                    pkg_cap_w=pkg,
                    dram_cap_w=dram,
                    gpu_cap_w=gpu,
                    predicted_frequency_hz=f,
                    predicted_perf=perf,
                    predicted_gpu_clock_hz=clk,
                )
        if best is None:
            raise InfeasibleBudgetError(
                f"no feasible GPU cap split for node budget "
                f"{node_budget_w:.1f} W at {n} threads "
                f"({self._profile.app_name})"
            )
        return best

    def phase_overrides(self) -> dict[str, int]:
        """Per-phase concurrency overrides for stagnant phases (§V-B.1).

        Compares each instrumented phase's time between the half-core
        and all-core samples: a phase that got *no faster* with twice
        the threads is limited-concurrency (the BT-MZ ``exch_qbc``
        case), and running it with the half-core count avoids the
        oversubscription cost.  Phases that did speed up are left to
        the global concurrency choice.
        """
        half, all_ = self._profile.half_run, self._profile.all_run
        half_times = dict(half.phase_times)
        overrides: dict[str, int] = {}
        if len(all_.phase_times) < 2:
            return overrides
        for name, t_all in all_.phase_times:
            t_half = half_times.get(name)
            if t_half is None:
                continue
            if t_all >= t_half * 0.98:
                overrides[name] = half.n_threads
        return overrides

    def _candidates(self) -> tuple[int, ...]:
        """Candidate thread counts, largest first.

        Descending order makes prediction *ties* resolve toward more
        parallelism (a flat prediction must not collapse to two
        threads), and for linear applications it realizes the paper's
        rule directly: full concurrency first, smaller counts only as a
        power fallback ("we do not consider decreasing the concurrency
        unless the power budget is lower than the lower bound", §II).
        """
        cands = self._predictor.candidate_concurrencies()
        return tuple(sorted(cands, reverse=True))
