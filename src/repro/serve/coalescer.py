"""Burst coalescing: many concurrent submissions, one batch decision.

The warm decision path is fastest in batches —
``ClipScheduler.schedule_many`` amortizes the pipeline over a burst at
~0.1–1.3 ms/job (BENCH_pipeline.json) — so the service must not decide
submissions one HTTP request at a time.  :class:`BurstCoalescer` sits
between the event loop and a single decision thread:

* submissions land on an :class:`asyncio.Queue`;
* the coalescer loop takes the first one, then *drains whatever else
  has already arrived* (up to ``max_burst``) — under load, everything
  that queued while the previous burst was deciding becomes the next
  burst, so batching emerges from backpressure with zero added idle
  latency;
* an optional ``window_s`` additionally holds the burst open for
  late arrivals (trading per-request latency for larger bursts at low
  offered rates);
* the burst is handed to
  :meth:`~repro.serve.service.SchedulerService.decide_burst` on a
  dedicated single-thread executor, keeping the event loop responsive
  and the decision path single-file (the shared caches are lock-safe,
  but one decision thread keeps the hot path contention-free).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.serve.service import SchedulerService, Submission

__all__ = ["BurstCoalescer"]


class BurstCoalescer:
    """Feeds queued submissions to the service in coalesced bursts."""

    def __init__(
        self,
        service: SchedulerService,
        *,
        window_s: float = 0.0,
        max_burst: int = 512,
    ):
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_burst < 1:
            raise ValueError("max_burst must be >= 1")
        self._service = service
        self._window_s = float(window_s)
        self._max_burst = int(max_burst)
        self._queue: asyncio.Queue[Submission] = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="clip-decide"
        )
        self._task: asyncio.Task | None = None

    @property
    def window_s(self) -> float:
        """The configured coalescing window (0 = pure drain batching)."""
        return self._window_s

    def start(self) -> None:
        """Start the coalescing loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="clip-coalescer"
            )

    def submit_nowait(self, submission: Submission) -> None:
        """Queue one admitted submission for the next burst."""
        self._queue.put_nowait(submission)

    async def _collect(self) -> list[Submission]:
        """Block for the first submission, then coalesce the burst."""
        batch = [await self._queue.get()]
        if self._window_s > 0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self._window_s
            while len(batch) < self._max_burst:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout)
                    )
                except asyncio.TimeoutError:
                    break
        while len(batch) < self._max_burst and not self._queue.empty():
            batch.append(self._queue.get_nowait())
        return batch

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = await self._collect()
            # while this runs, new arrivals pile up into the next burst
            await loop.run_in_executor(
                self._executor, self._service.decide_burst, batch
            )

    async def stop(self) -> None:
        """Stop the loop, fail whatever never got decided, free the
        decision thread.  Idempotent."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        leftovers = []
        while not self._queue.empty():
            leftovers.append(self._queue.get_nowait())
        if leftovers:
            self._service.fail_pending(leftovers, "service shutting down")
        self._executor.shutdown(wait=True)
