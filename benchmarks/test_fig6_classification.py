"""Figure 6 — parallel speedup ratio (half-core / all-core) per benchmark.

The paper plots Perf_half / Perf_all for every Table-II application with
no power bound: green bars (< 0.7) are linear, blue (0.7-1.0)
logarithmic, red (>= 1.0) parabolic.  The profiled ratios must land each
application in its published class.
"""

from repro.analysis.tables import render_table
from repro.core.profile import SmartProfiler
from repro.workloads.apps import TABLE2_APPS
from conftest import run_once

PAPER_CLASSES = {
    "bt-mz.C": "logarithmic",
    "lu-mz.C": "logarithmic",
    "sp-mz.C": "parabolic",
    "comd": "linear",
    "amg": "linear",
    "miniaero": "parabolic",
    "minimd": "linear",
    "tealeaf": "parabolic",
    "cloverleaf.128": "logarithmic",
    "cloverleaf.16": "logarithmic",
}


def profile_all(engine):
    profiler = SmartProfiler(engine)
    return {a.name: profiler.profile(a) for a in TABLE2_APPS}


def test_fig6_classification(benchmark, engine, report):
    profiles = run_once(benchmark, lambda: profile_all(engine))

    rows = [
        [name, p.ratio, p.scalability_class.value, PAPER_CLASSES[name]]
        for name, p in profiles.items()
    ]
    report(
        "fig6",
        render_table(
            ["Benchmark", "Perf_half/Perf_all", "Measured class", "Paper class"],
            rows,
            title="Fig. 6 — speedup ratio classification (no power bound)",
        ),
    )

    for name, p in profiles.items():
        assert p.scalability_class.value == PAPER_CLASSES[name], (
            f"{name}: ratio {p.ratio:.3f}"
        )

    # the three bands are all populated, as in the figure
    classes = {p.scalability_class.value for p in profiles.values()}
    assert classes == {"linear", "logarithmic", "parabolic"}

    # linear ratios hover near 0.5 (half the cores, half the speed)
    for name in ("comd", "minimd"):
        assert profiles[name].ratio < 0.6
