"""Cross-cutting property-based tests.

Invariants that hold across the whole stack for *arbitrary* valid
inputs — the hypothesis net under the example-based suites.  Shared
immutable state is module-cached because hypothesis forbids
function-scoped fixtures inside @given.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coordination import coordinate_power
from repro.hw.cluster import SimulatedCluster
from repro.hw.numa import AffinityKind, NumaTopology
from repro.hw.specs import haswell_node
from repro.sim.affinity import make_placement
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.model import (
    GroundTruthModel,
    true_inflection_point,
    true_scalability_class,
)

NODE = haswell_node()
TOPO = NumaTopology(NODE)
MODEL = GroundTruthModel(NODE)
FULL_BW = np.full(2, NODE.socket.memory.peak_bandwidth)

_ENGINE = None


def engine():
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = ExecutionEngine(SimulatedCluster.testbed(), seed=5)
    return _ENGINE


def random_app(draw_bpi, draw_sync, draw_serial, draw_ipc):
    return WorkloadCharacteristics(
        name="prop-app",
        instructions_per_iter=5e10,
        bytes_per_instruction=draw_bpi,
        serial_fraction=draw_serial,
        sync_cost_s=draw_sync,
        ipc_fraction=draw_ipc,
        shared_fraction=0.2,
    )


app_strategy = st.builds(
    random_app,
    draw_bpi=st.floats(min_value=0.0, max_value=6.0),
    draw_sync=st.floats(min_value=0.0, max_value=0.05),
    draw_serial=st.floats(min_value=0.0, max_value=0.05),
    draw_ipc=st.floats(min_value=0.2, max_value=0.8),
)


class TestModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(app=app_strategy)
    def test_class_and_np_are_consistent(self, app):
        cls = true_scalability_class(app, NODE)
        np_ = true_inflection_point(app, NODE)
        assert cls in ("linear", "logarithmic", "parabolic")
        assert 2 <= np_ <= NODE.n_cores
        # the ratio rule and the piecewise knee are *different*
        # instruments (a ratio-linear Amdahl app can still have an
        # interior curvature knee), so no cross-constraint beyond the
        # range checks above — that independence is itself the finding
        # the paper's two-step method (classify, then fit) relies on

    @settings(max_examples=40, deadline=None)
    @given(
        app=app_strategy,
        n=st.integers(min_value=1, max_value=23),
    )
    def test_time_decreases_or_saturates_in_threads_when_sync_free(self, app, n):
        if app.sync_cost_s > 0:
            return
        t1 = MODEL.phase_time(app, [min(n, 12), max(n - 12, 0)], 2.3e9, FULL_BW)
        t2 = MODEL.phase_time(
            app, [min(n + 1, 12), max(n + 1 - 12, 0)], 2.3e9, FULL_BW
        )
        # +1 thread never hurts a sync-free app beyond the odd penalty
        assert t2.t_iter_s <= t1.t_iter_s * 1.02

    @settings(max_examples=40, deadline=None)
    @given(
        app=app_strategy,
        f1=st.floats(min_value=1.2e9, max_value=3.0e9),
        df=st.floats(min_value=1e7, max_value=1e9),
    )
    def test_time_monotone_in_frequency(self, app, f1, df):
        t_lo = MODEL.phase_time(app, [6, 6], f1, FULL_BW)
        t_hi = MODEL.phase_time(app, [6, 6], f1 + df, FULL_BW)
        assert t_hi.t_iter_s <= t_lo.t_iter_s * (1 + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(app=app_strategy, shared=st.floats(min_value=0.0, max_value=1.0))
    def test_remote_traffic_never_speeds_memory(self, app, shared):
        local = MODEL.phase_time(app, [6, 6], 2.3e9, FULL_BW, 0.0)
        remote = MODEL.phase_time(app, [6, 6], 2.3e9, FULL_BW, shared * 0.5)
        assert remote.memory_s >= local.memory_s * (1 - 1e-12)


class TestPlacementProperties:
    @settings(max_examples=60)
    @given(
        n=st.integers(min_value=1, max_value=24),
        s1=st.floats(min_value=0.0, max_value=1.0),
        s2=st.floats(min_value=0.0, max_value=1.0),
        kind=st.sampled_from(list(AffinityKind)),
    )
    def test_remote_fraction_monotone_in_sharing(self, n, s1, s2, kind):
        lo, hi = sorted((s1, s2))
        p_lo = make_placement(TOPO, n, kind, lo)
        p_hi = make_placement(TOPO, n, kind, hi)
        assert p_lo.remote_fraction <= p_hi.remote_fraction + 1e-12

    @settings(max_examples=60)
    @given(n=st.integers(min_value=1, max_value=24))
    def test_compact_never_more_remote_than_scatter(self, n):
        compact = make_placement(TOPO, n, AffinityKind.COMPACT, 0.5)
        scatter = make_placement(TOPO, n, AffinityKind.SCATTER, 0.5)
        assert compact.remote_fraction <= scatter.remote_fraction + 1e-12


class TestCoordinationProperties:
    @settings(max_examples=50)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=8),
    )
    def test_permutation_equivariance(self, seed, n):
        rng = np.random.default_rng(seed)
        factors = np.clip(1 + 0.08 * rng.standard_normal(n), 0.85, 1.15)
        budgets = coordinate_power(200.0 * n, factors, lo_w=120.0, hi_w=280.0)
        perm = rng.permutation(n)
        permuted = coordinate_power(
            200.0 * n, factors[perm], lo_w=120.0, hi_w=280.0
        )
        np.testing.assert_allclose(permuted, budgets[perm], rtol=1e-9)

    @settings(max_examples=50)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=8),
    )
    def test_less_efficient_never_gets_less(self, seed, n):
        rng = np.random.default_rng(seed)
        factors = np.clip(1 + 0.08 * rng.standard_normal(n), 0.85, 1.15)
        budgets = coordinate_power(200.0 * n, factors, lo_w=120.0, hi_w=280.0)
        order = np.argsort(factors)
        sorted_budgets = budgets[order]
        assert np.all(np.diff(sorted_budgets) >= -1e-9)


class TestHeterogeneousCoordinationProperties:
    """Per-node [lo, hi] arrays — the mixed-cluster coordination form."""

    @staticmethod
    def _bounds(rng, n):
        # distinct per-node acceptable ranges, hi strictly above lo
        lo = rng.uniform(60.0, 160.0, n)
        hi = lo + rng.uniform(20.0, 160.0, n)
        return lo, hi

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=8),
        slack=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_respects_budget_and_per_node_bounds(self, seed, n, slack):
        rng = np.random.default_rng(seed)
        lo, hi = self._bounds(rng, n)
        factors = np.clip(1 + 0.08 * rng.standard_normal(n), 0.85, 1.15)
        # any budget from the summed floors to the summed ceilings
        total = float(lo.sum() + slack * (hi.sum() - lo.sum()))
        budgets = coordinate_power(total, factors, lo_w=lo, hi_w=hi)
        assert budgets.shape == (n,)
        assert float(budgets.sum()) <= total + 1e-6
        assert np.all(budgets >= lo - 1e-9)
        assert np.all(budgets <= hi + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=8),
    )
    def test_saturating_budget_pins_every_node_at_ceiling(self, seed, n):
        rng = np.random.default_rng(seed)
        lo, hi = self._bounds(rng, n)
        factors = np.clip(1 + 0.08 * rng.standard_normal(n), 0.85, 1.15)
        budgets = coordinate_power(float(hi.sum()), factors, lo_w=lo, hi_w=hi)
        np.testing.assert_allclose(budgets, hi, rtol=1e-9, atol=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=8),
    )
    def test_scalar_bounds_agree_with_uniform_arrays(self, seed, n):
        rng = np.random.default_rng(seed)
        factors = np.clip(1 + 0.08 * rng.standard_normal(n), 0.85, 1.15)
        scalar = coordinate_power(200.0 * n, factors, lo_w=120.0, hi_w=280.0)
        arrays = coordinate_power(
            200.0 * n,
            factors,
            lo_w=np.full(n, 120.0),
            hi_w=np.full(n, 280.0),
        )
        np.testing.assert_allclose(arrays, scalar, rtol=1e-9, atol=1e-9)


class TestExecutionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        app=app_strategy,
        n_nodes=st.integers(min_value=1, max_value=8),
        n_threads=st.integers(min_value=1, max_value=24),
    )
    def test_run_result_internally_consistent(self, app, n_nodes, n_threads):
        r = engine().run(
            app,
            ExecutionConfig(
                n_nodes=n_nodes, n_threads=n_threads, iterations=2
            ),
        )
        assert r.total_time_s == pytest.approx(2 * r.t_step_s)
        assert r.t_step_s >= max(rec.t_iter_s for rec in r.nodes)
        assert r.imbalance >= 1.0 - 1e-9
        assert r.energy_j == pytest.approx(r.avg_power_w * r.total_time_s)
        for rec in r.nodes:
            assert 0.0 < rec.busy_fraction <= 1.0 + 1e-9
            assert rec.events.event6 > 0
