"""MLR inflection-point prediction (§III-A.2, Table I).

For logarithmic and parabolic applications the piecewise performance
model needs the inflection point NP.  The paper predicts NP with
multivariate linear regression over the Table-I hardware-event rates of
the profiling samples, trained on a benchmark corpus whose true
inflection points were identified by exhaustive search; it explicitly
prefers MLR over "more sophisticated machine learning methods" because
the training set is small ("may generate overfit").

Training targets here come from exhaustive sweeps on the simulated
testbed — the same procedure the authors used on the physical one.
Predictions are floored to an even thread count, as the paper does
after observing that odd concurrency underperforms (§V-B.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.classify import ScalabilityClass
from repro.core.profile import AppProfile, SmartProfiler
from repro.errors import ModelNotFittedError, ProfilingError
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.model import true_inflection_point

__all__ = ["InflectionPredictor"]

#: Tikhonov damping keeping the small-corpus regression stable.
RIDGE_LAMBDA = 1e-3


class InflectionPredictor:
    """Ridge-regularized MLR from profile features to NP."""

    def __init__(self):
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._n_cores: int | None = None
        self._train_X: np.ndarray | None = None
        self._train_y: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._weights is not None

    @property
    def n_training_rows(self) -> int:
        """Rows in the current training set (0 before :meth:`fit`)."""
        return 0 if self._train_X is None else len(self._train_X)

    # ------------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray, n_cores: int) -> None:
        """Fit the regression on (features, true NP) pairs.

        Features are standardized, then solved with ridge-damped least
        squares; an intercept column is appended internally.
        """
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ProfilingError("features must be 2-D and match targets")
        if len(X) < X.shape[1] + 1:
            raise ProfilingError(
                f"need more training rows ({len(X)}) than features ({X.shape[1]})"
            )
        self._mean = X.mean(axis=0)
        self._scale = np.where(X.std(axis=0) > 1e-12, X.std(axis=0), 1.0)
        Xs = (X - self._mean) / self._scale
        Xs = np.hstack([Xs, np.ones((len(Xs), 1))])
        # ridge: (X'X + lambda I) w = X'y, intercept undamped
        reg = RIDGE_LAMBDA * np.eye(Xs.shape[1])
        reg[-1, -1] = 0.0
        self._weights = np.linalg.solve(Xs.T @ Xs + reg, Xs.T @ y)
        self._n_cores = n_cores
        # keep the corpus so outcome-driven refits can augment it
        self._train_X = X.copy()
        self._train_y = y.copy()

    def refit_with(self, features: np.ndarray, targets: np.ndarray) -> int:
        """Augment the training corpus with observed rows and re-solve.

        The closed-loop learner calls this when execution history pins
        an application's true knee away from the recorded prediction:
        the (feature-vector, observed-NP) evidence joins the original
        exhaustive-search corpus and the ridge regression re-solves on
        the union — the same standardization and damping as
        :meth:`fit`.  Returns the new corpus size.  Raises
        :class:`~repro.errors.ModelNotFittedError` before the first
        :meth:`fit` (there is no corpus to augment).
        """
        if self._train_X is None or self._train_y is None:
            raise ModelNotFittedError(
                "InflectionPredictor.refit_with needs an initial fit"
            )
        rows = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y_new = np.atleast_1d(np.asarray(targets, dtype=np.float64))
        if rows.shape[1] != self._train_X.shape[1] or len(rows) != len(y_new):
            raise ProfilingError(
                "refit rows must match the corpus feature width and targets"
            )
        self.fit(
            np.vstack([self._train_X, rows]),
            np.concatenate([self._train_y, y_new]),
            self._n_cores,
        )
        return len(self._train_X)

    def fit_from_corpus(
        self,
        corpus: list[WorkloadCharacteristics],
        profiler: SmartProfiler,
    ) -> int:
        """Profile a corpus and fit on its non-linear members.

        Returns the number of training rows used.  Linear apps carry no
        inflection point and are skipped, mirroring the paper's
        "classified and verified" filter.
        """
        feats: list[np.ndarray] = []
        targets: list[float] = []
        node = profiler.node_spec
        for app in corpus:
            prof = profiler.profile(app)
            if prof.scalability_class is ScalabilityClass.LINEAR:
                continue
            feats.append(prof.feature_vector())
            targets.append(float(true_inflection_point(app, node)))
        if not feats:
            raise ProfilingError("corpus contained no non-linear applications")
        self.fit(np.array(feats), np.array(targets), node.n_cores)
        return len(feats)

    # ------------------------------------------------------------------

    def predict_raw(self, profile: AppProfile) -> float:
        """Un-floored regression output for one profile."""
        if (
            self._weights is None
            or self._mean is None
            or self._scale is None
        ):
            raise ModelNotFittedError("InflectionPredictor.fit has not run")
        x = (profile.feature_vector() - self._mean) / self._scale
        x = np.append(x, 1.0)
        return float(x @ self._weights)

    def predict(self, profile: AppProfile) -> int:
        """Predicted NP: floored to even, clamped to [2, n_cores]."""
        raw = self.predict_raw(profile)
        floored = int(raw // 2 * 2)
        n_cores = self._n_cores or profile.n_cores
        return int(np.clip(floored, 2, n_cores))
