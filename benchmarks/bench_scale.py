"""Fleet-scale scheduling cost: 8 → 1024 nodes, near-flat per node.

Times warm ``ClipScheduler.schedule`` decisions and runtime budget
re-coordinations on rack-replicated Haswell fleets of 8, 64, 256 and
1024 nodes (1, 8, 32 and 128 racks).  The hierarchical rack split, the
rack-decomposed candidate grid, the batched calibration, and the exact
array-based coordination are what keep the *per-node* cost of a
decision near-flat as the fleet grows 128x; this benchmark proves it
and records the curve to ``BENCH_scale.json`` at the repository root.

Run standalone with ``python benchmarks/bench_scale.py`` or through
``benchmarks/test_perf_scale.py`` (which enforces the curve in CI:
per-node decision cost at 1024 nodes at most 3x the 8-node cost, zero
budget-invariant violations at every scale).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone execution
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import build_trained_inflection
from repro.core.runtime import PowerBoundedRuntime
from repro.core.scheduler import ClipScheduler
from repro.hw.cluster import SimulatedCluster
from repro.hw.specs import haswell_testbed
from repro.sim.batch import RunCache
from repro.sim.engine import ExecutionEngine
from repro.workloads.apps import get_app

BENCH_PATH = REPO_ROOT / "BENCH_scale.json"

#: Racks of the 8-node Haswell testbed per scale point.
RACK_SCALES = (1, 8, 32, 128)

#: Per-node budget (W) — the paper's 1200 W over 8 nodes, held constant
#: per node so every scale exercises the same allocation regime.
BUDGET_PER_NODE_W = 150.0

APPS = ("comd", "sp-mz.C", "stream")
WARM_ROUNDS = 3
#: Warm budget sweep, as fractions of the cluster budget.
BUDGET_FRACTIONS = (0.85, 1.0, 1.15)
#: Budget swing exercised by each timed runtime re-coordination.
RECOORD_FRACTION = 0.9


def _scale_point(racks: int, inflection) -> dict:
    """Measure one fleet size; returns the JSON record."""
    spec = haswell_testbed(racks=racks if racks > 1 else None)
    engine = ExecutionEngine(SimulatedCluster(spec), seed=42, cache=RunCache())
    clip = ClipScheduler(engine, inflection=inflection)
    apps = [get_app(name) for name in APPS]
    n_nodes = spec.n_nodes
    budget_w = BUDGET_PER_NODE_W * n_nodes

    # cold: first decision per app — profiling plus model fitting
    start = time.perf_counter()
    for app in apps:
        clip.schedule(app, budget_w)
    cold_s = time.perf_counter() - start

    # warm: budget sweep on hot knowledge / bundle caches — the
    # steady-state decision cost a facility scheduler actually pays
    start = time.perf_counter()
    n_warm = 0
    for _ in range(WARM_ROUNDS):
        for app in apps:
            for frac in BUDGET_FRACTIONS:
                clip.schedule(app, budget_w * frac)
                n_warm += 1
    warm_s = time.perf_counter() - start

    # runtime re-coordination: a running job re-budgeted on a swing
    runtime = PowerBoundedRuntime(clip)
    job = runtime.launch(apps[0], budget_w, n_nodes=n_nodes)
    start = time.perf_counter()
    n_recoord = 0
    for _ in range(WARM_ROUNDS):
        runtime.update_budget(job, budget_w * RECOORD_FRACTION)
        runtime.update_budget(job, budget_w)
        n_recoord += 2
    recoord_s = time.perf_counter() - start

    clip.monitor.assert_clean()
    warm_per_decision = warm_s / n_warm
    return {
        "racks": spec.n_racks,
        "n_nodes": n_nodes,
        "cluster_budget_w": budget_w,
        "cold_per_decision_s": cold_s / len(apps),
        "warm_per_decision_s": warm_per_decision,
        "per_node_decision_s": warm_per_decision / n_nodes,
        "recoordinations": n_recoord,
        "per_recoordination_s": recoord_s / n_recoord,
        "per_node_recoordination_s": recoord_s / n_recoord / n_nodes,
        "audits": {
            "n_audits": clip.monitor.n_audits,
            "n_violations": clip.monitor.n_violations,
        },
    }


def run_scale_bench() -> dict:
    """Measure every scale point and write ``BENCH_scale.json``."""
    # one predictor trained on the paper's 8-node testbed, shared by
    # every scale (training cost is not what this benchmark measures)
    base = ExecutionEngine(SimulatedCluster.testbed(), seed=42, cache=RunCache())
    inflection = build_trained_inflection(base)

    scales = [_scale_point(racks, inflection) for racks in RACK_SCALES]
    smallest, largest = scales[0], scales[-1]
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "apps": list(APPS),
        "budget_per_node_w": BUDGET_PER_NODE_W,
        "scales": scales,
        "per_node_ratio_largest_vs_smallest": (
            largest["per_node_decision_s"] / smallest["per_node_decision_s"]
        ),
        "total_violations": sum(s["audits"]["n_violations"] for s in scales),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main() -> int:
    payload = run_scale_bench()
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
