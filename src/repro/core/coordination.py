"""Inter-node power coordination under manufacturing variability.

Section III-B.2 (following Inadomi et al., SC'15): nominally identical
nodes convert watts to frequency differently; under a uniform per-node
budget the least efficient node paces every bulk-synchronous step.
CLIP measures per-node efficiency once per cluster with a calibration
kernel, and — when the spread exceeds a threshold (the paper's testbed
is "quite homogeneous", so coordination only engages beyond it) —
redistributes the job's power proportionally to each node's efficiency
factor so all nodes sustain the same operating point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulingError
from repro.sim.engine import ExecutionConfig, ExecutionEngine
from repro.workloads.characteristics import CommPattern, WorkloadCharacteristics

__all__ = [
    "VARIABILITY_THRESHOLD",
    "measure_node_factors",
    "coordinate_power",
    "waterfill_surplus",
]

#: Relative max-to-min power spread below which nodes are treated as
#: homogeneous and budgets stay uniform.
VARIABILITY_THRESHOLD = 0.05

#: Calibration workload: a fixed compute-bound kernel so measured power
#: differences reflect the silicon, not workload placement.
_CALIBRATION_APP = WorkloadCharacteristics(
    name="clip.calibration",
    description="fixed DGEMM-like kernel for variability calibration",
    instructions_per_iter=2.0e10,
    bytes_per_instruction=0.02,
    serial_fraction=0.0,
    sync_cost_s=0.0,
    ipc_fraction=0.65,
    shared_fraction=0.05,
    icache_mpki=0.1,
    comm_pattern=CommPattern.NONE,
    iterations=3,
    problem_size="calibration",
)


def measure_node_factors(engine: ExecutionEngine, n_threads: int | None = None) -> np.ndarray:
    """Measure each node's power-efficiency factor (mean-normalized).

    Runs the calibration kernel on every node at a fixed frequency and
    reads RAPL power; a node drawing more watts for the same work gets
    a factor above 1.  This is a one-time cluster calibration, not a
    per-application cost.

    The default uses half the cores: an all-core compute kernel sits at
    the factory power limit, where inefficient parts silently throttle
    and the power signal collapses to the cap value.

    Nodes currently marked failed are skipped and carry a neutral
    factor of 1.0 (they cannot participate in runs anyway); the
    normalization uses only the measured survivors.

    On a heterogeneous cluster each node is calibrated against its own
    spec (half *its* cores, pinned at *its* nominal frequency) and the
    mean-normalization runs within each hardware class: a Broadwell
    legitimately draws different watts than a Haswell, and only the
    within-class silicon spread is manufacturing variability.

    The per-node kernels are scored as **one batched array program**
    (:meth:`ExecutionEngine.evaluate_many`), and the resulting factors
    are cached on the engine keyed by the cluster fingerprint (specs,
    per-node efficiencies, failed set) — ``fail_node`` /
    ``recover_node`` / ``degrade_node`` all change the fingerprint, so
    a mutation invalidates the cached calibration by construction while
    repeated scheduler constructions against the same fleet skip
    recalibration entirely.
    """
    cluster = engine.cluster
    cache = engine.calibration_cache
    key = engine.calibration_fingerprint(n_threads)
    cached = cache.get(key)
    if cached is not None:
        return cached.copy()
    available = cluster.available_node_ids
    if not available:
        raise SchedulingError("cannot calibrate: every node is failed")
    specs_by_id = [cluster.node(i).spec for i in available]
    configs = [
        ExecutionConfig(
            n_nodes=1,
            n_threads=n_threads or node_spec.n_cores // 2,
            node_ids=(i,),
            frequency_hz=node_spec.socket.f_nominal,
        )
        for i, node_spec in zip(available, specs_by_id)
    ]
    results = engine.evaluate_many(_CALIBRATION_APP, configs)
    powers = np.full(cluster.n_nodes, np.nan)
    for i, result in zip(available, results):
        rec = result.nodes[0]
        powers[i] = rec.operating_point.pkg_power_w + rec.operating_point.dram_power_w
    measured = powers[~np.isnan(powers)]
    if measured.size == 0:
        raise SchedulingError("cannot calibrate: every node is failed")
    spec = cluster.spec
    if spec.is_homogeneous:
        factors = powers / measured.mean()
    else:
        factors = np.full(cluster.n_nodes, np.nan)
        # one gather: map each slot to its hardware class, then
        # mean-normalize within each class (first-appearance order)
        class_of: dict = {}
        cls_ids = np.fromiter(
            (class_of.setdefault(s, len(class_of)) for s in spec.node_specs),
            dtype=np.int64,
            count=cluster.n_nodes,
        )
        for k in range(len(class_of)):
            in_class = cls_ids == k
            class_measured = powers[in_class & ~np.isnan(powers)]
            if class_measured.size:
                factors[in_class] = powers[in_class] / class_measured.mean()
    factors[np.isnan(factors)] = 1.0
    cache[key] = factors.copy()
    return factors


def waterfill_surplus(
    budgets: np.ndarray,
    surplus: float,
    weights: np.ndarray,
    hi: np.ndarray | float,
) -> np.ndarray:
    """Distribute *surplus* watts onto *budgets*, exactly, water-filling.

    Each entry grows proportionally to its weight until it pins at its
    own ceiling; pinned entries stop absorbing and the remainder keeps
    flowing to the others.  The result satisfies
    ``sum(out) == sum(budgets) + min(surplus, sum(hi - budgets))`` up to
    float round-off — the exact fill the old fixed-pass loop could miss
    when many entries pinned at ``hi`` (each pass spilled onto *all*
    open entries proportionally and terminated after a fixed count).

    The no-pin case reproduces the historical single proportional pass
    bit-for-bit; pinning triggers the exact breakpoint solve (sort the
    pin thresholds ``room/weight``, prefix-sum the absorbed watts, and
    solve the final linear segment).
    """
    n = len(budgets)
    hi = np.broadcast_to(np.asarray(hi, dtype=np.float64), (n,))
    room = hi - budgets
    open_idx = room > 1e-12
    if surplus <= 1e-9 or not np.any(open_idx):
        return budgets
    # historical first pass: spill proportionally onto the open entries
    add = np.zeros(n)
    add[open_idx] = surplus * weights[open_idx] / weights[open_idx].sum()
    new = np.minimum(budgets + add, hi)
    remaining = surplus - float((new - budgets).sum())
    if remaining <= 1e-9:
        return new
    # entries pinned: exact breakpoint water-fill from the original
    # budgets.  Fully saturated when the surplus covers all open room.
    idx = np.flatnonzero(open_idx)
    if surplus >= float(room[idx].sum()) - 1e-12:
        out = budgets.copy()
        out[idx] = hi[idx]
        return out
    t_pin = room[idx] / weights[idx]  # per-entry pinning threshold
    order = np.argsort(t_pin, kind="stable")
    t_s = t_pin[order]
    w_s = weights[idx][order]
    room_cum = np.cumsum(room[idx][order])
    w_tail = w_s.sum() - np.cumsum(w_s)
    # watts absorbed when the water level reaches each breakpoint
    absorbed_at = room_cum + t_s * w_tail
    k = int(np.searchsorted(absorbed_at, surplus, side="left"))
    prev_room = float(room_cum[k - 1]) if k > 0 else 0.0
    w_rem = float(w_s[k:].sum())
    t_star = (surplus - prev_room) / w_rem
    out = budgets.copy()
    pinned = idx[order[:k]]
    rest = idx[order[k:]]
    out[pinned] = hi[pinned]
    out[rest] = np.minimum(budgets[rest] + t_star * weights[rest], hi[rest])
    return out


def coordinate_power(
    total_budget_w: float,
    factors: np.ndarray,
    lo_w: float | np.ndarray,
    hi_w: float | np.ndarray,
    threshold: float = VARIABILITY_THRESHOLD,
) -> np.ndarray:
    """Split a job budget across nodes, variability-aware.

    Parameters
    ----------
    total_budget_w:
        Power available to the participating nodes together.
    factors:
        Per-node efficiency factors (watts per unit work, normalized);
        only the participating nodes' entries are passed.
    lo_w / hi_w:
        Acceptable per-node power range of the application.  Scalars
        describe a homogeneous cluster; per-node arrays (one entry per
        participating node, in the same order as ``factors``) carry
        each node's own range on a heterogeneous cluster.  Budgets are
        kept inside every node's own range.
    threshold:
        Spread below which the split stays uniform.

    Returns
    -------
    numpy.ndarray
        Per-node budgets summing to at most ``total_budget_w``.

    Raises
    ------
    SchedulingError
        If the budget cannot give every node at least its own floor.
    """
    factors = np.asarray(factors, dtype=np.float64)
    n = len(factors)
    if n < 1:
        raise SchedulingError("need at least one participating node")
    lo_arr = np.asarray(lo_w, dtype=np.float64)
    hi_arr = np.asarray(hi_w, dtype=np.float64)
    if lo_arr.ndim == 0 and hi_arr.ndim == 0:
        lo_s = float(lo_arr)
        hi_s = float(hi_arr)
        if lo_s <= 0 or hi_s < lo_s:
            raise SchedulingError(f"invalid power range [{lo_s}, {hi_s}]")
        if total_budget_w < n * lo_s - 1e-9:
            raise SchedulingError(
                f"budget {total_budget_w:.1f} W cannot give {n} nodes the "
                f"floor of {lo_s:.1f} W each"
            )
        uniform = np.full(n, min(total_budget_w / n, hi_s))
        spread = factors.max() / factors.min() - 1.0
        if n == 1 or spread <= threshold:
            return uniform

        # Proportional split: node i needs factor_i times the watts of
        # the nominal part to sustain the same frequency.  Clamp into
        # the acceptable range and hand clipped surplus back
        # proportionally.
        budgets = np.clip(total_budget_w * factors / factors.sum(), lo_s, hi_s)
        deficit = budgets.sum() - total_budget_w
        if deficit > 1e-9:
            # Clamping weak nodes up to lo_w pushed the sum past the
            # budget; take the overage back from nodes above the floor,
            # proportionally to their headroom.  The feasibility guard
            # above guarantees sum(room) = sum - n*lo >= deficit, so one
            # proportional pass lands exactly on the budget without
            # dropping anyone below lo_w.
            room = budgets - lo_s
            budgets = budgets - deficit * room / room.sum()
            return np.clip(budgets, lo_s, hi_s)
        return waterfill_surplus(budgets, -deficit, factors, hi_s)

    # -- per-node ranges (heterogeneous clusters) -----------------------
    # Even a below-threshold spread must respect per-node bounds, so
    # the clamp-and-redistribute machinery always runs: start from the
    # target split (uniform or factor-proportional), clip into each
    # node's own range, then move the clipping error back onto nodes
    # with headroom.
    lo = np.array(np.broadcast_to(lo_arr, (n,)), dtype=np.float64)
    hi = np.array(np.broadcast_to(hi_arr, (n,)), dtype=np.float64)
    if np.any(lo <= 0) or np.any(hi < lo):
        raise SchedulingError(
            f"invalid per-node power ranges [{lo.tolist()}, {hi.tolist()}]"
        )
    if total_budget_w < lo.sum() - 1e-9:
        raise SchedulingError(
            f"budget {total_budget_w:.1f} W cannot give {n} nodes their "
            f"floors summing to {lo.sum():.1f} W"
        )
    spread = factors.max() / factors.min() - 1.0
    if n == 1 or spread <= threshold:
        raw = np.full(n, total_budget_w / n)
        weights = np.ones(n)
    else:
        raw = total_budget_w * factors / factors.sum()
        weights = factors
    budgets = np.clip(raw, lo, hi)
    deficit = budgets.sum() - total_budget_w
    if deficit > 1e-9:
        room = budgets - lo
        if room.sum() > 1e-12:
            budgets = budgets - deficit * room / room.sum()
        return np.clip(budgets, lo, hi)
    return waterfill_surplus(budgets, -deficit, weights, hi)
