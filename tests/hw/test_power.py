"""Unit and property tests for the ground-truth power model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SpecError
from repro.hw.power import PowerModel
from repro.hw.specs import haswell_node
from repro.units import ghz

NODE = haswell_node()


@pytest.fixture()
def model():
    return PowerModel(NODE)


class TestCorePower:
    def test_idle_core_draws_leakage_only(self, model):
        assert model.core_power(0.0) == pytest.approx(NODE.socket.core.p_leak_w)

    def test_nominal_full_activity(self, model):
        expected = NODE.socket.core.p_leak_w + NODE.socket.core.p_dyn_w
        assert model.core_power(NODE.socket.f_nominal) == pytest.approx(expected)

    def test_activity_scales_dynamic_only(self, model):
        f = NODE.socket.f_nominal
        full = model.core_power(f, 1.0)
        half = model.core_power(f, 0.5)
        leak = NODE.socket.core.p_leak_w
        assert half - leak == pytest.approx((full - leak) / 2)

    def test_vectorized_over_frequency(self, model):
        freqs = np.array([ghz(1.2), ghz(2.3), ghz(3.1)])
        out = model.core_power(freqs)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_rejects_bad_activity(self, model):
        with pytest.raises(SpecError):
            model.core_power(ghz(2.0), 1.5)

    @given(
        st.floats(min_value=1.2e9, max_value=3.1e9),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_core_power_bounded(self, f, act):
        model = PowerModel(NODE)
        p = model.core_power(f, act)
        core = NODE.socket.core
        assert core.p_leak_w <= p <= core.p_leak_w + core.p_dyn_w * (
            3.1 / 2.3
        ) ** core.dyn_exponent + 1e-9


class TestPkgPower:
    def test_monotone_in_cores(self, model):
        f = NODE.socket.f_nominal
        powers = [model.pkg_power(n, f) for n in range(13)]
        assert powers == sorted(powers)

    def test_monotone_in_frequency(self, model):
        powers = [model.pkg_power(12, ghz(g)) for g in (1.2, 1.8, 2.3, 3.1)]
        assert powers == sorted(powers)

    def test_zero_cores_is_base(self, model):
        assert model.pkg_power(0, ghz(2.3)) == pytest.approx(
            NODE.socket.p_base_w
        )

    def test_rejects_too_many_cores(self, model):
        with pytest.raises(SpecError):
            model.pkg_power(13, ghz(2.3))

    def test_efficiency_scales_pkg(self):
        hot = PowerModel(NODE, efficiency=1.1)
        cold = PowerModel(NODE, efficiency=1.0)
        assert hot.pkg_power(12, ghz(2.3)) == pytest.approx(
            1.1 * cold.pkg_power(12, ghz(2.3))
        )

    def test_percore_matches_uniform(self, model):
        f = ghz(2.0)
        freqs = np.full(12, f)
        assert model.pkg_power_percore(freqs, np.ones(12)) == pytest.approx(
            model.pkg_power(12, f, 1.0)
        )

    def test_percore_ignores_inactive(self, model):
        freqs = np.zeros(12)
        freqs[:4] = ghz(2.3)
        expected = model.pkg_power(4, ghz(2.3))
        assert model.pkg_power_percore(freqs, np.ones(12)) == pytest.approx(expected)


class TestDramPower:
    def test_idle_is_base(self, model):
        assert model.dram_power(0.0) == pytest.approx(
            NODE.socket.memory.p_base_w
        )

    def test_full_load(self, model):
        mem = NODE.socket.memory
        assert model.dram_power(mem.peak_bandwidth) == pytest.approx(mem.p_max_w)

    def test_saturates_beyond_peak(self, model):
        mem = NODE.socket.memory
        assert model.dram_power(2 * mem.peak_bandwidth) == pytest.approx(
            mem.p_max_w
        )

    def test_linear_in_bandwidth(self, model):
        mem = NODE.socket.memory
        half = model.dram_power(mem.peak_bandwidth / 2)
        assert half == pytest.approx(mem.p_base_w + mem.p_load_max_w / 2)


class TestNodePower:
    def test_breakdown_totals(self, model):
        bd = model.node_power([12, 12], ghz(2.3), [3e10, 3e10])
        assert bd.total_w == pytest.approx(bd.pkg_w + bd.dram_w + bd.other_w)
        assert bd.capped_w == pytest.approx(bd.pkg_w + bd.dram_w)
        assert bd.other_w == pytest.approx(NODE.p_other_w)

    def test_scaled_leaves_other_alone(self, model):
        bd = model.node_power([12, 12], ghz(2.3), [3e10, 3e10])
        scaled = bd.scaled(1.1)
        assert scaled.pkg_w == pytest.approx(1.1 * bd.pkg_w)
        assert scaled.other_w == pytest.approx(bd.other_w)

    def test_rejects_mismatched_sockets(self, model):
        with pytest.raises(SpecError):
            model.node_power([12], ghz(2.3), [3e10, 3e10])


class TestInverseModel:
    def test_roundtrip_freq_under_cap(self, model):
        # forward power at a frequency, then invert: must recover >= it
        f = ghz(2.0)
        p = model.pkg_power(12, f, 0.8) + model.pkg_power(12, f, 0.8)
        f_inv = model.max_freq_under_pkg_cap(p, [12, 12], 0.8)
        assert f_inv == pytest.approx(f, rel=1e-6)

    def test_infeasible_cap_returns_none(self, model):
        assert model.max_freq_under_pkg_cap(10.0, [12, 12], 1.0) is None

    def test_generous_cap_clamps_to_fmax(self, model):
        f = model.max_freq_under_pkg_cap(5000.0, [1, 0], 1.0)
        assert f == pytest.approx(NODE.socket.f_max)

    def test_zero_active_cores(self, model):
        f = model.max_freq_under_pkg_cap(100.0, [0, 0], 1.0)
        assert f == pytest.approx(NODE.socket.f_max)

    @given(
        st.floats(min_value=60.0, max_value=250.0),
        st.floats(min_value=0.1, max_value=1.0),
    )
    def test_inverse_respects_cap(self, cap, act):
        model = PowerModel(NODE)
        f = model.max_freq_under_pkg_cap(cap, [12, 12], act)
        if f is not None:
            p = 2 * model.pkg_power(12, f, act)
            assert p <= cap * (1 + 1e-9)

    def test_bandwidth_under_cap_roundtrip(self, model):
        mem = NODE.socket.memory
        bw = model.max_bandwidth_under_dram_cap(mem.p_base_w + mem.p_load_max_w / 2)
        assert bw == pytest.approx(mem.peak_bandwidth / 2)

    def test_bandwidth_cap_below_base(self, model):
        assert model.max_bandwidth_under_dram_cap(1.0) is None

    def test_rejects_nonpositive_efficiency(self):
        with pytest.raises(SpecError):
            PowerModel(NODE, efficiency=0.0)


class TestPowerBreakdownDomains:
    """Table-driven domain accounting on the per-node breakdown."""

    _w = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)

    @given(pkg=_w, dram=_w, other=_w, gpu=st.one_of(st.none(), _w))
    def test_total_is_sum_of_present_domains(self, pkg, dram, other, gpu):
        from repro.hw.power import PowerBreakdown

        bd = PowerBreakdown(pkg_w=pkg, dram_w=dram, other_w=other, gpu_w=gpu)
        present = dict(bd.present_domains())
        assert bd.capped_w == pytest.approx(sum(present.values()))
        assert bd.total_w == pytest.approx(sum(present.values()) + other)
        if gpu is None:
            assert "gpu_w" not in present  # absent, not zero
        else:
            assert present["gpu_w"] == gpu

    @given(pkg=_w, dram=_w, other=_w, gpu=st.one_of(st.none(), _w),
           factor=st.floats(min_value=0.0, max_value=3.0))
    def test_scaled_preserves_domain_absence(self, pkg, dram, other, gpu, factor):
        from repro.hw.power import PowerBreakdown

        bd = PowerBreakdown(pkg_w=pkg, dram_w=dram, other_w=other, gpu_w=gpu)
        scaled = bd.scaled(factor)
        assert (scaled.gpu_w is None) == (gpu is None)
        assert scaled.other_w == other  # uncapped share never scales
        assert scaled.pkg_w == pytest.approx(pkg * factor)
        if gpu is not None:
            assert scaled.gpu_w == pytest.approx(gpu * factor)

    def test_capped_domain_table_covers_every_capped_field(self):
        from dataclasses import fields

        from repro.hw.power import PowerBreakdown

        names = {f.name for f in fields(PowerBreakdown)}
        table = set(PowerBreakdown.CAPPED_DOMAIN_FIELDS)
        assert table <= names
        assert names - table == {"other_w"}
