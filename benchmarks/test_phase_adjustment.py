"""§V-B.1 — phase-by-phase concurrency adjustment (the BT-MZ effect).

"The stagnant scalability of BT-MZ for size C beyond half-core is due
to function exch_qbc ... Thus, we change the concurrency setting
phase-by-phase for the BT benchmark to increase performance."

Regenerates the effect: BT-MZ's iteration time with and without pinning
the exchange phase at its useful concurrency, across global thread
counts, at a fixed frequency (so RAPL's activity response does not
confound the timing comparison).
"""

from repro.analysis.tables import render_table
from repro.sim.engine import ExecutionConfig
from repro.workloads.apps import get_app
from conftest import run_once

GLOBAL_THREADS = (12, 16, 20, 24)
EXCHANGE_USEFUL = 12


def sweep(engine):
    app = get_app("bt-mz.C")
    f_nom = engine.cluster.spec.node.socket.f_nominal
    rows = []
    for t in GLOBAL_THREADS:
        plain = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1, n_threads=t, iterations=3, frequency_hz=f_nom
            ),
        )
        adjusted = engine.run(
            app,
            ExecutionConfig(
                n_nodes=1, n_threads=t, iterations=3, frequency_hz=f_nom,
                phase_threads={"exch_qbc": EXCHANGE_USEFUL},
            ),
        )
        exch_plain = dict(plain.nodes[0].phase_times)["exch_qbc"]
        exch_adj = dict(adjusted.nodes[0].phase_times)["exch_qbc"]
        rows.append(
            [
                t,
                plain.performance,
                adjusted.performance,
                adjusted.performance / plain.performance - 1.0,
                exch_plain,
                exch_adj,
            ]
        )
    return rows


def test_phase_adjustment(benchmark, engine, report):
    rows = run_once(benchmark, lambda: sweep(engine))

    report(
        "phase_adjustment",
        render_table(
            ["global threads", "plain it/s", "phase-adjusted it/s", "gain",
             "exch_qbc plain (s)", "exch_qbc adjusted (s)"],
            rows,
            title="§V-B.1 — BT-MZ with the exchange phase pinned at "
            f"{EXCHANGE_USEFUL} threads",
        ),
    )

    by_t = {r[0]: r for r in rows}
    # at the useful concurrency the adjustment is a no-op
    assert by_t[12][3] == 0.0
    # beyond it the adjustment always helps, and the gain grows with
    # the oversubscription
    gains = [by_t[t][3] for t in (16, 20, 24)]
    assert all(g > 0 for g in gains)
    assert gains == sorted(gains)
    assert gains[-1] > 0.03  # a few percent at full oversubscription
    # the mechanism is the exchange phase itself
    for t in (16, 20, 24):
        assert by_t[t][5] < by_t[t][4]
