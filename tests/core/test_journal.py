"""Tests for the append-only runtime journal."""

import json

import pytest

from repro.core.journal import RECORD_KINDS, RuntimeJournal
from repro.errors import JournalError


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "runtime.journal"


class TestAppendRead:
    def test_round_trip_preserves_order_and_floats(self, path):
        journal = RuntimeJournal(path)
        # an awkward float: bit-identity demands exact round-tripping
        journal.append("launch", {"budget_w": 950.1000000000001})
        journal.append("segment", {"time_s": 0.30000000000000004})
        journal.close()
        records = RuntimeJournal.read(path)
        assert [r["kind"] for r in records] == ["launch", "segment"]
        assert [r["seq"] for r in records] == [1, 2]
        assert records[0]["budget_w"] == 950.1000000000001
        assert records[1]["time_s"] == 0.30000000000000004

    def test_unknown_kind_rejected(self, path):
        journal = RuntimeJournal(path)
        with pytest.raises(JournalError) as err:
            journal.append("reboot", {})
        assert err.value.path == str(path)
        assert "reboot" not in RECORD_KINDS

    def test_append_continues_an_existing_log(self, path):
        first = RuntimeJournal(path)
        first.append("launch", {})
        first.close()
        second = RuntimeJournal(path)
        assert second.append("segment", {}) == 2
        second.close()
        assert [r["seq"] for r in RuntimeJournal.read(path)] == [1, 2]

    def test_durable_journal_fsyncs(self, path):
        journal = RuntimeJournal(path, durable=True)
        journal.append("launch", {"budget_w": 1.0})
        journal.close()
        assert len(RuntimeJournal.read(path)) == 1

    def test_missing_file_raises_with_path(self, path):
        with pytest.raises(JournalError) as err:
            RuntimeJournal.read(path)
        assert err.value.path == str(path)


class TestCorruption:
    def _write(self, path, lines):
        path.write_text("".join(line + "\n" for line in lines))

    def test_torn_final_line_is_dropped(self, path):
        self._write(
            path,
            [
                json.dumps({"seq": 1, "kind": "launch"}),
                '{"seq": 2, "kind": "segm',  # crash mid-write
            ],
        )
        records = RuntimeJournal.read(path)
        assert [r["seq"] for r in records] == [1]

    def test_mid_file_corruption_is_an_error(self, path):
        self._write(
            path,
            [
                json.dumps({"seq": 1, "kind": "launch"}),
                "{garbage",
                json.dumps({"seq": 2, "kind": "segment"}),
            ],
        )
        with pytest.raises(JournalError):
            RuntimeJournal.read(path)

    def test_malformed_record_is_an_error(self, path):
        self._write(
            path,
            [
                json.dumps({"seq": 1, "kind": "launch"}),
                json.dumps({"seq": 2, "kind": "meteor_strike"}),
                json.dumps({"seq": 3, "kind": "segment"}),
            ],
        )
        with pytest.raises(JournalError):
            RuntimeJournal.read(path)

    def test_seq_regression_is_an_error(self, path):
        self._write(
            path,
            [
                json.dumps({"seq": 2, "kind": "launch"}),
                json.dumps({"seq": 1, "kind": "segment"}),
                json.dumps({"seq": 3, "kind": "segment"}),
            ],
        )
        with pytest.raises(JournalError) as err:
            RuntimeJournal.read(path)
        assert "regressed" in str(err.value)

    def test_resumed_log_skips_past_a_torn_tail(self, path):
        self._write(
            path,
            [
                json.dumps({"seq": 1, "kind": "launch"}),
                '{"seq": 2, "kind"',
            ],
        )
        # reattaching after the crash: the torn line is ignored but the
        # next append must not reuse or regress the sequence
        journal = RuntimeJournal(path)
        assert journal.append("segment", {}) == 2
        journal.close()
        assert [r["seq"] for r in RuntimeJournal.read(path)] == [1, 2]
